//! Pipelining end-to-end: request-id correlation under shuffled response
//! ordering, per-request error isolation mid-pipeline, out-of-order
//! completion on the real server, and legacy/pipelined coexistence.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use xse_service::loadgen::{self, loadgen_discovery};
use xse_service::proto::{read_frame, write_frame};
use xse_service::{
    Client, EmbeddingRegistry, ErrorCode, PipelinedClient, RegistryConfig, Request, Response,
    Server, ServerConfig, ServerHandle,
};

fn wrap_pair() -> (String, String) {
    let s1 =
        "<!ELEMENT r (a, b)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (c*)>\n<!ELEMENT c (#PCDATA)>";
    let s2 = "<!ELEMENT r (x, y)>\n<!ELEMENT x (a)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT y (w)>\n<!ELEMENT w (c2*)>\n<!ELEMENT c2 (c)>\n<!ELEMENT c (#PCDATA)>";
    (s1.to_string(), s2.to_string())
}

fn spawn_server(workers: usize, executors: usize) -> ServerHandle {
    Server::bind(
        ("127.0.0.1", 0),
        Arc::new(EmbeddingRegistry::new(RegistryConfig {
            capacity: 16,
            discovery: loadgen_discovery(),
            ..RegistryConfig::default()
        })),
        ServerConfig {
            workers,
            pipeline_executors: executors,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

/// A similarity hook that sleeps before delegating, making every compile
/// take ≥ 150 ms of *blocked* (not compute-bound) time — so on any
/// machine, however loaded, a concurrent executor gets the core and the
/// fast requests provably finish inside the window.
fn slow_sim(s: &xse_dtd::Dtd, t: &xse_dtd::Dtd) -> xse_core::SimilarityMatrix {
    std::thread::sleep(Duration::from_millis(150));
    xse_service::registry::default_similarity(s, t)
}

fn spawn_slow_compile_server(config: ServerConfig) -> ServerHandle {
    Server::bind(
        ("127.0.0.1", 0),
        Arc::new(EmbeddingRegistry::new(RegistryConfig {
            capacity: 16,
            discovery: loadgen_discovery(),
            sim: slow_sim,
            ..RegistryConfig::default()
        })),
        config,
    )
    .expect("bind ephemeral port")
}

/// A scripted stand-in server: accepts one connection, reads `n` request
/// frames, then answers them in an arbitrary caller-chosen order with
/// caller-chosen payloads. This pins the *client-side* pipelining
/// contract without depending on real scheduling.
fn scripted_peer(
    n: usize,
    respond: impl FnOnce(Vec<(u32, Vec<u8>)>) -> Vec<(u32, Response)> + Send + 'static,
) -> std::net::SocketAddr {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let mut seen = Vec::new();
        for _ in 0..n {
            seen.push(read_frame(&mut reader).unwrap());
        }
        for (id, resp) in respond(seen) {
            write_frame(&mut writer, id, &resp.encode()).unwrap();
        }
        writer.flush().unwrap();
    });
    addr
}

/// Shuffled response ordering round-trips correctly: the scripted peer
/// answers (3, 1, 2) for submissions (1, 2, 3), and a mid-pipeline
/// `Timeout` error frame fails only its own request.
#[test]
fn shuffled_responses_match_by_id_and_timeout_isolates() {
    let addr = scripted_peer(3, |seen| {
        assert_eq!(
            seen.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "client must number requests 1, 2, 3"
        );
        vec![
            (3, Response::Stats(xse_service::proto::StatsWire::default())),
            (1, Response::Evicted { existed: false }),
            (
                2,
                Response::Error {
                    code: ErrorCode::Timeout,
                    message: "budget exceeded".into(),
                },
            ),
        ]
    });

    let mut client = PipelinedClient::connect(addr).unwrap();
    let (s, t) = wrap_pair();
    let reqs = [
        Request::Evict {
            source_dtd: s.clone(),
            target_dtd: t.clone(),
        },
        Request::Stats,
        Request::Stats,
    ];
    let ids: Vec<u32> = reqs.iter().map(|r| client.submit(r).unwrap()).collect();
    assert_eq!(ids, vec![1, 2, 3]);
    assert_eq!(client.in_flight(), 3);

    // Completion order is the peer's (3, 1, 2); each response lands on
    // its own request, and the Timeout poisons only id 2.
    let (id, resp) = client.recv().unwrap();
    assert_eq!(id, 3);
    assert!(matches!(resp, Response::Stats(_)), "{resp:?}");
    let (id, resp) = client.recv().unwrap();
    assert_eq!(id, 1);
    assert!(
        matches!(resp, Response::Evicted { existed: false }),
        "{resp:?}"
    );
    let (id, resp) = client.recv().unwrap();
    assert_eq!(id, 2);
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::Timeout,
                ..
            }
        ),
        "{resp:?}"
    );
    assert_eq!(client.in_flight(), 0);
}

/// An unknown response id is a protocol violation, surfaced as a typed
/// error instead of being silently dropped or misattributed.
#[test]
fn unknown_response_id_is_a_protocol_error() {
    let addr = scripted_peer(1, |_| vec![(77, Response::Evicted { existed: true })]);
    let mut client = PipelinedClient::connect(addr).unwrap();
    client.submit(&Request::Stats).unwrap();
    let err = client.recv().unwrap_err();
    assert!(
        format!("{err}").contains("77"),
        "error should name the bogus id: {err}"
    );
}

/// Against the real server: eight requests in flight on one connection,
/// every response matched to its request by id — and because the first
/// request is a compile whose similarity hook *sleeps* 150 ms, the seven
/// stats calls deterministically complete first: completion is
/// out-of-order by construction, not by scheduling luck.
#[test]
fn eight_in_flight_complete_out_of_order_on_the_real_server() {
    let server = spawn_slow_compile_server(ServerConfig {
        workers: 1,
        pipeline_executors: 4,
        ..ServerConfig::default()
    });
    let (s, t) = wrap_pair();
    let mut client = PipelinedClient::connect(server.addr()).unwrap();
    let compile_id = client
        .submit(&Request::Compile {
            source_dtd: s.clone(),
            target_dtd: t.clone(),
        })
        .unwrap();
    let stats_ids: Vec<u32> = (0..7)
        .map(|_| client.submit(&Request::Stats).unwrap())
        .collect();
    assert_eq!(client.in_flight(), 8);

    let mut order = Vec::new();
    for _ in 0..8 {
        let (id, resp) = client.recv().unwrap();
        if id == compile_id {
            assert!(matches!(resp, Response::Compiled { .. }), "{resp:?}");
        } else {
            assert!(stats_ids.contains(&id), "unexpected id {id}");
            assert!(matches!(resp, Response::Stats(_)), "{resp:?}");
        }
        order.push(id);
    }
    assert_eq!(client.in_flight(), 0);
    assert_eq!(
        *order.last().unwrap(),
        compile_id,
        "the sleeping compile must finish after every stats call: {order:?}"
    );
    assert_ne!(
        order[0], compile_id,
        "completion stayed in submission order"
    );
}

/// Real-server Timeout isolation: with a 40 ms request budget, the
/// sleeping compile (150 ms) is answered with a `Timeout` error frame on
/// its own id while the stats calls sharing the pipeline all succeed,
/// and the connection remains usable afterwards.
#[test]
fn mid_pipeline_timeout_fails_only_the_slow_request() {
    let server = spawn_slow_compile_server(ServerConfig {
        workers: 1,
        pipeline_executors: 2,
        request_budget: Some(Duration::from_millis(40)),
        ..ServerConfig::default()
    });
    let (s, t) = wrap_pair();
    let mut client = PipelinedClient::connect(server.addr()).unwrap();
    let compile_id = client
        .submit(&Request::Compile {
            source_dtd: s.clone(),
            target_dtd: t.clone(),
        })
        .unwrap();
    let stats_ids: Vec<u32> = (0..3)
        .map(|_| client.submit(&Request::Stats).unwrap())
        .collect();

    for _ in 0..4 {
        let (id, resp) = client.recv().unwrap();
        if id == compile_id {
            assert!(
                matches!(
                    resp,
                    Response::Error {
                        code: ErrorCode::Timeout,
                        ..
                    }
                ),
                "the over-budget compile must time out: {resp:?}"
            );
        } else {
            assert!(stats_ids.contains(&id), "unexpected id {id}");
            assert!(
                matches!(resp, Response::Stats(_)),
                "a neighbor of the timed-out request failed: {resp:?}"
            );
        }
    }

    // The timeout poisoned neither the connection nor the server.
    let more = client.call_pipelined(&[Request::Stats], 1).unwrap();
    assert!(matches!(more[0], Response::Stats(_)));
}

/// A deterministic mid-pipeline application error (bad query) is answered
/// on its own id; the requests around it succeed and the connection
/// stays usable.
#[test]
fn mid_pipeline_bad_query_fails_only_its_own_request() {
    let server = spawn_server(1, 2);
    let (s, t) = wrap_pair();
    let mut client = PipelinedClient::connect(server.addr()).unwrap();

    let reqs = vec![
        Request::Compile {
            source_dtd: s.clone(),
            target_dtd: t.clone(),
        },
        Request::Translate {
            source_dtd: s.clone(),
            target_dtd: t.clone(),
            query: "](((".into(),
        },
        Request::Translate {
            source_dtd: s.clone(),
            target_dtd: t.clone(),
            query: "b/c".into(),
        },
        Request::Stats,
    ];
    let responses = client.call_pipelined(&reqs, 4).unwrap();
    assert_eq!(responses.len(), 4);
    assert!(
        matches!(responses[0], Response::Compiled { .. }),
        "{:?}",
        responses[0]
    );
    assert!(
        matches!(
            responses[1],
            Response::Error {
                code: ErrorCode::BadQuery,
                ..
            }
        ),
        "{:?}",
        responses[1]
    );
    assert!(
        matches!(responses[2], Response::Translated { .. }),
        "{:?}",
        responses[2]
    );
    assert!(
        matches!(responses[3], Response::Stats(_)),
        "{:?}",
        responses[3]
    );

    // The connection survived the mid-pipeline error.
    let more = client.call_pipelined(&[Request::Stats], 1).unwrap();
    assert!(matches!(more[0], Response::Stats(_)));
}

/// Compatibility: a legacy id-0 client and a pipelined client share the
/// same server concurrently; each lane keeps its own semantics.
#[test]
fn legacy_and_pipelined_connections_coexist() {
    let server = spawn_server(2, 2);
    let (s, t) = wrap_pair();

    let mut legacy = Client::connect(server.addr()).unwrap();
    let mut piped = PipelinedClient::connect(server.addr()).unwrap();

    let (sh, th, _) = legacy.compile(&s, &t).unwrap();
    assert_ne!(sh, th);

    let responses = piped
        .call_pipelined(&[Request::Stats, Request::Stats], 2)
        .unwrap();
    assert!(responses.iter().all(|r| matches!(r, Response::Stats(_))));

    // Legacy lane still strictly in-order after the pipelined traffic.
    let stats = legacy.stats().unwrap();
    assert_eq!(stats.compiles, 1);
}

/// Windowed pipelining against the real server round-trips a full
/// traffic slice in request order, whatever the completion order was.
#[test]
fn call_pipelined_preserves_request_order_across_windows() {
    let server = spawn_server(1, 4);
    let pairs = loadgen::build_pairs(2, 11);
    let mut client = PipelinedClient::connect(server.addr()).unwrap();

    let mut reqs = Vec::new();
    for p in &pairs {
        reqs.push(Request::Compile {
            source_dtd: p.source_text.clone(),
            target_dtd: p.target_text.clone(),
        });
        if let Some(doc) = p.docs.first() {
            reqs.push(Request::Apply {
                source_dtd: p.source_text.clone(),
                target_dtd: p.target_text.clone(),
                xml: doc.clone(),
            });
        }
        reqs.push(Request::Stats);
    }
    let responses = client.call_pipelined(&reqs, 3).unwrap();
    assert_eq!(responses.len(), reqs.len());
    for (req, resp) in reqs.iter().zip(&responses) {
        assert!(
            loadgen::response_matches(req, resp),
            "request {req:?} answered by wrong-kind {resp:?}"
        );
        assert!(
            !matches!(resp, Response::Error { .. }),
            "clean traffic must not error: {resp:?}"
        );
    }
}
