//! Serving-layer robustness: deadlines, load shedding, graceful drain,
//! and client retry behaviour against a real server.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use xse_service::loadgen;
use xse_service::proto::ErrorCode;
use xse_service::{
    Client, ClientConfig, EmbeddingRegistry, RegistryConfig, RetryPolicy, RetryingClient, Server,
    ServerConfig, ServerHandle, ServiceError,
};

fn wrap_pair() -> (String, String) {
    let s1 =
        "<!ELEMENT r (a, b)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (c*)>\n<!ELEMENT c (#PCDATA)>";
    let s2 = "<!ELEMENT r (x, y)>\n<!ELEMENT x (a)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT y (w)>\n<!ELEMENT w (c2*)>\n<!ELEMENT c2 (c)>\n<!ELEMENT c (#PCDATA)>";
    (s1.to_string(), s2.to_string())
}

fn test_registry(capacity: usize) -> Arc<EmbeddingRegistry> {
    Arc::new(EmbeddingRegistry::new(RegistryConfig {
        capacity,
        discovery: loadgen::loadgen_discovery(),
        ..RegistryConfig::default()
    }))
}

fn spawn_with(config: ServerConfig) -> ServerHandle {
    Server::bind(("127.0.0.1", 0), test_registry(8), config).expect("bind ephemeral port")
}

/// A client that connects, sends half a frame, and goes quiet must be
/// disconnected within 2× the read deadline — and its worker must return
/// to the pool, proven by a fresh request succeeding afterwards.
#[test]
fn stalled_client_is_disconnected_and_frees_its_worker() {
    let read_timeout = Duration::from_millis(250);
    let server = spawn_with(ServerConfig {
        // One worker: if the stalled connection pinned it, the follow-up
        // request could never be served.
        workers: 1,
        read_timeout: Some(read_timeout),
        ..ServerConfig::default()
    });

    let mut stalled = TcpStream::connect(server.addr()).unwrap();
    // Half a frame header, then silence: the peer is mid-frame, stalled.
    stalled.write_all(&[0x00, 0x00]).unwrap();
    stalled.flush().unwrap();

    // The server must sever the connection within 2× the read deadline.
    stalled.set_read_timeout(Some(2 * read_timeout)).unwrap();
    let t0 = Instant::now();
    let mut sink = Vec::new();
    let outcome = stalled.read_to_end(&mut sink);
    let waited = t0.elapsed();
    assert!(
        outcome.is_ok(),
        "expected EOF (server closed), got {outcome:?} after {waited:?}"
    );
    assert!(
        waited <= 2 * read_timeout,
        "disconnect took {waited:?}, over 2× the {read_timeout:?} deadline"
    );

    // The lone worker is free again: a real request completes promptly.
    let (s, t) = wrap_pair();
    let mut client = Client::connect(server.addr()).unwrap();
    let (sh, th, _) = client.compile(&s, &t).unwrap();
    assert_ne!(sh, th);
}

/// An idle connection (no bytes of a next frame) is closed silently at
/// the read deadline — no timeout error frame.
#[test]
fn idle_connection_expires_silently() {
    let server = spawn_with(ServerConfig {
        workers: 1,
        read_timeout: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    });
    let (s, t) = wrap_pair();
    let mut client = Client::connect(server.addr()).unwrap();
    client.compile(&s, &t).unwrap();
    // Don't send anything else; the server should close cleanly (EOF at a
    // frame boundary → ServiceError::Closed), not send an error frame.
    std::thread::sleep(Duration::from_millis(400));
    let err = client.read_response().unwrap_err();
    assert!(
        matches!(err, ServiceError::Closed),
        "expected clean close, got {err:?}"
    );
}

/// With the accept queue bounded at zero, every connection is shed with a
/// structured `Overloaded` frame instead of queueing.
#[test]
fn overloaded_server_sheds_with_a_structured_error() {
    let server = spawn_with(ServerConfig {
        workers: 1,
        max_queued: 0,
        read_timeout: Some(Duration::from_millis(500)),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client.stats().unwrap_err();
    match err {
        ServiceError::Remote { code, .. } => assert_eq!(code, ErrorCode::Overloaded),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert!(server.shed_count() >= 1, "shed counter must record it");
}

/// A retrying client records its attempts against a persistently-shedding
/// server and surfaces the final `Overloaded` frame — shedding happens
/// before the request is read, so retrying it was always safe.
#[test]
fn retrying_client_records_shed_retries() {
    let server = spawn_with(ServerConfig {
        workers: 1,
        max_queued: 0,
        read_timeout: Some(Duration::from_millis(500)),
        ..ServerConfig::default()
    });
    let mut client = RetryingClient::new(
        server.addr(),
        ClientConfig::default(),
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(20),
            seed: 11,
        },
    )
    .unwrap();
    let (s, t) = wrap_pair();
    let outcome = client.call(&xse_service::Request::Compile {
        source_dtd: s,
        target_dtd: t,
    });
    match outcome {
        Ok(xse_service::Response::Error { code, .. }) => {
            assert_eq!(code, ErrorCode::Overloaded);
        }
        other => panic!("expected the final Overloaded frame, got {other:?}"),
    }
    let stats = client.stats();
    assert_eq!(stats.attempts, 3, "{stats:?}");
    assert_eq!(stats.retries, 2, "{stats:?}");
    assert_eq!(
        stats.reconnects, 3,
        "shed connections are closed server-side, so each attempt re-dials: {stats:?}"
    );
    assert!(server.shed_count() >= 3, "{}", server.shed_count());
}

/// Graceful drain: shutdown answers queued-but-unserved connections with
/// `Overloaded`, finishes in-flight work, and joins within the deadline.
#[test]
fn shutdown_drains_within_its_deadline() {
    let mut server = spawn_with(ServerConfig {
        workers: 2,
        read_timeout: Some(Duration::from_millis(250)),
        drain_deadline: Duration::from_millis(500),
        ..ServerConfig::default()
    });
    let (s, t) = wrap_pair();
    let mut client = Client::connect(server.addr()).unwrap();
    client.compile(&s, &t).unwrap();
    // Keep the connection open (in-flight from the server's viewpoint).
    let t0 = Instant::now();
    server.shutdown();
    let took = t0.elapsed();
    // Bounded by: poke + read deadline on the idle conn + drain polling,
    // comfortably under read deadline + drain deadline + slack.
    assert!(
        took < Duration::from_secs(2),
        "shutdown took {took:?} — drain deadline not honoured"
    );
    // The drained server refuses further work (connection dead).
    let err = client.stats().unwrap_err();
    assert!(
        matches!(
            err,
            ServiceError::Closed | ServiceError::Io(_) | ServiceError::Timeout(_)
        ),
        "{err:?}"
    );
}

/// Connecting to a dead port through the deadline-bounded connect path
/// surfaces a typed error promptly — it never hangs.
#[test]
fn connect_failure_is_typed_and_bounded() {
    // Grab an ephemeral port and close it again: connecting afterwards is
    // refused (or, on exotic stacks, times out) — either way the bounded
    // connect must return quickly with a typed ServiceError.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let t0 = Instant::now();
    let result = Client::connect_with(
        dead,
        &ClientConfig {
            connect_timeout: Some(Duration::from_millis(300)),
            ..ClientConfig::default()
        },
    );
    let took = t0.elapsed();
    assert!(took < Duration::from_secs(5), "connect took {took:?}");
    match result {
        Err(ServiceError::Timeout(_) | ServiceError::Io(_)) => {}
        other => panic!("expected a typed connect failure, got {:?}", other.err()),
    }
}
