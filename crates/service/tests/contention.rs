//! Concurrency battery for the sharded registry: warm hits stay
//! byte-identical to a sequential baseline, single-flight compiles once
//! per pair under 16 threads, aggregate stats are exactly the fold of the
//! per-shard stats, snapshots stay monotone while two shards evict
//! concurrently, and shard counts {1, 2, 8} are observationally
//! equivalent for any single-threaded op sequence.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xse_service::loadgen::loadgen_discovery;
use xse_service::{
    handle_request, EmbeddingRegistry, RegistryConfig, RegistryStats, Request, Response,
    ServiceError,
};

/// Identity pair `i`: a tiny DTD that always embeds into itself, with
/// per-index element names so distinct indices are distinct cache keys.
fn ident_dtd(i: usize) -> String {
    format!("<!ELEMENT r{i} (a{i}*)>\n<!ELEMENT a{i} (#PCDATA)>")
}

/// A pair that cannot embed (two required leaves into a single PCDATA
/// root), for exercising the negative cache.
fn bad_pair(i: usize) -> (String, String) {
    (
        format!(
            "<!ELEMENT q{i} (u{i}, v{i})>\n<!ELEMENT u{i} (#PCDATA)>\n<!ELEMENT v{i} (#PCDATA)>"
        ),
        format!("<!ELEMENT q{i} (#PCDATA)>"),
    )
}

fn registry(shards: usize, capacity: usize) -> EmbeddingRegistry {
    EmbeddingRegistry::new(RegistryConfig {
        capacity,
        shards,
        discovery: loadgen_discovery(),
        ..RegistryConfig::default()
    })
}

fn apply_doc(reg: &EmbeddingRegistry, dtd: &str, xml: &str) -> String {
    match handle_request(
        reg,
        &Request::Apply {
            source_dtd: dtd.to_string(),
            target_dtd: dtd.to_string(),
            xml: xml.to_string(),
        },
    ) {
        Response::Document { xml } => xml,
        other => panic!("apply failed: {other:?}"),
    }
}

/// (a) Every warm hit under contention returns an engine producing output
/// byte-identical to a sequential single-shard baseline.
#[test]
fn warm_hits_match_sequential_baseline_byte_for_byte() {
    const PAIRS: usize = 6;
    const THREADS: usize = 8;
    let dtds: Vec<String> = (0..PAIRS).map(ident_dtd).collect();
    let docs: Vec<String> = (0..PAIRS)
        .map(|i| format!("<r{i}><a{i}>v</a{i}><a{i}>w</a{i}></r{i}>"))
        .collect();

    // Sequential baseline on a single-shard registry: the seed behavior.
    let base = registry(1, 64);
    let baseline: Vec<String> = (0..PAIRS)
        .map(|i| apply_doc(&base, &dtds[i], &docs[i]))
        .collect();

    let reg = registry(8, 64);
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        let (reg, barrier, dtds, docs, baseline) = (&reg, &barrier, &dtds, &docs, &baseline);
        for t in 0..THREADS {
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t as u64);
                barrier.wait();
                for _ in 0..40 {
                    let i = rng.random_range(0..PAIRS);
                    assert_eq!(
                        apply_doc(reg, &dtds[i], &docs[i]),
                        baseline[i],
                        "pair {i} diverged from the sequential baseline"
                    );
                }
            });
        }
    });
    let stats = reg.stats();
    assert_eq!(stats.compiles, PAIRS as u64, "{stats:?}");
    assert_eq!(stats.entries, PAIRS as u64, "{stats:?}");
}

/// (b) Single-flight under 16 threads: each pair compiles exactly once,
/// and every thread receives the same shared engine (`Arc` identity).
#[test]
fn single_flight_compiles_each_pair_exactly_once_under_16_threads() {
    const PAIRS: usize = 4;
    const THREADS: usize = 16;
    let dtds: Vec<String> = (0..PAIRS).map(ident_dtd).collect();
    let reg = registry(8, 64);
    let barrier = Barrier::new(THREADS);

    let ptrs: Vec<Vec<usize>> = std::thread::scope(|s| {
        let (reg, barrier, dtds) = (&reg, &barrier, &dtds);
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                s.spawn(move || {
                    barrier.wait();
                    (0..PAIRS)
                        .map(|i| {
                            let (_, engine) = reg
                                .get_or_compile(&dtds[i], &dtds[i])
                                .expect("identity pair must compile");
                            Arc::as_ptr(&engine) as usize
                        })
                        .collect::<Vec<usize>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for i in 0..PAIRS {
        let first = ptrs[0][i];
        assert!(
            ptrs.iter().all(|per_thread| per_thread[i] == first),
            "pair {i}: threads saw different engines (single-flight broke)"
        );
    }
    let stats = reg.stats();
    assert_eq!(stats.compiles, PAIRS as u64, "{stats:?}");
    assert_eq!(stats.misses, PAIRS as u64, "{stats:?}");
    assert_eq!(
        stats.hits + stats.single_flight_waits,
        (THREADS * PAIRS - PAIRS) as u64,
        "every non-compiling resolution is a hit or a wait: {stats:?}"
    );
}

/// (c) After a randomized interleaving of get / translate / evict / stats
/// calls, the aggregate equals the fold of the per-shard snapshots and
/// the conservation laws hold: every get is accounted exactly once, every
/// compile is either live or evicted, and no translation was lost or
/// double-counted across the retire seam.
#[test]
fn aggregate_stats_equal_shard_sum_after_randomized_interleaving() {
    const PAIRS: usize = 8;
    const THREADS: usize = 8;
    let dtds: Vec<String> = (0..PAIRS).map(ident_dtd).collect();
    // Small capacity: per-shard cap 1, so eviction churns concurrently
    // with gets on other shards.
    let reg = registry(8, 4);
    let gets = AtomicU64::new(0);
    let translations = AtomicU64::new(0);

    std::thread::scope(|s| {
        let (reg, dtds, gets, translations) = (&reg, &dtds, &gets, &translations);
        for t in 0..THREADS {
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ t as u64);
                for _ in 0..60 {
                    let i = rng.random_range(0..PAIRS);
                    match rng.random_range(0..10u32) {
                        0..=4 => {
                            reg.get_or_compile(&dtds[i], &dtds[i]).unwrap();
                            gets.fetch_add(1, Ordering::Relaxed);
                        }
                        5..=6 => {
                            let resp = handle_request(
                                reg,
                                &Request::Translate {
                                    source_dtd: dtds[i].clone(),
                                    target_dtd: dtds[i].clone(),
                                    query: format!("a{i}"),
                                },
                            );
                            assert!(matches!(resp, Response::Translated { .. }), "{resp:?}");
                            // The dispatcher resolves the pair first, so
                            // one translate is also one get.
                            gets.fetch_add(1, Ordering::Relaxed);
                            translations.fetch_add(1, Ordering::Relaxed);
                        }
                        7..=8 => {
                            reg.evict(&dtds[i], &dtds[i]).unwrap();
                        }
                        _ => {
                            let _ = reg.stats();
                        }
                    }
                }
            });
        }
    });

    let merged = reg
        .shard_stats()
        .into_iter()
        .fold(RegistryStats::default(), |a, b| a + b);
    let stats = reg.stats();
    assert_eq!(stats, merged, "aggregate must be the fold of the shards");
    // Each resolution ends as exactly one of: counted hit, miss,
    // negative hit, or an uncounted waited-hit (its wait was already
    // counted). A call may wait *and* then miss when the leader's entry
    // is evicted before the waiter wakes, so the sum brackets the issued
    // count from above by at most `single_flight_waits`.
    let issued = gets.load(Ordering::Relaxed);
    let resolved = stats.hits + stats.misses + stats.single_flight_waits;
    assert!(
        resolved >= issued && resolved - issued <= stats.single_flight_waits,
        "resolution accounting drifted: issued {issued}, {stats:?}"
    );
    assert_eq!(
        stats.compiles,
        stats.entries + stats.evictions,
        "every compiled entry is live or was evicted: {stats:?}"
    );
    // Plan counters live in the engines: a translate that races the
    // eviction of its own engine bumps the counter *after* the retire
    // fold snapshotted it, so the aggregate may under-count such races —
    // but it must never over-count (double-fold) them.
    assert!(
        stats.plan_hits + stats.plan_misses <= translations.load(Ordering::Relaxed),
        "retire fold double-counted plan counters: {stats:?}"
    );

    // Quiescent phase: with no eviction racing, the fold is exact — ten
    // more translates advance the aggregate by exactly ten.
    let before = reg.stats();
    for n in 0..10u64 {
        let i = (n as usize) % PAIRS;
        let resp = handle_request(
            &reg,
            &Request::Translate {
                source_dtd: dtds[i].clone(),
                target_dtd: dtds[i].clone(),
                query: format!("a{i}"),
            },
        );
        assert!(matches!(resp, Response::Translated { .. }), "{resp:?}");
    }
    let after = reg.stats();
    assert_eq!(
        (after.plan_hits + after.plan_misses) - (before.plan_hits + before.plan_misses),
        10,
        "quiescent translates must be conserved exactly: {before:?} -> {after:?}"
    );
}

/// Regression for the stats-merge seam: while two pairs on *different*
/// shards are hammered with translate + evict cycles, every `stats()`
/// snapshot must be monotone in all cumulative counters — retirement
/// folds plan totals in the same critical section that removes the entry,
/// so no snapshot can observe a dip or a double-count.
#[test]
fn stats_snapshots_stay_monotone_under_concurrent_two_shard_eviction() {
    let reg = registry(8, 16);
    // Find two identity pairs routed to different shards.
    let mut picked: Vec<(usize, usize)> = Vec::new();
    for i in 0..64 {
        let d = ident_dtd(i);
        let key = EmbeddingRegistry::key_for(&d, &d).unwrap();
        let shard = reg.shard_of(key);
        if picked.iter().all(|&(_, s)| s != shard) {
            picked.push((i, shard));
            if picked.len() == 2 {
                break;
            }
        }
    }
    assert_ne!(picked[0].1, picked[1].1, "need two distinct shards");

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let (reg, stop) = (&reg, &stop);
        let workers: Vec<_> = picked
            .iter()
            .map(|&(i, _)| {
                s.spawn(move || {
                    let dtd = ident_dtd(i);
                    for _ in 0..150 {
                        let resp = handle_request(
                            reg,
                            &Request::Translate {
                                source_dtd: dtd.clone(),
                                target_dtd: dtd.clone(),
                                query: format!("a{i}"),
                            },
                        );
                        assert!(matches!(resp, Response::Translated { .. }), "{resp:?}");
                        reg.evict(&dtd, &dtd).unwrap();
                    }
                })
            })
            .collect();
        s.spawn(move || {
            let mut prev = RegistryStats::default();
            while !stop.load(Ordering::Relaxed) {
                let cur = reg.stats();
                for (name, p, c) in [
                    ("hits", prev.hits, cur.hits),
                    ("misses", prev.misses, cur.misses),
                    ("compiles", prev.compiles, cur.compiles),
                    ("waits", prev.single_flight_waits, cur.single_flight_waits),
                    ("evictions", prev.evictions, cur.evictions),
                    ("compile_nanos", prev.compile_nanos, cur.compile_nanos),
                    ("plan_hits", prev.plan_hits, cur.plan_hits),
                    ("plan_misses", prev.plan_misses, cur.plan_misses),
                    ("negative_hits", prev.negative_hits, cur.negative_hits),
                ] {
                    assert!(
                        c >= p,
                        "{name} went backwards: {p} -> {c} ({prev:?} -> {cur:?})"
                    );
                }
                prev = cur;
            }
        });
        for w in workers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
}

/// Capacity-pressure safety: an in-flight compile can never be evicted —
/// waiters always receive a usable engine even while another thread
/// hammers `evict` on the same keys with a per-shard capacity of one.
#[test]
fn eviction_never_kills_an_inflight_compile() {
    const PAIRS: usize = 4;
    let dtds: Vec<String> = (0..PAIRS).map(ident_dtd).collect();
    // One shard, capacity one: maximum eviction pressure on one stripe.
    let reg = registry(1, 1);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let (reg, dtds, stop) = (&reg, &dtds, &stop);
        s.spawn(move || {
            let mut rng = StdRng::seed_from_u64(99);
            while !stop.load(Ordering::Relaxed) {
                let i = rng.random_range(0..PAIRS);
                reg.evict(&dtds[i], &dtds[i]).unwrap();
            }
        });
        let getters: Vec<_> = (0..PAIRS)
            .map(|i| {
                s.spawn(move || {
                    for _ in 0..50 {
                        let (_, engine) = reg
                            .get_or_compile(&dtds[i], &dtds[i])
                            .expect("eviction pressure must never fail a compile");
                        assert!(engine.size() > 0);
                    }
                })
            })
            .collect();
        for g in getters {
            g.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    let stats = reg.stats();
    assert!(stats.compiles >= PAIRS as u64, "{stats:?}");
    assert!(stats.entries <= 1, "capacity 1 on one shard: {stats:?}");
    assert_eq!(stats.compiles, stats.entries + stats.evictions, "{stats:?}");
}

/// One observable step of the sequential model: what a `get` did, or what
/// an `evict` returned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Outcome {
    Hit,
    Miss,
    NegativeHit,
    NoEmbedding,
    Evicted(bool),
}

fn zero_clock(mut s: RegistryStats) -> RegistryStats {
    s.compile_nanos = 0;
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Sharding is an implementation detail: for any single-threaded
    /// sequence of (get, fail, evict) ops over good and non-embeddable
    /// pairs, shard counts 1, 2 and 8 produce the same per-op outcomes
    /// and the same final counters (capacity exceeds the key count, so
    /// the weighted-eviction policy never has to pick a victim and the
    /// per-shard capacity split cannot diverge).
    #[test]
    fn shard_counts_are_observationally_equivalent(seed in 0u64..10_000) {
        const GOOD: usize = 5;
        const BAD: usize = 2;
        let good: Vec<String> = (0..GOOD).map(ident_dtd).collect();
        let bad: Vec<(String, String)> = (0..BAD).map(bad_pair).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let ops: Vec<(u8, usize)> = (0..30)
            .map(|_| (rng.random_range(0..4u8), rng.random_range(0..GOOD.max(BAD))))
            .collect();

        let run = |shards: usize| -> (Vec<Outcome>, RegistryStats) {
            let reg = registry(shards, 16);
            let outcomes = ops
                .iter()
                .map(|&(kind, i)| match kind {
                    0 | 1 => {
                        let before = reg.stats();
                        reg.get_or_compile(&good[i % GOOD], &good[i % GOOD])
                            .expect("identity pair compiles");
                        let after = reg.stats();
                        if after.hits > before.hits {
                            Outcome::Hit
                        } else {
                            Outcome::Miss
                        }
                    }
                    2 => {
                        let (s, t) = &bad[i % BAD];
                        let before = reg.stats();
                        match reg.get_or_compile(s, t) {
                            Err(ServiceError::NoEmbedding) => {}
                            other => panic!("bad pair must not embed: {other:?}"),
                        }
                        let after = reg.stats();
                        if after.negative_hits > before.negative_hits {
                            Outcome::NegativeHit
                        } else {
                            Outcome::NoEmbedding
                        }
                    }
                    _ => Outcome::Evicted(
                        reg.evict(&good[i % GOOD], &good[i % GOOD]).unwrap(),
                    ),
                })
                .collect();
            (outcomes, zero_clock(reg.stats()))
        };

        let (out1, stats1) = run(1);
        for shards in [2usize, 8] {
            let (out_n, stats_n) = run(shards);
            prop_assert_eq!(&out1, &out_n, "outcomes diverged at {} shards", shards);
            prop_assert_eq!(stats1, stats_n, "counters diverged at {} shards", shards);
        }
    }
}
