//! Chaos soak: drive real traffic through the [`FaultProxy`] and assert
//! the invariants that matter — the server never wedges, corrupted frames
//! are never misread as successes, the fault schedule is deterministic,
//! and the retrying client converges through injected failures.

use std::sync::Arc;
use std::time::Duration;

use xse_service::fault::{Direction, FaultAction, FaultPlan, FaultProxy};
use xse_service::loadgen::{self, Endpoint, LoadConfig};
use xse_service::{
    Client, ClientConfig, EmbeddingRegistry, PipelinedClient, RegistryConfig, Request, Response,
    RetryPolicy, RetryingClient, Server, ServerConfig, ServerHandle,
};
use xse_workloads::traffic::TrafficMix;

fn wrap_pair() -> (String, String) {
    let s1 =
        "<!ELEMENT r (a, b)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (c*)>\n<!ELEMENT c (#PCDATA)>";
    let s2 = "<!ELEMENT r (x, y)>\n<!ELEMENT x (a)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT y (w)>\n<!ELEMENT w (c2*)>\n<!ELEMENT c2 (c)>\n<!ELEMENT c (#PCDATA)>";
    (s1.to_string(), s2.to_string())
}

fn spawn_server() -> ServerHandle {
    Server::bind(
        ("127.0.0.1", 0),
        Arc::new(EmbeddingRegistry::new(RegistryConfig {
            capacity: 8,
            discovery: loadgen::loadgen_discovery(),
            ..RegistryConfig::default()
        })),
        ServerConfig {
            workers: 2,
            read_timeout: Some(Duration::from_millis(750)),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

fn chaos_client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Some(Duration::from_secs(1)),
        read_timeout: Some(Duration::from_secs(3)),
        write_timeout: Some(Duration::from_secs(1)),
    }
}

/// `break_first_conns` deterministically resets the first N connections'
/// first request; the retrying client re-dials through them and lands the
/// call on connection N, with exactly N retries recorded.
#[test]
fn retrying_client_converges_through_deterministic_resets() {
    let server = spawn_server();
    let plan = FaultPlan {
        break_first_conns: 2,
        ..FaultPlan::calm(5)
    };
    let proxy = FaultProxy::spawn(server.addr(), plan).unwrap();
    let mut client = RetryingClient::new(
        proxy.addr(),
        chaos_client_config(),
        RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(40),
            seed: 3,
        },
    )
    .unwrap();
    let (s, t) = wrap_pair();
    let resp = client
        .call(&Request::Compile {
            source_dtd: s,
            target_dtd: t,
        })
        .expect("converges once the broken connections are exhausted");
    assert!(
        matches!(resp, Response::Compiled { .. }),
        "expected a compiled response, got {resp:?}"
    );
    let stats = client.stats();
    assert_eq!(
        stats.retries, 2,
        "one retry per broken connection: {stats:?}"
    );
    assert_eq!(stats.attempts, 3, "{stats:?}");
    assert_eq!(stats.reconnects, 3, "{stats:?}");
    // The proxy logged exactly the two scheduled resets.
    let faults = proxy.faults();
    assert_eq!(faults.len(), 2, "{faults:?}");
    assert!(faults
        .iter()
        .all(|f| f.action == FaultAction::Reset && f.frame == 0));
}

/// A frame truncated mid-payload surfaces as a structured transport error
/// on the client — never a short or garbled success — and the server
/// survives to serve a fresh connection.
#[test]
fn truncated_response_is_a_clean_transport_error() {
    let server = spawn_server();
    // Truncate every response frame (server → client), pass requests.
    let plan = FaultPlan {
        truncate_per_mille: 1000,
        ..FaultPlan::calm(9)
    };
    // Only fault the response direction: leave requests intact by
    // overriding decide via direction-specific plan — simplest is to
    // truncate everything; the request path truncation also exercises the
    // server's Truncated handling, which is equally valid for this test.
    let proxy = FaultProxy::spawn(server.addr(), plan).unwrap();
    let mut client = Client::connect_with(proxy.addr(), &chaos_client_config()).unwrap();
    let (s, t) = wrap_pair();
    let err = client.compile(&s, &t).unwrap_err();
    // Either direction's truncation yields a typed transport error:
    // Protocol (response truncated), Closed, Io, or Timeout — never Ok.
    let msg = format!("{err}");
    assert!(!msg.is_empty());

    // The server is not wedged: a direct (un-proxied) request succeeds.
    let mut direct = Client::connect(server.addr()).unwrap();
    let (sh, th, _) = direct.compile(&s, &t).unwrap();
    assert_ne!(sh, th);
}

/// A corrupted request opcode is answered with a structured error frame
/// (`unknown opcode`), not misdecoded — and the retrying client treats it
/// as safe to retry; with corruption on every frame it reports the final
/// error rather than a fabricated success.
#[test]
fn corrupted_frames_never_become_successes() {
    let server = spawn_server();
    let plan = FaultPlan {
        corrupt_per_mille: 1000,
        ..FaultPlan::calm(13)
    };
    let proxy = FaultProxy::spawn(server.addr(), plan).unwrap();
    let mut client = RetryingClient::new(
        proxy.addr(),
        chaos_client_config(),
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(10),
            seed: 4,
        },
    )
    .unwrap();
    let outcome = client.call(&Request::Stats);
    match outcome {
        // The corrupted request draws an `unknown opcode` error frame,
        // whose own opcode is then corrupted on the way back — whichever
        // side surfaces first, the client must report an error, never a
        // fabricated Stats success.
        Ok(Response::Error { .. }) | Err(_) => {}
        Ok(other) => panic!("corruption produced a success: {other:?}"),
    }

    // Post-chaos, the server still works directly.
    let mut direct = Client::connect(server.addr()).unwrap();
    assert!(direct.stats().is_ok());
}

/// The full soak: a mixed traffic replay through the standard chaos plan.
/// Some ops succeed, zero responses are misinterpreted, and the server
/// serves fresh connections afterwards. Runs twice with the same seeds to
/// confirm the injected-fault schedule is identical.
#[test]
fn chaos_soak_is_deterministic_and_never_misdecodes() {
    let pairs = loadgen::build_pairs(2, 11);
    let mut schedules = Vec::new();
    for round in 0..2 {
        let server = spawn_server();
        let proxy = FaultProxy::spawn(server.addr(), FaultPlan::standard(21)).unwrap();
        let mut endpoint = Endpoint::Retry(
            RetryingClient::new(
                proxy.addr(),
                chaos_client_config(),
                RetryPolicy {
                    max_attempts: 4,
                    base_backoff: Duration::from_millis(2),
                    max_backoff: Duration::from_millis(20),
                    seed: 17,
                },
            )
            .unwrap(),
        );
        let summary = loadgen::run(
            &mut endpoint,
            &pairs,
            &LoadConfig {
                mix: TrafficMix::mixed(),
                ops: 120,
                seed: 6,
                cold: false,
            },
        );
        assert_eq!(
            summary.misinterpretations,
            0,
            "round {round}: corrupted traffic decoded as wrong-kind successes: {}",
            summary.to_json()
        );
        assert!(
            summary.ops > 0,
            "round {round}: nothing completed under chaos: {}",
            summary.to_json()
        );
        assert!(summary.qps > 0.0, "round {round}");
        if let Some(retry) = summary.retry {
            assert!(retry.attempts >= summary.ops, "round {round}: {retry:?}");
        }

        // Post-chaos: the server still serves a fresh, direct connection.
        let (s, t) = wrap_pair();
        let mut direct = Client::connect(server.addr()).unwrap();
        direct.compile(&s, &t).unwrap();

        // The *decision schedule* is what determinism promises: the same
        // plan maps the same (direction, conn, frame) grid to the same
        // faults on every run. (The set of frames that actually flow can
        // shift with retry timing, so we compare the pure schedule, not
        // the observed log.)
        let plan = FaultPlan::standard(21);
        let schedule: Vec<FaultAction> = (0..32)
            .flat_map(|conn| {
                (0..16).flat_map(move |frame| {
                    [
                        plan.decide(Direction::ClientToServer, conn, frame),
                        plan.decide(Direction::ServerToClient, conn, frame),
                    ]
                })
            })
            .collect();
        schedules.push(schedule);

        // Every fault the proxy *did* log agrees with the pure schedule.
        for f in proxy.faults() {
            assert_eq!(
                f.action,
                plan.decide(f.direction, f.conn, f.frame),
                "logged fault diverges from the schedule: {f:?}"
            );
        }
    }
    assert_eq!(
        schedules[0], schedules[1],
        "same seed must produce the same fault schedule"
    );
}

/// Pipelined soak through the fault proxy: windows of in-flight requests
/// cross a link that delays, resets, truncates and corrupts frames. A
/// transport fault kills at most the current connection — the driver
/// re-dials — and no response is ever matched to the wrong request or
/// misdecoded as a wrong-kind success.
#[test]
fn pipelined_chaos_soak_never_misdecodes() {
    let server = spawn_server();
    let proxy = FaultProxy::spawn(server.addr(), FaultPlan::standard(29)).unwrap();
    let (s, t) = wrap_pair();
    let reqs = [
        Request::Compile {
            source_dtd: s.clone(),
            target_dtd: t.clone(),
        },
        Request::Stats,
        Request::Translate {
            source_dtd: s.clone(),
            target_dtd: t.clone(),
            query: "b/c".into(),
        },
        Request::Stats,
    ];

    let mut completed = 0u64;
    let mut transport_failures = 0u64;
    let mut client: Option<PipelinedClient> = None;
    for round in 0..30 {
        let conn = match client.take() {
            Some(c) => c,
            None => match PipelinedClient::connect_with(proxy.addr(), &chaos_client_config()) {
                Ok(c) => c,
                Err(_) => {
                    transport_failures += 1;
                    continue;
                }
            },
        };
        let mut conn = conn;
        // Window of 4 in flight; any transport error abandons the whole
        // connection (ids in flight are unrecoverable once framing dies).
        let mut ids = Vec::new();
        let mut broken = false;
        for req in &reqs {
            match conn.submit(req) {
                Ok(id) => ids.push((id, req)),
                Err(_) => {
                    broken = true;
                    break;
                }
            }
        }
        for _ in 0..ids.len() {
            if broken {
                break;
            }
            match conn.recv() {
                Ok((id, resp)) => {
                    let req = ids
                        .iter()
                        .find(|(i, _)| *i == id)
                        .map(|(_, r)| *r)
                        .expect("recv only yields submitted ids");
                    assert!(
                        loadgen::response_matches(req, &resp),
                        "round {round}: id {id} answered with wrong-kind {resp:?}"
                    );
                    completed += 1;
                }
                Err(_) => broken = true,
            }
        }
        if broken {
            transport_failures += 1;
        } else {
            client = Some(conn);
        }
    }
    assert!(
        completed > 0,
        "nothing completed under pipelined chaos ({transport_failures} broken connections)"
    );

    // The server survived the soak: a direct pipelined connection works.
    let mut direct = PipelinedClient::connect(server.addr()).unwrap();
    let responses = direct
        .call_pipelined(&[Request::Stats, Request::Stats], 2)
        .unwrap();
    assert!(responses.iter().all(|r| matches!(r, Response::Stats(_))));
}
