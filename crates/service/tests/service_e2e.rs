//! End-to-end service tests: TCP round-trips, protocol error paths, the
//! eviction/recompile determinism property, and the warm-vs-cold cache
//! acceptance gate.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use proptest::prelude::*;
use xse_dtd::{GenConfig, InstanceGenerator};
use xse_service::loadgen::{self, Endpoint, LoadConfig};
use xse_service::proto::{op, read_frame, write_frame};
use xse_service::{
    Client, EmbeddingRegistry, ErrorCode, RegistryConfig, Request, Response, Server, ServerConfig,
    ServiceError,
};
use xse_workloads::traffic::TrafficMix;

fn wrap_pair() -> (String, String) {
    let s1 =
        "<!ELEMENT r (a, b)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (c*)>\n<!ELEMENT c (#PCDATA)>";
    let s2 = "<!ELEMENT r (x, y)>\n<!ELEMENT x (a)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT y (w)>\n<!ELEMENT w (c2*)>\n<!ELEMENT c2 (c)>\n<!ELEMENT c (#PCDATA)>";
    (s1.to_string(), s2.to_string())
}

fn test_registry(capacity: usize) -> Arc<EmbeddingRegistry> {
    Arc::new(EmbeddingRegistry::new(RegistryConfig {
        capacity,
        discovery: loadgen::loadgen_discovery(),
        ..RegistryConfig::default()
    }))
}

fn spawn_server(capacity: usize) -> xse_service::ServerHandle {
    Server::bind(
        ("127.0.0.1", 0),
        test_registry(capacity),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

#[test]
fn tcp_round_trip_all_ops() {
    let server = spawn_server(8);
    let mut client = Client::connect(server.addr()).unwrap();
    let (s, t) = wrap_pair();

    let (sh, th, size) = client.compile(&s, &t).unwrap();
    assert_ne!(sh, th);
    assert!(size > 0);

    let doc = "<r><a>hi</a><b><c>1</c><c>2</c></b></r>";
    let image = client.apply(&s, &t, doc).unwrap();
    assert_ne!(image, doc);
    let back = client.invert(&s, &t, &image).unwrap();
    assert_eq!(back, doc, "apply→invert must round-trip over the wire");

    let tr = client.translate(&s, &t, "b/c").unwrap();
    assert!(tr.size > 0 && tr.states > 0);

    let stats = client.stats().unwrap();
    assert_eq!(stats.compiles, 1, "{stats:?}");
    assert_eq!(stats.entries, 1);

    assert!(client.evict(&s, &t).unwrap());
    assert!(!client.evict(&s, &t).unwrap());
}

#[test]
fn tcp_concurrent_clients_single_flight() {
    let server = spawn_server(8);
    let addr = server.addr();
    let (s, t) = wrap_pair();
    // More clients than pool workers: queued connections must still be
    // served, and the uncached pair must compile exactly once.
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let (s, t) = (s.clone(), t.clone());
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.compile(&s, &t).unwrap();
            });
        }
    });
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.compiles, 1, "{stats:?}");
    assert_eq!(
        stats.hits + stats.misses + stats.single_flight_waits,
        6,
        "{stats:?}"
    );
}

#[test]
fn oversized_frame_gets_error_then_close_and_server_survives() {
    let server = spawn_server(8);
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    // Announce a payload over the 16 MiB cap; send no body.
    raw.write_all(&(xse_service::MAX_FRAME_LEN as u32 + 1).to_be_bytes())
        .unwrap();
    raw.write_all(&0u32.to_be_bytes()).unwrap(); // request id
    raw.flush().unwrap();
    let (id, payload) = read_frame(&mut raw).expect("structured error response");
    assert_eq!(id, 0, "connection-level errors carry id 0");
    let resp = Response::decode(&payload).expect("decodable error");
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::FrameTooLarge,
                ..
            }
        ),
        "{resp:?}"
    );
    // The connection is closed after the error...
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    // ...but the server keeps serving new connections.
    let (s, t) = wrap_pair();
    let mut client = Client::connect(server.addr()).unwrap();
    client.compile(&s, &t).unwrap();
}

#[test]
fn truncated_payload_gets_malformed_and_connection_stays_usable() {
    let server = spawn_server(8);
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    // A COMPILE whose string field announces 100 bytes but carries 3: the
    // frame itself is complete, so only the request is poisoned.
    let mut payload = vec![op::COMPILE];
    payload.extend_from_slice(&100u32.to_be_bytes());
    payload.extend_from_slice(b"abc");
    write_frame(&mut raw, 0, &payload).unwrap();
    let resp = Response::decode(&read_frame(&mut raw).unwrap().1).unwrap();
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::Malformed,
                ..
            }
        ),
        "{resp:?}"
    );
    // Same connection, valid request: still served.
    let (s, t) = wrap_pair();
    let req = Request::Compile {
        source_dtd: s,
        target_dtd: t,
    };
    write_frame(&mut raw, 0, &req.encode()).unwrap();
    let resp = Response::decode(&read_frame(&mut raw).unwrap().1).unwrap();
    assert!(matches!(resp, Response::Compiled { .. }), "{resp:?}");
}

#[test]
fn unknown_opcode_and_bad_dtd_are_structured_errors() {
    let server = spawn_server(8);
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut raw, 0, &[0x7E]).unwrap();
    let resp = Response::decode(&read_frame(&mut raw).unwrap().1).unwrap();
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::UnknownOpcode,
                ..
            }
        ),
        "{resp:?}"
    );
    // Same connection: a malformed DTD is a BadDtd error response...
    let mut client = Client::connect(server.addr()).unwrap();
    let (s, _) = wrap_pair();
    let err = client.compile(&s, "<!ELEMENT broken").unwrap_err();
    assert!(
        matches!(
            err,
            ServiceError::Remote {
                code: ErrorCode::BadDtd,
                ..
            }
        ),
        "{err:?}"
    );
    // ...and neither incident poisoned the registry.
    let (s, t) = wrap_pair();
    client.compile(&s, &t).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.compiles, 1);
}

#[test]
fn tcp_repeated_translate_hits_the_plan_cache() {
    let server = spawn_server(8);
    let mut client = Client::connect(server.addr()).unwrap();
    let (s, t) = wrap_pair();

    // First translate compiles the plan; the counters over the wire show
    // the miss. Spelled two equivalent ways, the second call must land on
    // the same cached plan (shape keys are canonical).
    let first = client.translate(&s, &t, "b/c").unwrap();
    assert_eq!((first.plan_hits, first.plan_misses), (0, 1), "{first:?}");
    let second = client.translate(&s, &t, "./b[true]/c").unwrap();
    assert_eq!((second.plan_hits, second.plan_misses), (1, 1), "{second:?}");
    assert_eq!((first.size, first.states), (second.size, second.states));

    // A distinct shape is a fresh miss.
    let third = client.translate(&s, &t, "b").unwrap();
    assert_eq!((third.plan_hits, third.plan_misses), (1, 2), "{third:?}");

    // The aggregate stats frame carries the same counters plus the number
    // of live cached plans.
    let stats = client.stats().unwrap();
    assert_eq!(
        (stats.plan_hits, stats.plan_misses, stats.plan_entries),
        (1, 2, 2),
        "{stats:?}"
    );
}

#[test]
fn tcp_translate_after_evict_is_equivalent_and_plan_stats_survive() {
    let server = spawn_server(8);
    let mut client = Client::connect(server.addr()).unwrap();
    let (s, t) = wrap_pair();

    let before = client.translate(&s, &t, "b/c").unwrap();
    assert!(client.evict(&s, &t).unwrap());
    // Recompiled engine, recompiled plan: identical automaton metrics,
    // fresh per-engine counters (the one earlier miss lives on in the
    // registry aggregate).
    let after = client.translate(&s, &t, "b/c").unwrap();
    assert_eq!((before.size, before.states), (after.size, after.states));
    assert_eq!((after.plan_hits, after.plan_misses), (0, 1), "{after:?}");
    let stats = client.stats().unwrap();
    assert_eq!(stats.evictions, 1, "{stats:?}");
    assert_eq!(
        (stats.plan_hits, stats.plan_misses, stats.plan_entries),
        (0, 2, 1),
        "{stats:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Evicting an entry and recompiling it must be invisible to callers:
    /// the recompiled embedding maps every document to byte-identical
    /// output (discovery is deterministic, so a cache loss can never
    /// change answers).
    #[test]
    fn evict_then_recompile_is_byte_identical(seed in 0u64..400) {
        let (s, t) = wrap_pair();
        let reg = test_registry(4);
        let source = xse_dtd::Dtd::parse(&s).unwrap();
        let gen = InstanceGenerator::new(
            &source,
            GenConfig { max_nodes: 80, ..GenConfig::default() },
        );
        let doc = gen.generate(seed);
        let xml = doc.to_xml();

        let before = match xse_service::handle_request(&reg, &Request::Apply {
            source_dtd: s.clone(), target_dtd: t.clone(), xml: xml.clone(),
        }) {
            Response::Document { xml } => xml,
            other => panic!("{other:?}"),
        };
        prop_assert!(reg.evict(&s, &t).unwrap());
        let after = match xse_service::handle_request(&reg, &Request::Apply {
            source_dtd: s.clone(), target_dtd: t.clone(), xml,
        }) {
            Response::Document { xml } => xml,
            other => panic!("{other:?}"),
        };
        prop_assert_eq!(before, after);
        prop_assert_eq!(reg.stats().compiles, 2);
    }

    /// Same property for translation: dropping an engine (and with it its
    /// plan cache) then recompiling must yield a plan with identical
    /// metrics that selects exactly the same nodes on the same image.
    #[test]
    fn evict_then_retranslate_is_byte_identical(seed in 0u64..200) {
        let (s, t) = wrap_pair();
        let reg = test_registry(4);
        let queries = ["b/c", "a", ".*/c", "b[c]/c"];
        let q = xse_rxpath::parse_query(queries[(seed % 4) as usize]).unwrap();
        let source = xse_dtd::Dtd::parse(&s).unwrap();
        let gen = InstanceGenerator::new(
            &source,
            GenConfig { max_nodes: 60, ..GenConfig::default() },
        );
        let doc = gen.generate(seed);

        let (_, e1) = reg.get_or_compile(&s, &t).unwrap();
        let image = e1.apply(&doc).unwrap();
        let tr1 = e1.translate(&q).unwrap();
        let r1 = tr1.eval(&image.tree);
        prop_assert!(reg.evict(&s, &t).unwrap());
        let (_, e2) = reg.get_or_compile(&s, &t).unwrap();
        let tr2 = e2.translate(&q).unwrap();
        prop_assert_eq!(
            (tr1.size(), tr1.state_count()),
            (tr2.size(), tr2.state_count())
        );
        prop_assert_eq!(r1, tr2.eval(&image.tree));
    }
}

/// The headline serving claim: on a translate-heavy mix over 8 schema
/// pairs, the warm cache's overall p50 must be at least 10× lower than
/// the cold-cache (evict-before-every-op) mode, with a ≥ 90% hit rate.
#[test]
fn warm_cache_p50_at_least_10x_better_than_cold() {
    let pairs = loadgen::build_pairs(8, 42);
    assert!(pairs.len() >= 8);

    let warm = loadgen::run(
        &mut Endpoint::InProcess(test_registry(64)),
        &pairs,
        &LoadConfig {
            mix: TrafficMix::translate_heavy(),
            ops: 300,
            seed: 42,
            cold: false,
        },
    );
    let cold = loadgen::run(
        &mut Endpoint::InProcess(test_registry(64)),
        &pairs,
        &LoadConfig {
            mix: TrafficMix::translate_heavy(),
            ops: 40,
            seed: 42,
            cold: true,
        },
    );
    assert_eq!(warm.protocol_errors + cold.protocol_errors, 0);
    assert_eq!(warm.op_errors + cold.op_errors, 0, "{}", warm.to_json());
    let warm_p50 = warm.overall_digest.expect("warm ops ran").p50_nanos;
    let cold_p50 = cold.overall_digest.expect("cold ops ran").p50_nanos;
    assert!(
        warm_p50 * 10 <= cold_p50,
        "warm p50 {warm_p50}ns not 10x better than cold p50 {cold_p50}ns \
         (warm: {}, cold: {})",
        warm.to_json(),
        cold.to_json()
    );
    assert!(
        warm.hit_rate >= 0.90,
        "warm hit rate {} below 90%: {}",
        warm.hit_rate,
        warm.to_json()
    );
}
