//! `std`-only TCP server: one accept thread plus a bounded worker pool.
//!
//! Connections are accepted on a dedicated thread and pushed onto a
//! `Mutex<VecDeque<TcpStream>>`; `workers` pool threads pop connections
//! and run each one to completion (connection-per-worker, not
//! request-per-worker — the protocol is strictly request/response per
//! connection, so interleaving buys nothing). Shutdown flips an
//! `AtomicBool` and unblocks the accept loop with a loopback connect, then
//! joins every thread; in-flight requests finish before their worker
//! exits.

use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::proto::{read_frame, write_frame, ErrorCode, FrameError, Request, Response};
use crate::registry::EmbeddingRegistry;

/// Server construction knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads serving connections (minimum 1).
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { workers: 4 }
    }
}

/// The embedding service's TCP front end. Construct with [`Server::bind`];
/// the returned [`ServerHandle`] owns the threads.
pub struct Server;

/// A running server: address accessor plus explicit shutdown/join.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

struct ConnQueue {
    deque: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `registry` with `config.workers` pool threads.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<EmbeddingRegistry>,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(ConnQueue {
            deque: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    let mut q = queue.deque.lock().unwrap();
                    q.push_back(conn);
                    drop(q);
                    queue.ready.notify_one();
                }
            })
        };

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shutdown = Arc::clone(&shutdown);
                let queue = Arc::clone(&queue);
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || loop {
                    let conn = {
                        let mut q = queue.deque.lock().unwrap();
                        loop {
                            if let Some(conn) = q.pop_front() {
                                break Some(conn);
                            }
                            if shutdown.load(Ordering::SeqCst) {
                                break None;
                            }
                            q = queue.ready.wait(q).unwrap();
                        }
                    };
                    match conn {
                        Some(conn) => serve_connection(conn, &registry),
                        None => return,
                    }
                })
            })
            .collect();

        Ok(ServerHandle {
            addr,
            shutdown,
            queue,
            accept: Some(accept),
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, finish in-flight connections, join all threads.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop: it only re-checks the flag per incoming
        // connection, so hand it one.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Take and release the queue lock before notifying: a worker that
        // loaded shutdown==false is either still holding the lock (it will
        // reach wait() before we can acquire, so the notify lands) or
        // already waiting — either way no wakeup is missed.
        drop(self.queue.deque.lock().unwrap());
        self.queue.ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Run one connection to completion: strict request/response frames.
fn serve_connection(conn: TcpStream, registry: &EmbeddingRegistry) {
    let Ok(read_half) = conn.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(conn);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(p) => p,
            Err(FrameError::Eof) => return,
            Err(FrameError::Io(_)) => return,
            Err(FrameError::TooLarge(n)) => {
                // The announced body was never read, so the stream is out
                // of sync: answer with a structured error, then close.
                let resp = Response::Error {
                    code: ErrorCode::FrameTooLarge,
                    message: format!("declared frame of {n} bytes exceeds the cap"),
                };
                let _ = write_frame(&mut writer, &resp.encode());
                let _ = writer.flush();
                return;
            }
        };
        let resp = match Request::decode(&payload) {
            Ok(req) => crate::handle_request(registry, &req),
            // Framing stays intact on a malformed *payload* — only this
            // request is poisoned — so answer and keep the connection.
            Err(code) => Response::Error {
                code,
                message: match code {
                    ErrorCode::UnknownOpcode => "unknown request opcode".into(),
                    _ => "malformed request payload".into(),
                },
            },
        };
        if write_frame(&mut writer, &resp.encode()).is_err() {
            return;
        }
    }
}
