//! `std`-only TCP server: one accept thread plus a bounded worker pool,
//! hardened against hostile and slow peers.
//!
//! Connections are accepted on a dedicated thread and pushed onto a
//! `Mutex<VecDeque<TcpStream>>`; `workers` pool threads pop connections
//! and run each one to completion (connection-per-worker). A connection
//! that only ever sends request id 0 is served in the legacy strict
//! request/response lockstep. The first nonzero request id switches the
//! connection into **pipelined mode**: the worker becomes a frame reader
//! feeding a bounded in-connection task queue, a small scoped executor
//! pool ([`ServerConfig::pipeline_executors`]) handles requests
//! concurrently, and responses are written — each tagged with its
//! request's id — in **completion order**, not arrival order. The task
//! queue is bounded at [`ServerConfig::max_inflight`]; when a client
//! overruns it, the reader simply stops reading and TCP backpressure does
//! the rest.
//!
//! # Robustness
//!
//! * Every connection carries **read/write deadlines**
//!   ([`ServerConfig::read_timeout`] / [`ServerConfig::write_timeout`]),
//!   so a stalled client can pin a worker for at most one read deadline:
//!   an idle peer is closed silently, one that went quiet mid-frame gets a
//!   best-effort `Timeout` error frame first.
//! * Each request has a **time budget**
//!   ([`ServerConfig::request_budget`]); a response produced after the
//!   budget is replaced by a `Timeout` error (a blocking engine call
//!   cannot be interrupted, so the budget is enforced at response time).
//! * The accept queue is **bounded** ([`ServerConfig::max_queued`]):
//!   excess connections are answered immediately with an `Overloaded`
//!   error frame and closed — shed, not queued. Sheds are counted on
//!   [`ServerHandle::shed_count`].
//! * **Shutdown drains**: stop accepting, shed the queued backlog, let
//!   in-flight requests finish up to [`ServerConfig::drain_deadline`],
//!   then force-close the remaining sockets and join every thread.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::proto::{read_frame, write_frame, ErrorCode, FrameError, Request, Response};
use crate::registry::EmbeddingRegistry;

/// Server construction knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads serving connections (minimum 1).
    pub workers: usize,
    /// Per-connection read deadline. A peer that sends nothing for this
    /// long is disconnected (silently when idle between requests, with a
    /// `Timeout` error frame when it stalled mid-frame). `None` disables
    /// the deadline — a stalled client then pins its worker indefinitely,
    /// and drain can only finish by force-closing the socket.
    pub read_timeout: Option<Duration>,
    /// Per-connection write deadline; bounds how long a non-reading peer
    /// can block a response (or shed notice) being written.
    pub write_timeout: Option<Duration>,
    /// Per-request time budget. A request whose handling exceeds it is
    /// answered with a `Timeout` error instead of the late result.
    /// `None` disables the budget.
    pub request_budget: Option<Duration>,
    /// Accept-queue bound: when this many connections are already queued
    /// waiting for a worker, new connections are shed (answered with an
    /// `Overloaded` error frame and closed) instead of queued.
    pub max_queued: usize,
    /// How long shutdown waits for in-flight connections to finish before
    /// force-closing their sockets.
    pub drain_deadline: Duration,
    /// Executor threads spawned for a connection once it enters pipelined
    /// mode (first nonzero request id). At least 2 are needed for
    /// out-of-order completion to be observable; minimum 1.
    pub pipeline_executors: usize,
    /// Bound on a pipelined connection's queued-but-unstarted requests.
    /// When full, the reader stops pulling frames until an executor
    /// drains one — backpressure via TCP, never an unbounded buffer.
    pub max_inflight: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            request_budget: Some(Duration::from_secs(10)),
            max_queued: 64,
            drain_deadline: Duration::from_secs(2),
            pipeline_executors: 4,
            max_inflight: 32,
        }
    }
}

/// The embedding service's TCP front end. Construct with [`Server::bind`];
/// the returned [`ServerHandle`] owns the threads.
pub struct Server;

/// A running server: address accessor plus explicit shutdown/join.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    tracker: Arc<ConnTracker>,
    shed: Arc<AtomicU64>,
    drain_deadline: Duration,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

struct ConnQueue {
    deque: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

/// Clones of the sockets workers are currently serving, so shutdown can
/// force-close stragglers once the drain deadline passes.
struct ConnTracker {
    conns: Mutex<HashMap<u64, TcpStream>>,
    next: AtomicU64,
}

impl ConnTracker {
    fn register(&self, conn: &TcpStream) -> Option<u64> {
        let clone = conn.try_clone().ok()?;
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.conns.lock().unwrap().insert(id, clone);
        Some(id)
    }

    fn unregister(&self, id: Option<u64>) {
        if let Some(id) = id {
            self.conns.lock().unwrap().remove(&id);
        }
    }

    fn active(&self) -> usize {
        self.conns.lock().unwrap().len()
    }

    fn force_close_all(&self) {
        for conn in self.conns.lock().unwrap().values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

/// Everything a worker needs to serve connections.
struct WorkerCtx {
    registry: Arc<EmbeddingRegistry>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    tracker: Arc<ConnTracker>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `registry` with `config.workers` pool threads.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<EmbeddingRegistry>,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(ConnQueue {
            deque: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });
        let tracker = Arc::new(ConnTracker {
            conns: Mutex::new(HashMap::new()),
            next: AtomicU64::new(0),
        });
        let shed = Arc::new(AtomicU64::new(0));

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let queue = Arc::clone(&queue);
            let shed = Arc::clone(&shed);
            let max_queued = config.max_queued;
            let write_timeout = config.write_timeout;
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    let backlog = {
                        let mut q = queue.deque.lock().unwrap();
                        if q.len() < max_queued {
                            q.push_back(conn);
                            None
                        } else {
                            Some(conn)
                        }
                    };
                    match backlog {
                        None => queue.ready.notify_one(),
                        Some(conn) => {
                            // Queue full: shed. Answered outside the queue
                            // lock; the write deadline bounds how long a
                            // non-reading peer can stall the accept loop.
                            shed.fetch_add(1, Ordering::Relaxed);
                            shed_connection(conn, write_timeout, "accept queue full");
                        }
                    }
                }
            })
        };

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let ctx = WorkerCtx {
                    registry: Arc::clone(&registry),
                    config: config.clone(),
                    shutdown: Arc::clone(&shutdown),
                    tracker: Arc::clone(&tracker),
                };
                std::thread::spawn(move || loop {
                    let conn = {
                        let mut q = queue.deque.lock().unwrap();
                        loop {
                            if ctx.shutdown.load(Ordering::SeqCst) {
                                break None;
                            }
                            if let Some(conn) = q.pop_front() {
                                break Some(conn);
                            }
                            q = queue.ready.wait(q).unwrap();
                        }
                    };
                    match conn {
                        Some(conn) => serve_connection(conn, &ctx),
                        None => return,
                    }
                })
            })
            .collect();

        Ok(ServerHandle {
            addr,
            shutdown,
            queue,
            tracker,
            shed,
            drain_deadline: config.drain_deadline,
            accept: Some(accept),
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections shed so far (answered `Overloaded` because the accept
    /// queue was full, plus any backlog shed during shutdown).
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Graceful drain: stop accepting, shed the queued backlog, let
    /// in-flight requests finish up to the drain deadline, force-close
    /// whatever remains, then join all threads. Idempotent; also invoked
    /// by `Drop`.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop: it only re-checks the flag per incoming
        // connection, so hand it one.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Nobody will serve the queued backlog anymore — shed it rather
        // than leaving the peers to hit their own read deadlines.
        let backlog: Vec<TcpStream> = self.queue.deque.lock().unwrap().drain(..).collect();
        for conn in backlog {
            self.shed.fetch_add(1, Ordering::Relaxed);
            shed_connection(conn, Some(Duration::from_millis(200)), "server draining");
        }
        // Take and release the queue lock before notifying: a worker that
        // loaded shutdown==false is either still holding the lock (it will
        // reach wait() before we can acquire, so the notify lands) or
        // already waiting — either way no wakeup is missed.
        drop(self.queue.deque.lock().unwrap());
        self.queue.ready.notify_all();
        // Drain: in-flight connections close themselves after their current
        // request (workers re-check the flag per request, and read
        // deadlines bound the wait for a next request that never comes).
        let deadline = Instant::now() + self.drain_deadline;
        while self.tracker.active() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Past the deadline: force-close the stragglers' sockets so their
        // workers' blocking reads/writes fail and the threads exit.
        self.tracker.force_close_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Best-effort `Overloaded` answer on a connection that will not be
/// served, then close. Runs on a short-lived detached thread so the
/// accept loop never blocks on a shed peer; the thread half-closes and
/// then drains briefly so the close doesn't turn into an RST that
/// destroys the error frame before the peer reads it (closing a socket
/// with unread inbound data resets the connection).
fn shed_connection(conn: TcpStream, write_timeout: Option<Duration>, why: &'static str) {
    std::thread::spawn(move || {
        let _ = conn.set_write_timeout(write_timeout.or(Some(Duration::from_secs(1))));
        let resp = Response::Error {
            code: ErrorCode::Overloaded,
            message: why.to_string(),
        };
        let mut writer = &conn;
        if write_frame(&mut writer, 0, &resp.encode()).is_err() {
            return;
        }
        let _ = conn.shutdown(Shutdown::Write);
        let _ = conn.set_read_timeout(Some(Duration::from_millis(250)));
        let mut sink = [0u8; 4096];
        let mut reader = &conn;
        while matches!(io::Read::read(&mut reader, &mut sink), Ok(n) if n > 0) {}
    });
}

/// Decode, dispatch, and budget-check one request. `started` is the frame
/// arrival time, so a pipelined request's queueing delay counts against
/// its budget too.
fn process_request(payload: &[u8], started: Instant, ctx: &WorkerCtx) -> Response {
    let mut resp = match Request::decode(payload) {
        Ok(req) => crate::handle_request(&ctx.registry, &req),
        // Framing stays intact on a malformed *payload* — only this
        // request is poisoned — so answer and keep the connection.
        Err(code) => Response::Error {
            code,
            message: match code {
                ErrorCode::UnknownOpcode => "unknown request opcode".into(),
                _ => "malformed request payload".into(),
            },
        },
    };
    if let Some(budget) = ctx.config.request_budget {
        let spent = started.elapsed();
        if spent > budget {
            resp = Response::Error {
                code: ErrorCode::Timeout,
                message: format!(
                    "request exceeded its {}ms budget (took {}ms)",
                    budget.as_millis(),
                    spent.as_millis()
                ),
            };
        }
    }
    resp
}

/// Answer a frame-read failure (best effort) and report whether the
/// connection is over. Connection-level failures are tagged with id 0 —
/// on a pipelined connection that marks them as fatal to the whole
/// connection rather than to any one request.
fn answer_read_error(err: FrameError, writer: &mut impl Write) {
    match err {
        FrameError::Closed | FrameError::Truncated | FrameError::Io(_) => {}
        FrameError::TimedOut { mid_frame } => {
            // Disconnect either way — the deadline is how a stalled
            // client's worker returns to the pool. A peer that went
            // quiet mid-frame can still be reading, so tell it why.
            if mid_frame {
                let resp = Response::Error {
                    code: ErrorCode::Timeout,
                    message: "read deadline expired mid-frame".into(),
                };
                let _ = write_frame(writer, 0, &resp.encode());
            }
        }
        FrameError::TooLarge(n) => {
            // The announced body was never read, so the stream is out
            // of sync: answer with a structured error, then close.
            let resp = Response::Error {
                code: ErrorCode::FrameTooLarge,
                message: format!("declared frame of {n} bytes exceeds the cap"),
            };
            let _ = write_frame(writer, 0, &resp.encode());
        }
    }
}

/// Run one connection to completion, bounded by the configured deadlines
/// and the drain flag. Starts in the legacy strict request/response loop;
/// the first nonzero request id hands the connection to
/// [`serve_pipelined`] for out-of-order completion.
fn serve_connection(conn: TcpStream, ctx: &WorkerCtx) {
    if conn.set_read_timeout(ctx.config.read_timeout).is_err()
        || conn.set_write_timeout(ctx.config.write_timeout).is_err()
    {
        return;
    }
    let Ok(read_half) = conn.try_clone() else {
        return;
    };
    let id = ctx.tracker.register(&conn);
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(conn);
    loop {
        let (req_id, payload) = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(e) => {
                answer_read_error(e, &mut writer);
                break;
            }
        };
        let started = Instant::now();
        if req_id != 0 {
            // The peer pipelines. Hand the whole connection over, first
            // frame included; serve_pipelined runs it to completion.
            serve_pipelined((req_id, payload, started), reader, writer, ctx);
            ctx.tracker.unregister(id);
            return;
        }
        let resp = process_request(&payload, started, ctx);
        if write_frame(&mut writer, 0, &resp.encode()).is_err() {
            break;
        }
        // Draining: finish the in-flight request (just answered), then
        // close instead of waiting for another.
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    let _ = writer.flush();
    ctx.tracker.unregister(id);
}

/// One queued pipelined frame: request id, payload, arrival instant
/// (queue time counts against the request budget).
type PipeTask = (u32, Vec<u8>, Instant);

/// A pipelined connection's task queue: frames in arrival order, a done
/// flag set when the reader stops, and two condvars — `ready` wakes
/// executors, `space` wakes the reader when the bounded queue drains.
struct PipeQueue {
    tasks: Mutex<(VecDeque<PipeTask>, bool)>,
    ready: Condvar,
    space: Condvar,
}

/// Pipelined mode: this thread keeps reading frames into a bounded queue
/// while scoped executors dispatch them and write responses — tagged with
/// their request ids — in completion order. An executor failing to write
/// (peer gone) flips `dead` so the reader stops promptly.
fn serve_pipelined(
    first: PipeTask,
    mut reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    ctx: &WorkerCtx,
) {
    let queue = PipeQueue {
        tasks: Mutex::new((VecDeque::from([first]), false)),
        ready: Condvar::new(),
        space: Condvar::new(),
    };
    let writer = Mutex::new(writer);
    let dead = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..ctx.config.pipeline_executors.max(1) {
            scope.spawn(|| loop {
                let task = {
                    let mut guard = queue.tasks.lock().unwrap();
                    loop {
                        if let Some(task) = guard.0.pop_front() {
                            queue.space.notify_one();
                            break Some(task);
                        }
                        if guard.1 {
                            break None;
                        }
                        guard = queue.ready.wait(guard).unwrap();
                    }
                };
                let Some((req_id, payload, started)) = task else {
                    return;
                };
                let resp = process_request(&payload, started, ctx);
                let mut w = writer.lock().unwrap();
                if write_frame(&mut *w, req_id, &resp.encode()).is_err() {
                    dead.store(true, Ordering::SeqCst);
                    return;
                }
            });
        }
        // Reader loop (this thread). The first frame is already queued.
        loop {
            if dead.load(Ordering::SeqCst) || ctx.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let frame = read_frame(&mut reader);
            match frame {
                Ok((req_id, payload)) => {
                    let started = Instant::now();
                    let mut guard = queue.tasks.lock().unwrap();
                    while guard.0.len() >= ctx.config.max_inflight.max(1) {
                        guard = queue.space.wait(guard).unwrap();
                    }
                    guard.0.push_back((req_id, payload, started));
                    drop(guard);
                    queue.ready.notify_one();
                }
                Err(e) => {
                    let mut w = writer.lock().unwrap();
                    answer_read_error(e, &mut *w);
                    break;
                }
            }
        }
        // No more frames: let executors drain the queue and exit.
        queue.tasks.lock().unwrap().1 = true;
        queue.ready.notify_all();
    });
    let _ = writer.lock().unwrap().flush();
}
