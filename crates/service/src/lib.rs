//! Embedding service: a concurrent registry of compiled schema
//! embeddings, a `std`-only TCP wire protocol, and a load generator.
//!
//! The paper's scenario — many applications written against an old schema
//! `S1`, data and queries served against an evolved schema `S2` — is a
//! *serving* problem once embeddings exist: compilation (discovery) is
//! expensive and rare, while `apply` / `invert` / `translate` are cheap
//! and constant. This crate packages the workspace's engine accordingly:
//!
//! * [`EmbeddingRegistry`] — a concurrent cache keyed by the canonical
//!   content hashes of the (source, target) DTD pair, lock-striped into
//!   shards with per-shard single-flight compilation, a read-lock warm
//!   fast path, and weighted (compile-cost × recency) eviction
//!   ([`registry`] docs).
//! * [`Server`] / [`Client`] — a length-prefixed binary protocol over
//!   `std::net::TcpStream` with a bounded worker pool. No async runtime.
//!   Nonzero request ids opt a connection into pipelining
//!   ([`PipelinedClient`]): up to K requests in flight, responses matched
//!   by id and possibly out of order (see *Wire format*).
//! * [`loadgen`] — replays [`TrafficMix`](xse_workloads::traffic) request
//!   mixes built from the workloads corpora against an in-process registry
//!   or a TCP endpoint, and reports per-op latency percentiles, QPS and
//!   hit rates. Its `--chaos` mode routes the replay through the fault
//!   proxy with a retrying client and reports shed/retry counts plus an
//!   error taxonomy.
//! * [`fault`] — [`FaultProxy`], an in-process chaos TCP proxy driven by a
//!   seeded, deterministic [`FaultPlan`] (delay, reset, truncate
//!   mid-frame, corrupt a byte), for exercising every failure path above
//!   without leaving the test process.
//!
//! # Wire format
//!
//! Every message is one **frame** with an 8-byte header:
//!
//! ```text
//! +----------------+----------------+---------------------------+
//! | len: u32 (BE)  | id: u32 (BE)   | payload: `len` bytes      |
//! +----------------+----------------+---------------------------+
//! ```
//!
//! `len` counts payload bytes only and must not exceed
//! [`MAX_FRAME_LEN`] (16 MiB); a larger announcement is answered with an
//! error frame (code `FrameTooLarge`, id `0`) and the connection is
//! closed without reading the body. The payload's first byte is the
//! **opcode**; all variable-length fields are `u32`-BE length-prefixed
//! UTF-8 strings and all integers are big-endian.
//!
//! `id` is the **request id**, echoed verbatim in the response frame that
//! answers the request. The compatibility rule: id `0` marks the legacy
//! unpipelined lane — the server answers strictly in order and a
//! connection using it behaves exactly like the pre-pipelining protocol.
//! A **nonzero** id opts the connection into pipelined mode: the client
//! may keep many requests in flight ([`PipelinedClient`]) and responses
//! may arrive **out of order**; the id is the only correlation between a
//! response and its request. A connection must not mix the two lanes —
//! after the first nonzero id the server routes the connection through
//! its out-of-order completion path, and any id-`0` *error* frame it
//! subsequently emits (frame-too-large, mid-frame timeout) is
//! connection-fatal because it cannot be attributed to one request.
//!
//! Request opcodes (client → server; `s`/`t` abbreviate the source and
//! target DTD texts):
//!
//! | opcode | name        | fields                  |
//! |--------|-------------|-------------------------|
//! | `0x01` | `compile`   | `s`, `t`                |
//! | `0x02` | `apply`     | `s`, `t`, `xml`         |
//! | `0x03` | `invert`    | `s`, `t`, `xml`         |
//! | `0x04` | `translate` | `s`, `t`, `query`       |
//! | `0x05` | `stats`     | —                       |
//! | `0x06` | `evict`     | `s`, `t`                |
//!
//! Response opcodes (server → client):
//!
//! | opcode | name         | fields                                        |
//! |--------|--------------|-----------------------------------------------|
//! | `0x81` | `compiled`   | `source_hash`, `target_hash`, `size: u64`     |
//! | `0x82` | `document`   | `xml`                                         |
//! | `0x83` | `translated` | `size`, `states`, `plan_hits`, `plan_misses` (`u64` each) |
//! | `0x84` | `stats`      | 11 × `u64` (see [`proto::StatsWire`])         |
//! | `0x85` | `evicted`    | `existed: u8`                                 |
//! | `0xFF` | `error`      | `code: u8`, `message`                         |
//!
//! Error codes ([`proto::ErrorCode`]): `1` frame too large (connection
//! closes), `2` malformed payload, `3` unknown opcode, `4` bad DTD, `5`
//! bad document, `6` bad query, `7` no embedding found, `8` engine error,
//! `9` not found (reserved), `10` overloaded (shed before execution —
//! always safe to retry), `11` timeout (a server-side deadline expired).
//! Every error except `1` leaves the connection open for further
//! requests, and none of them poison the registry. Unassigned code bytes
//! decode to [`ErrorCode::Unknown`] — clients
//! must treat them as fatal application errors, not protocol violations,
//! so new codes can be introduced server-first.
//!
//! # Deadlines, overload, and retry semantics
//!
//! The serving layer never waits unboundedly on a peer:
//!
//! * **Server read/write deadlines** ([`ServerConfig::read_timeout`] /
//!   [`ServerConfig::write_timeout`]) bound every socket operation. A
//!   connection that is *idle* at its read deadline is closed silently
//!   (keep-alive expiry); one that stalls **mid-frame** is answered with a
//!   best-effort `timeout` (`11`) error frame and closed, releasing its
//!   worker back to the pool.
//! * **Per-request budget** ([`ServerConfig::request_budget`]): a request
//!   whose handling exceeds the budget is answered with `timeout` instead
//!   of its (late) result. Blocking engine calls cannot be interrupted
//!   mid-flight, so the budget is enforced when the response is produced —
//!   it bounds what the server *returns*, while the client's own read
//!   deadline bounds what the client *waits for*.
//! * **Load shedding** ([`ServerConfig::max_queued`]): when the accept
//!   queue is full, new connections are answered immediately with an
//!   `overloaded` (`10`) error frame and closed instead of queueing
//!   unboundedly. Shedding happens *before* any request is read, so an
//!   `overloaded` answer guarantees the request was never executed.
//! * **Graceful drain**: shutdown stops accepting, sheds the queued
//!   backlog (`overloaded`), lets in-flight requests finish up to
//!   [`ServerConfig::drain_deadline`], then force-closes whatever remains.
//! * **Client deadlines** ([`ClientConfig`]): `connect`, reads and writes
//!   all carry timeouts, surfaced as the typed
//!   [`ServiceError::Timeout`] (distinct from [`ServiceError::Io`]).
//! * **Retries** ([`RetryPolicy`] / [`RetryingClient`]): exponential
//!   backoff with deterministic seeded jitter. A failed attempt is
//!   retried only when it is provably safe: connect-phase failures and
//!   `overloaded`/pre-execution rejections (`2`, `3`) retry any request;
//!   post-send transport failures retry only **idempotent** requests
//!   ([`Request::is_idempotent`] — everything except `evict`); structured
//!   application errors (bad DTD, no embedding, …) never retry.
//!
//! The `translate` response deliberately returns automaton *metrics*
//! (`|Tr(Q)|` and state count) rather than a rendered query: translation
//! to an executable target-side automaton is PTIME (Theorem 4.3b) and is
//! what a caller evaluates, while rendering back to XR syntax via state
//! elimination is worst-case exponential and belongs to an explicit
//! offline endpoint if ever needed. It also carries the serving engine's
//! cumulative plan-cache counters (`plan_hits`, `plan_misses`), so a
//! client can observe whether its query was served from a cached
//! [`TranslatePlan`](xse_core::TranslatePlan) without a second round-trip.

pub mod client;
pub mod fault;
pub mod loadgen;
pub mod proto;
pub mod registry;
pub mod server;

pub use client::{
    Client, ClientConfig, PipelinedClient, RetryPolicy, RetryStats, RetryingClient, TranslateReply,
};
pub use fault::{FaultAction, FaultPlan, FaultProxy, FaultProxyHandle};
pub use proto::{ErrorCode, Request, Response, MAX_FRAME_LEN};
pub use registry::{EmbeddingRegistry, PairKey, RegistryConfig, RegistryStats};
pub use server::{Server, ServerConfig, ServerHandle};

use xse_core::EmbeddingError;
use xse_xmltree::parse_xml;

/// Service-level failure, shared by the in-process API and the client.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ServiceError {
    /// A DTD text failed to parse.
    BadDtd(String),
    /// A document failed to parse or to validate against its schema.
    BadDocument(String),
    /// A query failed to parse.
    BadQuery(String),
    /// Discovery found no information-preserving embedding for the pair.
    NoEmbedding,
    /// The engine failed on an otherwise well-formed request.
    Engine(String),
    /// Client side: socket-level failure.
    Io(String),
    /// Client side: a deadline expired — connecting, writing the request,
    /// or waiting for the response took longer than the configured bound.
    /// Distinct from [`ServiceError::Io`] so retry policies can treat
    /// slowness differently from broken sockets.
    Timeout(String),
    /// Client side: the peer closed the connection cleanly at a frame
    /// boundary (e.g. the server drained for shutdown or dropped an idle
    /// connection at its read deadline).
    Closed,
    /// Client side: the peer broke the framing/encoding rules.
    Protocol(String),
    /// Client side: the server answered with an error frame.
    Remote {
        /// Structured code from the error frame.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::BadDtd(m) => write!(f, "bad DTD: {m}"),
            ServiceError::BadDocument(m) => write!(f, "bad document: {m}"),
            ServiceError::BadQuery(m) => write!(f, "bad query: {m}"),
            ServiceError::NoEmbedding => write!(f, "no information-preserving embedding found"),
            ServiceError::Engine(m) => write!(f, "engine error: {m}"),
            ServiceError::Io(m) => write!(f, "i/o error: {m}"),
            ServiceError::Timeout(m) => write!(f, "deadline expired: {m}"),
            ServiceError::Closed => write!(f, "peer closed the connection at a frame boundary"),
            ServiceError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServiceError::Remote { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl ServiceError {
    /// The wire code this error maps to.
    pub fn code(&self) -> ErrorCode {
        match self {
            ServiceError::BadDtd(_) => ErrorCode::BadDtd,
            ServiceError::BadDocument(_) => ErrorCode::BadDocument,
            ServiceError::BadQuery(_) => ErrorCode::BadQuery,
            ServiceError::NoEmbedding => ErrorCode::NoEmbedding,
            ServiceError::Timeout(_) => ErrorCode::Timeout,
            ServiceError::Engine(_)
            | ServiceError::Io(_)
            | ServiceError::Closed
            | ServiceError::Protocol(_)
            | ServiceError::Remote { .. } => ErrorCode::EngineError,
        }
    }

    /// Render as an error response frame payload.
    pub fn to_response(&self) -> Response {
        Response::Error {
            code: self.code(),
            message: self.to_string(),
        }
    }
}

/// Execute one request against a registry. This is the single dispatcher
/// both the TCP server and the in-process load-generator endpoint share,
/// so the two paths cannot drift.
pub fn handle_request(registry: &EmbeddingRegistry, req: &Request) -> Response {
    match try_handle(registry, req) {
        Ok(resp) => resp,
        Err(e) => e.to_response(),
    }
}

fn try_handle(registry: &EmbeddingRegistry, req: &Request) -> Result<Response, ServiceError> {
    match req {
        Request::Compile {
            source_dtd,
            target_dtd,
        } => {
            let (key, engine) = registry.get_or_compile(source_dtd, target_dtd)?;
            Ok(Response::Compiled {
                source_hash: key.source.to_hex(),
                target_hash: key.target.to_hex(),
                size: engine.size() as u64,
            })
        }
        Request::Apply {
            source_dtd,
            target_dtd,
            xml,
        } => {
            let (_, engine) = registry.get_or_compile(source_dtd, target_dtd)?;
            let doc = parse_xml(xml).map_err(|e| ServiceError::BadDocument(e.to_string()))?;
            let out = engine.apply(&doc).map_err(engine_error)?;
            Ok(Response::Document {
                xml: out.tree.to_xml(),
            })
        }
        Request::Invert {
            source_dtd,
            target_dtd,
            xml,
        } => {
            let (_, engine) = registry.get_or_compile(source_dtd, target_dtd)?;
            let doc = parse_xml(xml).map_err(|e| ServiceError::BadDocument(e.to_string()))?;
            let out = engine.invert(&doc).map_err(engine_error)?;
            Ok(Response::Document { xml: out.to_xml() })
        }
        Request::Translate {
            source_dtd,
            target_dtd,
            query,
        } => {
            let (_, engine) = registry.get_or_compile(source_dtd, target_dtd)?;
            let q = xse_rxpath::parse_query(query)
                .map_err(|e| ServiceError::BadQuery(e.to_string()))?;
            let tr = engine.translate(&q).map_err(engine_error)?;
            let plan = engine.plan_stats();
            Ok(Response::Translated {
                size: tr.size() as u64,
                states: tr.anfa.state_count() as u64,
                plan_hits: plan.hits,
                plan_misses: plan.misses,
            })
        }
        Request::Stats => {
            let s = registry.stats();
            Ok(Response::Stats(proto::StatsWire {
                hits: s.hits,
                misses: s.misses,
                compiles: s.compiles,
                single_flight_waits: s.single_flight_waits,
                evictions: s.evictions,
                entries: s.entries,
                compile_nanos: s.compile_nanos,
                plan_hits: s.plan_hits,
                plan_misses: s.plan_misses,
                plan_entries: s.plan_entries,
                negative_hits: s.negative_hits,
            }))
        }
        Request::Evict {
            source_dtd,
            target_dtd,
        } => {
            let existed = registry.evict(source_dtd, target_dtd)?;
            Ok(Response::Evicted { existed })
        }
    }
}

/// Map engine failures onto wire semantics: invalid input documents are
/// the *caller's* fault (`BadDocument`), everything else is an engine
/// error.
fn engine_error(e: EmbeddingError) -> ServiceError {
    match e {
        EmbeddingError::SourceInvalid(_) | EmbeddingError::TargetInvalid(_) => {
            ServiceError::BadDocument(e.to_string())
        }
        other => ServiceError::Engine(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xse_discovery::DiscoveryConfig;

    fn registry() -> EmbeddingRegistry {
        EmbeddingRegistry::new(RegistryConfig {
            capacity: 8,
            discovery: DiscoveryConfig {
                threads: 1,
                ..DiscoveryConfig::default()
            },
            ..RegistryConfig::default()
        })
    }

    fn wrap_pair() -> (String, String) {
        let s1 = "<!ELEMENT r (a, b)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (c*)>\n<!ELEMENT c (#PCDATA)>";
        let s2 = "<!ELEMENT r (x, y)>\n<!ELEMENT x (a)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT y (w)>\n<!ELEMENT w (c2*)>\n<!ELEMENT c2 (c)>\n<!ELEMENT c (#PCDATA)>";
        (s1.to_string(), s2.to_string())
    }

    #[test]
    fn dispatcher_covers_every_opcode() {
        let reg = registry();
        let (s, t) = wrap_pair();
        let compiled = handle_request(
            &reg,
            &Request::Compile {
                source_dtd: s.clone(),
                target_dtd: t.clone(),
            },
        );
        let Response::Compiled { size, .. } = compiled else {
            panic!("{compiled:?}");
        };
        assert!(size > 0);

        let applied = handle_request(
            &reg,
            &Request::Apply {
                source_dtd: s.clone(),
                target_dtd: t.clone(),
                xml: "<r><a>hi</a><b><c>1</c></b></r>".into(),
            },
        );
        let Response::Document { xml } = applied else {
            panic!("{applied:?}");
        };
        let inverted = handle_request(
            &reg,
            &Request::Invert {
                source_dtd: s.clone(),
                target_dtd: t.clone(),
                xml,
            },
        );
        let Response::Document { xml: back } = inverted else {
            panic!("{inverted:?}");
        };
        assert_eq!(back, "<r><a>hi</a><b><c>1</c></b></r>");

        let translated = handle_request(
            &reg,
            &Request::Translate {
                source_dtd: s.clone(),
                target_dtd: t.clone(),
                query: "b/c".into(),
            },
        );
        assert!(
            matches!(
                translated,
                Response::Translated { size, states, plan_hits: 0, plan_misses: 1 }
                    if size > 0 && states > 0
            ),
            "{translated:?}"
        );
        // The same query again is served from the cached plan.
        let again = handle_request(
            &reg,
            &Request::Translate {
                source_dtd: s.clone(),
                target_dtd: t.clone(),
                query: "b/c".into(),
            },
        );
        assert!(
            matches!(
                again,
                Response::Translated {
                    plan_hits: 1,
                    plan_misses: 1,
                    ..
                }
            ),
            "{again:?}"
        );

        let stats = handle_request(&reg, &Request::Stats);
        let Response::Stats(w) = stats else {
            panic!("{stats:?}");
        };
        assert_eq!(w.compiles, 1, "one pair, one compile: {w:?}");
        assert_eq!(w.entries, 1);

        let evicted = handle_request(
            &reg,
            &Request::Evict {
                source_dtd: s,
                target_dtd: t,
            },
        );
        assert_eq!(evicted, Response::Evicted { existed: true });
    }

    #[test]
    fn dispatcher_maps_failures_to_codes() {
        let reg = registry();
        let (s, t) = wrap_pair();
        let bad_dtd = handle_request(
            &reg,
            &Request::Compile {
                source_dtd: "<!ELEMENT".into(),
                target_dtd: t.clone(),
            },
        );
        assert!(
            matches!(
                bad_dtd,
                Response::Error {
                    code: ErrorCode::BadDtd,
                    ..
                }
            ),
            "{bad_dtd:?}"
        );
        let bad_doc = handle_request(
            &reg,
            &Request::Apply {
                source_dtd: s.clone(),
                target_dtd: t.clone(),
                xml: "<r><nope/></r>".into(),
            },
        );
        assert!(
            matches!(
                bad_doc,
                Response::Error {
                    code: ErrorCode::BadDocument,
                    ..
                }
            ),
            "{bad_doc:?}"
        );
        let bad_query = handle_request(
            &reg,
            &Request::Translate {
                source_dtd: s,
                target_dtd: t,
                query: "///".into(),
            },
        );
        assert!(
            matches!(
                bad_query,
                Response::Error {
                    code: ErrorCode::BadQuery,
                    ..
                }
            ),
            "{bad_query:?}"
        );
    }
}
