//! Blocking TCP client for the embedding service.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{read_frame, write_frame, FrameError, Request, Response, StatsWire};
use crate::ServiceError;

/// Typed `translate` response: automaton metrics plus the serving
/// engine's cumulative plan-cache counters at the time of the call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TranslateReply {
    /// Size of the translated automaton, `|Tr(Q)|`.
    pub size: u64,
    /// Number of ANFA states after pruning.
    pub states: u64,
    /// Engine's plan-cache hits so far (this call included).
    pub plan_hits: u64,
    /// Engine's plan-cache misses so far (this call included).
    pub plan_misses: u64,
}

/// One connection to a running [`Server`](crate::Server). Requests are
/// strictly sequential per connection (the protocol has no request ids);
/// open one client per concurrent caller.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a server.
    ///
    /// # Errors
    /// [`ServiceError::Io`] when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServiceError> {
        let conn = TcpStream::connect(addr).map_err(|e| ServiceError::Io(e.to_string()))?;
        let read_half = conn
            .try_clone()
            .map_err(|e| ServiceError::Io(e.to_string()))?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(conn),
        })
    }

    /// Send one request and wait for its response frame.
    ///
    /// # Errors
    /// [`ServiceError::Io`] on socket failure, [`ServiceError::Protocol`]
    /// when the peer's response frame violates the encoding. A
    /// [`Response::Error`] is a *successful* call — match on it (or use
    /// the typed helpers, which surface it as [`ServiceError::Remote`]).
    pub fn call(&mut self, req: &Request) -> Result<Response, ServiceError> {
        write_frame(&mut self.writer, &req.encode())
            .map_err(|e| ServiceError::Io(e.to_string()))?;
        let payload = read_frame(&mut self.reader).map_err(|e| match e {
            FrameError::TooLarge(n) => {
                ServiceError::Protocol(format!("server announced a {n}-byte frame"))
            }
            FrameError::Eof => ServiceError::Io("server closed the connection".into()),
            FrameError::Io(e) => ServiceError::Io(e.to_string()),
        })?;
        Response::decode(&payload)
            .ok_or_else(|| ServiceError::Protocol("undecodable response payload".into()))
    }

    /// `compile`: returns `(source_hash, target_hash, |σ|)`.
    ///
    /// # Errors
    /// Transport errors as in [`Client::call`]; server-side failures as
    /// [`ServiceError::Remote`].
    pub fn compile(
        &mut self,
        source_dtd: &str,
        target_dtd: &str,
    ) -> Result<(String, String, u64), ServiceError> {
        match self.call(&Request::Compile {
            source_dtd: source_dtd.into(),
            target_dtd: target_dtd.into(),
        })? {
            Response::Compiled {
                source_hash,
                target_hash,
                size,
            } => Ok((source_hash, target_hash, size)),
            other => Err(unexpected(other)),
        }
    }

    /// `apply`: σd on a source document, returning the target XML.
    ///
    /// # Errors
    /// As in [`Client::compile`].
    pub fn apply(
        &mut self,
        source_dtd: &str,
        target_dtd: &str,
        xml: &str,
    ) -> Result<String, ServiceError> {
        match self.call(&Request::Apply {
            source_dtd: source_dtd.into(),
            target_dtd: target_dtd.into(),
            xml: xml.into(),
        })? {
            Response::Document { xml } => Ok(xml),
            other => Err(unexpected(other)),
        }
    }

    /// `invert`: σd⁻¹ on a target document, returning the source XML.
    ///
    /// # Errors
    /// As in [`Client::compile`].
    pub fn invert(
        &mut self,
        source_dtd: &str,
        target_dtd: &str,
        xml: &str,
    ) -> Result<String, ServiceError> {
        match self.call(&Request::Invert {
            source_dtd: source_dtd.into(),
            target_dtd: target_dtd.into(),
            xml: xml.into(),
        })? {
            Response::Document { xml } => Ok(xml),
            other => Err(unexpected(other)),
        }
    }

    /// `translate`: automaton metrics plus plan-cache counters.
    ///
    /// # Errors
    /// As in [`Client::compile`].
    pub fn translate(
        &mut self,
        source_dtd: &str,
        target_dtd: &str,
        query: &str,
    ) -> Result<TranslateReply, ServiceError> {
        match self.call(&Request::Translate {
            source_dtd: source_dtd.into(),
            target_dtd: target_dtd.into(),
            query: query.into(),
        })? {
            Response::Translated {
                size,
                states,
                plan_hits,
                plan_misses,
            } => Ok(TranslateReply {
                size,
                states,
                plan_hits,
                plan_misses,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// `stats`: the registry's aggregate counters.
    ///
    /// # Errors
    /// As in [`Client::compile`].
    pub fn stats(&mut self) -> Result<StatsWire, ServiceError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// `evict`: returns whether the pair was cached.
    ///
    /// # Errors
    /// As in [`Client::compile`].
    pub fn evict(&mut self, source_dtd: &str, target_dtd: &str) -> Result<bool, ServiceError> {
        match self.call(&Request::Evict {
            source_dtd: source_dtd.into(),
            target_dtd: target_dtd.into(),
        })? {
            Response::Evicted { existed } => Ok(existed),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(resp: Response) -> ServiceError {
    match resp {
        Response::Error { code, message } => ServiceError::Remote { code, message },
        other => ServiceError::Protocol(format!("unexpected response: {other:?}")),
    }
}
