//! Blocking TCP clients for the embedding service: a deadline-bounded
//! [`Client`] (one request at a time, the legacy id-0 lane), a
//! [`PipelinedClient`] that keeps several tagged requests in flight on
//! one connection, and a [`RetryingClient`] wrapper that reconnects and
//! retries with exponential backoff and deterministic seeded jitter.

use std::collections::HashSet;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::proto::{
    self, read_frame, write_frame, ErrorCode, FrameError, Request, Response, StatsWire,
};
use crate::ServiceError;

/// Typed `translate` response: automaton metrics plus the serving
/// engine's cumulative plan-cache counters at the time of the call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TranslateReply {
    /// Size of the translated automaton, `|Tr(Q)|`.
    pub size: u64,
    /// Number of ANFA states after pruning.
    pub states: u64,
    /// Engine's plan-cache hits so far (this call included).
    pub plan_hits: u64,
    /// Engine's plan-cache misses so far (this call included).
    pub plan_misses: u64,
}

/// Client-side deadlines. `None` disables the corresponding timeout
/// (blocks indefinitely) — only do that in controlled tests.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection.
    pub connect_timeout: Option<Duration>,
    /// Deadline for each response read. Covers server compute time, so it
    /// should exceed the server's request budget.
    pub read_timeout: Option<Duration>,
    /// Deadline for each request write.
    pub write_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(1)),
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// One connection to a running [`Server`](crate::Server). Requests are
/// strictly sequential per connection: every frame is sent with request
/// id 0, the wire protocol's legacy unpipelined marker, so the server
/// answers in order, one at a time. For several requests in flight per
/// connection use [`PipelinedClient`]; for several concurrent callers,
/// open one client each.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect with the default [`ClientConfig`] deadlines.
    ///
    /// # Errors
    /// [`ServiceError::Timeout`] when the connect deadline expires,
    /// [`ServiceError::Io`] for any other connection failure.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServiceError> {
        Client::connect_with(addr, &ClientConfig::default())
    }

    /// Connect with explicit deadlines. Resolution may yield several
    /// addresses; each is tried in turn and the last failure is returned.
    ///
    /// # Errors
    /// As in [`Client::connect`].
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: &ClientConfig,
    ) -> Result<Client, ServiceError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| ServiceError::Io(format!("address resolution failed: {e}")))?
            .collect();
        if addrs.is_empty() {
            return Err(ServiceError::Io("address resolved to nothing".into()));
        }
        let mut last = None;
        for a in &addrs {
            match connect_one(a, config.connect_timeout) {
                Ok(conn) => return Client::from_stream(conn, config),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one address was tried"))
    }

    fn from_stream(conn: TcpStream, config: &ClientConfig) -> Result<Client, ServiceError> {
        conn.set_read_timeout(config.read_timeout)
            .and_then(|()| conn.set_write_timeout(config.write_timeout))
            .map_err(|e| ServiceError::Io(e.to_string()))?;
        let read_half = conn
            .try_clone()
            .map_err(|e| ServiceError::Io(e.to_string()))?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(conn),
        })
    }

    /// Send one request frame without waiting for the response. Exposed
    /// (with [`Client::read_response`]) so wrappers like
    /// [`RetryingClient`] can tell a pre-send failure from a post-send
    /// one — the retry-safety boundary.
    ///
    /// # Errors
    /// [`ServiceError::Timeout`] when the write deadline expires,
    /// [`ServiceError::Io`] on any other socket failure.
    pub fn send_request(&mut self, req: &Request) -> Result<(), ServiceError> {
        self.send_tagged(0, req)
    }

    /// Send one request frame tagged with `request_id` (the pipelined
    /// lane; [`PipelinedClient`] assigns nonzero ids and matches
    /// responses back by id).
    ///
    /// # Errors
    /// As in [`Client::send_request`].
    pub fn send_tagged(&mut self, request_id: u32, req: &Request) -> Result<(), ServiceError> {
        write_frame(&mut self.writer, request_id, &req.encode()).map_err(|e| {
            if proto::is_timeout(e.kind()) {
                ServiceError::Timeout("write deadline expired sending the request".into())
            } else {
                ServiceError::Io(e.to_string())
            }
        })
    }

    /// Wait for one response frame (after [`Client::send_request`]).
    ///
    /// # Errors
    /// [`ServiceError::Timeout`] when the read deadline expires,
    /// [`ServiceError::Closed`] when the server closed cleanly between
    /// frames, [`ServiceError::Protocol`] for truncated or undecodable
    /// responses — including a response carrying a nonzero request id,
    /// which an unpipelined connection must never see —
    /// [`ServiceError::Io`] otherwise.
    pub fn read_response(&mut self) -> Result<Response, ServiceError> {
        let (id, resp) = self.read_tagged()?;
        if id != 0 {
            return Err(ServiceError::Protocol(format!(
                "unpipelined connection received response id {id}"
            )));
        }
        Ok(resp)
    }

    /// Wait for one response frame and its echoed request id (the
    /// pipelined lane — responses may arrive out of request order).
    ///
    /// # Errors
    /// As in [`Client::read_response`], minus the id-0 check.
    pub fn read_tagged(&mut self) -> Result<(u32, Response), ServiceError> {
        let (id, payload) = read_frame(&mut self.reader).map_err(|e| match e {
            FrameError::TooLarge(n) => {
                ServiceError::Protocol(format!("server announced a {n}-byte frame"))
            }
            FrameError::Closed => ServiceError::Closed,
            FrameError::Truncated => ServiceError::Protocol("response truncated mid-frame".into()),
            FrameError::TimedOut { .. } => {
                ServiceError::Timeout("read deadline expired awaiting the response".into())
            }
            FrameError::Io(e) => ServiceError::Io(e.to_string()),
        })?;
        let resp = Response::decode(&payload)
            .ok_or_else(|| ServiceError::Protocol("undecodable response payload".into()))?;
        Ok((id, resp))
    }

    /// Send one request and wait for its response frame.
    ///
    /// # Errors
    /// Transport errors as in [`Client::send_request`] and
    /// [`Client::read_response`]. A [`Response::Error`] is a *successful*
    /// call — match on it (or use the typed helpers, which surface it as
    /// [`ServiceError::Remote`]).
    pub fn call(&mut self, req: &Request) -> Result<Response, ServiceError> {
        self.send_request(req)?;
        self.read_response()
    }

    /// `compile`: returns `(source_hash, target_hash, |σ|)`.
    ///
    /// # Errors
    /// Transport errors as in [`Client::call`]; server-side failures as
    /// [`ServiceError::Remote`].
    pub fn compile(
        &mut self,
        source_dtd: &str,
        target_dtd: &str,
    ) -> Result<(String, String, u64), ServiceError> {
        match self.call(&Request::Compile {
            source_dtd: source_dtd.into(),
            target_dtd: target_dtd.into(),
        })? {
            Response::Compiled {
                source_hash,
                target_hash,
                size,
            } => Ok((source_hash, target_hash, size)),
            other => Err(unexpected(other)),
        }
    }

    /// `apply`: σd on a source document, returning the target XML.
    ///
    /// # Errors
    /// As in [`Client::compile`].
    pub fn apply(
        &mut self,
        source_dtd: &str,
        target_dtd: &str,
        xml: &str,
    ) -> Result<String, ServiceError> {
        match self.call(&Request::Apply {
            source_dtd: source_dtd.into(),
            target_dtd: target_dtd.into(),
            xml: xml.into(),
        })? {
            Response::Document { xml } => Ok(xml),
            other => Err(unexpected(other)),
        }
    }

    /// `invert`: σd⁻¹ on a target document, returning the source XML.
    ///
    /// # Errors
    /// As in [`Client::compile`].
    pub fn invert(
        &mut self,
        source_dtd: &str,
        target_dtd: &str,
        xml: &str,
    ) -> Result<String, ServiceError> {
        match self.call(&Request::Invert {
            source_dtd: source_dtd.into(),
            target_dtd: target_dtd.into(),
            xml: xml.into(),
        })? {
            Response::Document { xml } => Ok(xml),
            other => Err(unexpected(other)),
        }
    }

    /// `translate`: automaton metrics plus plan-cache counters.
    ///
    /// # Errors
    /// As in [`Client::compile`].
    pub fn translate(
        &mut self,
        source_dtd: &str,
        target_dtd: &str,
        query: &str,
    ) -> Result<TranslateReply, ServiceError> {
        match self.call(&Request::Translate {
            source_dtd: source_dtd.into(),
            target_dtd: target_dtd.into(),
            query: query.into(),
        })? {
            Response::Translated {
                size,
                states,
                plan_hits,
                plan_misses,
            } => Ok(TranslateReply {
                size,
                states,
                plan_hits,
                plan_misses,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// `stats`: the registry's aggregate counters.
    ///
    /// # Errors
    /// As in [`Client::compile`].
    pub fn stats(&mut self) -> Result<StatsWire, ServiceError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// `evict`: returns whether the pair was cached.
    ///
    /// # Errors
    /// As in [`Client::compile`].
    pub fn evict(&mut self, source_dtd: &str, target_dtd: &str) -> Result<bool, ServiceError> {
        match self.call(&Request::Evict {
            source_dtd: source_dtd.into(),
            target_dtd: target_dtd.into(),
        })? {
            Response::Evicted { existed } => Ok(existed),
            other => Err(unexpected(other)),
        }
    }
}

/// A client that keeps up to K requests in flight on one connection.
///
/// Every submitted request gets a fresh nonzero id; the server may answer
/// **out of order**, and [`PipelinedClient::recv`] returns whichever
/// response arrives next together with its id — correlation is the
/// caller's choice of bookkeeping (or use
/// [`PipelinedClient::call_pipelined`], which windows a whole batch and
/// restores request order). A structured error frame fails only the
/// request whose id it carries; the connection — and every other
/// in-flight request — stays live. The exception is an error frame with
/// id 0: the server could not attribute it to a request (oversized frame,
/// read-deadline expiry), so it is connection-fatal and surfaces as
/// [`ServiceError::Remote`].
pub struct PipelinedClient {
    conn: Client,
    next_id: u32,
    inflight: HashSet<u32>,
}

impl PipelinedClient {
    /// Connect with the default [`ClientConfig`] deadlines.
    ///
    /// # Errors
    /// As in [`Client::connect`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<PipelinedClient, ServiceError> {
        PipelinedClient::connect_with(addr, &ClientConfig::default())
    }

    /// Connect with explicit deadlines.
    ///
    /// # Errors
    /// As in [`Client::connect`].
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: &ClientConfig,
    ) -> Result<PipelinedClient, ServiceError> {
        Ok(PipelinedClient {
            conn: Client::connect_with(addr, config)?,
            next_id: 1,
            inflight: HashSet::new(),
        })
    }

    /// Number of submitted requests whose responses are still outstanding.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Send `req` without waiting, returning the id its response will
    /// echo. Ids are assigned 1, 2, 3, … (wrapping past `u32::MAX` back
    /// to 1 — 0 is the legacy unpipelined marker and is never assigned).
    ///
    /// # Errors
    /// As in [`Client::send_request`].
    pub fn submit(&mut self, req: &Request) -> Result<u32, ServiceError> {
        let id = self.next_id;
        self.next_id = self.next_id.checked_add(1).unwrap_or(1);
        self.conn.send_tagged(id, req)?;
        self.inflight.insert(id);
        Ok(id)
    }

    /// Wait for the next response (whatever request it answers) and
    /// return it with its id.
    ///
    /// # Errors
    /// Transport errors as in [`Client::read_response`];
    /// [`ServiceError::Protocol`] when the id matches no in-flight
    /// request; [`ServiceError::Remote`] for an id-0 error frame
    /// (connection-fatal, not attributable to any one request).
    pub fn recv(&mut self) -> Result<(u32, Response), ServiceError> {
        let (id, resp) = self.conn.read_tagged()?;
        if id == 0 {
            return Err(match resp {
                Response::Error { code, message } => ServiceError::Remote { code, message },
                other => ServiceError::Protocol(format!(
                    "id-0 frame on a pipelined connection: {other:?}"
                )),
            });
        }
        if !self.inflight.remove(&id) {
            return Err(ServiceError::Protocol(format!(
                "response id {id} matches no in-flight request"
            )));
        }
        Ok((id, resp))
    }

    /// Run `reqs` through the connection keeping at most `window` in
    /// flight, and return the responses **in request order** regardless
    /// of the order the server completed them.
    ///
    /// # Errors
    /// The first transport error aborts the batch (per-request failures
    /// arrive as `Ok(Response::Error { .. })` entries instead).
    pub fn call_pipelined(
        &mut self,
        reqs: &[Request],
        window: usize,
    ) -> Result<Vec<Response>, ServiceError> {
        let window = window.max(1);
        let mut ordered: Vec<Option<Response>> = vec![None; reqs.len()];
        let mut id_to_index = std::collections::HashMap::new();
        let mut next = 0usize;
        let mut done = 0usize;
        while done < reqs.len() {
            while next < reqs.len() && self.in_flight() < window {
                let id = self.submit(&reqs[next])?;
                id_to_index.insert(id, next);
                next += 1;
            }
            let (id, resp) = self.recv()?;
            let index = id_to_index.remove(&id).ok_or_else(|| {
                ServiceError::Protocol(format!("response id {id} not part of this batch"))
            })?;
            ordered[index] = Some(resp);
            done += 1;
        }
        Ok(ordered
            .into_iter()
            .map(|r| r.expect("all filled"))
            .collect())
    }
}

fn connect_one(addr: &SocketAddr, timeout: Option<Duration>) -> Result<TcpStream, ServiceError> {
    let result = match timeout {
        Some(t) => TcpStream::connect_timeout(addr, t),
        None => TcpStream::connect(addr),
    };
    result.map_err(|e| {
        if proto::is_timeout(e.kind()) {
            ServiceError::Timeout(format!("connect to {addr} timed out"))
        } else {
            ServiceError::Io(format!("connect to {addr} failed: {e}"))
        }
    })
}

fn unexpected(resp: Response) -> ServiceError {
    match resp {
        Response::Error { code, message } => ServiceError::Remote { code, message },
        other => ServiceError::Protocol(format!("unexpected response: {other:?}")),
    }
}

/// Exponential backoff with deterministic seeded jitter.
///
/// Attempt `i` sleeps a uniform duration in `[d/2, d]` where
/// `d = min(max_backoff, base_backoff · 2^i)` — full determinism per
/// `seed`, so test runs and chaos soaks replay identically.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, first try included (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Ceiling on the (pre-jitter) backoff.
    pub max_backoff: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff before retry number `attempt` (0-based count
    /// of *failed* attempts so far), drawn from `rng`.
    pub fn backoff(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let base = self.base_backoff.as_nanos().min(u128::from(u64::MAX)) as u64;
        let exp = base.saturating_shl(attempt);
        let capped = exp.min(self.max_backoff.as_nanos().min(u128::from(u64::MAX)) as u64);
        if capped == 0 {
            return Duration::ZERO;
        }
        let lo = capped / 2;
        Duration::from_nanos(rng.random_range(lo..=capped))
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if self == 0 {
            0
        } else if shift >= self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

/// Counters a [`RetryingClient`] accumulates across calls.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct RetryStats {
    /// Attempts made (each call contributes at least one).
    pub attempts: u64,
    /// Attempts that were retries of a failed one.
    pub retries: u64,
    /// Connections (re-)established.
    pub reconnects: u64,
}

/// How safe it is to resend a request after a given failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Retryability {
    /// The request provably never executed — retry anything.
    Safe,
    /// The request may have executed — retry only idempotent requests.
    IfIdempotent,
    /// Retrying cannot help (structured application error).
    Fatal,
}

/// A [`Client`] wrapper that reconnects and retries per [`RetryPolicy`].
///
/// Retry-safety rules (see the crate docs): connect-phase failures and
/// server rejections that provably precede execution (`overloaded`,
/// `malformed`, `unknown opcode` — the latter two also cover request
/// frames corrupted in transit) retry *any* request; transport failures
/// after the request was sent retry only idempotent requests
/// ([`Request::is_idempotent`]); all other structured application errors
/// are returned to the caller unretried.
pub struct RetryingClient {
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    policy: RetryPolicy,
    rng: StdRng,
    conn: Option<Client>,
    stats: RetryStats,
}

impl RetryingClient {
    /// Resolve `addr` and build a lazily-connecting retrying client (the
    /// first [`RetryingClient::call`] opens the connection).
    ///
    /// # Errors
    /// [`ServiceError::Io`] when resolution fails or yields no address.
    pub fn new(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
        policy: RetryPolicy,
    ) -> Result<RetryingClient, ServiceError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| ServiceError::Io(format!("address resolution failed: {e}")))?
            .collect();
        if addrs.is_empty() {
            return Err(ServiceError::Io("address resolved to nothing".into()));
        }
        Ok(RetryingClient {
            addrs,
            config,
            policy,
            rng: StdRng::seed_from_u64(policy.seed),
            conn: None,
            stats: RetryStats::default(),
        })
    }

    /// Cumulative retry counters.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// Send `req`, retrying per the policy. Returns the last outcome when
    /// attempts are exhausted: `Ok(Response::Error { .. })` when the
    /// server kept answering a retryable error frame, `Err` when the
    /// transport kept failing.
    ///
    /// # Errors
    /// The final attempt's transport error.
    pub fn call(&mut self, req: &Request) -> Result<Response, ServiceError> {
        let mut failures = 0u32;
        loop {
            self.stats.attempts += 1;
            let (outcome, class) = self.attempt(req);
            let retryable = match class {
                Retryability::Safe => true,
                Retryability::IfIdempotent => req.is_idempotent(),
                Retryability::Fatal => false,
            };
            if !retryable || failures + 1 >= self.policy.max_attempts.max(1) {
                return outcome;
            }
            let pause = self.policy.backoff(failures, &mut self.rng);
            failures += 1;
            self.stats.retries += 1;
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
        }
    }

    /// One attempt: connect if needed, send, receive, classify.
    fn attempt(&mut self, req: &Request) -> (Result<Response, ServiceError>, Retryability) {
        if self.conn.is_none() {
            match Client::connect_with(&self.addrs[..], &self.config) {
                Ok(c) => {
                    self.conn = Some(c);
                    self.stats.reconnects += 1;
                }
                // Connect-phase: the request was never sent.
                Err(e) => return (Err(e), Retryability::Safe),
            }
        }
        let conn = self.conn.as_mut().expect("connected above");
        if let Err(e) = conn.send_request(req) {
            // The write may have partially reached the server — treat as
            // post-send. The connection is dead either way.
            self.conn = None;
            return (Err(e), Retryability::IfIdempotent);
        }
        match conn.read_response() {
            Ok(resp) => {
                let class = classify_response(&resp);
                // A pre-execution rejection usually precedes a server-side
                // close (e.g. shed connections); reconnect for the retry.
                if class != Retryability::Fatal {
                    self.conn = None;
                }
                (Ok(resp), class)
            }
            Err(e) => {
                self.conn = None;
                (Err(e), Retryability::IfIdempotent)
            }
        }
    }
}

/// Classify a decoded response frame. `Fatal` here means "do not retry";
/// for non-error responses that is simply "done".
fn classify_response(resp: &Response) -> Retryability {
    match resp {
        Response::Error { code, .. } => match code {
            // Answered before the request executed — always retryable.
            // Malformed/UnknownOpcode also cover request frames corrupted
            // in transit, which a resend fixes.
            ErrorCode::Overloaded | ErrorCode::Malformed | ErrorCode::UnknownOpcode => {
                Retryability::Safe
            }
            // The server may have done the work before the deadline hit.
            ErrorCode::Timeout => Retryability::IfIdempotent,
            _ => Retryability::Fatal,
        },
        _ => Retryability::Fatal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy::default();
        let mut a = StdRng::seed_from_u64(policy.seed);
        let mut b = StdRng::seed_from_u64(policy.seed);
        for attempt in 0..8 {
            let x = policy.backoff(attempt, &mut a);
            let y = policy.backoff(attempt, &mut b);
            assert_eq!(x, y, "same seed, same jitter (attempt {attempt})");
            let cap = policy
                .max_backoff
                .min(policy.base_backoff * 2u32.saturating_pow(attempt));
            assert!(x <= cap, "attempt {attempt}: {x:?} > {cap:?}");
            assert!(x >= cap / 2, "attempt {attempt}: {x:?} < {:?}", cap / 2);
        }
        // A different seed jitters differently somewhere in the stream.
        let mut c = StdRng::seed_from_u64(policy.seed ^ 1);
        let mut a = StdRng::seed_from_u64(policy.seed);
        assert!((0..8).any(|i| policy.backoff(i, &mut a) != policy.backoff(i, &mut c)));
    }

    #[test]
    fn backoff_growth_saturates_instead_of_overflowing() {
        let policy = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(2),
            seed: 9,
        };
        let mut rng = StdRng::seed_from_u64(policy.seed);
        // Shifts far past 64 bits must clamp to max_backoff, not wrap.
        for attempt in [40, 64, 200, u32::MAX] {
            let d = policy.backoff(attempt, &mut rng);
            assert!(d <= policy.max_backoff);
            assert!(d >= policy.max_backoff / 2);
        }
    }

    #[test]
    fn response_classification_matches_the_documented_rules() {
        let err = |code: ErrorCode| Response::Error {
            code,
            message: String::new(),
        };
        assert_eq!(
            classify_response(&err(ErrorCode::Overloaded)),
            Retryability::Safe
        );
        assert_eq!(
            classify_response(&err(ErrorCode::Malformed)),
            Retryability::Safe
        );
        assert_eq!(
            classify_response(&err(ErrorCode::UnknownOpcode)),
            Retryability::Safe
        );
        assert_eq!(
            classify_response(&err(ErrorCode::Timeout)),
            Retryability::IfIdempotent
        );
        for fatal in [
            ErrorCode::BadDtd,
            ErrorCode::BadDocument,
            ErrorCode::BadQuery,
            ErrorCode::NoEmbedding,
            ErrorCode::EngineError,
            ErrorCode::NotFound,
            ErrorCode::FrameTooLarge,
            ErrorCode::Unknown(200),
        ] {
            assert_eq!(classify_response(&err(fatal)), Retryability::Fatal);
        }
        let done = Response::Evicted { existed: true };
        assert_eq!(classify_response(&done), Retryability::Fatal);
    }
}
