//! Wire protocol: framing, opcodes, and request/response codecs.
//!
//! Everything here is plain `std` byte-pushing — the format is fully
//! described in the crate-level docs ([`crate`]). In short: every message
//! is one *frame* (`u32` big-endian payload length, then a `u32`-BE
//! **request id**, then the payload), the payload's first byte is the
//! opcode, and all variable-length fields are `u32`-BE length-prefixed
//! UTF-8 strings.
//!
//! # Request ids and pipelining
//!
//! The request id lets a client keep several requests in flight on one
//! connection: the server echoes each request's id on its response frame,
//! and pipelined responses may arrive **out of order** — the id is the
//! only correlation. Id `0` is reserved for legacy unpipelined traffic:
//! a client that sends id 0 for every request is served strictly
//! in order, one at a time, exactly like the pre-pipelining protocol.
//! Clients must not mix id-0 and nonzero-id requests on one connection.

use std::io::{self, Read, Write};

/// Hard cap on a frame's payload length (16 MiB). A peer announcing more
/// is answered with [`ErrorCode::FrameTooLarge`] and disconnected — the
/// declared bytes are never read, so a hostile header cannot make the
/// server buffer unbounded input.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Request opcodes (first payload byte, client → server).
pub mod op {
    /// Compile (or look up) the embedding for a DTD pair.
    pub const COMPILE: u8 = 0x01;
    /// Map a source document through `σd`.
    pub const APPLY: u8 = 0x02;
    /// Recover a source document through `σd⁻¹`.
    pub const INVERT: u8 = 0x03;
    /// Translate a source query to the target schema.
    pub const TRANSLATE: u8 = 0x04;
    /// Fetch registry statistics.
    pub const STATS: u8 = 0x05;
    /// Drop the pair's cached embedding.
    pub const EVICT: u8 = 0x06;
}

/// Response opcodes (first payload byte, server → client).
pub mod resp {
    /// Embedding compiled / found: hashes + size.
    pub const COMPILED: u8 = 0x81;
    /// A document (apply / invert result).
    pub const DOCUMENT: u8 = 0x82;
    /// Translation metrics.
    pub const TRANSLATED: u8 = 0x83;
    /// Registry statistics.
    pub const STATS: u8 = 0x84;
    /// Eviction acknowledgement.
    pub const EVICTED: u8 = 0x85;
    /// Structured error.
    pub const ERROR: u8 = 0xFF;
}

/// Structured error codes carried by [`Response::Error`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ErrorCode {
    /// Declared frame length exceeds [`MAX_FRAME_LEN`]; connection closes.
    FrameTooLarge,
    /// Payload too short / length fields inconsistent / invalid UTF-8.
    Malformed,
    /// First payload byte is not a known request opcode.
    UnknownOpcode,
    /// A DTD field failed to parse or reduce.
    BadDtd,
    /// A document field failed to parse or validate.
    BadDocument,
    /// A query field failed to parse.
    BadQuery,
    /// Discovery found no information-preserving embedding for the pair.
    NoEmbedding,
    /// The engine rejected an otherwise well-formed request (apply/invert
    /// failure, internal error).
    EngineError,
    /// Evict targeted a pair that was not cached.
    NotFound,
    /// The server is shedding load (accept queue over its bound, or the
    /// server is draining for shutdown); the request was **not** executed
    /// and is always safe to retry elsewhere or later.
    Overloaded,
    /// A deadline expired: the server's per-request time budget ran out,
    /// or its read deadline fired while a frame was partially received.
    Timeout,
    /// A code byte this build does not know. Preserved verbatim so old
    /// clients stay able to log (and classify as fatal) errors introduced
    /// by newer servers instead of treating them as protocol violations.
    Unknown(u8),
}

impl ErrorCode {
    /// Every code this build knows, in wire-byte order (used by the
    /// taxonomy round-trip tests).
    pub const KNOWN: [ErrorCode; 11] = [
        ErrorCode::FrameTooLarge,
        ErrorCode::Malformed,
        ErrorCode::UnknownOpcode,
        ErrorCode::BadDtd,
        ErrorCode::BadDocument,
        ErrorCode::BadQuery,
        ErrorCode::NoEmbedding,
        ErrorCode::EngineError,
        ErrorCode::NotFound,
        ErrorCode::Overloaded,
        ErrorCode::Timeout,
    ];

    /// The wire byte. `Unknown` round-trips its original byte (it is a
    /// caller bug to construct `Unknown` with one of the assigned bytes).
    pub fn to_u8(self) -> u8 {
        match self {
            ErrorCode::FrameTooLarge => 1,
            ErrorCode::Malformed => 2,
            ErrorCode::UnknownOpcode => 3,
            ErrorCode::BadDtd => 4,
            ErrorCode::BadDocument => 5,
            ErrorCode::BadQuery => 6,
            ErrorCode::NoEmbedding => 7,
            ErrorCode::EngineError => 8,
            ErrorCode::NotFound => 9,
            ErrorCode::Overloaded => 10,
            ErrorCode::Timeout => 11,
            ErrorCode::Unknown(b) => b,
        }
    }

    /// Decode a wire byte; total — unassigned bytes stay distinguished as
    /// [`ErrorCode::Unknown`].
    pub fn from_u8(b: u8) -> ErrorCode {
        match b {
            1 => ErrorCode::FrameTooLarge,
            2 => ErrorCode::Malformed,
            3 => ErrorCode::UnknownOpcode,
            4 => ErrorCode::BadDtd,
            5 => ErrorCode::BadDocument,
            6 => ErrorCode::BadQuery,
            7 => ErrorCode::NoEmbedding,
            8 => ErrorCode::EngineError,
            9 => ErrorCode::NotFound,
            10 => ErrorCode::Overloaded,
            11 => ErrorCode::Timeout,
            other => ErrorCode::Unknown(other),
        }
    }
}

/// A decoded client request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// Ensure the pair's embedding is compiled and cached.
    Compile {
        source_dtd: String,
        target_dtd: String,
    },
    /// `σd`: map `xml` (a source document) to the target schema.
    Apply {
        source_dtd: String,
        target_dtd: String,
        xml: String,
    },
    /// `σd⁻¹`: recover the source document from `xml` (a target document).
    Invert {
        source_dtd: String,
        target_dtd: String,
        xml: String,
    },
    /// `Tr`: translate `query` (source-side XR) to the target schema.
    Translate {
        source_dtd: String,
        target_dtd: String,
        query: String,
    },
    /// Registry statistics snapshot.
    Stats,
    /// Drop the pair's cached embedding.
    Evict {
        source_dtd: String,
        target_dtd: String,
    },
}

/// Registry counters as they travel on the wire (eleven `u64`s, BE).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct StatsWire {
    /// Cache hits.
    pub hits: u64,
    /// Cache misses that triggered a compile.
    pub misses: u64,
    /// Completed compilations.
    pub compiles: u64,
    /// Requests that waited on another request's in-flight compile.
    pub single_flight_waits: u64,
    /// Entries dropped by LRU pressure or explicit evict.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: u64,
    /// Total nanoseconds spent compiling.
    pub compile_nanos: u64,
    /// Translation-plan cache hits, aggregated across all engines the
    /// registry ever held (evicted engines' counters are retained).
    pub plan_hits: u64,
    /// Translation-plan cache misses, aggregated the same way.
    pub plan_misses: u64,
    /// Plans currently cached across live engines.
    pub plan_entries: u64,
    /// Requests short-circuited by the negative cache (a recent discovery
    /// failure for the same pair answered without re-running discovery).
    pub negative_hits: u64,
}

/// A decoded server response.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Response {
    /// The pair's embedding is cached; hashes identify the canonical DTDs.
    Compiled {
        source_hash: String,
        target_hash: String,
        size: u64,
    },
    /// A serialized document (apply / invert output).
    Document { xml: String },
    /// Translation metrics: `|Tr(Q)|`, the automaton's state count, and
    /// the serving engine's cumulative plan-cache counters (so a client
    /// can observe whether its query hit a cached plan).
    Translated {
        size: u64,
        states: u64,
        plan_hits: u64,
        plan_misses: u64,
    },
    /// Registry statistics.
    Stats(StatsWire),
    /// Eviction acknowledgement (`existed` = whether the pair was cached).
    Evicted { existed: bool },
    /// Structured failure.
    Error { code: ErrorCode, message: String },
}

/// Why a frame could not be read. Clean closes, truncations and expired
/// deadlines are distinguished so callers (the server's per-connection
/// loop, the client's retry policy) can react differently: a `Closed`
/// peer simply went away between requests, a `Truncated` one died (or was
/// cut) mid-message, and `TimedOut` means the socket's read deadline
/// expired — the peer may still be alive but is too slow.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket/file error (deadline expiries are reported as
    /// [`FrameError::TimedOut`], not here).
    Io(io::Error),
    /// Peer announced a payload over [`MAX_FRAME_LEN`] bytes long.
    TooLarge(usize),
    /// Clean close: end-of-stream at a frame boundary, before any byte of
    /// the next frame arrived.
    Closed,
    /// End-of-stream in the middle of a frame (header or payload arrived
    /// incomplete) — the peer disconnected mid-message.
    Truncated,
    /// The socket's read deadline expired before a full frame arrived.
    /// `mid_frame` reports whether any byte of the frame had been
    /// received: `false` is an *idle* peer (normal keep-alive expiry),
    /// `true` a *stalled* one (it started a frame and went quiet).
    TimedOut {
        /// Whether part of a frame had already arrived.
        mid_frame: bool,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            FrameError::Closed => write!(f, "connection closed at a frame boundary"),
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::TimedOut { mid_frame: true } => {
                write!(f, "read deadline expired mid-frame (stalled peer)")
            }
            FrameError::TimedOut { mid_frame: false } => {
                write!(f, "read deadline expired waiting for a frame (idle peer)")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Whether an i/o error kind is a socket deadline expiry. Unix reports
/// `SO_RCVTIMEO`/`SO_SNDTIMEO` expiry as `WouldBlock`, Windows as
/// `TimedOut`; both mean the same thing here.
pub fn is_timeout(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Write one frame: `u32`-BE payload length, `u32`-BE request id, then
/// the payload. Request id 0 marks legacy unpipelined traffic (see the
/// [module docs](self)).
///
/// # Errors
/// `InvalidInput` when the payload exceeds [`MAX_FRAME_LEN`] — an
/// oversized payload must fail loudly rather than wrap in the `u32`
/// length cast and desynchronize the stream.
pub fn write_frame(w: &mut impl Write, request_id: u32, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "payload of {} bytes exceeds the {MAX_FRAME_LEN}-byte frame cap",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(&request_id.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame, returning `(request_id, payload)`. The
/// [`MAX_FRAME_LEN`] cap is enforced *before* reading the body (the full
/// 8-byte header is consumed first). An oversized announcement is
/// answered by the server with an **id-0** error frame — the connection
/// is closing, and id 0 on a pipelined connection marks exactly such
/// connection-fatal errors. Clean closes ([`FrameError::Closed`]) are
/// distinguished from mid-frame disconnects ([`FrameError::Truncated`])
/// and read-deadline expiries ([`FrameError::TimedOut`]).
pub fn read_frame(r: &mut impl Read) -> Result<(u32, Vec<u8>), FrameError> {
    let mut header = [0u8; 8];
    fill(r, &mut header, true)?;
    let n = u32::from_be_bytes(header[..4].try_into().unwrap()) as usize;
    let request_id = u32::from_be_bytes(header[4..].try_into().unwrap());
    if n > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(n));
    }
    let mut payload = vec![0u8; n];
    fill(r, &mut payload, false)?;
    Ok((request_id, payload))
}

/// `read_exact` with typed outcomes. `at_boundary` is true for the length
/// header — EOF or a deadline before its **first** byte means the peer is
/// cleanly gone or merely idle, not truncated or stalled.
fn fill(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<(), FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if at_boundary && got == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(e.kind()) => {
                return Err(FrameError::TimedOut {
                    mid_frame: !(at_boundary && got == 0),
                });
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_be_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Cursor over a payload; every getter fails soft so a truncated inner
/// field becomes a decode error, never a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.at)?;
        self.at += 1;
        Some(b)
    }

    fn u64(&mut self) -> Option<u64> {
        let bytes = self.buf.get(self.at..self.at + 8)?;
        self.at += 8;
        Some(u64::from_be_bytes(bytes.try_into().unwrap()))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.buf.get(self.at..self.at + 4)?;
        let len = u32::from_be_bytes(len.try_into().unwrap()) as usize;
        self.at += 4;
        let bytes = self.buf.get(self.at..self.at + len)?;
        self.at += len;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

impl Request {
    /// Whether re-executing this request cannot change its observable
    /// outcome. `compile`/`apply`/`invert`/`translate` are pure functions
    /// of their payload (compilation is cached, but a duplicate compile is
    /// invisible to callers) and `stats` is a read; `evict` is **not**
    /// idempotent — replaying it can flip the `existed` answer and drop an
    /// entry recompiled in between. The retry policy only replays
    /// idempotent requests after a post-send failure.
    pub fn is_idempotent(&self) -> bool {
        !matches!(self, Request::Evict { .. })
    }

    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Compile {
                source_dtd,
                target_dtd,
            } => {
                buf.push(op::COMPILE);
                put_str(&mut buf, source_dtd);
                put_str(&mut buf, target_dtd);
            }
            Request::Apply {
                source_dtd,
                target_dtd,
                xml,
            } => {
                buf.push(op::APPLY);
                put_str(&mut buf, source_dtd);
                put_str(&mut buf, target_dtd);
                put_str(&mut buf, xml);
            }
            Request::Invert {
                source_dtd,
                target_dtd,
                xml,
            } => {
                buf.push(op::INVERT);
                put_str(&mut buf, source_dtd);
                put_str(&mut buf, target_dtd);
                put_str(&mut buf, xml);
            }
            Request::Translate {
                source_dtd,
                target_dtd,
                query,
            } => {
                buf.push(op::TRANSLATE);
                put_str(&mut buf, source_dtd);
                put_str(&mut buf, target_dtd);
                put_str(&mut buf, query);
            }
            Request::Stats => buf.push(op::STATS),
            Request::Evict {
                source_dtd,
                target_dtd,
            } => {
                buf.push(op::EVICT);
                put_str(&mut buf, source_dtd);
                put_str(&mut buf, target_dtd);
            }
        }
        buf
    }

    /// Decode a frame payload. `Err` carries the structured code to answer
    /// with ([`ErrorCode::Malformed`] or [`ErrorCode::UnknownOpcode`]).
    pub fn decode(payload: &[u8]) -> Result<Request, ErrorCode> {
        let mut c = Cursor::new(payload);
        let opcode = c.u8().ok_or(ErrorCode::Malformed)?;
        let req = match opcode {
            op::COMPILE => Request::Compile {
                source_dtd: c.str().ok_or(ErrorCode::Malformed)?,
                target_dtd: c.str().ok_or(ErrorCode::Malformed)?,
            },
            op::APPLY => Request::Apply {
                source_dtd: c.str().ok_or(ErrorCode::Malformed)?,
                target_dtd: c.str().ok_or(ErrorCode::Malformed)?,
                xml: c.str().ok_or(ErrorCode::Malformed)?,
            },
            op::INVERT => Request::Invert {
                source_dtd: c.str().ok_or(ErrorCode::Malformed)?,
                target_dtd: c.str().ok_or(ErrorCode::Malformed)?,
                xml: c.str().ok_or(ErrorCode::Malformed)?,
            },
            op::TRANSLATE => Request::Translate {
                source_dtd: c.str().ok_or(ErrorCode::Malformed)?,
                target_dtd: c.str().ok_or(ErrorCode::Malformed)?,
                query: c.str().ok_or(ErrorCode::Malformed)?,
            },
            op::STATS => Request::Stats,
            op::EVICT => Request::Evict {
                source_dtd: c.str().ok_or(ErrorCode::Malformed)?,
                target_dtd: c.str().ok_or(ErrorCode::Malformed)?,
            },
            _ => return Err(ErrorCode::UnknownOpcode),
        };
        if !c.done() {
            return Err(ErrorCode::Malformed);
        }
        Ok(req)
    }
}

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Compiled {
                source_hash,
                target_hash,
                size,
            } => {
                buf.push(resp::COMPILED);
                put_str(&mut buf, source_hash);
                put_str(&mut buf, target_hash);
                put_u64(&mut buf, *size);
            }
            Response::Document { xml } => {
                buf.push(resp::DOCUMENT);
                put_str(&mut buf, xml);
            }
            Response::Translated {
                size,
                states,
                plan_hits,
                plan_misses,
            } => {
                buf.push(resp::TRANSLATED);
                put_u64(&mut buf, *size);
                put_u64(&mut buf, *states);
                put_u64(&mut buf, *plan_hits);
                put_u64(&mut buf, *plan_misses);
            }
            Response::Stats(s) => {
                buf.push(resp::STATS);
                for v in [
                    s.hits,
                    s.misses,
                    s.compiles,
                    s.single_flight_waits,
                    s.evictions,
                    s.entries,
                    s.compile_nanos,
                    s.plan_hits,
                    s.plan_misses,
                    s.plan_entries,
                    s.negative_hits,
                ] {
                    put_u64(&mut buf, v);
                }
            }
            Response::Evicted { existed } => {
                buf.push(resp::EVICTED);
                buf.push(u8::from(*existed));
            }
            Response::Error { code, message } => {
                buf.push(resp::ERROR);
                buf.push(code.to_u8());
                put_str(&mut buf, message);
            }
        }
        buf
    }

    /// Decode a frame payload; `None` on any malformation (clients treat
    /// that as a protocol error).
    pub fn decode(payload: &[u8]) -> Option<Response> {
        let mut c = Cursor::new(payload);
        let resp = match c.u8()? {
            resp::COMPILED => Response::Compiled {
                source_hash: c.str()?,
                target_hash: c.str()?,
                size: c.u64()?,
            },
            resp::DOCUMENT => Response::Document { xml: c.str()? },
            resp::TRANSLATED => Response::Translated {
                size: c.u64()?,
                states: c.u64()?,
                plan_hits: c.u64()?,
                plan_misses: c.u64()?,
            },
            resp::STATS => Response::Stats(StatsWire {
                hits: c.u64()?,
                misses: c.u64()?,
                compiles: c.u64()?,
                single_flight_waits: c.u64()?,
                evictions: c.u64()?,
                entries: c.u64()?,
                compile_nanos: c.u64()?,
                plan_hits: c.u64()?,
                plan_misses: c.u64()?,
                plan_entries: c.u64()?,
                negative_hits: c.u64()?,
            }),
            resp::EVICTED => Response::Evicted {
                existed: c.u8()? != 0,
            },
            resp::ERROR => Response::Error {
                code: ErrorCode::from_u8(c.u8()?),
                message: c.str()?,
            },
            _ => return None,
        };
        if !c.done() {
            return None;
        }
        Some(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        assert_eq!(Request::decode(&req.encode()), Ok(req));
    }

    fn roundtrip_resp(resp: Response) {
        assert_eq!(Response::decode(&resp.encode()), Some(resp));
    }

    #[test]
    fn requests_roundtrip() {
        let d = "<!ELEMENT r (a)>".to_string();
        roundtrip_req(Request::Compile {
            source_dtd: d.clone(),
            target_dtd: d.clone(),
        });
        roundtrip_req(Request::Apply {
            source_dtd: d.clone(),
            target_dtd: d.clone(),
            xml: "<r><a/></r>".into(),
        });
        roundtrip_req(Request::Invert {
            source_dtd: d.clone(),
            target_dtd: d.clone(),
            xml: "<r/>".into(),
        });
        roundtrip_req(Request::Translate {
            source_dtd: d.clone(),
            target_dtd: d.clone(),
            query: "//a".into(),
        });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Evict {
            source_dtd: d.clone(),
            target_dtd: d,
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Compiled {
            source_hash: "00ff".into(),
            target_hash: "abcd".into(),
            size: 42,
        });
        roundtrip_resp(Response::Document { xml: "<r/>".into() });
        roundtrip_resp(Response::Translated {
            size: 7,
            states: 3,
            plan_hits: 9,
            plan_misses: 1,
        });
        roundtrip_resp(Response::Stats(StatsWire {
            hits: 1,
            misses: 2,
            compiles: 3,
            single_flight_waits: 4,
            evictions: 5,
            entries: 6,
            compile_nanos: 7,
            plan_hits: 8,
            plan_misses: 9,
            plan_entries: 10,
            negative_hits: 11,
        }));
        roundtrip_resp(Response::Evicted { existed: true });
        roundtrip_resp(Response::Error {
            code: ErrorCode::BadDtd,
            message: "nope".into(),
        });
    }

    #[test]
    fn truncated_payloads_decode_to_malformed() {
        let full = Request::Apply {
            source_dtd: "<!ELEMENT r (a)>".into(),
            target_dtd: "<!ELEMENT r (a)>".into(),
            xml: "<r><a/></r>".into(),
        }
        .encode();
        for cut in [0, 1, 3, full.len() / 2, full.len() - 1] {
            let got = Request::decode(&full[..cut]);
            assert!(
                matches!(got, Err(ErrorCode::Malformed)),
                "cut at {cut}: {got:?}"
            );
        }
        // Trailing garbage is also malformed, not silently ignored.
        let mut padded = full.clone();
        padded.push(0);
        assert_eq!(Request::decode(&padded), Err(ErrorCode::Malformed));
    }

    #[test]
    fn unknown_opcode_is_distinguished() {
        assert_eq!(Request::decode(&[0x7E]), Err(ErrorCode::UnknownOpcode));
    }

    #[test]
    fn frame_layer_roundtrips_and_caps() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, b"hello").unwrap();
        assert_eq!(buf, [&[0, 0, 0, 5, 0, 0, 0, 7][..], b"hello"].concat());
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), (7, b"hello".to_vec()));

        // Id 0 (the legacy marker) round-trips like any other.
        let mut buf = Vec::new();
        write_frame(&mut buf, 0, b"x").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), (0, b"x".to_vec()));

        // Oversized header: rejected before any body bytes are read.
        let mut huge = ((MAX_FRAME_LEN + 1) as u32).to_be_bytes().to_vec();
        huge.extend_from_slice(&9u32.to_be_bytes());
        let mut r = &huge[..];
        assert!(matches!(read_frame(&mut r), Err(FrameError::TooLarge(_))));

        // Oversized payload on the write side: fails loudly (InvalidInput)
        // with nothing written, instead of wrapping the u32 length cast.
        let mut sink = Vec::new();
        let big = vec![0u8; MAX_FRAME_LEN + 1];
        let err = write_frame(&mut sink, 0, &big).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(sink.is_empty());

        // Clean close at a frame boundary vs. close mid-frame are
        // distinguished: the retry policy treats them differently.
        let mut r: &[u8] = &[];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
        // Partial header: the peer died while announcing a frame.
        let mut r: &[u8] = &[0, 0];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
        // Length but no id: still a truncated header.
        let mut r: &[u8] = &[0, 0, 0, 9, 0, 0];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
        // Full header, partial payload: same verdict.
        let mut r: &[u8] = &[0, 0, 0, 9, 0, 0, 0, 1, b'x'];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
    }

    /// A reader that yields some bytes, then reports a socket deadline
    /// expiry (as `WouldBlock`, the Unix spelling).
    struct StallAfter {
        bytes: Vec<u8>,
        at: usize,
    }

    impl Read for StallAfter {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.at == self.bytes.len() {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "stalled"));
            }
            let n = (self.bytes.len() - self.at).min(buf.len());
            buf[..n].copy_from_slice(&self.bytes[self.at..self.at + n]);
            self.at += n;
            Ok(n)
        }
    }

    #[test]
    fn deadline_expiry_distinguishes_idle_from_stalled() {
        // No bytes at all: the peer is idle, not stalled.
        let mut idle = StallAfter {
            bytes: vec![],
            at: 0,
        };
        assert!(matches!(
            read_frame(&mut idle),
            Err(FrameError::TimedOut { mid_frame: false })
        ));
        // Half a header: stalled mid-frame.
        let mut header = StallAfter {
            bytes: vec![0, 0],
            at: 0,
        };
        assert!(matches!(
            read_frame(&mut header),
            Err(FrameError::TimedOut { mid_frame: true })
        ));
        // Full header, partial payload: stalled mid-frame.
        let mut body = StallAfter {
            bytes: vec![0, 0, 0, 4, 0, 0, 0, 1, b'x'],
            at: 0,
        };
        assert!(matches!(
            read_frame(&mut body),
            Err(FrameError::TimedOut { mid_frame: true })
        ));
    }

    #[test]
    fn error_code_taxonomy_roundtrips() {
        // Every known code survives encode→decode inside an error frame,
        // and the wire bytes are pairwise distinct.
        let mut seen = std::collections::HashSet::new();
        for code in ErrorCode::KNOWN {
            assert!(seen.insert(code.to_u8()), "duplicate byte for {code:?}");
            assert_eq!(ErrorCode::from_u8(code.to_u8()), code);
            let resp = Response::Error {
                code,
                message: format!("{code:?}"),
            };
            assert_eq!(Response::decode(&resp.encode()), Some(resp));
        }
        // The new robustness codes are part of the taxonomy.
        assert!(ErrorCode::KNOWN.contains(&ErrorCode::Overloaded));
        assert!(ErrorCode::KNOWN.contains(&ErrorCode::Timeout));

        // Unassigned bytes stay distinguished — and distinguishable from
        // each other — instead of collapsing into a decode failure.
        for b in [0u8, 12, 57, 200, 255] {
            let code = ErrorCode::from_u8(b);
            assert_eq!(code, ErrorCode::Unknown(b));
            assert_eq!(code.to_u8(), b);
            let resp = Response::Error {
                code,
                message: "from the future".into(),
            };
            assert_eq!(Response::decode(&resp.encode()), Some(resp));
        }
        assert_ne!(ErrorCode::from_u8(200), ErrorCode::from_u8(201));
    }

    #[test]
    fn invalid_utf8_is_malformed() {
        // COMPILE with a source string whose bytes are not UTF-8.
        let mut buf = vec![op::COMPILE];
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&[0xFF, 0xFE]);
        buf.extend_from_slice(&0u32.to_be_bytes());
        assert_eq!(Request::decode(&buf), Err(ErrorCode::Malformed));
    }
}
