//! The embedding registry: a concurrent, capacity-bounded cache from DTD
//! pairs to compiled embeddings.
//!
//! # Keying
//!
//! Entries are keyed by [`PairKey`] — the *canonical content hashes*
//! ([`DtdHash`]) of the reduced source and target DTDs — so two clients
//! sending the same schemas with reordered declarations or permuted
//! disjunction alternatives share one cache entry.
//!
//! # Single-flight compilation
//!
//! Discovery is the expensive operation the cache exists to amortize, so
//! the registry guarantees that N concurrent requests for the same
//! uncached pair trigger exactly **one** `find_embedding` run: the first
//! request installs a `Pending` slot and compiles outside the lock; the
//! rest block on a condvar and are counted as
//! [`RegistryStats::single_flight_waits`]. A failed or panicked compile
//! removes the `Pending` slot and wakes all waiters, so a transient
//! failure never wedges the key.
//!
//! # Negative cache
//!
//! Discovery failing is as expensive as discovery succeeding — the search
//! exhausts its restarts either way — so a pair that found no embedding is
//! remembered in a TTL-bounded *negative cache*
//! ([`RegistryConfig::negative_ttl`]): until the entry expires, identical
//! requests fail fast with `NoEmbedding` (counted as
//! [`RegistryStats::negative_hits`]) instead of re-running the search.
//! The TTL keeps the verdict honest under config changes and similarity
//! tweaks; explicit eviction also clears the pair's negative entry, and
//! `negative_ttl: None` disables the cache entirely (every request
//! re-runs discovery).
//!
//! # Eviction
//!
//! When a completed compile pushes the cache over
//! [`RegistryConfig::capacity`], the `Ready` entry with the oldest
//! `last_used` tick is dropped (`Pending` slots are never evicted — someone
//! is waiting on them). Explicit [`EmbeddingRegistry::evict`] uses the same
//! accounting.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use xse_core::{CompiledEmbedding, PlanCacheStats, SimilarityMatrix};
use xse_discovery::{find_embedding, DiscoveryConfig};
use xse_dtd::{Dtd, DtdHash};

use crate::ServiceError;

/// Cache key: canonical content hashes of the (source, target) DTD pair.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PairKey {
    /// Hash of the reduced source DTD.
    pub source: DtdHash,
    /// Hash of the reduced target DTD.
    pub target: DtdHash,
}

/// The registry's default similarity heuristic:
/// [`SimilarityMatrix::by_name`] with a 0.25 fallback. A serving layer
/// only ever sees the two DTD texts, so name agreement is the strongest
/// signal available; the fallback keeps renamed types reachable for the
/// structural search.
pub fn default_similarity(source: &Dtd, target: &Dtd) -> SimilarityMatrix {
    SimilarityMatrix::by_name(source, target, 0.25)
}

/// Registry construction knobs.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Maximum number of cached (`Ready`) embeddings; the least recently
    /// used entry is evicted when a compile exceeds it. Minimum 1.
    pub capacity: usize,
    /// Discovery configuration used for every compile.
    pub discovery: DiscoveryConfig,
    /// Builds the similarity matrix `att` for each compile (default:
    /// [`default_similarity`]).
    pub sim: fn(&Dtd, &Dtd) -> SimilarityMatrix,
    /// How long a failed discovery verdict is remembered: until it
    /// expires, identical requests return `NoEmbedding` without re-running
    /// the search. `None` disables negative caching.
    pub negative_ttl: Option<Duration>,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            capacity: 64,
            discovery: DiscoveryConfig::default(),
            sim: default_similarity,
            negative_ttl: Some(Duration::from_secs(30)),
        }
    }
}

/// Aggregate registry counters (a point-in-time snapshot).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct RegistryStats {
    /// Requests served from a cached embedding.
    pub hits: u64,
    /// Requests that found no entry and started a compile.
    pub misses: u64,
    /// Compiles that completed successfully.
    pub compiles: u64,
    /// Requests that blocked on another request's in-flight compile
    /// (neither a hit nor a miss).
    pub single_flight_waits: u64,
    /// Entries dropped (LRU pressure + explicit evictions).
    pub evictions: u64,
    /// `Ready` entries currently cached.
    pub entries: u64,
    /// Total wall-clock nanoseconds spent inside `find_embedding`.
    pub compile_nanos: u64,
    /// Translation-plan cache hits summed over live engines *plus* every
    /// engine evicted so far (plan counters are folded into a retired
    /// accumulator when their engine leaves the cache, so the aggregate
    /// never goes backwards).
    pub plan_hits: u64,
    /// Translation-plan cache misses, accumulated the same way.
    pub plan_misses: u64,
    /// Plans currently cached across live engines (evicting an engine
    /// drops its plans, so this *does* shrink on eviction).
    pub plan_entries: u64,
    /// Requests answered `NoEmbedding` from an unexpired negative-cache
    /// entry (the full discovery search was skipped).
    pub negative_hits: u64,
}

impl RegistryStats {
    /// Fraction of resolution requests served from cache:
    /// `hits / (hits + misses + single_flight_waits)`; `0.0` when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.single_flight_waits;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of translations served from a cached plan:
    /// `plan_hits / (plan_hits + plan_misses)`; `0.0` when idle.
    pub fn plan_hit_rate(&self) -> f64 {
        let total = self.plan_hits + self.plan_misses;
        if total == 0 {
            0.0
        } else {
            self.plan_hits as f64 / total as f64
        }
    }
}

/// Per-entry counters, exposed by [`EmbeddingRegistry::entry_stats`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EntryStats {
    /// Times this entry served a request after its compile.
    pub hits: u64,
    /// Wall-clock nanoseconds its compile took.
    pub compile_nanos: u64,
    /// LRU tick of the most recent use (higher = more recent).
    pub last_used: u64,
    /// The engine's translation-plan cache counters.
    pub plan: PlanCacheStats,
}

struct Entry {
    engine: Arc<CompiledEmbedding>,
    hits: u64,
    compile_nanos: u64,
    last_used: u64,
}

enum Slot {
    /// A compile for this key is in flight; waiters sleep on the condvar.
    Pending,
    Ready(Entry),
}

/// Cap on the text → hash memo ([`Inner::text_keys`]); the memo is
/// cleared wholesale when full (texts re-canonicalize on their next use),
/// bounding memory against clients that stream never-repeating DTD texts.
const TEXT_KEY_CAP: usize = 1024;

/// Cap on the negative cache ([`Inner::negative`]); when full, expired
/// entries are purged and, if still full, the entry expiring soonest is
/// dropped — failing discovery again is correct, just slower.
const NEGATIVE_CAP: usize = 256;

#[derive(Default)]
struct Inner {
    map: HashMap<PairKey, Slot>,
    /// Pairs whose discovery failed, mapped to the verdict's expiry.
    negative: HashMap<PairKey, Instant>,
    negative_hits: u64,
    /// Memo: exact DTD text → canonical hash. The warm path resolves both
    /// texts here with two string lookups, skipping the parse + reduce +
    /// canonical-serialization work entirely; only texts never seen before
    /// (or evicted from the memo) pay it.
    text_keys: HashMap<String, DtdHash>,
    tick: u64,
    hits: u64,
    misses: u64,
    compiles: u64,
    single_flight_waits: u64,
    evictions: u64,
    compile_nanos: u64,
    /// Plan-cache hit/miss totals of engines already evicted; folded in by
    /// [`Inner::retire`] so aggregate plan stats survive eviction.
    retired_plan_hits: u64,
    retired_plan_misses: u64,
}

impl Inner {
    fn ready_count(&self) -> usize {
        self.map
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// Remove `key`, folding the entry's plan counters into the retired
    /// accumulators. Evicting the engine drops its `Arc` (and with it the
    /// plan cache, once outstanding clones go away) — the counters are the
    /// only thing that outlives it.
    fn retire(&mut self, key: PairKey) {
        if let Some(Slot::Ready(e)) = self.map.remove(&key) {
            let plan = e.engine.plan_stats();
            self.retired_plan_hits += plan.hits;
            self.retired_plan_misses += plan.misses;
        }
        self.evictions += 1;
    }

    /// Record a failed-discovery verdict, bounding the negative cache at
    /// [`NEGATIVE_CAP`].
    fn note_failure(&mut self, key: PairKey, expiry: Instant) {
        if self.negative.len() >= NEGATIVE_CAP && !self.negative.contains_key(&key) {
            let now = Instant::now();
            self.negative.retain(|_, e| *e > now);
            if self.negative.len() >= NEGATIVE_CAP {
                let soonest = self
                    .negative
                    .iter()
                    .min_by_key(|&(_, e)| *e)
                    .map(|(k, _)| *k);
                if let Some(k) = soonest {
                    self.negative.remove(&k);
                }
            }
        }
        self.negative.insert(key, expiry);
    }

    /// Evict `Ready` entries (never `keep`) until at most `capacity` remain.
    fn enforce_capacity(&mut self, capacity: usize, keep: PairKey) {
        while self.ready_count() > capacity {
            let victim = self
                .map
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready(e) if *k != keep => Some((*k, e.last_used)),
                    _ => None,
                })
                .min_by_key(|&(_, used)| used)
                .map(|(k, _)| k);
            match victim {
                Some(k) => self.retire(k),
                // Only `keep` and pendings are left; nothing evictable.
                None => break,
            }
        }
    }
}

/// Concurrent map from DTD pairs to compiled embeddings, with
/// single-flight compilation and LRU eviction. See the [module
/// docs](self) for the design.
pub struct EmbeddingRegistry {
    inner: Mutex<Inner>,
    compiled: Condvar,
    config: RegistryConfig,
}

/// Removes the `Pending` slot if the compile unwinds or fails, so waiters
/// are never left sleeping on a key nobody is working on.
struct PendingGuard<'a> {
    registry: &'a EmbeddingRegistry,
    key: PairKey,
    armed: bool,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut inner = self.registry.inner.lock().unwrap();
            if matches!(inner.map.get(&self.key), Some(Slot::Pending)) {
                inner.map.remove(&self.key);
            }
            drop(inner);
            self.registry.compiled.notify_all();
        }
    }
}

impl EmbeddingRegistry {
    /// An empty registry with the given configuration (`capacity` is
    /// clamped to at least 1).
    pub fn new(mut config: RegistryConfig) -> Self {
        config.capacity = config.capacity.max(1);
        EmbeddingRegistry {
            inner: Mutex::new(Inner::default()),
            compiled: Condvar::new(),
            config,
        }
    }

    /// The registry's configuration.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    /// Parse both DTD texts and return the pair's cache key without
    /// touching the cache.
    pub fn key_for(source_dtd: &str, target_dtd: &str) -> Result<PairKey, ServiceError> {
        let source = parse_dtd(source_dtd, "source")?;
        let target = parse_dtd(target_dtd, "target")?;
        Ok(PairKey {
            source: source.content_hash(),
            target: target.content_hash(),
        })
    }

    /// Resolve the pair to a compiled embedding: cache hit, single-flight
    /// wait, or a fresh `find_embedding` run.
    ///
    /// # Errors
    /// [`ServiceError::BadDtd`] when either text fails to parse,
    /// [`ServiceError::NoEmbedding`] when discovery exhausts its restarts
    /// without finding an information-preserving embedding — remembered in
    /// the negative cache for [`RegistryConfig::negative_ttl`], after
    /// which an identical request re-runs the search.
    pub fn get_or_compile(
        &self,
        source_dtd: &str,
        target_dtd: &str,
    ) -> Result<(PairKey, Arc<CompiledEmbedding>), ServiceError> {
        // Resolve texts to the canonical key via the memo when possible;
        // `parsed` stays None on the memoized path and is only needed if
        // this request ends up compiling.
        let memo_key = {
            let inner = self.inner.lock().unwrap();
            match (
                inner.text_keys.get(source_dtd),
                inner.text_keys.get(target_dtd),
            ) {
                (Some(&s), Some(&t)) => Some(PairKey {
                    source: s,
                    target: t,
                }),
                _ => None,
            }
        };
        let (key, mut parsed) = match memo_key {
            Some(key) => (key, None),
            None => {
                let source = parse_dtd(source_dtd, "source")?;
                let target = parse_dtd(target_dtd, "target")?;
                let key = PairKey {
                    source: source.content_hash(),
                    target: target.content_hash(),
                };
                let mut inner = self.inner.lock().unwrap();
                if inner.text_keys.len() + 2 > TEXT_KEY_CAP {
                    inner.text_keys.clear();
                }
                inner.text_keys.insert(source_dtd.to_string(), key.source);
                inner.text_keys.insert(target_dtd.to_string(), key.target);
                (key, Some((source, target)))
            }
        };

        let mut waited = false;
        {
            enum SlotState {
                Ready,
                Pending,
                Absent,
            }
            let mut inner = self.inner.lock().unwrap();
            loop {
                let state = match inner.map.get(&key) {
                    Some(Slot::Ready(_)) => SlotState::Ready,
                    Some(Slot::Pending) => SlotState::Pending,
                    None => SlotState::Absent,
                };
                if matches!(state, SlotState::Ready) {
                    inner.tick += 1;
                    // A thread that slept on the in-flight compile was
                    // already counted as a single-flight wait — counting
                    // the aggregate hit too would double-count the request
                    // and inflate hit_rate(). Per-entry usage still ticks.
                    if !waited {
                        inner.hits += 1;
                    }
                    let tick = inner.tick;
                    let Some(Slot::Ready(e)) = inner.map.get_mut(&key) else {
                        unreachable!("slot changed under the lock");
                    };
                    e.hits += 1;
                    e.last_used = tick;
                    return Ok((key, Arc::clone(&e.engine)));
                }
                if matches!(state, SlotState::Pending) {
                    if !waited {
                        waited = true;
                        inner.single_flight_waits += 1;
                    }
                    inner = self.compiled.wait(inner).unwrap();
                } else {
                    // Absent: consult the negative cache before paying for
                    // a doomed search.
                    if let Some(&expiry) = inner.negative.get(&key) {
                        if Instant::now() < expiry {
                            inner.negative_hits += 1;
                            return Err(ServiceError::NoEmbedding);
                        }
                        inner.negative.remove(&key);
                    }
                    inner.misses += 1;
                    inner.map.insert(key, Slot::Pending);
                    break;
                }
            }
        }

        // We own the Pending slot; compile outside the lock. The memoized
        // path skipped parsing — do it now (both texts parsed successfully
        // when they entered the memo, but propagate errors regardless).
        let mut guard = PendingGuard {
            registry: self,
            key,
            armed: true,
        };
        let (source, target) = match parsed.take() {
            Some(pair) => pair,
            None => (
                parse_dtd(source_dtd, "source")?,
                parse_dtd(target_dtd, "target")?,
            ),
        };
        let att = (self.config.sim)(&source, &target);
        let t0 = Instant::now();
        let found = find_embedding(&source, &target, &att, &self.config.discovery);
        let nanos = t0.elapsed().as_nanos() as u64;

        let Some(embedding) = found else {
            // Record the verdict *before* the guard's Drop removes the
            // Pending slot and wakes waiters, so woken threads observe the
            // negative entry instead of racing into their own searches.
            if let Some(ttl) = self.config.negative_ttl {
                let mut inner = self.inner.lock().unwrap();
                inner.note_failure(key, Instant::now() + ttl);
            }
            return Err(ServiceError::NoEmbedding);
        };
        guard.armed = false;

        let engine = Arc::new(embedding);
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        inner.compiles += 1;
        inner.compile_nanos += nanos;
        inner.map.insert(
            key,
            Slot::Ready(Entry {
                engine: Arc::clone(&engine),
                hits: 0,
                compile_nanos: nanos,
                last_used: tick,
            }),
        );
        inner.enforce_capacity(self.config.capacity, key);
        drop(inner);
        self.compiled.notify_all();
        Ok((key, engine))
    }

    /// Drop the pair's cached embedding — and its negative-cache entry, so
    /// eviction always forces a fresh discovery run. Returns whether a
    /// *compiled* entry existed (`Pending` slots are left alone and
    /// reported as absent, as is a purely negative entry).
    ///
    /// # Errors
    /// [`ServiceError::BadDtd`] when either text fails to parse.
    pub fn evict(&self, source_dtd: &str, target_dtd: &str) -> Result<bool, ServiceError> {
        let key = Self::key_for(source_dtd, target_dtd)?;
        Ok(self.evict_key(key))
    }

    /// [`EmbeddingRegistry::evict`] by precomputed key.
    pub fn evict_key(&self, key: PairKey) -> bool {
        let mut inner = self.inner.lock().unwrap();
        inner.negative.remove(&key);
        if matches!(inner.map.get(&key), Some(Slot::Ready(_))) {
            inner.retire(key);
            true
        } else {
            false
        }
    }

    /// Point-in-time aggregate counters. Plan counters sum the live
    /// engines' caches plus the retired totals of evicted engines.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock().unwrap();
        let mut plan_hits = inner.retired_plan_hits;
        let mut plan_misses = inner.retired_plan_misses;
        let mut plan_entries = 0;
        for slot in inner.map.values() {
            if let Slot::Ready(e) = slot {
                let plan = e.engine.plan_stats();
                plan_hits += plan.hits;
                plan_misses += plan.misses;
                plan_entries += plan.entries;
            }
        }
        RegistryStats {
            hits: inner.hits,
            misses: inner.misses,
            compiles: inner.compiles,
            single_flight_waits: inner.single_flight_waits,
            evictions: inner.evictions,
            entries: inner.ready_count() as u64,
            compile_nanos: inner.compile_nanos,
            plan_hits,
            plan_misses,
            plan_entries,
            negative_hits: inner.negative_hits,
        }
    }

    /// Per-entry counters for every cached embedding (unordered).
    pub fn entry_stats(&self) -> Vec<(PairKey, EntryStats)> {
        let inner = self.inner.lock().unwrap();
        inner
            .map
            .iter()
            .filter_map(|(k, s)| match s {
                Slot::Ready(e) => Some((
                    *k,
                    EntryStats {
                        hits: e.hits,
                        compile_nanos: e.compile_nanos,
                        last_used: e.last_used,
                        plan: e.engine.plan_stats(),
                    },
                )),
                Slot::Pending => None,
            })
            .collect()
    }
}

fn parse_dtd(text: &str, which: &'static str) -> Result<Dtd, ServiceError> {
    Dtd::parse(text).map_err(|e| ServiceError::BadDtd(format!("{which} DTD: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Identity-embeddable pair: the wrap fixture from the core crate's
    /// tests, rendered as DTD text.
    fn wrap_pair() -> (String, String) {
        let s1 = "<!ELEMENT r (a, b)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (c*)>\n<!ELEMENT c (#PCDATA)>";
        let s2 = "<!ELEMENT r (x, y)>\n<!ELEMENT x (a)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT y (w)>\n<!ELEMENT w (c2*)>\n<!ELEMENT c2 (c)>\n<!ELEMENT c (#PCDATA)>";
        (s1.to_string(), s2.to_string())
    }

    fn small_registry_ttl(capacity: usize, negative_ttl: Option<Duration>) -> EmbeddingRegistry {
        EmbeddingRegistry::new(RegistryConfig {
            capacity,
            discovery: DiscoveryConfig {
                threads: 1,
                ..DiscoveryConfig::default()
            },
            negative_ttl,
            ..RegistryConfig::default()
        })
    }

    fn small_registry(capacity: usize) -> EmbeddingRegistry {
        small_registry_ttl(capacity, RegistryConfig::default().negative_ttl)
    }

    /// A pair with no information-preserving embedding: the source demands
    /// two distinct #PCDATA children; a single-type target has nowhere
    /// injective to put them.
    fn impossible_pair() -> (&'static str, &'static str) {
        (
            "<!ELEMENT r (a, b)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (#PCDATA)>",
            "<!ELEMENT r (#PCDATA)>",
        )
    }

    #[test]
    fn hit_after_miss_shares_the_arc() {
        let reg = small_registry(4);
        let (s, t) = wrap_pair();
        let (k1, e1) = reg.get_or_compile(&s, &t).unwrap();
        let (k2, e2) = reg.get_or_compile(&s, &t).unwrap();
        assert_eq!(k1, k2);
        assert!(Arc::ptr_eq(&e1, &e2));
        let st = reg.stats();
        assert_eq!((st.hits, st.misses, st.compiles), (1, 1, 1));
        assert_eq!(st.entries, 1);
        assert!(st.compile_nanos > 0);
        assert!(st.hit_rate() > 0.49 && st.hit_rate() < 0.51);
    }

    #[test]
    fn permuted_dtd_text_is_the_same_key() {
        let reg = small_registry(4);
        let (s, t) = wrap_pair();
        // Same source schema, declarations listed in a different order
        // (root stays first — the parser roots at the first declaration).
        let s_permuted =
            "<!ELEMENT r (a, b)>\n<!ELEMENT b (c*)>\n<!ELEMENT c (#PCDATA)>\n<!ELEMENT a (#PCDATA)>";
        let (_, e1) = reg.get_or_compile(&s, &t).unwrap();
        let (_, e2) = reg.get_or_compile(s_permuted, &t).unwrap();
        assert!(Arc::ptr_eq(&e1, &e2), "permuted DTD text missed the cache");
        assert_eq!(reg.stats().compiles, 1);
    }

    #[test]
    fn bad_dtd_is_rejected_and_not_cached() {
        let reg = small_registry(4);
        let (s, _) = wrap_pair();
        let err = reg.get_or_compile(&s, "<!ELEMENT").unwrap_err();
        assert!(matches!(err, ServiceError::BadDtd(_)), "{err:?}");
        assert_eq!(reg.stats().misses, 0);
        assert_eq!(reg.stats().entries, 0);
    }

    #[test]
    fn failed_discovery_is_negatively_cached_until_ttl() {
        let reg = small_registry(4);
        let (s, t) = impossible_pair();
        for _ in 0..3 {
            let err = reg.get_or_compile(s, t).unwrap_err();
            assert!(matches!(err, ServiceError::NoEmbedding), "{err:?}");
        }
        let st = reg.stats();
        // Only the first attempt searched; the rest hit the negative cache.
        assert_eq!(st.misses, 1, "{st:?}");
        assert_eq!(st.negative_hits, 2, "{st:?}");
        assert_eq!(st.entries, 0);
        assert_eq!(st.compiles, 0);
    }

    #[test]
    fn negative_entry_expires_after_its_ttl() {
        let reg = small_registry_ttl(4, Some(Duration::from_millis(40)));
        let (s, t) = impossible_pair();
        reg.get_or_compile(s, t).unwrap_err();
        std::thread::sleep(Duration::from_millis(60));
        reg.get_or_compile(s, t).unwrap_err();
        let st = reg.stats();
        // The verdict expired, so the second attempt re-ran the search.
        assert_eq!(st.misses, 2, "{st:?}");
        assert_eq!(st.negative_hits, 0, "{st:?}");
    }

    #[test]
    fn disabling_the_negative_ttl_retries_every_request() {
        let reg = small_registry_ttl(4, None);
        let (s, t) = impossible_pair();
        for _ in 0..2 {
            let err = reg.get_or_compile(s, t).unwrap_err();
            assert!(matches!(err, ServiceError::NoEmbedding), "{err:?}");
        }
        let st = reg.stats();
        assert_eq!(st.misses, 2);
        assert_eq!(st.negative_hits, 0);
        assert_eq!(st.entries, 0);
        assert_eq!(st.compiles, 0);
    }

    #[test]
    fn evict_clears_the_negative_entry() {
        let reg = small_registry(4);
        let (s, t) = impossible_pair();
        reg.get_or_compile(s, t).unwrap_err();
        // No compiled entry existed, so evict reports false — but it still
        // clears the negative verdict, forcing a fresh search.
        assert!(!reg.evict(s, t).unwrap());
        reg.get_or_compile(s, t).unwrap_err();
        let st = reg.stats();
        assert_eq!(st.misses, 2, "{st:?}");
        assert_eq!(st.negative_hits, 0, "{st:?}");
    }

    #[test]
    fn lru_evicts_the_oldest_entry() {
        let reg = small_registry(2);
        // Three distinct identity pairs (a schema always embeds into
        // itself), so each compiles under its own key.
        let schemas = [
            "<!ELEMENT r (a)>\n<!ELEMENT a (#PCDATA)>",
            "<!ELEMENT r (b)>\n<!ELEMENT b (#PCDATA)>",
            "<!ELEMENT r (c)>\n<!ELEMENT c (#PCDATA)>",
        ];
        let k0 = reg.get_or_compile(schemas[0], schemas[0]).unwrap().0;
        let k1 = reg.get_or_compile(schemas[1], schemas[1]).unwrap().0;
        assert_ne!(k0, k1);
        // Touch k0 so k1 becomes the LRU victim.
        reg.get_or_compile(schemas[0], schemas[0]).unwrap();
        let k2 = reg.get_or_compile(schemas[2], schemas[2]).unwrap().0;
        assert_ne!(k2, k0);
        assert_ne!(k2, k1);
        let st = reg.stats();
        assert_eq!(st.entries, 2, "{st:?}");
        assert_eq!(st.evictions, 1, "{st:?}");
        // k0 (recently touched) and k2 (new) survive; k1 is gone.
        let keys: Vec<PairKey> = reg.entry_stats().into_iter().map(|(k, _)| k).collect();
        assert!(keys.contains(&k0) && keys.contains(&k2) && !keys.contains(&k1));
    }

    #[test]
    fn explicit_evict_roundtrip() {
        let reg = small_registry(4);
        let (s, t) = wrap_pair();
        reg.get_or_compile(&s, &t).unwrap();
        assert!(reg.evict(&s, &t).unwrap());
        assert!(!reg.evict(&s, &t).unwrap(), "double evict must be a no-op");
        let st = reg.stats();
        assert_eq!(st.entries, 0);
        assert_eq!(st.evictions, 1);
        // Recompile works and bumps the compile counter.
        reg.get_or_compile(&s, &t).unwrap();
        assert_eq!(reg.stats().compiles, 2);
    }

    #[test]
    fn plan_counters_survive_eviction() {
        let reg = small_registry(4);
        let (s, t) = wrap_pair();
        let (_, engine) = reg.get_or_compile(&s, &t).unwrap();
        let q = xse_rxpath::parse_query("b/c").unwrap();
        engine.translate(&q).unwrap(); // compile miss
        engine.translate(&q).unwrap(); // cached hit
        let st = reg.stats();
        assert_eq!((st.plan_hits, st.plan_misses, st.plan_entries), (1, 1, 1));
        let per_entry = reg.entry_stats();
        assert_eq!(per_entry.len(), 1);
        assert_eq!(per_entry[0].1.plan.entries, 1);

        // Eviction drops the plans but folds the hit/miss totals into the
        // registry-wide aggregate.
        assert!(reg.evict(&s, &t).unwrap());
        let st = reg.stats();
        assert_eq!(
            (st.plan_hits, st.plan_misses, st.plan_entries),
            (1, 1, 0),
            "{st:?}"
        );

        // A recompiled engine starts cold and keeps accumulating on top.
        let (_, fresh) = reg.get_or_compile(&s, &t).unwrap();
        assert!(!Arc::ptr_eq(&engine, &fresh));
        fresh.translate(&q).unwrap();
        fresh.translate(&q).unwrap();
        let st = reg.stats();
        assert_eq!((st.plan_hits, st.plan_misses, st.plan_entries), (2, 2, 1));
        assert!(st.plan_hit_rate() > 0.49 && st.plan_hit_rate() < 0.51);
    }

    #[test]
    fn sixteen_concurrent_requests_compile_once() {
        let reg = std::sync::Arc::new(small_registry(4));
        let (s, t) = wrap_pair();
        let go = std::sync::Barrier::new(16);
        let engines: Vec<Arc<CompiledEmbedding>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..16)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    let (s, t) = (s.clone(), t.clone());
                    let go = &go;
                    scope.spawn(move || {
                        go.wait();
                        reg.get_or_compile(&s, &t).unwrap().1
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Exactly one compile; every thread got the same Arc.
        let st = reg.stats();
        assert_eq!(st.compiles, 1, "{st:?}");
        assert_eq!(st.misses, 1, "{st:?}");
        assert_eq!(st.hits + st.single_flight_waits, 15, "{st:?}");
        for e in &engines[1..] {
            assert!(Arc::ptr_eq(&engines[0], e));
        }
    }

    #[test]
    fn failed_compile_wakes_waiters() {
        // All 8 threads race an impossible pair; every one must return
        // NoEmbedding (none may hang on a dropped Pending slot).
        let reg = Arc::new(small_registry(4));
        let s = "<!ELEMENT r (a, b)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (#PCDATA)>";
        let t = "<!ELEMENT r (#PCDATA)>";
        let failures = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let reg = Arc::clone(&reg);
                let failures = &failures;
                scope.spawn(move || {
                    if matches!(reg.get_or_compile(s, t), Err(ServiceError::NoEmbedding)) {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(failures.load(Ordering::Relaxed), 8);
        assert_eq!(reg.stats().entries, 0);
    }
}
