//! The embedding registry: a concurrent, capacity-bounded cache from DTD
//! pairs to compiled embeddings.
//!
//! # Keying
//!
//! Entries are keyed by [`PairKey`] — the *canonical content hashes*
//! ([`DtdHash`]) of the reduced source and target DTDs — so two clients
//! sending the same schemas with reordered declarations or permuted
//! disjunction alternatives share one cache entry.
//!
//! # Sharding
//!
//! The registry is **lock-striped**: entries are distributed over
//! [`RegistryConfig::shards`] independent shards by a stable mix of the
//! pair's two content hashes. Each shard owns its own mutex, condvar,
//! single-flight set, and negative cache, so a compile or eviction on one
//! shard never blocks requests routed to another. `shards: 1` restores
//! the seed's single-lock behavior exactly.
//!
//! # The warm fast path
//!
//! A warm hit never takes a shard mutex at all. Each shard keeps its
//! `Ready` entries in a reader-writer table whose writers only touch it
//! for the brief map insert/remove (never during a compile), so a warm
//! lookup is: one shared read-lock acquisition, an `Arc` clone, and a few
//! relaxed atomic counter bumps. A warm hit therefore cannot block behind
//! an in-flight compile — not even one for another pair on the same
//! shard.
//!
//! # Single-flight compilation
//!
//! Discovery is the expensive operation the cache exists to amortize, so
//! each shard guarantees that N concurrent requests for the same uncached
//! pair trigger exactly **one** `find_embedding` run: the first request
//! installs the key in the shard's pending set and compiles outside the
//! lock; the rest block on the shard condvar and are counted as
//! [`RegistryStats::single_flight_waits`]. A failed or panicked compile
//! removes the pending mark and wakes all waiters, so a transient
//! failure never wedges the key.
//!
//! # Negative cache
//!
//! Discovery failing is as expensive as discovery succeeding — the search
//! exhausts its restarts either way — so a pair that found no embedding is
//! remembered in a TTL-bounded *negative cache*
//! ([`RegistryConfig::negative_ttl`]): until the entry expires, identical
//! requests fail fast with `NoEmbedding` (counted as
//! [`RegistryStats::negative_hits`]) instead of re-running the search.
//! The TTL keeps the verdict honest under config changes and similarity
//! tweaks; explicit eviction also clears the pair's negative entry, and
//! `negative_ttl: None` disables the cache entirely (every request
//! re-runs discovery).
//!
//! # Weighted eviction
//!
//! Capacity is striped: each shard holds at most
//! `⌈capacity / shards⌉` `Ready` entries. When a completed compile pushes
//! a shard over that bound, the victim is chosen by **compile-cost ×
//! recency**: entries are grouped into recency generations (the power-of-
//! two bucket of their age in shard ticks), the stalest generation loses
//! first, and within a generation the entry that was *cheapest to
//! compile* is dropped — recompiling it costs the least. Pending
//! (in-flight) keys live outside the `Ready` table and are structurally
//! impossible to evict. Explicit [`EmbeddingRegistry::evict`] uses the
//! same accounting.
//!
//! # Stats
//!
//! [`EmbeddingRegistry::stats`] merges per-shard snapshots (each taken
//! under that shard's mutex) into one [`RegistryStats`]. Every counter is
//! per-shard monotone — eviction folds an engine's plan counters into the
//! shard's retired accumulators *under the shard lock, in the same
//! critical section that removes the entry* — so the merged aggregate
//! never goes backwards even when two shards evict concurrently.
//! [`EmbeddingRegistry::shard_stats`] exposes the unmerged per-shard
//! snapshots.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use xse_core::{CompiledEmbedding, PlanCacheStats, SimilarityMatrix};
use xse_discovery::{find_embedding, DiscoveryConfig};
use xse_dtd::{Dtd, DtdHash};

use crate::ServiceError;

/// Cache key: canonical content hashes of the (source, target) DTD pair.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PairKey {
    /// Hash of the reduced source DTD.
    pub source: DtdHash,
    /// Hash of the reduced target DTD.
    pub target: DtdHash,
}

/// The registry's default similarity heuristic:
/// [`SimilarityMatrix::by_name`] with a 0.25 fallback. A serving layer
/// only ever sees the two DTD texts, so name agreement is the strongest
/// signal available; the fallback keeps renamed types reachable for the
/// structural search.
pub fn default_similarity(source: &Dtd, target: &Dtd) -> SimilarityMatrix {
    SimilarityMatrix::by_name(source, target, 0.25)
}

/// Registry construction knobs.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Maximum number of cached (`Ready`) embeddings. The bound is
    /// striped: each shard holds at most `⌈capacity / shards⌉` entries,
    /// so the effective total is `capacity` rounded up to a multiple of
    /// the shard count. Minimum 1.
    pub capacity: usize,
    /// Number of lock stripes. Requests for different pairs on different
    /// shards never contend on a mutex; `1` restores the seed's
    /// single-lock behavior exactly. Minimum 1, default 8.
    pub shards: usize,
    /// Discovery configuration used for every compile.
    pub discovery: DiscoveryConfig,
    /// Builds the similarity matrix `att` for each compile (default:
    /// [`default_similarity`]).
    pub sim: fn(&Dtd, &Dtd) -> SimilarityMatrix,
    /// How long a failed discovery verdict is remembered: until it
    /// expires, identical requests return `NoEmbedding` without re-running
    /// the search. `None` disables negative caching.
    pub negative_ttl: Option<Duration>,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            capacity: 64,
            shards: 8,
            discovery: DiscoveryConfig::default(),
            sim: default_similarity,
            negative_ttl: Some(Duration::from_secs(30)),
        }
    }
}

/// Aggregate registry counters (a point-in-time snapshot).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct RegistryStats {
    /// Requests served from a cached embedding.
    pub hits: u64,
    /// Requests that found no entry and started a compile.
    pub misses: u64,
    /// Compiles that completed successfully.
    pub compiles: u64,
    /// Requests that blocked on another request's in-flight compile
    /// (neither a hit nor a miss).
    pub single_flight_waits: u64,
    /// Entries dropped (capacity pressure + explicit evictions).
    pub evictions: u64,
    /// `Ready` entries currently cached.
    pub entries: u64,
    /// Total wall-clock nanoseconds spent inside `find_embedding`.
    pub compile_nanos: u64,
    /// Translation-plan cache hits summed over live engines *plus* every
    /// engine evicted so far (plan counters are folded into a retired
    /// accumulator when their engine leaves the cache, so the aggregate
    /// never goes backwards).
    pub plan_hits: u64,
    /// Translation-plan cache misses, accumulated the same way.
    pub plan_misses: u64,
    /// Plans currently cached across live engines (evicting an engine
    /// drops its plans, so this *does* shrink on eviction).
    pub plan_entries: u64,
    /// Requests answered `NoEmbedding` from an unexpired negative-cache
    /// entry (the full discovery search was skipped).
    pub negative_hits: u64,
}

impl RegistryStats {
    /// Fraction of resolution requests served from cache:
    /// `hits / (hits + misses + single_flight_waits)`; `0.0` when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.single_flight_waits;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of translations served from a cached plan:
    /// `plan_hits / (plan_hits + plan_misses)`; `0.0` when idle.
    pub fn plan_hit_rate(&self) -> f64 {
        let total = self.plan_hits + self.plan_misses;
        if total == 0 {
            0.0
        } else {
            self.plan_hits as f64 / total as f64
        }
    }
}

/// Field-wise sum, so `shard_stats()` snapshots fold into the aggregate
/// `stats()` view.
impl std::ops::Add for RegistryStats {
    type Output = RegistryStats;

    fn add(self, rhs: RegistryStats) -> RegistryStats {
        RegistryStats {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            compiles: self.compiles + rhs.compiles,
            single_flight_waits: self.single_flight_waits + rhs.single_flight_waits,
            evictions: self.evictions + rhs.evictions,
            entries: self.entries + rhs.entries,
            compile_nanos: self.compile_nanos + rhs.compile_nanos,
            plan_hits: self.plan_hits + rhs.plan_hits,
            plan_misses: self.plan_misses + rhs.plan_misses,
            plan_entries: self.plan_entries + rhs.plan_entries,
            negative_hits: self.negative_hits + rhs.negative_hits,
        }
    }
}

/// Per-entry counters, exposed by [`EmbeddingRegistry::entry_stats`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EntryStats {
    /// Times this entry served a request after its compile.
    pub hits: u64,
    /// Wall-clock nanoseconds its compile took.
    pub compile_nanos: u64,
    /// Shard tick of the most recent use (higher = more recent).
    pub last_used: u64,
    /// The engine's translation-plan cache counters.
    pub plan: PlanCacheStats,
}

/// A `Ready` entry in a shard's reader-writer table. Usage counters are
/// relaxed atomics so the warm path can bump them under a shared read
/// lock.
struct FastEntry {
    engine: Arc<CompiledEmbedding>,
    hits: AtomicU64,
    last_used: AtomicU64,
    compile_nanos: u64,
}

/// Cap on the text → hash memo; the memo is cleared wholesale when full
/// (texts re-canonicalize on their next use), bounding memory against
/// clients that stream never-repeating DTD texts.
const TEXT_KEY_CAP: usize = 1024;

/// Per-shard cap on the negative cache; when full, expired entries are
/// purged and, if still full, the entry expiring soonest is dropped —
/// failing discovery again is correct, just slower.
const NEGATIVE_CAP: usize = 256;

/// Shard state that needs the mutex: single-flight bookkeeping, the
/// negative cache, and the monotone counters that aren't hot enough to
/// justify atomics.
#[derive(Default)]
struct ShardInner {
    /// Keys with a compile in flight; waiters sleep on the shard condvar.
    /// Pending keys are *not* in the `Ready` table, so eviction can never
    /// select one.
    pending: HashSet<PairKey>,
    /// Pairs whose discovery failed, mapped to the verdict's expiry.
    negative: HashMap<PairKey, Instant>,
    negative_hits: u64,
    misses: u64,
    compiles: u64,
    single_flight_waits: u64,
    evictions: u64,
    compile_nanos: u64,
    /// Plan-cache hit/miss totals of engines already evicted; folded in by
    /// [`Shard::retire_locked`] so aggregate plan stats survive eviction.
    retired_plan_hits: u64,
    retired_plan_misses: u64,
}

impl ShardInner {
    /// Record a failed-discovery verdict, bounding the negative cache at
    /// [`NEGATIVE_CAP`].
    fn note_failure(&mut self, key: PairKey, expiry: Instant) {
        if self.negative.len() >= NEGATIVE_CAP && !self.negative.contains_key(&key) {
            let now = Instant::now();
            self.negative.retain(|_, e| *e > now);
            if self.negative.len() >= NEGATIVE_CAP {
                let soonest = self
                    .negative
                    .iter()
                    .min_by_key(|&(_, e)| *e)
                    .map(|(k, _)| *k);
                if let Some(k) = soonest {
                    self.negative.remove(&k);
                }
            }
        }
        self.negative.insert(key, expiry);
    }
}

struct Shard {
    /// The `Ready` table: the only state the warm path touches.
    fast: RwLock<HashMap<PairKey, Arc<FastEntry>>>,
    inner: Mutex<ShardInner>,
    compiled: Condvar,
    /// Recency clock, bumped on every touch. Atomic so the lock-free warm
    /// path can advance it.
    tick: AtomicU64,
    /// Warm hits (atomic: bumped without the mutex on the fast path).
    hits: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            fast: RwLock::new(HashMap::new()),
            inner: Mutex::new(ShardInner::default()),
            compiled: Condvar::new(),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// Mark `entry` used now. `count_hit` is false for single-flight
    /// waiters: they were already counted as waits, and counting the hit
    /// too would double-count the request and inflate `hit_rate()`.
    fn touch(&self, entry: &FastEntry, count_hit: bool) {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        entry.last_used.store(tick, Ordering::Relaxed);
        entry.hits.fetch_add(1, Ordering::Relaxed);
        if count_hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Remove `key` from the `Ready` table, folding the entry's plan
    /// counters into the retired accumulators. Returns whether an entry
    /// was actually removed — the eviction counter moves **only** in that
    /// case, and the fold happens in the same `inner`-locked critical
    /// section as the removal, so a concurrent `stats()` (which also
    /// holds `inner`) can never observe the engine both live in the table
    /// and already folded. That ordering is what keeps merged plan totals
    /// monotone when two shards evict at the same time.
    fn retire_locked(&self, inner: &mut ShardInner, key: PairKey) -> bool {
        let removed = self.fast.write().unwrap().remove(&key);
        match removed {
            Some(e) => {
                let plan = e.engine.plan_stats();
                inner.retired_plan_hits += plan.hits;
                inner.retired_plan_misses += plan.misses;
                inner.evictions += 1;
                true
            }
            None => false,
        }
    }

    /// Evict entries (never `keep`) until at most `capacity` remain,
    /// choosing victims by compile-cost × recency (see [`more_evictable`]).
    /// Caller holds `inner`.
    fn enforce_capacity(&self, inner: &mut ShardInner, capacity: usize, keep: PairKey) {
        loop {
            let victim = {
                let fast = self.fast.read().unwrap();
                if fast.len() <= capacity {
                    return;
                }
                let now = self.tick.load(Ordering::Relaxed);
                let mut best: Option<(PairKey, u64, u64)> = None;
                for (k, e) in fast.iter() {
                    if *k == keep {
                        continue;
                    }
                    let age = now.saturating_sub(e.last_used.load(Ordering::Relaxed));
                    let cost = e.compile_nanos.max(1);
                    let cand = (*k, age, cost);
                    best = Some(match best {
                        Some(b) if !more_evictable((cand.1, cand.2, cand.0), (b.1, b.2, b.0)) => b,
                        _ => cand,
                    });
                }
                best.map(|(k, _, _)| k)
            };
            match victim {
                Some(k) => {
                    self.retire_locked(inner, k);
                }
                // Only `keep` is left; nothing evictable.
                None => return,
            }
        }
    }

    /// One shard's snapshot, taken under its mutex so retire folds can't
    /// be half-observed.
    fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock().unwrap();
        let fast = self.fast.read().unwrap();
        let mut plan_hits = inner.retired_plan_hits;
        let mut plan_misses = inner.retired_plan_misses;
        let mut plan_entries = 0;
        for e in fast.values() {
            let plan = e.engine.plan_stats();
            plan_hits += plan.hits;
            plan_misses += plan.misses;
            plan_entries += plan.entries;
        }
        RegistryStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: inner.misses,
            compiles: inner.compiles,
            single_flight_waits: inner.single_flight_waits,
            evictions: inner.evictions,
            entries: fast.len() as u64,
            compile_nanos: inner.compile_nanos,
            plan_hits,
            plan_misses,
            plan_entries,
            negative_hits: inner.negative_hits,
        }
    }
}

/// The eviction order: is candidate `a` a better victim than `b`?
///
/// Both are `(age_in_ticks, compile_cost_nanos, key)`. Ages are grouped
/// into power-of-two *recency generations*; a staler generation always
/// loses first, and within a generation the entry that was cheapest to
/// compile goes (its loss costs the least to undo). The key is a final
/// deterministic tiebreak so eviction is a pure function of observable
/// entry state.
fn more_evictable(a: (u64, u64, PairKey), b: (u64, u64, PairKey)) -> bool {
    fn generation(age: u64) -> u32 {
        // floor(log2(age + 1)): 0 is "just used", each generation doubles.
        63 - age.saturating_add(1).leading_zeros().min(63)
    }
    fn key_bits(k: PairKey) -> (u128, u128) {
        (k.source.as_u128(), k.target.as_u128())
    }
    let ga = generation(a.0);
    let gb = generation(b.0);
    (ga, std::cmp::Reverse(a.1), key_bits(a.2)) > (gb, std::cmp::Reverse(b.1), key_bits(b.2))
}

/// Concurrent map from DTD pairs to compiled embeddings, with lock-striped
/// shards, single-flight compilation, a mutex-free warm path, and
/// weighted (compile-cost × recency) eviction. See the [module
/// docs](self) for the design.
pub struct EmbeddingRegistry {
    shards: Vec<Shard>,
    /// Memo: exact DTD text → canonical hash. The warm path resolves both
    /// texts here with two string lookups under a shared read lock,
    /// skipping the parse + reduce + canonical-serialization work
    /// entirely; only texts never seen before (or dropped from the memo)
    /// pay it. Registry-level because the shard index *derives from* the
    /// resolved key.
    text_keys: RwLock<HashMap<String, DtdHash>>,
    /// Per-shard `Ready` capacity: `⌈capacity / shards⌉`.
    shard_capacity: usize,
    config: RegistryConfig,
}

/// Removes the pending mark if the compile unwinds or fails, so waiters
/// are never left sleeping on a key nobody is working on.
struct PendingGuard<'a> {
    shard: &'a Shard,
    key: PairKey,
    armed: bool,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut inner = self.shard.inner.lock().unwrap();
            inner.pending.remove(&self.key);
            drop(inner);
            self.shard.compiled.notify_all();
        }
    }
}

impl EmbeddingRegistry {
    /// An empty registry with the given configuration (`capacity` and
    /// `shards` are clamped to at least 1).
    pub fn new(mut config: RegistryConfig) -> Self {
        config.capacity = config.capacity.max(1);
        config.shards = config.shards.max(1);
        EmbeddingRegistry {
            shards: (0..config.shards).map(|_| Shard::new()).collect(),
            text_keys: RwLock::new(HashMap::new()),
            shard_capacity: config.capacity.div_ceil(config.shards),
            config,
        }
    }

    /// The registry's configuration.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard `key` is routed to — a stable (process-independent)
    /// mix of the pair's content hashes, so tests can reason about
    /// placement.
    pub fn shard_of(&self, key: PairKey) -> usize {
        let mixed = key
            .source
            .as_u128()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15_F39C_C060_5CED_C835)
            ^ key
                .target
                .as_u128()
                .rotate_left(64)
                .wrapping_mul(0xC2B2_AE3D_27D4_EB4F_1656_67B1_E3DB_A8A5);
        let folded = (mixed ^ (mixed >> 64)) as u64;
        (folded % self.shards.len() as u64) as usize
    }

    fn shard(&self, key: PairKey) -> &Shard {
        &self.shards[self.shard_of(key)]
    }

    /// Parse both DTD texts and return the pair's cache key without
    /// touching the cache.
    pub fn key_for(source_dtd: &str, target_dtd: &str) -> Result<PairKey, ServiceError> {
        let source = parse_dtd(source_dtd, "source")?;
        let target = parse_dtd(target_dtd, "target")?;
        Ok(PairKey {
            source: source.content_hash(),
            target: target.content_hash(),
        })
    }

    /// Resolve the pair to a compiled embedding: cache hit, single-flight
    /// wait, or a fresh `find_embedding` run.
    ///
    /// # Errors
    /// [`ServiceError::BadDtd`] when either text fails to parse,
    /// [`ServiceError::NoEmbedding`] when discovery exhausts its restarts
    /// without finding an information-preserving embedding — remembered in
    /// the negative cache for [`RegistryConfig::negative_ttl`], after
    /// which an identical request re-runs the search.
    pub fn get_or_compile(
        &self,
        source_dtd: &str,
        target_dtd: &str,
    ) -> Result<(PairKey, Arc<CompiledEmbedding>), ServiceError> {
        // Resolve texts to the canonical key via the memo when possible;
        // `parsed` stays None on the memoized path and is only needed if
        // this request ends up compiling.
        let memo_key = {
            let memo = self.text_keys.read().unwrap();
            match (memo.get(source_dtd), memo.get(target_dtd)) {
                (Some(&s), Some(&t)) => Some(PairKey {
                    source: s,
                    target: t,
                }),
                _ => None,
            }
        };
        let (key, mut parsed) = match memo_key {
            Some(key) => (key, None),
            None => {
                let source = parse_dtd(source_dtd, "source")?;
                let target = parse_dtd(target_dtd, "target")?;
                let key = PairKey {
                    source: source.content_hash(),
                    target: target.content_hash(),
                };
                let mut memo = self.text_keys.write().unwrap();
                if memo.len() + 2 > TEXT_KEY_CAP {
                    memo.clear();
                }
                memo.insert(source_dtd.to_string(), key.source);
                memo.insert(target_dtd.to_string(), key.target);
                drop(memo);
                (key, Some((source, target)))
            }
        };
        let shard = self.shard(key);

        // The warm fast path: a shared read lock, an Arc clone, and a few
        // relaxed counter bumps. No mutex — an in-flight compile on this
        // shard (necessarily for another pair) cannot delay us.
        if let Some(e) = shard.fast.read().unwrap().get(&key) {
            shard.touch(e, true);
            return Ok((key, Arc::clone(&e.engine)));
        }

        let mut waited = false;
        {
            let mut inner = shard.inner.lock().unwrap();
            loop {
                // Re-check under the mutex: inserts happen with `inner`
                // held, so this read is race-free against them.
                let ready = shard.fast.read().unwrap().get(&key).map(Arc::clone);
                if let Some(e) = ready {
                    shard.touch(&e, !waited);
                    return Ok((key, Arc::clone(&e.engine)));
                }
                if inner.pending.contains(&key) {
                    if !waited {
                        waited = true;
                        inner.single_flight_waits += 1;
                    }
                    inner = shard.compiled.wait(inner).unwrap();
                } else {
                    // Absent: consult the negative cache before paying for
                    // a doomed search.
                    if let Some(&expiry) = inner.negative.get(&key) {
                        if Instant::now() < expiry {
                            inner.negative_hits += 1;
                            return Err(ServiceError::NoEmbedding);
                        }
                        inner.negative.remove(&key);
                    }
                    inner.misses += 1;
                    inner.pending.insert(key);
                    break;
                }
            }
        }

        // We own the pending mark; compile outside every lock. The
        // memoized path skipped parsing — do it now (both texts parsed
        // successfully when they entered the memo, but propagate errors
        // regardless).
        let mut guard = PendingGuard {
            shard,
            key,
            armed: true,
        };
        let (source, target) = match parsed.take() {
            Some(pair) => pair,
            None => (
                parse_dtd(source_dtd, "source")?,
                parse_dtd(target_dtd, "target")?,
            ),
        };
        let att = (self.config.sim)(&source, &target);
        let t0 = Instant::now();
        let found = find_embedding(&source, &target, &att, &self.config.discovery);
        let nanos = t0.elapsed().as_nanos() as u64;

        let Some(embedding) = found else {
            // Record the verdict *before* the guard's Drop removes the
            // pending mark and wakes waiters, so woken threads observe the
            // negative entry instead of racing into their own searches.
            if let Some(ttl) = self.config.negative_ttl {
                let mut inner = shard.inner.lock().unwrap();
                inner.note_failure(key, Instant::now() + ttl);
            }
            return Err(ServiceError::NoEmbedding);
        };
        guard.armed = false;

        let engine = Arc::new(embedding);
        let mut inner = shard.inner.lock().unwrap();
        let tick = shard.tick.fetch_add(1, Ordering::Relaxed) + 1;
        inner.compiles += 1;
        inner.compile_nanos += nanos;
        inner.pending.remove(&key);
        shard.fast.write().unwrap().insert(
            key,
            Arc::new(FastEntry {
                engine: Arc::clone(&engine),
                hits: AtomicU64::new(0),
                last_used: AtomicU64::new(tick),
                compile_nanos: nanos,
            }),
        );
        shard.enforce_capacity(&mut inner, self.shard_capacity, key);
        drop(inner);
        shard.compiled.notify_all();
        Ok((key, engine))
    }

    /// Drop the pair's cached embedding — and its negative-cache entry, so
    /// eviction always forces a fresh discovery run. Returns whether a
    /// *compiled* entry existed (in-flight compiles are left alone and
    /// reported as absent, as is a purely negative entry).
    ///
    /// # Errors
    /// [`ServiceError::BadDtd`] when either text fails to parse.
    pub fn evict(&self, source_dtd: &str, target_dtd: &str) -> Result<bool, ServiceError> {
        let key = Self::key_for(source_dtd, target_dtd)?;
        Ok(self.evict_key(key))
    }

    /// [`EmbeddingRegistry::evict`] by precomputed key.
    pub fn evict_key(&self, key: PairKey) -> bool {
        let shard = self.shard(key);
        let mut inner = shard.inner.lock().unwrap();
        inner.negative.remove(&key);
        shard.retire_locked(&mut inner, key)
    }

    /// Point-in-time aggregate counters: the field-wise sum of every
    /// shard's snapshot. Plan counters sum the live engines' caches plus
    /// the retired totals of evicted engines.
    pub fn stats(&self) -> RegistryStats {
        self.shard_stats()
            .into_iter()
            .fold(RegistryStats::default(), |acc, s| acc + s)
    }

    /// Per-shard snapshots, indexed by shard. [`EmbeddingRegistry::stats`]
    /// is exactly the field-wise sum of this vector.
    pub fn shard_stats(&self) -> Vec<RegistryStats> {
        self.shards.iter().map(Shard::stats).collect()
    }

    /// Per-entry counters for every cached embedding (unordered).
    pub fn entry_stats(&self) -> Vec<(PairKey, EntryStats)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let _inner = shard.inner.lock().unwrap();
            let fast = shard.fast.read().unwrap();
            out.extend(fast.iter().map(|(k, e)| {
                (
                    *k,
                    EntryStats {
                        hits: e.hits.load(Ordering::Relaxed),
                        compile_nanos: e.compile_nanos,
                        last_used: e.last_used.load(Ordering::Relaxed),
                        plan: e.engine.plan_stats(),
                    },
                )
            }));
        }
        out
    }
}

fn parse_dtd(text: &str, which: &'static str) -> Result<Dtd, ServiceError> {
    Dtd::parse(text).map_err(|e| ServiceError::BadDtd(format!("{which} DTD: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Identity-embeddable pair: the wrap fixture from the core crate's
    /// tests, rendered as DTD text.
    fn wrap_pair() -> (String, String) {
        let s1 = "<!ELEMENT r (a, b)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (c*)>\n<!ELEMENT c (#PCDATA)>";
        let s2 = "<!ELEMENT r (x, y)>\n<!ELEMENT x (a)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT y (w)>\n<!ELEMENT w (c2*)>\n<!ELEMENT c2 (c)>\n<!ELEMENT c (#PCDATA)>";
        (s1.to_string(), s2.to_string())
    }

    fn registry_with(
        capacity: usize,
        shards: usize,
        negative_ttl: Option<Duration>,
    ) -> EmbeddingRegistry {
        EmbeddingRegistry::new(RegistryConfig {
            capacity,
            shards,
            discovery: DiscoveryConfig {
                threads: 1,
                ..DiscoveryConfig::default()
            },
            negative_ttl,
            ..RegistryConfig::default()
        })
    }

    fn small_registry_ttl(capacity: usize, negative_ttl: Option<Duration>) -> EmbeddingRegistry {
        // Single shard: the seed's exact single-lock semantics, which the
        // legacy behavior tests below assert.
        registry_with(capacity, 1, negative_ttl)
    }

    fn small_registry(capacity: usize) -> EmbeddingRegistry {
        small_registry_ttl(capacity, RegistryConfig::default().negative_ttl)
    }

    /// A pair with no information-preserving embedding: the source demands
    /// two distinct #PCDATA children; a single-type target has nowhere
    /// injective to put them.
    fn impossible_pair() -> (&'static str, &'static str) {
        (
            "<!ELEMENT r (a, b)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (#PCDATA)>",
            "<!ELEMENT r (#PCDATA)>",
        )
    }

    #[test]
    fn hit_after_miss_shares_the_arc() {
        let reg = small_registry(4);
        let (s, t) = wrap_pair();
        let (k1, e1) = reg.get_or_compile(&s, &t).unwrap();
        let (k2, e2) = reg.get_or_compile(&s, &t).unwrap();
        assert_eq!(k1, k2);
        assert!(Arc::ptr_eq(&e1, &e2));
        let st = reg.stats();
        assert_eq!((st.hits, st.misses, st.compiles), (1, 1, 1));
        assert_eq!(st.entries, 1);
        assert!(st.compile_nanos > 0);
        assert!(st.hit_rate() > 0.49 && st.hit_rate() < 0.51);
    }

    #[test]
    fn permuted_dtd_text_is_the_same_key() {
        let reg = small_registry(4);
        let (s, t) = wrap_pair();
        // Same source schema, declarations listed in a different order
        // (root stays first — the parser roots at the first declaration).
        let s_permuted =
            "<!ELEMENT r (a, b)>\n<!ELEMENT b (c*)>\n<!ELEMENT c (#PCDATA)>\n<!ELEMENT a (#PCDATA)>";
        let (_, e1) = reg.get_or_compile(&s, &t).unwrap();
        let (_, e2) = reg.get_or_compile(s_permuted, &t).unwrap();
        assert!(Arc::ptr_eq(&e1, &e2), "permuted DTD text missed the cache");
        assert_eq!(reg.stats().compiles, 1);
    }

    #[test]
    fn bad_dtd_is_rejected_and_not_cached() {
        let reg = small_registry(4);
        let (s, _) = wrap_pair();
        let err = reg.get_or_compile(&s, "<!ELEMENT").unwrap_err();
        assert!(matches!(err, ServiceError::BadDtd(_)), "{err:?}");
        assert_eq!(reg.stats().misses, 0);
        assert_eq!(reg.stats().entries, 0);
    }

    #[test]
    fn failed_discovery_is_negatively_cached_until_ttl() {
        let reg = small_registry(4);
        let (s, t) = impossible_pair();
        for _ in 0..3 {
            let err = reg.get_or_compile(s, t).unwrap_err();
            assert!(matches!(err, ServiceError::NoEmbedding), "{err:?}");
        }
        let st = reg.stats();
        // Only the first attempt searched; the rest hit the negative cache.
        assert_eq!(st.misses, 1, "{st:?}");
        assert_eq!(st.negative_hits, 2, "{st:?}");
        assert_eq!(st.entries, 0);
        assert_eq!(st.compiles, 0);
    }

    #[test]
    fn negative_entry_expires_after_its_ttl() {
        let reg = small_registry_ttl(4, Some(Duration::from_millis(40)));
        let (s, t) = impossible_pair();
        reg.get_or_compile(s, t).unwrap_err();
        std::thread::sleep(Duration::from_millis(60));
        reg.get_or_compile(s, t).unwrap_err();
        let st = reg.stats();
        // The verdict expired, so the second attempt re-ran the search.
        assert_eq!(st.misses, 2, "{st:?}");
        assert_eq!(st.negative_hits, 0, "{st:?}");
    }

    #[test]
    fn disabling_the_negative_ttl_retries_every_request() {
        let reg = small_registry_ttl(4, None);
        let (s, t) = impossible_pair();
        for _ in 0..2 {
            let err = reg.get_or_compile(s, t).unwrap_err();
            assert!(matches!(err, ServiceError::NoEmbedding), "{err:?}");
        }
        let st = reg.stats();
        assert_eq!(st.misses, 2);
        assert_eq!(st.negative_hits, 0);
        assert_eq!(st.entries, 0);
        assert_eq!(st.compiles, 0);
    }

    #[test]
    fn evict_clears_the_negative_entry() {
        let reg = small_registry(4);
        let (s, t) = impossible_pair();
        reg.get_or_compile(s, t).unwrap_err();
        // No compiled entry existed, so evict reports false — but it still
        // clears the negative verdict, forcing a fresh search.
        assert!(!reg.evict(s, t).unwrap());
        reg.get_or_compile(s, t).unwrap_err();
        let st = reg.stats();
        assert_eq!(st.misses, 2, "{st:?}");
        assert_eq!(st.negative_hits, 0, "{st:?}");
    }

    #[test]
    fn eviction_prefers_stale_entries() {
        let reg = small_registry(2);
        // Three distinct identity pairs (a schema always embeds into
        // itself), so each compiles under its own key.
        let schemas = [
            "<!ELEMENT r (a)>\n<!ELEMENT a (#PCDATA)>",
            "<!ELEMENT r (b)>\n<!ELEMENT b (#PCDATA)>",
            "<!ELEMENT r (c)>\n<!ELEMENT c (#PCDATA)>",
        ];
        let k0 = reg.get_or_compile(schemas[0], schemas[0]).unwrap().0;
        let k1 = reg.get_or_compile(schemas[1], schemas[1]).unwrap().0;
        assert_ne!(k0, k1);
        // Touch k0 repeatedly so k1 falls a whole recency generation
        // behind — then the weighted policy must pick k1 regardless of
        // the two entries' compile costs.
        for _ in 0..3 {
            reg.get_or_compile(schemas[0], schemas[0]).unwrap();
        }
        let k2 = reg.get_or_compile(schemas[2], schemas[2]).unwrap().0;
        assert_ne!(k2, k0);
        assert_ne!(k2, k1);
        let st = reg.stats();
        assert_eq!(st.entries, 2, "{st:?}");
        assert_eq!(st.evictions, 1, "{st:?}");
        // k0 (recently touched) and k2 (new) survive; k1 is gone.
        let keys: Vec<PairKey> = reg.entry_stats().into_iter().map(|(k, _)| k).collect();
        assert!(keys.contains(&k0) && keys.contains(&k2) && !keys.contains(&k1));
    }

    #[test]
    fn eviction_order_is_generation_first_then_cost() {
        // The policy itself is a pure function; pin its shape directly.
        let ka = EmbeddingRegistry::key_for(
            "<!ELEMENT r (a)>\n<!ELEMENT a (#PCDATA)>",
            "<!ELEMENT r (a)>\n<!ELEMENT a (#PCDATA)>",
        )
        .unwrap();
        let kb = EmbeddingRegistry::key_for(
            "<!ELEMENT r (b)>\n<!ELEMENT b (#PCDATA)>",
            "<!ELEMENT r (b)>\n<!ELEMENT b (#PCDATA)>",
        )
        .unwrap();
        // A whole generation staler always loses, even when far costlier.
        assert!(more_evictable((7, 1_000_000, ka), (2, 10, kb)));
        assert!(!more_evictable((2, 10, kb), (7, 1_000_000, ka)));
        // Same generation (ages 4..=6 share floor(log2(age+1)) == 2):
        // the cheaper compile is the better victim.
        assert!(more_evictable((4, 10, ka), (6, 1_000_000, kb)));
        assert!(!more_evictable((6, 1_000_000, kb), (4, 10, ka)));
        // Full tie: broken deterministically by key bits, antisymmetric.
        let by_key = more_evictable((3, 50, ka), (3, 50, kb));
        assert_ne!(by_key, more_evictable((3, 50, kb), (3, 50, ka)));
    }

    #[test]
    fn explicit_evict_roundtrip() {
        let reg = small_registry(4);
        let (s, t) = wrap_pair();
        reg.get_or_compile(&s, &t).unwrap();
        assert!(reg.evict(&s, &t).unwrap());
        assert!(!reg.evict(&s, &t).unwrap(), "double evict must be a no-op");
        let st = reg.stats();
        assert_eq!(st.entries, 0);
        assert_eq!(st.evictions, 1);
        // Recompile works and bumps the compile counter.
        reg.get_or_compile(&s, &t).unwrap();
        assert_eq!(reg.stats().compiles, 2);
    }

    #[test]
    fn plan_counters_survive_eviction() {
        let reg = small_registry(4);
        let (s, t) = wrap_pair();
        let (_, engine) = reg.get_or_compile(&s, &t).unwrap();
        let q = xse_rxpath::parse_query("b/c").unwrap();
        engine.translate(&q).unwrap(); // compile miss
        engine.translate(&q).unwrap(); // cached hit
        let st = reg.stats();
        assert_eq!((st.plan_hits, st.plan_misses, st.plan_entries), (1, 1, 1));
        let per_entry = reg.entry_stats();
        assert_eq!(per_entry.len(), 1);
        assert_eq!(per_entry[0].1.plan.entries, 1);

        // Eviction drops the plans but folds the hit/miss totals into the
        // registry-wide aggregate.
        assert!(reg.evict(&s, &t).unwrap());
        let st = reg.stats();
        assert_eq!(
            (st.plan_hits, st.plan_misses, st.plan_entries),
            (1, 1, 0),
            "{st:?}"
        );

        // A recompiled engine starts cold and keeps accumulating on top.
        let (_, fresh) = reg.get_or_compile(&s, &t).unwrap();
        assert!(!Arc::ptr_eq(&engine, &fresh));
        fresh.translate(&q).unwrap();
        fresh.translate(&q).unwrap();
        let st = reg.stats();
        assert_eq!((st.plan_hits, st.plan_misses, st.plan_entries), (2, 2, 1));
        assert!(st.plan_hit_rate() > 0.49 && st.plan_hit_rate() < 0.51);
    }

    #[test]
    fn sixteen_concurrent_requests_compile_once() {
        let reg = std::sync::Arc::new(small_registry(4));
        let (s, t) = wrap_pair();
        let go = std::sync::Barrier::new(16);
        let engines: Vec<Arc<CompiledEmbedding>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..16)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    let (s, t) = (s.clone(), t.clone());
                    let go = &go;
                    scope.spawn(move || {
                        go.wait();
                        reg.get_or_compile(&s, &t).unwrap().1
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Exactly one compile; every thread got the same Arc.
        let st = reg.stats();
        assert_eq!(st.compiles, 1, "{st:?}");
        assert_eq!(st.misses, 1, "{st:?}");
        assert_eq!(st.hits + st.single_flight_waits, 15, "{st:?}");
        for e in &engines[1..] {
            assert!(Arc::ptr_eq(&engines[0], e));
        }
    }

    #[test]
    fn failed_compile_wakes_waiters() {
        // All 8 threads race an impossible pair; every one must return
        // NoEmbedding (none may hang on a dropped pending mark).
        let reg = Arc::new(small_registry(4));
        let s = "<!ELEMENT r (a, b)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (#PCDATA)>";
        let t = "<!ELEMENT r (#PCDATA)>";
        let failures = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let reg = Arc::clone(&reg);
                let failures = &failures;
                scope.spawn(move || {
                    if matches!(reg.get_or_compile(s, t), Err(ServiceError::NoEmbedding)) {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(failures.load(Ordering::Relaxed), 8);
        assert_eq!(reg.stats().entries, 0);
    }

    #[test]
    fn sharded_registry_spreads_keys_and_merges_stats() {
        let reg = registry_with(64, 8, None);
        assert_eq!(reg.shard_count(), 8);
        let schemas: Vec<String> = (0..12)
            .map(|i| format!("<!ELEMENT r (e{i})>\n<!ELEMENT e{i} (#PCDATA)>"))
            .collect();
        let mut shards_touched = std::collections::HashSet::new();
        for s in &schemas {
            let (k, _) = reg.get_or_compile(s, s).unwrap();
            shards_touched.insert(reg.shard_of(k));
            reg.get_or_compile(s, s).unwrap(); // warm hit via fast path
        }
        assert!(
            shards_touched.len() > 1,
            "12 distinct pairs all routed to one shard"
        );
        let merged = reg.stats();
        let summed = reg
            .shard_stats()
            .into_iter()
            .fold(RegistryStats::default(), |a, b| a + b);
        assert_eq!(merged, summed);
        assert_eq!(merged.misses, 12);
        assert_eq!(merged.hits, 12);
        assert_eq!(merged.entries, 12);
    }

    #[test]
    fn single_shard_routes_everything_to_shard_zero() {
        let reg = registry_with(4, 1, None);
        let (s, t) = wrap_pair();
        let (k, _) = reg.get_or_compile(&s, &t).unwrap();
        assert_eq!(reg.shard_of(k), 0);
        assert_eq!(reg.shard_stats().len(), 1);
        assert_eq!(reg.shard_stats()[0], reg.stats());
    }
}
