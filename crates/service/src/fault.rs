//! Deterministic fault injection for the serving stack.
//!
//! [`FaultProxy`] is an in-process chaos TCP proxy: it listens on an
//! ephemeral loopback port, forwards length-prefixed frames to an
//! upstream server, and injects faults — delays, connection resets,
//! mid-frame truncations, corrupted bytes — according to a seeded
//! [`FaultPlan`].
//!
//! # Determinism
//!
//! Whether frame `f` of connection `c` in direction `d` is faulted is a
//! *pure function* [`FaultPlan::decide`]`(d, c, f)` of the plan — a fresh
//! RNG is seeded from `(seed, d, c, f)` per decision, so the injected
//! fault sequence is independent of thread scheduling and socket timing.
//! Two runs with the same plan and the same frame traffic see the same
//! faults; tests can precompute the decision grid without running any
//! traffic at all.
//!
//! # Corruption is detectable by construction
//!
//! [`FaultAction::CorruptOpcode`] XORs the frame's first payload byte
//! (the opcode) with `0x40`. Every assigned opcode maps to an unassigned
//! one (requests `0x01..=0x06` → `0x41..=0x46`, responses
//! `0x81..=0x85` → `0xC1..=0xC5`, error `0xFF` → `0xBF`), so a corrupted
//! frame can never decode as a *different valid message* — the server
//! answers `unknown opcode`, the client sees an undecodable response.
//! That makes "no misdecoded successes under chaos" checkable: any
//! decodable frame that transits the proxy is authentic.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which way a frame was travelling when it was faulted.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// Request path: downstream client → upstream server.
    ClientToServer,
    /// Response path: upstream server → downstream client.
    ServerToClient,
}

impl Direction {
    fn lane(self) -> u64 {
        match self {
            Direction::ClientToServer => 0,
            Direction::ServerToClient => 1,
        }
    }
}

/// What the proxy does to one frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultAction {
    /// Forward untouched.
    Pass,
    /// Forward after sleeping.
    Delay(Duration),
    /// Drop the frame and reset the connection (both halves).
    Reset,
    /// Forward the header and the first half of the payload, then reset —
    /// the receiver observes a frame truncated mid-payload.
    Truncate,
    /// Forward with the opcode byte XORed by `0x40` (see the module docs:
    /// the result is never a valid message of another kind).
    CorruptOpcode,
}

/// A seeded, deterministic chaos schedule. Probabilities are per-frame,
/// in permille (`0..=1000`), checked in a fixed order: reset, truncate,
/// corrupt, delay.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Seed for every per-frame decision.
    pub seed: u64,
    /// ‰ of frames dropped with a connection reset.
    pub reset_per_mille: u32,
    /// ‰ of frames truncated mid-payload (then reset).
    pub truncate_per_mille: u32,
    /// ‰ of frames with the opcode byte corrupted.
    pub corrupt_per_mille: u32,
    /// ‰ of frames delayed by [`FaultPlan::delay`].
    pub delay_per_mille: u32,
    /// How long a delayed frame is held.
    pub delay: Duration,
    /// Connections with id below this reset on their first request frame,
    /// regardless of the probabilities — a deterministic way to make the
    /// first N connections fail, for retry-convergence tests.
    pub break_first_conns: u64,
}

impl FaultPlan {
    /// No faults at all: the proxy is a transparent frame relay.
    pub fn calm(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            reset_per_mille: 0,
            truncate_per_mille: 0,
            corrupt_per_mille: 0,
            delay_per_mille: 0,
            delay: Duration::ZERO,
            break_first_conns: 0,
        }
    }

    /// The standard chaos mix used by the loadgen `--chaos` mode and the
    /// CI smoke: ~2.5% resets, 1.5% truncations, 2.5% corruptions, 4%
    /// 20 ms delays.
    pub fn standard(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            reset_per_mille: 25,
            truncate_per_mille: 15,
            corrupt_per_mille: 25,
            delay_per_mille: 40,
            delay: Duration::from_millis(20),
            break_first_conns: 0,
        }
    }

    /// The fault for frame number `frame` (0-based, counted per
    /// connection per direction) of connection `conn` travelling in
    /// `direction`. Pure: depends only on the plan and the coordinates.
    pub fn decide(&self, direction: Direction, conn: u64, frame: u64) -> FaultAction {
        if direction == Direction::ClientToServer && frame == 0 && conn < self.break_first_conns {
            return FaultAction::Reset;
        }
        // Mix the coordinates into a per-decision seed; the odd constants
        // are the SplitMix64/xxHash increments, used purely to spread bits.
        let mixed = self.seed
            ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ frame.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ direction.lane().wrapping_mul(0x1656_67B1_9E37_79F9);
        let mut rng = StdRng::seed_from_u64(mixed);
        let roll: u32 = rng.random_range(0..1000);
        let mut bound = self.reset_per_mille;
        if roll < bound {
            return FaultAction::Reset;
        }
        bound += self.truncate_per_mille;
        if roll < bound {
            return FaultAction::Truncate;
        }
        bound += self.corrupt_per_mille;
        if roll < bound {
            return FaultAction::CorruptOpcode;
        }
        bound += self.delay_per_mille;
        if roll < bound {
            return FaultAction::Delay(self.delay);
        }
        FaultAction::Pass
    }
}

/// One injected fault, as recorded in the proxy's log.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InjectedFault {
    /// Proxy-assigned connection id (accept order, from 0).
    pub conn: u64,
    /// Frame number within that connection and direction.
    pub frame: u64,
    /// The frame's direction.
    pub direction: Direction,
    /// What was done to it (never [`FaultAction::Pass`]).
    pub action: FaultAction,
}

/// Aggregate injected-fault counts, for reporting.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct FaultCounts {
    /// Connections reset (frame dropped).
    pub resets: u64,
    /// Frames truncated mid-payload.
    pub truncations: u64,
    /// Frames forwarded with a corrupted opcode.
    pub corruptions: u64,
    /// Frames delayed.
    pub delays: u64,
}

/// The chaos proxy. Construct with [`FaultProxy::spawn`].
pub struct FaultProxy;

struct Shared {
    plan: FaultPlan,
    upstream: SocketAddr,
    stop: Arc<AtomicBool>,
    /// Clones of every live socket (both sides of every conn), force-shut
    /// on proxy shutdown so blocked pump reads unblock.
    socks: Mutex<Vec<TcpStream>>,
    log: Mutex<Vec<InjectedFault>>,
}

/// A running [`FaultProxy`]: address, fault log, explicit shutdown.
pub struct FaultProxyHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl FaultProxy {
    /// Bind an ephemeral loopback port and start proxying to `upstream`
    /// under `plan`.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn spawn(upstream: SocketAddr, plan: FaultPlan) -> io::Result<FaultProxyHandle> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            plan,
            upstream,
            stop: Arc::new(AtomicBool::new(false)),
            socks: Mutex::new(Vec::new()),
            log: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let next_conn = AtomicU64::new(0);
                let mut pumps = Vec::new();
                for conn in listener.incoming() {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(down) = conn else { continue };
                    let Ok(up) = TcpStream::connect(shared.upstream) else {
                        // Upstream gone: refuse by dropping the client.
                        continue;
                    };
                    let id = next_conn.fetch_add(1, Ordering::Relaxed);
                    if let (Ok(d), Ok(u)) = (down.try_clone(), up.try_clone()) {
                        let mut socks = shared.socks.lock().unwrap();
                        socks.push(d);
                        socks.push(u);
                    }
                    let (Ok(down_r), Ok(up_r)) = (down.try_clone(), up.try_clone()) else {
                        continue;
                    };
                    let c2s = PumpEnds {
                        src: down_r,
                        dst: up.try_clone().ok(),
                        other: down.try_clone().ok(),
                    };
                    let s2c = PumpEnds {
                        src: up_r,
                        dst: down.try_clone().ok(),
                        other: up.try_clone().ok(),
                    };
                    drop((down, up));
                    for (dir, ends) in [
                        (Direction::ClientToServer, c2s),
                        (Direction::ServerToClient, s2c),
                    ] {
                        let shared = Arc::clone(&shared);
                        pumps.push(std::thread::spawn(move || {
                            pump(&shared, dir, id, ends);
                        }));
                    }
                }
                pumps
            })
        };
        Ok(FaultProxyHandle {
            addr,
            shared,
            accept: Some(accept),
        })
    }
}

impl FaultProxyHandle {
    /// The proxy's listen address — point clients here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the injected-fault log, in injection order per pump.
    pub fn faults(&self) -> Vec<InjectedFault> {
        self.shared.log.lock().unwrap().clone()
    }

    /// Aggregate counts over [`FaultProxyHandle::faults`].
    pub fn fault_counts(&self) -> FaultCounts {
        let mut counts = FaultCounts::default();
        for f in self.shared.log.lock().unwrap().iter() {
            match f.action {
                FaultAction::Reset => counts.resets += 1,
                FaultAction::Truncate => counts.truncations += 1,
                FaultAction::CorruptOpcode => counts.corruptions += 1,
                FaultAction::Delay(_) => counts.delays += 1,
                FaultAction::Pass => {}
            }
        }
        counts
    }

    /// Stop accepting, sever every proxied connection, join all threads.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop (it re-checks the flag per connection).
        let _ = TcpStream::connect(self.addr);
        let pumps = self.accept.take().and_then(|h| h.join().ok());
        for sock in self.shared.socks.lock().unwrap().drain(..) {
            let _ = sock.shutdown(Shutdown::Both);
        }
        for pump in pumps.into_iter().flatten() {
            let _ = pump.join();
        }
    }
}

impl Drop for FaultProxyHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct PumpEnds {
    /// The side frames are read from.
    src: TcpStream,
    /// The side they are forwarded to.
    dst: Option<TcpStream>,
    /// A handle back to `src`'s socket for resets (shutting down `src`
    /// itself only closes our clone's direction bookkeeping, so keep an
    /// explicit clone to sever both halves).
    other: Option<TcpStream>,
}

/// Relay frames `src` → `dst`, injecting faults per the plan. Exits on
/// EOF, socket error, or an injected reset; severs both sides on exit so
/// the opposite pump (and the peers) observe the closure promptly.
fn pump(shared: &Shared, dir: Direction, conn: u64, ends: PumpEnds) {
    let PumpEnds {
        mut src,
        dst,
        other,
    } = ends;
    let Some(mut dst) = dst else { return };
    let mut frame = 0u64;
    loop {
        // 8-byte header: u32-BE payload length, then the u32 request id
        // (forwarded untouched — faults target the payload, so request-id
        // correlation survives corruption).
        let mut header = [0u8; 8];
        if read_exactly(&mut src, &mut header).is_err() {
            break;
        }
        let len = u32::from_be_bytes(header[..4].try_into().unwrap()) as usize;
        let mut payload = vec![0u8; len];
        if read_exactly(&mut src, &mut payload).is_err() {
            break;
        }
        let action = shared.plan.decide(dir, conn, frame);
        if action != FaultAction::Pass {
            shared.log.lock().unwrap().push(InjectedFault {
                conn,
                frame,
                direction: dir,
                action,
            });
        }
        frame += 1;
        match action {
            FaultAction::Pass => {}
            FaultAction::Delay(d) => std::thread::sleep(d),
            FaultAction::Reset => break,
            FaultAction::Truncate => {
                let half = &payload[..len / 2];
                let _ = dst.write_all(&header).and_then(|()| dst.write_all(half));
                let _ = dst.flush();
                break;
            }
            FaultAction::CorruptOpcode => {
                if let Some(op) = payload.first_mut() {
                    *op ^= 0x40;
                }
            }
        }
        if matches!(
            action,
            FaultAction::Pass | FaultAction::Delay(_) | FaultAction::CorruptOpcode
        ) {
            let ok = dst
                .write_all(&header)
                .and_then(|()| dst.write_all(&payload));
            if ok.and_then(|()| dst.flush()).is_err() {
                break;
            }
        }
    }
    let _ = dst.shutdown(Shutdown::Both);
    if let Some(o) = other {
        let _ = o.shutdown(Shutdown::Both);
    }
}

/// `read_exact` that treats any shortfall (EOF, reset, shutdown) as an
/// error — the pump only ever forwards whole frames or truncates on
/// purpose.
fn read_exactly(src: &mut TcpStream, buf: &mut [u8]) -> io::Result<()> {
    let mut got = 0;
    while got < buf.len() {
        match src.read(&mut buf[got..]) {
            Ok(0) => return Err(io::Error::from(io::ErrorKind::UnexpectedEof)),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_is_deterministic_across_the_grid() {
        let plan = FaultPlan::standard(7);
        let replay = FaultPlan::standard(7);
        for conn in 0..8 {
            for frame in 0..64 {
                for dir in [Direction::ClientToServer, Direction::ServerToClient] {
                    assert_eq!(
                        plan.decide(dir, conn, frame),
                        replay.decide(dir, conn, frame),
                        "conn {conn} frame {frame} {dir:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn decide_mixes_every_coordinate() {
        // Different seeds, connections, frames, and directions must each
        // be able to change the outcome somewhere in a modest grid.
        let a = FaultPlan::standard(1);
        let b = FaultPlan::standard(2);
        let grid = || {
            (0..6).flat_map(|c| {
                (0..32).flat_map(move |f| {
                    [Direction::ClientToServer, Direction::ServerToClient].map(move |d| (d, c, f))
                })
            })
        };
        assert!(grid().any(|(d, c, f)| a.decide(d, c, f) != b.decide(d, c, f)));
        assert!(grid().any(|(d, c, f)| a.decide(d, c, f) != a.decide(d, c + 1, f)));
        assert!(grid().any(|(d, c, f)| a.decide(d, c, f) != a.decide(d, c, f + 1)));
        assert!((0..6).any(|c| {
            (0..32).any(|f| {
                a.decide(Direction::ClientToServer, c, f)
                    != a.decide(Direction::ServerToClient, c, f)
            })
        }));
    }

    #[test]
    fn standard_plan_rates_are_in_the_right_ballpark() {
        let plan = FaultPlan::standard(42);
        let mut counts = FaultCounts::default();
        let total = 10_000u64;
        for frame in 0..total {
            match plan.decide(Direction::ClientToServer, 0, frame) {
                FaultAction::Reset => counts.resets += 1,
                FaultAction::Truncate => counts.truncations += 1,
                FaultAction::CorruptOpcode => counts.corruptions += 1,
                FaultAction::Delay(_) => counts.delays += 1,
                FaultAction::Pass => {}
            }
        }
        // Expected ‰ over 10k draws: 25 / 15 / 25 / 40 → 250/150/250/400,
        // allow generous slack (the rolls are independent uniforms).
        assert!((125..500).contains(&counts.resets), "{counts:?}");
        assert!((60..320).contains(&counts.truncations), "{counts:?}");
        assert!((125..500).contains(&counts.corruptions), "{counts:?}");
        assert!((200..700).contains(&counts.delays), "{counts:?}");
        let faulted = counts.resets + counts.truncations + counts.corruptions + counts.delays;
        assert!(faulted < total / 5, "over 20% faulted: {counts:?}");
    }

    #[test]
    fn calm_plan_never_faults_and_break_first_conns_overrides() {
        let calm = FaultPlan::calm(3);
        for frame in 0..256 {
            assert_eq!(
                calm.decide(Direction::ServerToClient, 1, frame),
                FaultAction::Pass
            );
        }
        let breaking = FaultPlan {
            break_first_conns: 2,
            ..FaultPlan::calm(3)
        };
        assert_eq!(
            breaking.decide(Direction::ClientToServer, 0, 0),
            FaultAction::Reset
        );
        assert_eq!(
            breaking.decide(Direction::ClientToServer, 1, 0),
            FaultAction::Reset
        );
        // Conn 2 and later frames of broken conns are untouched.
        assert_eq!(
            breaking.decide(Direction::ClientToServer, 2, 0),
            FaultAction::Pass
        );
        assert_eq!(
            breaking.decide(Direction::ClientToServer, 0, 1),
            FaultAction::Pass
        );
        // The override applies to the request path only.
        assert_eq!(
            breaking.decide(Direction::ServerToClient, 0, 0),
            FaultAction::Pass
        );
    }

    #[test]
    fn corruption_xor_never_maps_an_opcode_onto_another_valid_one() {
        use crate::proto::{op, resp};
        let valid = [
            op::COMPILE,
            op::APPLY,
            op::INVERT,
            op::TRANSLATE,
            op::STATS,
            op::EVICT,
            resp::COMPILED,
            resp::DOCUMENT,
            resp::TRANSLATED,
            resp::STATS,
            resp::EVICTED,
            resp::ERROR,
        ];
        for &code in &valid {
            let corrupted = code ^ 0x40;
            assert!(
                !valid.contains(&corrupted),
                "{code:#04x} corrupts to valid {corrupted:#04x}"
            );
        }
    }
}
