//! `xse-loadgen`: replay a traffic mix against the embedding service.
//!
//! ```text
//! xse-loadgen [--mix NAME] [--ops N] [--pairs N] [--seed N]
//!             [--capacity N] [--workers N] [--cold]
//!             [--addr HOST:PORT | --spawn-server | --in-process]
//!             [--check]
//! ```
//!
//! * `--mix` — `translate-heavy` (default), `repeated-query`,
//!   `apply-heavy`, `mixed`, or `cold-cache-adversarial`.
//! * `--addr` targets a running server; `--spawn-server` starts one on an
//!   ephemeral port and drives it over TCP; the default is in-process.
//! * `--cold` evicts (untimed) before every timed op.
//! * `--check` exits non-zero unless the replay had positive QPS and zero
//!   protocol errors — the CI smoke gate. On the `repeated-query` mix
//!   (warm) it additionally requires a ≥ 95% translation-plan hit rate.
//!
//! The summary is printed to stdout as a single JSON line.

use std::process::ExitCode;
use std::sync::Arc;

use xse_service::loadgen::{self, Endpoint, LoadConfig};
use xse_service::{Client, EmbeddingRegistry, RegistryConfig, Server, ServerConfig};
use xse_workloads::traffic::TrafficMix;

struct Args {
    mix: TrafficMix,
    ops: usize,
    pairs: usize,
    seed: u64,
    capacity: usize,
    workers: usize,
    cold: bool,
    addr: Option<String>,
    spawn_server: bool,
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mix: TrafficMix::translate_heavy(),
        ops: 400,
        pairs: 8,
        seed: 42,
        capacity: 64,
        workers: 4,
        cold: false,
        addr: None,
        spawn_server: false,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--mix" => {
                let name = value("--mix")?;
                args.mix =
                    TrafficMix::by_name(&name).ok_or_else(|| format!("unknown mix '{name}'"))?;
            }
            "--ops" => args.ops = parse_num(&value("--ops")?)?,
            "--pairs" => args.pairs = parse_num(&value("--pairs")?)?,
            "--seed" => args.seed = parse_num(&value("--seed")?)? as u64,
            "--capacity" => args.capacity = parse_num(&value("--capacity")?)?,
            "--workers" => args.workers = parse_num(&value("--workers")?)?,
            "--cold" => args.cold = true,
            "--addr" => args.addr = Some(value("--addr")?),
            "--spawn-server" => args.spawn_server = true,
            "--in-process" => {}
            "--check" => args.check = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.addr.is_some() && args.spawn_server {
        return Err("--addr and --spawn-server are mutually exclusive".into());
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("not a number: '{s}'"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xse-loadgen: {e}");
            return ExitCode::from(2);
        }
    };

    eprintln!(
        "xse-loadgen: building {} schema pairs (seed {})...",
        args.pairs, args.seed
    );
    let pairs = loadgen::build_pairs(args.pairs, args.seed);

    let registry = || {
        Arc::new(EmbeddingRegistry::new(RegistryConfig {
            capacity: args.capacity,
            discovery: loadgen::loadgen_discovery(),
            ..RegistryConfig::default()
        }))
    };

    // `_server` must outlive the endpoint; dropping it joins the pool.
    let mut _server = None;
    let mut endpoint = if let Some(addr) = &args.addr {
        match Client::connect(addr.as_str()) {
            Ok(c) => Endpoint::Tcp(c),
            Err(e) => {
                eprintln!("xse-loadgen: connect {addr}: {e}");
                return ExitCode::from(2);
            }
        }
    } else if args.spawn_server {
        let handle = match Server::bind(
            ("127.0.0.1", 0),
            registry(),
            ServerConfig {
                workers: args.workers,
            },
        ) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("xse-loadgen: bind: {e}");
                return ExitCode::from(2);
            }
        };
        let addr = handle.addr();
        eprintln!("xse-loadgen: spawned server on {addr}");
        _server = Some(handle);
        match Client::connect(addr) {
            Ok(c) => Endpoint::Tcp(c),
            Err(e) => {
                eprintln!("xse-loadgen: connect {addr}: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Endpoint::InProcess(registry())
    };

    let summary = loadgen::run(
        &mut endpoint,
        &pairs,
        &LoadConfig {
            mix: args.mix.clone(),
            ops: args.ops,
            seed: args.seed,
            cold: args.cold,
        },
    );
    println!("{}", summary.to_json());

    if args.check && (summary.qps <= 0.0 || summary.protocol_errors > 0 || summary.ops == 0) {
        eprintln!(
            "xse-loadgen: check FAILED (qps {:.2}, protocol_errors {}, ops {})",
            summary.qps, summary.protocol_errors, summary.ops
        );
        return ExitCode::from(1);
    }
    // The repeated-query mix exists to exercise plan reuse; a warm replay
    // that misses the plan cache is a regression even if it stays fast.
    if args.check && args.mix.zipf_queries() && !args.cold && summary.plan_hit_rate < 0.95 {
        eprintln!(
            "xse-loadgen: check FAILED (plan hit rate {:.4} below 0.95)",
            summary.plan_hit_rate
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
