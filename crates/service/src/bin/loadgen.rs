//! `xse-loadgen`: replay a traffic mix against the embedding service.
//!
//! ```text
//! xse-loadgen [--mix NAME] [--ops N] [--pairs N] [--seed N]
//!             [--capacity N] [--workers N] [--shards N] [--cold]
//!             [--addr HOST:PORT | --spawn-server | --in-process]
//!             [--connections N] [--inflight K]
//!             [--chaos] [--fault-seed N]
//!             [--check] [--min-hit-rate X]
//! ```
//!
//! * `--mix` — `translate-heavy` (default), `repeated-query`,
//!   `apply-heavy`, `mixed`, or `cold-cache-adversarial`.
//! * `--addr` targets a running server; `--spawn-server` starts one on an
//!   ephemeral port and drives it over TCP; the default is in-process.
//! * `--shards` — registry shard count for the spawned/in-process
//!   registry (default 8).
//! * `--cold` evicts (untimed) before every timed op.
//! * `--connections N --inflight K` — contended mode: N concurrent
//!   pipelined connections each keeping K requests in flight (`--ops` is
//!   per connection). Pairs are prewarmed untimed, so the digests are
//!   warm-path latency under contention. Requires a TCP endpoint
//!   (`--spawn-server` or `--addr`); incompatible with `--chaos` and
//!   `--cold`. A spawned server gets `max(--workers, N)` workers so every
//!   connection is served concurrently.
//! * `--chaos` (requires `--spawn-server`) interposes a [`FaultProxy`]
//!   running [`FaultPlan::standard`]`(--fault-seed)` between a retrying
//!   client and the server: frames are delayed, reset, truncated and
//!   corrupted, and the summary reports shed/retry counts plus an error
//!   taxonomy. The injected fault sequence is deterministic per seed.
//! * `--check` exits non-zero unless the replay had positive QPS, issued
//!   ops, and — always — zero misinterpretations. Without `--chaos` it
//!   also requires zero protocol errors (under chaos, transport failures
//!   are the point), and on the `repeated-query` mix (warm) a ≥ 95%
//!   translation-plan hit rate. `--min-hit-rate X` additionally requires
//!   a registry hit rate ≥ X.
//!
//! The summary is printed to stdout as a single JSON line.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use xse_service::fault::{FaultPlan, FaultProxy};
use xse_service::loadgen::{self, ContendedConfig, Endpoint, LoadConfig};
use xse_service::{
    Client, ClientConfig, EmbeddingRegistry, RegistryConfig, RetryPolicy, RetryingClient, Server,
    ServerConfig,
};
use xse_workloads::traffic::TrafficMix;

struct Args {
    mix: TrafficMix,
    ops: usize,
    pairs: usize,
    seed: u64,
    capacity: usize,
    workers: usize,
    shards: usize,
    cold: bool,
    addr: Option<String>,
    spawn_server: bool,
    connections: usize,
    inflight: usize,
    chaos: bool,
    fault_seed: u64,
    check: bool,
    min_hit_rate: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mix: TrafficMix::translate_heavy(),
        ops: 400,
        pairs: 8,
        seed: 42,
        capacity: 64,
        workers: 4,
        shards: RegistryConfig::default().shards,
        cold: false,
        addr: None,
        spawn_server: false,
        connections: 1,
        inflight: 1,
        chaos: false,
        fault_seed: 7,
        check: false,
        min_hit_rate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--mix" => {
                let name = value("--mix")?;
                args.mix =
                    TrafficMix::by_name(&name).ok_or_else(|| format!("unknown mix '{name}'"))?;
            }
            "--ops" => args.ops = parse_num(&value("--ops")?)?,
            "--pairs" => args.pairs = parse_num(&value("--pairs")?)?,
            "--seed" => args.seed = parse_num(&value("--seed")?)? as u64,
            "--capacity" => args.capacity = parse_num(&value("--capacity")?)?,
            "--workers" => args.workers = parse_num(&value("--workers")?)?,
            "--shards" => args.shards = parse_num(&value("--shards")?)?,
            "--cold" => args.cold = true,
            "--addr" => args.addr = Some(value("--addr")?),
            "--spawn-server" => args.spawn_server = true,
            "--connections" => args.connections = parse_num(&value("--connections")?)?,
            "--inflight" => args.inflight = parse_num(&value("--inflight")?)?,
            "--in-process" => {}
            "--chaos" => args.chaos = true,
            "--fault-seed" => args.fault_seed = parse_num(&value("--fault-seed")?)? as u64,
            "--check" => args.check = true,
            "--min-hit-rate" => {
                let raw = value("--min-hit-rate")?;
                let rate: f64 = raw.parse().map_err(|_| format!("not a number: '{raw}'"))?;
                args.min_hit_rate = Some(rate);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.addr.is_some() && args.spawn_server {
        return Err("--addr and --spawn-server are mutually exclusive".into());
    }
    if args.chaos && !args.spawn_server {
        return Err("--chaos requires --spawn-server (the proxy needs an upstream)".into());
    }
    if args.connections == 0 || args.inflight == 0 {
        return Err("--connections and --inflight must be at least 1".into());
    }
    if args.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let contended = args.connections > 1 || args.inflight > 1;
    if contended && !args.spawn_server && args.addr.is_none() {
        return Err(
            "--connections/--inflight need a TCP endpoint (--spawn-server or --addr)".into(),
        );
    }
    if contended && args.chaos {
        return Err("--connections/--inflight and --chaos are mutually exclusive".into());
    }
    if contended && args.cold {
        return Err("--connections/--inflight prewarm the cache; --cold conflicts".into());
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("not a number: '{s}'"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xse-loadgen: {e}");
            return ExitCode::from(2);
        }
    };

    eprintln!(
        "xse-loadgen: building {} schema pairs (seed {})...",
        args.pairs, args.seed
    );
    let pairs = loadgen::build_pairs(args.pairs, args.seed);

    let contended = args.connections > 1 || args.inflight > 1;
    let registry = || {
        Arc::new(EmbeddingRegistry::new(RegistryConfig {
            capacity: args.capacity,
            shards: args.shards,
            discovery: loadgen::loadgen_discovery(),
            ..RegistryConfig::default()
        }))
    };
    let server_config = || ServerConfig {
        // Contended runs hold one worker per connection for the whole
        // replay; anything less serializes whole connections.
        workers: if contended {
            args.workers.max(args.connections)
        } else {
            args.workers
        },
        // Chaos runs stall connections on purpose; shorter deadlines keep
        // workers circulating through the injected faults.
        read_timeout: Some(if args.chaos {
            Duration::from_secs(2)
        } else {
            Duration::from_secs(5)
        }),
        ..ServerConfig::default()
    };

    // `_server` / `_proxy` must outlive the endpoint; dropping them joins
    // their threads.
    let mut _server = None;
    let mut _proxy = None;

    if contended {
        let target = if let Some(addr) = &args.addr {
            use std::net::ToSocketAddrs;
            match addr.to_socket_addrs().ok().and_then(|mut it| it.next()) {
                Some(a) => a,
                None => {
                    eprintln!("xse-loadgen: cannot resolve {addr}");
                    return ExitCode::from(2);
                }
            }
        } else {
            let handle = match Server::bind(("127.0.0.1", 0), registry(), server_config()) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("xse-loadgen: bind: {e}");
                    return ExitCode::from(2);
                }
            };
            let a = handle.addr();
            eprintln!(
                "xse-loadgen: spawned server on {a} ({} shards, {} connections x {} in flight)",
                args.shards, args.connections, args.inflight
            );
            _server = Some(handle);
            a
        };
        let summary = match loadgen::run_contended(
            target,
            &pairs,
            &ContendedConfig {
                mix: args.mix.clone(),
                ops_per_connection: args.ops,
                seed: args.seed,
                connections: args.connections,
                inflight: args.inflight,
            },
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xse-loadgen: contended run: {e}");
                return ExitCode::from(2);
            }
        };
        println!("{}", summary.to_json());
        return check_summary(&args, &summary);
    }

    let mut endpoint = if let Some(addr) = &args.addr {
        match Client::connect(addr.as_str()) {
            Ok(c) => Endpoint::Tcp(c),
            Err(e) => {
                eprintln!("xse-loadgen: connect {addr}: {e}");
                return ExitCode::from(2);
            }
        }
    } else if args.spawn_server {
        let handle = match Server::bind(("127.0.0.1", 0), registry(), server_config()) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("xse-loadgen: bind: {e}");
                return ExitCode::from(2);
            }
        };
        let server_addr = handle.addr();
        eprintln!("xse-loadgen: spawned server on {server_addr}");
        _server = Some(handle);
        if args.chaos {
            let plan = FaultPlan::standard(args.fault_seed);
            let proxy = match FaultProxy::spawn(server_addr, plan) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("xse-loadgen: fault proxy: {e}");
                    return ExitCode::from(2);
                }
            };
            let proxy_addr = proxy.addr();
            eprintln!(
                "xse-loadgen: chaos proxy on {proxy_addr} (fault seed {})",
                args.fault_seed
            );
            _proxy = Some(proxy);
            let client = RetryingClient::new(
                proxy_addr,
                ClientConfig {
                    connect_timeout: Some(Duration::from_secs(1)),
                    read_timeout: Some(Duration::from_secs(5)),
                    write_timeout: Some(Duration::from_secs(2)),
                },
                RetryPolicy {
                    seed: args.fault_seed,
                    ..RetryPolicy::default()
                },
            );
            match client {
                Ok(c) => Endpoint::Retry(c),
                Err(e) => {
                    eprintln!("xse-loadgen: retry client: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            match Client::connect(server_addr) {
                Ok(c) => Endpoint::Tcp(c),
                Err(e) => {
                    eprintln!("xse-loadgen: connect {server_addr}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    } else {
        Endpoint::InProcess(registry())
    };

    let summary = loadgen::run(
        &mut endpoint,
        &pairs,
        &LoadConfig {
            mix: args.mix.clone(),
            ops: args.ops,
            seed: args.seed,
            cold: args.cold,
        },
    );
    println!("{}", summary.to_json());
    if let Some(proxy) = &_proxy {
        let counts = proxy.fault_counts();
        eprintln!(
            "xse-loadgen: injected faults: {} resets, {} truncations, {} corruptions, {} delays; \
             server shed {} connections",
            counts.resets,
            counts.truncations,
            counts.corruptions,
            counts.delays,
            _server.as_ref().map_or(0, |s| s.shed_count()),
        );
    }

    check_summary(&args, &summary)
}

fn check_summary(args: &Args, summary: &loadgen::LoadSummary) -> ExitCode {
    if !args.check {
        return ExitCode::SUCCESS;
    }
    let mut failures = Vec::new();
    if summary.qps <= 0.0 {
        failures.push(format!("qps {:.2} not positive", summary.qps));
    }
    if summary.ops == 0 {
        failures.push("no ops completed".into());
    }
    if summary.misinterpretations > 0 {
        failures.push(format!(
            "{} misinterpreted responses (corruption must never decode as success)",
            summary.misinterpretations
        ));
    }
    if !args.chaos && summary.protocol_errors > 0 {
        failures.push(format!("{} protocol errors", summary.protocol_errors));
    }
    // The repeated-query mix exists to exercise plan reuse; a warm
    // replay that misses the plan cache is a regression even if fast.
    if !args.chaos && args.mix.zipf_queries() && !args.cold && summary.plan_hit_rate < 0.95 {
        failures.push(format!(
            "plan hit rate {:.4} below 0.95",
            summary.plan_hit_rate
        ));
    }
    if let Some(min) = args.min_hit_rate {
        if summary.hit_rate < min {
            failures.push(format!(
                "registry hit rate {:.4} below {min:.4}",
                summary.hit_rate
            ));
        }
    }
    if !failures.is_empty() {
        eprintln!("xse-loadgen: check FAILED ({})", failures.join("; "));
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
