//! Load generator: replays [`TrafficMix`] request streams against an
//! in-process registry or a TCP endpoint.
//!
//! Fixtures are *embeddable by construction*: each [`SchemaPair`] takes a
//! corpus (or synthetic) DTD as the source and a
//! [`noised_copy`](xse_workloads::noise::noised_copy()) of it as the target,
//! retrying noise seeds until discovery verifiably succeeds — so the replay
//! measures serving behaviour, not discovery failure rates. Setup also
//! pre-computes source documents, their images under `σd` (for `invert`
//! traffic), and translatable queries, all serialized to text exactly as a
//! remote client would hold them.
//!
//! The replay itself is deterministic per `(mix, seed, pairs)`: op kinds,
//! pair choices and payload choices all come from one seeded
//! [`StdRng`]. `cold` mode issues an **untimed** evict for the chosen pair
//! before every timed op, forcing each request to pay the compile path —
//! the baseline against which the warm cache's speedup is measured.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xse_discovery::{find_embedding, DiscoveryConfig};
use xse_dtd::{Dtd, GenConfig, InstanceGenerator};
use xse_workloads::corpus::corpus;
use xse_workloads::noise::{noised_copy, NoiseConfig};
use xse_workloads::querygen::{random_queries, QueryConfig};
use xse_workloads::scale;
use xse_workloads::traffic::{ServiceOp, TrafficMix};

use crate::proto::{ErrorCode, Request, Response, StatsWire};
use crate::registry::{default_similarity, EmbeddingRegistry};
use crate::{Client, PipelinedClient, RetryStats, RetryingClient, ServiceError};

/// One source/target schema pair with pre-generated request payloads.
pub struct SchemaPair {
    /// Corpus name (or `scale-N` for synthetic schemas).
    pub name: String,
    /// Source DTD text.
    pub source_text: String,
    /// Target DTD text (a noised, embeddable copy of the source).
    pub target_text: String,
    /// Source documents, serialized.
    pub docs: Vec<String>,
    /// The same documents mapped through `σd`, serialized (inputs for
    /// `invert` traffic).
    pub target_docs: Vec<String>,
    /// Source-side XR queries that translate successfully.
    pub queries: Vec<String>,
}

/// The discovery configuration the generator (and any server replaying
/// its fixtures) should use: single-threaded restarts keep per-request
/// compile cost predictable under concurrent load, and discovery results
/// are identical for every thread count anyway.
pub fn loadgen_discovery() -> DiscoveryConfig {
    DiscoveryConfig {
        threads: 1,
        ..DiscoveryConfig::default()
    }
}

/// Build `count` embeddable schema pairs: the workloads corpus first,
/// then synthetic schemas once the corpus is exhausted. Noise seeds are
/// retried (and the noise level lowered) until discovery succeeds; as a
/// last resort the pair degrades to an identity pair (target = source),
/// which is always embeddable.
pub fn build_pairs(count: usize, seed: u64) -> Vec<SchemaPair> {
    let named: Vec<(String, Dtd)> = corpus()
        .into_iter()
        .map(|(n, d)| (n.to_string(), d))
        .chain((0..count).map(|i| {
            let n = 12 + 3 * i;
            (
                format!("scale-{n}"),
                scale::random_schema(n, seed ^ i as u64),
            )
        }))
        .take(count)
        .collect();
    named
        .into_iter()
        .enumerate()
        .map(|(i, (name, source))| build_pair(name, &source, seed.wrapping_add(i as u64)))
        .collect()
}

fn build_pair(name: String, source: &Dtd, seed: u64) -> SchemaPair {
    let cfg = loadgen_discovery();
    let mut chosen: Option<(Dtd, xse_core::CompiledEmbedding)> = None;
    // Setup must predict the registry's verdict exactly, so verification
    // uses the registry's own similarity heuristic and discovery config
    // (discovery is deterministic per seed, independent of thread count).
    'search: for (attempt, level) in [
        (0u64, 0.3),
        (1, 0.3),
        (2, 0.3),
        (3, 0.2),
        (4, 0.2),
        (5, 0.1),
        (6, 0.1),
        (7, 0.05),
    ] {
        let noised = noised_copy(
            source,
            NoiseConfig::level(level),
            seed.wrapping_mul(31) + attempt,
        );
        let att = default_similarity(source, &noised.target);
        if let Some(e) = find_embedding(source, &noised.target, &att, &cfg) {
            chosen = Some((noised.target, e));
            break 'search;
        }
    }
    let (target, engine) = chosen.unwrap_or_else(|| {
        // Identity fallback: a schema always embeds into itself.
        let att = default_similarity(source, source);
        let e = find_embedding(source, source, &att, &cfg)
            .expect("identity embedding must always exist");
        (source.clone(), e)
    });

    let gen = InstanceGenerator::new(
        source,
        GenConfig {
            max_nodes: 120,
            ..GenConfig::default()
        },
    );
    let mut docs = Vec::new();
    let mut target_docs = Vec::new();
    for i in 0..3u64 {
        let doc = gen.generate(seed.wrapping_add(1000 + i));
        if let Ok(out) = engine.apply(&doc) {
            docs.push(doc.to_xml());
            target_docs.push(out.tree.to_xml());
        }
    }
    // Serving-shaped queries: short navigations with occasional
    // qualifiers, the high-QPS lookups a translation tier fields (deep
    // star/union analytics queries belong to the offline benches).
    let qcfg = QueryConfig {
        max_depth: 3,
        qualifier_p: 0.15,
        union_p: 0.1,
        star_p: 0.1,
    };
    let queries: Vec<String> = random_queries(source, qcfg, seed, 12)
        .into_iter()
        .filter(|q| engine.translate(q).is_ok())
        .take(6)
        .map(|q| q.to_string())
        .collect();
    SchemaPair {
        name,
        source_text: source.to_string(),
        target_text: target.to_string(),
        docs,
        target_docs,
        queries,
    }
}

/// Where requests are sent: in-process dispatch or a TCP connection.
pub enum Endpoint {
    /// Direct calls into [`handle_request`](crate::handle_request) — no
    /// sockets, measures the registry + engine alone.
    InProcess(Arc<EmbeddingRegistry>),
    /// A connected client — measures the full wire path.
    Tcp(Client),
    /// A reconnecting, retrying client — the endpoint for chaos replays
    /// (transport failures don't end the run; the client re-dials).
    Retry(RetryingClient),
}

impl Endpoint {
    fn exec(&mut self, req: &Request) -> Result<Response, ServiceError> {
        match self {
            Endpoint::InProcess(reg) => Ok(crate::handle_request(reg, req)),
            Endpoint::Tcp(client) => client.call(req),
            Endpoint::Retry(client) => client.call(req),
        }
    }

    /// A broken plain TCP connection cannot carry further requests; the
    /// retrying endpoint re-dials per call and the in-process one cannot
    /// fail at transport level.
    fn survives_transport_errors(&self) -> bool {
        !matches!(self, Endpoint::Tcp(_))
    }

    fn retry_stats(&self) -> Option<RetryStats> {
        match self {
            Endpoint::Retry(client) => Some(client.stats()),
            _ => None,
        }
    }
}

/// Replay parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// The traffic mix to sample.
    pub mix: TrafficMix,
    /// Timed operations to issue.
    pub ops: usize,
    /// RNG seed (the whole replay is deterministic per seed).
    pub seed: u64,
    /// Evict the chosen pair (untimed) before every timed op, forcing the
    /// cold compile path.
    pub cold: bool,
}

/// Latency digest for one op kind.
#[derive(Clone, Copy, Debug)]
pub struct OpDigest {
    /// Timed requests of this kind.
    pub count: u64,
    /// Median latency.
    pub p50_nanos: u64,
    /// 99th-percentile latency.
    pub p99_nanos: u64,
}

/// Failures bucketed by kind, for the chaos report. Structured error
/// frames and transport errors are disjoint buckets: a request counts in
/// exactly one.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct ErrorTaxonomy {
    /// `overloaded` error frames (the server shed the connection).
    pub overloaded: u64,
    /// Timeouts: `timeout` error frames plus client-side deadline expiry.
    pub timeout: u64,
    /// Wire-shape rejections: frame-too-large, malformed payload, unknown
    /// opcode (under chaos, mostly corrupted request frames).
    pub malformed: u64,
    /// Other structured application errors (bad DTD, no embedding, …).
    pub app: u64,
    /// Transport gone: socket errors and connection closures.
    pub io: u64,
    /// Protocol violations observed client-side: truncated or
    /// undecodable response frames.
    pub protocol: u64,
}

impl ErrorTaxonomy {
    fn merge(&mut self, other: &ErrorTaxonomy) {
        self.overloaded += other.overloaded;
        self.timeout += other.timeout;
        self.malformed += other.malformed;
        self.app += other.app;
        self.io += other.io;
        self.protocol += other.protocol;
    }

    fn note_response(&mut self, code: ErrorCode) {
        match code {
            ErrorCode::Overloaded => self.overloaded += 1,
            ErrorCode::Timeout => self.timeout += 1,
            ErrorCode::FrameTooLarge | ErrorCode::Malformed | ErrorCode::UnknownOpcode => {
                self.malformed += 1;
            }
            _ => self.app += 1,
        }
    }

    fn note_transport(&mut self, err: &ServiceError) {
        match err {
            ServiceError::Timeout(_) => self.timeout += 1,
            ServiceError::Protocol(_) => self.protocol += 1,
            _ => self.io += 1,
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"overloaded\":{},\"timeout\":{},\"malformed\":{},\"app\":{},\
             \"io\":{},\"protocol\":{}}}",
            self.overloaded, self.timeout, self.malformed, self.app, self.io, self.protocol
        )
    }
}

/// Machine-readable result of one replay.
pub struct LoadSummary {
    /// Mix name.
    pub mix: String,
    /// Timed operations issued.
    pub ops: u64,
    /// Wall-clock time of the timed section.
    pub elapsed_nanos: u64,
    /// Timed operations per second.
    pub qps: f64,
    /// Registry hit rate at the end of the run (hits / resolutions).
    pub hit_rate: f64,
    /// Translation-plan cache hit rate at the end of the run
    /// (`plan_hits / (plan_hits + plan_misses)`; `0.0` when no
    /// translations ran).
    pub plan_hit_rate: f64,
    /// Transport-level failures (socket errors, undecodable frames).
    pub protocol_errors: u64,
    /// Structured error responses (the request reached the server and was
    /// answered with an error frame).
    pub op_errors: u64,
    /// Failures bucketed by kind (see [`ErrorTaxonomy`]).
    pub errors: ErrorTaxonomy,
    /// `overloaded` error frames observed — requests the server shed.
    pub shed: u64,
    /// Successful responses of the *wrong kind* for their request (e.g. a
    /// `document` answer to a `translate`). Must be zero on any run, chaos
    /// included: corruption is designed to be undecodable, never silently
    /// misread.
    pub misinterpretations: u64,
    /// Retry counters, when the endpoint was [`Endpoint::Retry`].
    pub retry: Option<RetryStats>,
    /// Per-op latency digests, in [`ServiceOp::ALL`] order, `None` when
    /// the op never ran.
    pub per_op: Vec<(ServiceOp, Option<OpDigest>)>,
    /// Registry counters after the run.
    pub registry: StatsWire,
    /// Latency digest across *all* timed ops (the warm/cold comparison
    /// metric).
    pub overall_digest: Option<OpDigest>,
}

impl LoadSummary {
    /// Render as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut per_op = String::new();
        for (op, digest) in &self.per_op {
            let Some(d) = digest else { continue };
            if !per_op.is_empty() {
                per_op.push(',');
            }
            per_op.push_str(&format!(
                "\"{}\":{{\"count\":{},\"p50_nanos\":{},\"p99_nanos\":{}}}",
                op.name(),
                d.count,
                d.p50_nanos,
                d.p99_nanos
            ));
        }
        let overall = self
            .overall_digest
            .map(|d| {
                format!(
                    "{{\"count\":{},\"p50_nanos\":{},\"p99_nanos\":{}}}",
                    d.count, d.p50_nanos, d.p99_nanos
                )
            })
            .unwrap_or_else(|| "null".into());
        let retry = self
            .retry
            .map(|r| {
                format!(
                    "{{\"attempts\":{},\"retries\":{},\"reconnects\":{}}}",
                    r.attempts, r.retries, r.reconnects
                )
            })
            .unwrap_or_else(|| "null".into());
        format!(
            "{{\"mix\":\"{}\",\"ops\":{},\"elapsed_nanos\":{},\"qps\":{:.2},\
             \"hit_rate\":{:.4},\"plan_hit_rate\":{:.4},\
             \"protocol_errors\":{},\"op_errors\":{},\"shed\":{},\
             \"misinterpretations\":{},\"errors\":{},\"retry\":{retry},\
             \"overall\":{overall},\"per_op\":{{{per_op}}},\
             \"registry\":{{\"hits\":{},\"misses\":{},\"compiles\":{},\
             \"single_flight_waits\":{},\"evictions\":{},\"entries\":{},\
             \"compile_nanos\":{},\"plan_hits\":{},\"plan_misses\":{},\
             \"plan_entries\":{},\"negative_hits\":{}}}}}",
            self.mix,
            self.ops,
            self.elapsed_nanos,
            self.qps,
            self.hit_rate,
            self.plan_hit_rate,
            self.protocol_errors,
            self.op_errors,
            self.shed,
            self.misinterpretations,
            self.errors.to_json(),
            self.registry.hits,
            self.registry.misses,
            self.registry.compiles,
            self.registry.single_flight_waits,
            self.registry.evictions,
            self.registry.entries,
            self.registry.compile_nanos,
            self.registry.plan_hits,
            self.registry.plan_misses,
            self.registry.plan_entries,
            self.registry.negative_hits,
        )
    }
}

/// Whether a *successful* response is of the kind `req` calls for. Error
/// frames and transport failures are judged elsewhere; this catches the
/// one thing that must never happen — a wrong-kind success (a frame
/// misread as an answer it isn't).
pub fn response_matches(req: &Request, resp: &Response) -> bool {
    matches!(
        (req, resp),
        (Request::Compile { .. }, Response::Compiled { .. })
            | (Request::Apply { .. }, Response::Document { .. })
            | (Request::Invert { .. }, Response::Document { .. })
            | (Request::Translate { .. }, Response::Translated { .. })
            | (Request::Stats, Response::Stats(_))
            | (Request::Evict { .. }, Response::Evicted { .. })
            | (_, Response::Error { .. })
    )
}

/// Replay `cfg.ops` sampled operations against `endpoint`.
///
/// Transport failures are counted; on a plain [`Endpoint::Tcp`] they also
/// abort the replay early (a broken TCP connection cannot carry further
/// requests), while the retrying and in-process endpoints press on.
/// Structured error responses are counted and the replay continues.
pub fn run(endpoint: &mut Endpoint, pairs: &[SchemaPair], cfg: &LoadConfig) -> LoadSummary {
    assert!(!pairs.is_empty(), "load generation needs at least one pair");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut latencies: Vec<Vec<u64>> = vec![Vec::new(); ServiceOp::ALL.len()];
    let mut protocol_errors = 0u64;
    let mut op_errors = 0u64;
    let mut errors = ErrorTaxonomy::default();
    let mut shed = 0u64;
    let mut misinterpretations = 0u64;
    let mut issued = 0u64;

    let t0 = Instant::now();
    for _ in 0..cfg.ops {
        let pair = &pairs[rng.random_range(0..pairs.len())];
        let op = cfg.mix.sample(&mut rng);
        let req = match build_request(pair, op, &mut rng, cfg.mix.zipf_queries()) {
            Some(r) => r,
            // A pair can lack payloads for this op (e.g. no translatable
            // queries survived setup); degrade to a cache touch.
            None => Request::Compile {
                source_dtd: pair.source_text.clone(),
                target_dtd: pair.target_text.clone(),
            },
        };
        if cfg.cold {
            // Untimed: drop the entry so the timed op compiles.
            let evict = Request::Evict {
                source_dtd: pair.source_text.clone(),
                target_dtd: pair.target_text.clone(),
            };
            if let Err(e) = endpoint.exec(&evict) {
                protocol_errors += 1;
                errors.note_transport(&e);
                if !endpoint.survives_transport_errors() {
                    break;
                }
                continue;
            }
        }
        let start = Instant::now();
        let result = endpoint.exec(&req);
        let nanos = start.elapsed().as_nanos() as u64;
        match result {
            Ok(Response::Error { code, message: _ }) => {
                op_errors += 1;
                errors.note_response(code);
                if code == ErrorCode::Overloaded {
                    shed += 1;
                }
            }
            Ok(resp) => {
                if !response_matches(&req, &resp) {
                    misinterpretations += 1;
                }
            }
            Err(e) => {
                protocol_errors += 1;
                errors.note_transport(&e);
                if !endpoint.survives_transport_errors() {
                    break;
                }
                continue;
            }
        }
        issued += 1;
        let slot = ServiceOp::ALL
            .iter()
            .position(|&o| o == op)
            .expect("in ALL");
        latencies[slot].push(nanos);
    }
    let elapsed_nanos = t0.elapsed().as_nanos() as u64;

    let registry = match endpoint.exec(&Request::Stats) {
        Ok(Response::Stats(s)) => s,
        _ => StatsWire::default(),
    };
    let resolutions = registry.hits + registry.misses + registry.single_flight_waits;
    let hit_rate = if resolutions == 0 {
        0.0
    } else {
        registry.hits as f64 / resolutions as f64
    };
    let translations = registry.plan_hits + registry.plan_misses;
    let plan_hit_rate = if translations == 0 {
        0.0
    } else {
        registry.plan_hits as f64 / translations as f64
    };

    let mut all: Vec<u64> = latencies.iter().flatten().copied().collect();
    let per_op = ServiceOp::ALL
        .iter()
        .zip(latencies.iter_mut())
        .map(|(&op, lat)| (op, digest(lat)))
        .collect();
    LoadSummary {
        mix: cfg.mix.name().to_string(),
        ops: issued,
        elapsed_nanos,
        qps: if elapsed_nanos == 0 {
            0.0
        } else {
            issued as f64 * 1e9 / elapsed_nanos as f64
        },
        hit_rate,
        plan_hit_rate,
        protocol_errors,
        op_errors,
        errors,
        shed,
        misinterpretations,
        retry: endpoint.retry_stats(),
        per_op,
        registry,
        overall_digest: digest(&mut all),
    }
}

/// Parameters for the contended replay: `connections` pipelined TCP
/// connections, each keeping up to `inflight` requests in flight.
#[derive(Clone, Debug)]
pub struct ContendedConfig {
    /// The traffic mix every connection samples (independently seeded).
    pub mix: TrafficMix,
    /// Timed operations issued *per connection*.
    pub ops_per_connection: usize,
    /// Base RNG seed; connection `i` derives its own stream from it.
    pub seed: u64,
    /// Concurrent TCP connections.
    pub connections: usize,
    /// Per-connection pipelining window (1 = lockstep, still pipelined
    /// framing).
    pub inflight: usize,
}

/// What one connection's replay produced, merged by [`run_contended`].
#[derive(Default)]
struct ConnOutcome {
    latencies: Vec<Vec<u64>>,
    issued: u64,
    op_errors: u64,
    protocol_errors: u64,
    errors: ErrorTaxonomy,
    shed: u64,
    misinterpretations: u64,
}

/// Replay the mix over `cfg.connections` concurrent [`PipelinedClient`]s,
/// each holding up to `cfg.inflight` requests in flight.
///
/// Every pair is compiled once (untimed) before the timed section, so the
/// digests measure the *warm* path under contention — registry fast-path
/// reads racing across connections plus wire queueing — rather than
/// compile storms. Latency is submit→receive per request, which under a
/// deep window deliberately includes time spent queued behind the
/// connection's other in-flight requests: that is the latency a pipelined
/// caller observes.
///
/// Fails only if the prewarm client cannot be set up; per-connection
/// transport failures end that connection's stream and are counted in the
/// merged taxonomy.
pub fn run_contended(
    addr: SocketAddr,
    pairs: &[SchemaPair],
    cfg: &ContendedConfig,
) -> Result<LoadSummary, ServiceError> {
    assert!(!pairs.is_empty(), "load generation needs at least one pair");
    assert!(cfg.connections >= 1, "need at least one connection");
    assert!(cfg.inflight >= 1, "need a window of at least one");

    // Prewarm (untimed): every pair compiles exactly once up front.
    let mut control = Client::connect(addr)?;
    for p in pairs {
        control.call(&Request::Compile {
            source_dtd: p.source_text.clone(),
            target_dtd: p.target_text.clone(),
        })?;
    }

    let t0 = Instant::now();
    let outcomes: Vec<ConnOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections)
            .map(|conn| scope.spawn(move || drive_connection(addr, pairs, cfg, conn as u64)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("connection thread panicked"))
            .collect()
    });
    let elapsed_nanos = t0.elapsed().as_nanos() as u64;

    let mut latencies: Vec<Vec<u64>> = vec![Vec::new(); ServiceOp::ALL.len()];
    let mut issued = 0u64;
    let mut op_errors = 0u64;
    let mut protocol_errors = 0u64;
    let mut errors = ErrorTaxonomy::default();
    let mut shed = 0u64;
    let mut misinterpretations = 0u64;
    for out in outcomes {
        for (slot, lat) in out.latencies.into_iter().enumerate() {
            latencies[slot].extend(lat);
        }
        issued += out.issued;
        op_errors += out.op_errors;
        protocol_errors += out.protocol_errors;
        errors.merge(&out.errors);
        shed += out.shed;
        misinterpretations += out.misinterpretations;
    }

    let registry = match control.call(&Request::Stats) {
        Ok(Response::Stats(s)) => s,
        _ => StatsWire::default(),
    };
    let resolutions = registry.hits + registry.misses + registry.single_flight_waits;
    let hit_rate = if resolutions == 0 {
        0.0
    } else {
        registry.hits as f64 / resolutions as f64
    };
    let translations = registry.plan_hits + registry.plan_misses;
    let plan_hit_rate = if translations == 0 {
        0.0
    } else {
        registry.plan_hits as f64 / translations as f64
    };

    let mut all: Vec<u64> = latencies.iter().flatten().copied().collect();
    let per_op = ServiceOp::ALL
        .iter()
        .zip(latencies.iter_mut())
        .map(|(&op, lat)| (op, digest(lat)))
        .collect();
    Ok(LoadSummary {
        mix: cfg.mix.name().to_string(),
        ops: issued,
        elapsed_nanos,
        qps: if elapsed_nanos == 0 {
            0.0
        } else {
            issued as f64 * 1e9 / elapsed_nanos as f64
        },
        hit_rate,
        plan_hit_rate,
        protocol_errors,
        op_errors,
        errors,
        shed,
        misinterpretations,
        retry: None,
        per_op,
        registry,
        overall_digest: digest(&mut all),
    })
}

fn drive_connection(
    addr: SocketAddr,
    pairs: &[SchemaPair],
    cfg: &ContendedConfig,
    conn: u64,
) -> ConnOutcome {
    let mut out = ConnOutcome {
        latencies: vec![Vec::new(); ServiceOp::ALL.len()],
        ..ConnOutcome::default()
    };
    let mut client = match PipelinedClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            out.protocol_errors += 1;
            out.errors.note_transport(&e);
            return out;
        }
    };
    // Pre-sample the whole stream so the timed loop does no generation
    // work; each connection gets an independent deterministic stream.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let reqs: Vec<(ServiceOp, Request)> = (0..cfg.ops_per_connection)
        .map(|_| {
            let pair = &pairs[rng.random_range(0..pairs.len())];
            let op = cfg.mix.sample(&mut rng);
            let req =
                build_request(pair, op, &mut rng, cfg.mix.zipf_queries()).unwrap_or_else(|| {
                    Request::Compile {
                        source_dtd: pair.source_text.clone(),
                        target_dtd: pair.target_text.clone(),
                    }
                });
            (op, req)
        })
        .collect();

    let mut pending: HashMap<u32, (usize, Instant)> = HashMap::new();
    let mut next = 0usize;
    loop {
        // Fill the window first, then block on one completion.
        if next < reqs.len() && pending.len() < cfg.inflight {
            let started = Instant::now();
            match client.submit(&reqs[next].1) {
                Ok(id) => {
                    pending.insert(id, (next, started));
                    next += 1;
                    continue;
                }
                Err(e) => {
                    out.protocol_errors += 1;
                    out.errors.note_transport(&e);
                    break;
                }
            }
        }
        if pending.is_empty() {
            break;
        }
        match client.recv() {
            Ok((id, resp)) => {
                let (idx, started) = pending.remove(&id).expect("recv validated the id");
                let nanos = started.elapsed().as_nanos() as u64;
                let (op, req) = &reqs[idx];
                match resp {
                    Response::Error { code, message: _ } => {
                        out.op_errors += 1;
                        out.errors.note_response(code);
                        if code == ErrorCode::Overloaded {
                            out.shed += 1;
                        }
                    }
                    resp => {
                        if !response_matches(req, &resp) {
                            out.misinterpretations += 1;
                        }
                    }
                }
                out.issued += 1;
                let slot = ServiceOp::ALL
                    .iter()
                    .position(|&o| o == *op)
                    .expect("in ALL");
                out.latencies[slot].push(nanos);
            }
            Err(e) => {
                out.protocol_errors += 1;
                out.errors.note_transport(&e);
                break;
            }
        }
    }
    out
}

fn digest(lat: &mut [u64]) -> Option<OpDigest> {
    if lat.is_empty() {
        return None;
    }
    lat.sort_unstable();
    let pick = |p: f64| lat[((lat.len() - 1) as f64 * p).round() as usize];
    Some(OpDigest {
        count: lat.len() as u64,
        p50_nanos: pick(0.50),
        p99_nanos: pick(0.99),
    })
}

fn build_request(
    pair: &SchemaPair,
    op: ServiceOp,
    rng: &mut StdRng,
    zipf_queries: bool,
) -> Option<Request> {
    let (s, t) = (pair.source_text.clone(), pair.target_text.clone());
    Some(match op {
        ServiceOp::Compile => Request::Compile {
            source_dtd: s,
            target_dtd: t,
        },
        ServiceOp::Apply => Request::Apply {
            source_dtd: s,
            target_dtd: t,
            xml: pick(&pair.docs, rng)?.clone(),
        },
        ServiceOp::Invert => Request::Invert {
            source_dtd: s,
            target_dtd: t,
            xml: pick(&pair.target_docs, rng)?.clone(),
        },
        ServiceOp::Translate => Request::Translate {
            source_dtd: s,
            target_dtd: t,
            query: if zipf_queries {
                pick_zipf(&pair.queries, rng)?.clone()
            } else {
                pick(&pair.queries, rng)?.clone()
            },
        },
        ServiceOp::Stats => Request::Stats,
        ServiceOp::Evict => Request::Evict {
            source_dtd: s,
            target_dtd: t,
        },
    })
}

fn pick<'a, T>(items: &'a [T], rng: &mut StdRng) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.random_range(0..items.len())])
    }
}

/// Zipf-ish choice: the i-th item is drawn with probability ∝ 1/(i+1)
/// (fixed-point harmonic weights), so early items dominate the stream.
fn pick_zipf<'a, T>(items: &'a [T], rng: &mut StdRng) -> Option<&'a T> {
    if items.is_empty() {
        return None;
    }
    const SCALE: u32 = 840; // divisible by 1..=8, exact for small lists
    let weights: Vec<u32> = (0..items.len()).map(|i| SCALE / (i as u32 + 1)).collect();
    let total: u32 = weights.iter().sum();
    let mut roll = rng.random_range(0..total);
    for (item, &w) in items.iter().zip(&weights) {
        if roll < w {
            return Some(item);
        }
        roll -= w;
    }
    unreachable!("roll exceeds total weight")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;

    #[test]
    fn pairs_are_embeddable_with_payloads() {
        let pairs = build_pairs(3, 7);
        assert_eq!(pairs.len(), 3);
        for p in &pairs {
            assert!(!p.docs.is_empty(), "{} has no documents", p.name);
            assert_eq!(p.docs.len(), p.target_docs.len());
            // Each pair must compile through the registry path too.
            let reg = EmbeddingRegistry::new(RegistryConfig {
                capacity: 2,
                discovery: loadgen_discovery(),
                ..RegistryConfig::default()
            });
            reg.get_or_compile(&p.source_text, &p.target_text)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn replay_is_deterministic_and_clean() {
        let pairs = build_pairs(2, 11);
        let reg = Arc::new(EmbeddingRegistry::new(RegistryConfig {
            capacity: 8,
            discovery: loadgen_discovery(),
            ..RegistryConfig::default()
        }));
        let cfg = LoadConfig {
            mix: TrafficMix::mixed(),
            ops: 60,
            seed: 5,
            cold: false,
        };
        let mut ep = Endpoint::InProcess(Arc::clone(&reg));
        let summary = run(&mut ep, &pairs, &cfg);
        assert_eq!(summary.ops, 60);
        assert_eq!(summary.protocol_errors, 0);
        assert_eq!(summary.op_errors, 0, "{}", summary.to_json());
        assert!(summary.qps > 0.0);
        assert_eq!(summary.misinterpretations, 0);
        assert_eq!(summary.shed, 0);
        assert!(summary.retry.is_none(), "in-process endpoint never retries");
        let json = summary.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"mix\":\"mixed\""), "{json}");
        assert!(json.contains("\"plan_hit_rate\""), "{json}");
        assert!(json.contains("\"errors\":{\"overloaded\":0"), "{json}");
        assert!(json.contains("\"retry\":null"), "{json}");
        assert!(json.contains("\"negative_hits\":0"), "{json}");
    }

    #[test]
    fn response_matching_rejects_wrong_kind_successes() {
        let compile = Request::Compile {
            source_dtd: "s".into(),
            target_dtd: "t".into(),
        };
        let compiled = Response::Compiled {
            source_hash: "a".into(),
            target_hash: "b".into(),
            size: 1,
        };
        let doc = Response::Document { xml: "<r/>".into() };
        assert!(response_matches(&compile, &compiled));
        assert!(!response_matches(&compile, &doc));
        assert!(!response_matches(&Request::Stats, &compiled));
        // Error frames are never misinterpretations — they are counted in
        // the taxonomy instead.
        let err = Response::Error {
            code: ErrorCode::Overloaded,
            message: String::new(),
        };
        assert!(response_matches(&compile, &err));
        assert!(response_matches(&Request::Stats, &err));
    }

    #[test]
    fn repeated_query_mix_mostly_hits_the_plan_cache() {
        let pairs = build_pairs(2, 11);
        let reg = Arc::new(EmbeddingRegistry::new(RegistryConfig {
            capacity: 8,
            discovery: loadgen_discovery(),
            ..RegistryConfig::default()
        }));
        let cfg = LoadConfig {
            mix: TrafficMix::repeated_query(),
            ops: 300,
            seed: 5,
            cold: false,
        };
        let summary = run(&mut Endpoint::InProcess(Arc::clone(&reg)), &pairs, &cfg);
        assert_eq!(summary.protocol_errors + summary.op_errors, 0);
        // Two pairs hold at most 12 distinct queries between them, so with
        // ~280 translates nearly all land on cached plans.
        assert!(
            summary.plan_hit_rate >= 0.90,
            "plan hit rate {} too low: {}",
            summary.plan_hit_rate,
            summary.to_json()
        );
        assert!(summary.registry.plan_hits > summary.registry.plan_misses * 5);
    }
}
