//! Conformance validation: does a tree belong to `I(S)`? (§2.1)

use std::fmt;

use xse_xmltree::{NodeId, XmlTree};

use crate::{Dtd, Production, TypeId};

/// A conformance violation, reported with the offending node's label path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidationError {
    /// `/`-joined label path from the root to the offending node.
    pub path: String,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at /{}: {}", self.path, self.msg)
    }
}

impl std::error::Error for ValidationError {}

impl Dtd {
    /// Check that `tree` conforms to this DTD: the root is labeled with the
    /// root type and every element's children match its production.
    pub fn validate(&self, tree: &XmlTree) -> Result<(), ValidationError> {
        let root_name = tree.tag(tree.root()).unwrap_or("#text");
        if root_name != self.name(self.root) {
            return Err(ValidationError {
                path: root_name.to_string(),
                msg: format!(
                    "root is <{root_name}> but the DTD's root type is <{}>",
                    self.name(self.root)
                ),
            });
        }
        self.validate_subtree(tree, tree.root(), self.root)
    }

    /// Check that the subtree rooted at `node` is a valid instance of
    /// element type `expect`.
    pub fn validate_subtree(
        &self,
        tree: &XmlTree,
        node: NodeId,
        expect: TypeId,
    ) -> Result<(), ValidationError> {
        // Explicit worklist; documents can be deep.
        let mut work: Vec<(NodeId, TypeId)> = vec![(node, expect)];
        while let Some((n, t)) = work.pop() {
            self.validate_one(tree, n, t, &mut work)?;
        }
        Ok(())
    }

    fn validate_one(
        &self,
        tree: &XmlTree,
        node: NodeId,
        t: TypeId,
        work: &mut Vec<(NodeId, TypeId)>,
    ) -> Result<(), ValidationError> {
        let err = |msg: String| {
            Err(ValidationError {
                path: tree.label_path(node).join("/"),
                msg,
            })
        };
        let Some(tag) = tree.tag(node) else {
            return err(format!("expected element <{}>, found text", self.name(t)));
        };
        if tag != self.name(t) {
            return err(format!("expected <{}>, found <{tag}>", self.name(t)));
        }
        let children = tree.children(node);
        match self.production(t) {
            Production::Str => {
                if children.len() != 1 || !tree.is_text(children[0]) {
                    return err(format!(
                        "<{tag}> must contain exactly one text node (has {} children)",
                        children.len()
                    ));
                }
            }
            Production::Empty => {
                if !children.is_empty() {
                    return err(format!(
                        "<{tag}> must be empty, has {} children",
                        children.len()
                    ));
                }
            }
            Production::Concat(cs) => {
                if children.len() != cs.len() {
                    return err(format!(
                        "<{tag}> must have exactly {} children ({}), has {}",
                        cs.len(),
                        cs.iter()
                            .map(|c| self.name(*c))
                            .collect::<Vec<_>>()
                            .join(", "),
                        children.len()
                    ));
                }
                for (&child, &ct) in children.iter().zip(cs.iter()) {
                    match tree.tag(child) {
                        Some(ctag) if ctag == self.name(ct) => work.push((child, ct)),
                        Some(ctag) => {
                            return err(format!(
                                "child of <{tag}>: expected <{}>, found <{ctag}>",
                                self.name(ct)
                            ))
                        }
                        None => {
                            return err(format!(
                                "child of <{tag}>: expected <{}>, found text",
                                self.name(ct)
                            ))
                        }
                    }
                }
            }
            Production::Disjunction { alts, allows_empty } => {
                if children.is_empty() {
                    if *allows_empty {
                        return Ok(());
                    }
                    return err(format!("<{tag}> must have exactly one child, has none"));
                }
                if children.len() != 1 {
                    return err(format!(
                        "<{tag}> must have exactly one child, has {}",
                        children.len()
                    ));
                }
                let child = children[0];
                let Some(ctag) = tree.tag(child) else {
                    return err(format!("child of <{tag}> must be an element, found text"));
                };
                match alts.iter().find(|&&a| self.name(a) == ctag) {
                    Some(&a) => work.push((child, a)),
                    None => {
                        return err(format!(
                            "child of <{tag}>: <{ctag}> is not among the alternatives ({})",
                            alts.iter()
                                .map(|a| self.name(*a))
                                .collect::<Vec<_>>()
                                .join(" | ")
                        ))
                    }
                }
            }
            Production::Star(b) => {
                for &child in children {
                    match tree.tag(child) {
                        Some(ctag) if ctag == self.name(*b) => work.push((child, *b)),
                        Some(ctag) => {
                            return err(format!(
                                "child of <{tag}>: expected <{}>, found <{ctag}>",
                                self.name(*b)
                            ))
                        }
                        None => {
                            return err(format!(
                                "child of <{tag}>: expected <{}>, found text",
                                self.name(*b)
                            ))
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xse_xmltree::parse_xml;

    fn dtd() -> Dtd {
        Dtd::builder("db")
            .star("db", "class")
            .concat("class", &["cno", "type"])
            .str_type("cno")
            .disjunction_opt("type", &["regular", "project"])
            .empty("regular")
            .empty("project")
            .build()
            .unwrap()
    }

    fn check(xml: &str) -> Result<(), ValidationError> {
        dtd().validate(&parse_xml(xml).unwrap())
    }

    #[test]
    fn accepts_conforming_documents() {
        check("<db/>").unwrap();
        check("<db><class><cno>CS331</cno><type><regular/></type></class></db>").unwrap();
        check("<db><class><cno>x</cno><type/></class><class><cno>y</cno><type><project/></type></class></db>")
            .unwrap();
    }

    #[test]
    fn rejects_wrong_root() {
        let e = check("<notdb/>").unwrap_err();
        assert!(e.msg.contains("root"));
    }

    #[test]
    fn rejects_concat_arity_mismatch() {
        let e = check("<db><class><cno>x</cno></class></db>").unwrap_err();
        assert!(e.msg.contains("exactly 2 children"), "{e}");
        assert_eq!(e.path, "db/class");
    }

    #[test]
    fn rejects_concat_wrong_order() {
        let e = check("<db><class><type/><cno>x</cno></class></db>").unwrap_err();
        assert!(e.msg.contains("expected <cno>"), "{e}");
    }

    #[test]
    fn rejects_multiple_disjunction_children() {
        let e = check("<db><class><cno>x</cno><type><regular/><project/></type></class></db>")
            .unwrap_err();
        assert!(e.msg.contains("exactly one child"), "{e}");
    }

    #[test]
    fn rejects_unknown_alternative() {
        let e = check("<db><class><cno>x</cno><type><weird/></type></class></db>").unwrap_err();
        assert!(e.msg.contains("not among the alternatives"), "{e}");
    }

    #[test]
    fn rejects_missing_text() {
        let e = check("<db><class><cno/><type/></class></db>").unwrap_err();
        assert!(e.msg.contains("text node"), "{e}");
    }

    #[test]
    fn rejects_nonempty_empty_type() {
        let e =
            check("<db><class><cno>x</cno><type><regular><oops/></regular></type></class></db>")
                .unwrap_err();
        assert!(e.msg.contains("must be empty"), "{e}");
    }

    #[test]
    fn rejects_foreign_star_children() {
        let e = check("<db><notclass/></db>").unwrap_err();
        assert!(e.msg.contains("expected <class>"), "{e}");
    }

    #[test]
    fn disjunction_without_empty_flag_requires_a_child() {
        let d = Dtd::builder("r")
            .disjunction("r", &["a"])
            .empty("a")
            .build()
            .unwrap();
        let t = parse_xml("<r/>").unwrap();
        assert!(d.validate(&t).is_err());
        let t = parse_xml("<r><a/></r>").unwrap();
        d.validate(&t).unwrap();
    }

    #[test]
    fn validates_deep_documents_iteratively() {
        let d = Dtd::builder("a")
            .disjunction_opt("a", &["a"])
            .build()
            .unwrap();
        let mut t = xse_xmltree::XmlTree::new("a");
        let mut cur = t.root();
        for _ in 0..200_000 {
            cur = t.add_element(cur, "a");
        }
        d.validate(&t).unwrap();
    }
}
