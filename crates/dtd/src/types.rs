use std::collections::HashMap;
use std::fmt;

/// Identifier of an element type within one [`Dtd`] (dense index, stable for
/// the DTD's lifetime; ordering is declaration order, which the paper's
/// `mindef` construction uses as its "fixed order on the types").
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub(crate) u32);

impl TypeId {
    /// The numeric index of this type.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct from an index obtained via [`TypeId::index`].
    pub fn from_index(i: usize) -> Self {
        TypeId(u32::try_from(i).expect("more than u32::MAX element types"))
    }
}

impl fmt::Debug for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A normal-form production `P(A)` (§2.1):
/// `α ::= str | ε | B1,…,Bn | B1+…+Bn | B*`.
///
/// One liberty, taken from the paper's own footnote 1: a disjunction may
/// include `ε` as an alternative (`A → B + ε` expresses an optional child),
/// recorded in [`Production::Disjunction::allows_empty`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Production {
    /// `A → str`: a single PCDATA (text) child.
    Str,
    /// `A → ε`: no children.
    Empty,
    /// `A → B1, …, Bn` (n ≥ 1): exactly one child of each listed type, in
    /// order. Repetitions are allowed and are distinguished by their
    /// occurrence position (the AND-edge labels of the schema graph).
    Concat(Vec<TypeId>),
    /// `A → B1 + … + Bn` (n ≥ 1, the `Bi` distinct): one and only one child,
    /// of one of the listed types; or no child at all when `allows_empty`.
    Disjunction {
        /// The distinct alternatives.
        alts: Vec<TypeId>,
        /// Whether `ε` is an additional alternative (optional content).
        allows_empty: bool,
    },
    /// `A → B*`: zero or more children, all of type `B`.
    Star(TypeId),
}

impl Production {
    /// The child types mentioned by this production, in declaration order
    /// (with repetitions for concatenations).
    pub fn children(&self) -> &[TypeId] {
        match self {
            Production::Str | Production::Empty => &[],
            Production::Concat(cs) => cs,
            Production::Disjunction { alts, .. } => alts,
            Production::Star(b) => std::slice::from_ref(b),
        }
    }

    /// The size `k` of the production used by the small-model property
    /// (Theorem 4.4): the number of symbols on its right-hand side.
    pub fn size(&self) -> usize {
        match self {
            Production::Str | Production::Empty => 1,
            Production::Concat(cs) => cs.len(),
            Production::Disjunction { alts, allows_empty } => {
                alts.len() + usize::from(*allows_empty)
            }
            Production::Star(_) => 1,
        }
    }
}

/// Errors constructing a [`Dtd`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DtdError {
    /// A production references a type that was never defined.
    UndefinedType { referenced: String, by: String },
    /// The same type was defined twice.
    DuplicateType(String),
    /// The root type has no production.
    UndefinedRoot(String),
    /// A concatenation or disjunction with an empty body.
    EmptyBody(String),
    /// Disjunction alternatives must be distinct (w.l.o.g. in the paper).
    DuplicateAlternative { ty: String, alt: String },
}

impl fmt::Display for DtdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtdError::UndefinedType { referenced, by } => {
                write!(f, "type {referenced:?} referenced by {by:?} is not defined")
            }
            DtdError::DuplicateType(t) => write!(f, "type {t:?} defined twice"),
            DtdError::UndefinedRoot(r) => write!(f, "root type {r:?} is not defined"),
            DtdError::EmptyBody(t) => write!(f, "production of {t:?} has an empty body"),
            DtdError::DuplicateAlternative { ty, alt } => {
                write!(f, "disjunction of {ty:?} lists alternative {alt:?} twice")
            }
        }
    }
}

impl std::error::Error for DtdError {}

#[derive(Clone, Debug)]
pub(crate) struct TypeDef {
    pub(crate) name: String,
    pub(crate) prod: Production,
}

/// A DTD `S = (E, P, r)` in the paper's normal form.
#[derive(Clone, Debug)]
pub struct Dtd {
    pub(crate) defs: Vec<TypeDef>,
    pub(crate) by_name: HashMap<String, TypeId>,
    pub(crate) root: TypeId,
}

impl Dtd {
    /// Start building a DTD whose root type is `root`.
    pub fn builder(root: impl Into<String>) -> DtdBuilder {
        DtdBuilder {
            root: root.into(),
            defs: Vec::new(),
        }
    }

    /// The root type `r`.
    pub fn root(&self) -> TypeId {
        self.root
    }

    /// Number of element types `|E|`.
    pub fn type_count(&self) -> usize {
        self.defs.len()
    }

    /// Iterate over all type ids in declaration order.
    pub fn types(&self) -> impl Iterator<Item = TypeId> + '_ {
        (0..self.defs.len()).map(TypeId::from_index)
    }

    /// The name (tag) of a type.
    pub fn name(&self, t: TypeId) -> &str {
        &self.defs[t.index()].name
    }

    /// The production `P(A)`.
    pub fn production(&self, t: TypeId) -> &Production {
        &self.defs[t.index()].prod
    }

    /// Look up a type by name.
    pub fn type_id(&self, name: &str) -> Option<TypeId> {
        self.by_name.get(name).copied()
    }

    /// Total size `|S|`: number of types plus production sizes.
    pub fn size(&self) -> usize {
        self.defs.len() + self.defs.iter().map(|d| d.prod.size()).sum::<usize>()
    }

    /// `true` iff the schema graph is cyclic (the paper's definition of a
    /// *recursive* DTD).
    pub fn is_recursive(&self) -> bool {
        // Colors: 0 unvisited, 1 on stack, 2 done — iterative DFS.
        let n = self.defs.len();
        let mut color = vec![0u8; n];
        for start in 0..n {
            if color[start] != 0 {
                continue;
            }
            // (type, next child index to explore)
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = 1;
            while let Some(&mut (t, ref mut i)) = stack.last_mut() {
                let children = self.defs[t].prod.children();
                if *i < children.len() {
                    let c = children[*i].index();
                    *i += 1;
                    match color[c] {
                        0 => {
                            color[c] = 1;
                            stack.push((c, 0));
                        }
                        1 => return true,
                        _ => {}
                    }
                } else {
                    color[t] = 2;
                    stack.pop();
                }
            }
        }
        false
    }
}

/// Builder collecting named productions before resolving them into a [`Dtd`].
pub struct DtdBuilder {
    root: String,
    defs: Vec<(String, ProdSpec)>,
}

enum ProdSpec {
    Str,
    Empty,
    Concat(Vec<String>),
    Disjunction(Vec<String>, bool),
    Star(String),
}

impl DtdBuilder {
    /// `A → str`.
    pub fn str_type(mut self, name: &str) -> Self {
        self.defs.push((name.into(), ProdSpec::Str));
        self
    }

    /// `A → ε`.
    pub fn empty(mut self, name: &str) -> Self {
        self.defs.push((name.into(), ProdSpec::Empty));
        self
    }

    /// `A → B1, …, Bn`.
    pub fn concat(mut self, name: &str, children: &[&str]) -> Self {
        self.defs.push((
            name.into(),
            ProdSpec::Concat(children.iter().map(|s| s.to_string()).collect()),
        ));
        self
    }

    /// `A → B1 + … + Bn`.
    pub fn disjunction(mut self, name: &str, alts: &[&str]) -> Self {
        self.defs.push((
            name.into(),
            ProdSpec::Disjunction(alts.iter().map(|s| s.to_string()).collect(), false),
        ));
        self
    }

    /// `A → B1 + … + Bn + ε` (optional content, footnote 1).
    pub fn disjunction_opt(mut self, name: &str, alts: &[&str]) -> Self {
        self.defs.push((
            name.into(),
            ProdSpec::Disjunction(alts.iter().map(|s| s.to_string()).collect(), true),
        ));
        self
    }

    /// `A → B*`.
    pub fn star(mut self, name: &str, child: &str) -> Self {
        self.defs.push((name.into(), ProdSpec::Star(child.into())));
        self
    }

    /// Resolve names and produce the [`Dtd`].
    pub fn build(self) -> Result<Dtd, DtdError> {
        let mut by_name: HashMap<String, TypeId> = HashMap::with_capacity(self.defs.len());
        for (i, (name, _)) in self.defs.iter().enumerate() {
            if by_name
                .insert(name.clone(), TypeId::from_index(i))
                .is_some()
            {
                return Err(DtdError::DuplicateType(name.clone()));
            }
        }
        let root = *by_name
            .get(&self.root)
            .ok_or_else(|| DtdError::UndefinedRoot(self.root.clone()))?;
        let resolve = |n: &str, by: &str| -> Result<TypeId, DtdError> {
            by_name
                .get(n)
                .copied()
                .ok_or_else(|| DtdError::UndefinedType {
                    referenced: n.to_string(),
                    by: by.to_string(),
                })
        };
        let mut defs = Vec::with_capacity(self.defs.len());
        for (name, spec) in &self.defs {
            let prod = match spec {
                ProdSpec::Str => Production::Str,
                ProdSpec::Empty => Production::Empty,
                ProdSpec::Concat(cs) => {
                    if cs.is_empty() {
                        return Err(DtdError::EmptyBody(name.clone()));
                    }
                    Production::Concat(
                        cs.iter()
                            .map(|c| resolve(c, name))
                            .collect::<Result<_, _>>()?,
                    )
                }
                ProdSpec::Disjunction(alts, allows_empty) => {
                    if alts.is_empty() && !allows_empty {
                        return Err(DtdError::EmptyBody(name.clone()));
                    }
                    let ids: Vec<TypeId> = alts
                        .iter()
                        .map(|c| resolve(c, name))
                        .collect::<Result<_, _>>()?;
                    for (i, a) in ids.iter().enumerate() {
                        if ids[..i].contains(a) {
                            return Err(DtdError::DuplicateAlternative {
                                ty: name.clone(),
                                alt: alts[i].clone(),
                            });
                        }
                    }
                    Production::Disjunction {
                        alts: ids,
                        allows_empty: *allows_empty,
                    }
                }
                ProdSpec::Star(c) => Production::Star(resolve(c, name)?),
            };
            defs.push(TypeDef {
                name: name.clone(),
                prod,
            });
        }
        Ok(Dtd {
            defs,
            by_name,
            root,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's S2 of Figure 2: r → A, A → A + ε.
    fn fig2_s2() -> Dtd {
        Dtd::builder("r")
            .concat("r", &["A"])
            .disjunction_opt("A", &["A"])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_resolves_names() {
        let d = fig2_s2();
        assert_eq!(d.type_count(), 2);
        let r = d.type_id("r").unwrap();
        let a = d.type_id("A").unwrap();
        assert_eq!(d.root(), r);
        assert_eq!(d.name(a), "A");
        assert_eq!(d.production(r), &Production::Concat(vec![a]));
        assert_eq!(
            d.production(a),
            &Production::Disjunction {
                alts: vec![a],
                allows_empty: true
            }
        );
    }

    #[test]
    fn undefined_reference_is_an_error() {
        let e = Dtd::builder("r")
            .concat("r", &["missing"])
            .build()
            .unwrap_err();
        assert!(matches!(e, DtdError::UndefinedType { .. }));
    }

    #[test]
    fn undefined_root_is_an_error() {
        let e = Dtd::builder("nope").str_type("r").build().unwrap_err();
        assert!(matches!(e, DtdError::UndefinedRoot(_)));
    }

    #[test]
    fn duplicate_type_is_an_error() {
        let e = Dtd::builder("r")
            .str_type("r")
            .empty("r")
            .build()
            .unwrap_err();
        assert!(matches!(e, DtdError::DuplicateType(_)));
    }

    #[test]
    fn duplicate_alternative_is_an_error() {
        let e = Dtd::builder("r")
            .disjunction("r", &["a", "a"])
            .empty("a")
            .build()
            .unwrap_err();
        assert!(matches!(e, DtdError::DuplicateAlternative { .. }));
    }

    #[test]
    fn concat_may_repeat_types() {
        let d = Dtd::builder("r")
            .concat("r", &["a", "b", "a"])
            .empty("a")
            .empty("b")
            .build()
            .unwrap();
        let a = d.type_id("a").unwrap();
        let b = d.type_id("b").unwrap();
        assert_eq!(d.production(d.root()), &Production::Concat(vec![a, b, a]));
    }

    #[test]
    fn recursion_detection() {
        assert!(fig2_s2().is_recursive());
        let flat = Dtd::builder("r")
            .concat("r", &["a"])
            .str_type("a")
            .build()
            .unwrap();
        assert!(!flat.is_recursive());
        // Fig 2's S1: r → A, A → B,C, B → A+ε, C → ε — recursive via B.
        let s1 = Dtd::builder("r")
            .concat("r", &["A"])
            .concat("A", &["B", "C"])
            .disjunction_opt("B", &["A"])
            .empty("C")
            .build()
            .unwrap();
        assert!(s1.is_recursive());
    }

    #[test]
    fn production_size_for_small_model_bound() {
        let d = Dtd::builder("r")
            .concat("r", &["a", "b", "a"])
            .disjunction_opt("a", &["b"])
            .star("b", "c")
            .str_type("c")
            .build()
            .unwrap();
        assert_eq!(d.production(d.root()).size(), 3);
        assert_eq!(d.production(d.type_id("a").unwrap()).size(), 2); // b + ε
        assert_eq!(d.production(d.type_id("b").unwrap()).size(), 1);
        assert_eq!(d.size(), 4 + 3 + 2 + 1 + 1);
    }

    #[test]
    fn deep_recursion_detection_is_iterative() {
        // A chain of 100k types must not blow the stack.
        let mut b = Dtd::builder("t0");
        for i in 0..100_000 {
            b = b.concat(&format!("t{i}"), &[&format!("t{}", i + 1)]);
        }
        b = b.empty("t100000");
        let d = b.build().unwrap();
        assert!(!d.is_recursive());
    }
}
