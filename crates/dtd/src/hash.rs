//! Canonical content hashing of DTDs.
//!
//! A serving layer keys shared [`CompiledEmbedding`] engines by the *content*
//! of their schema pair, so the key must be identical for every process that
//! sees an equivalent schema — regardless of declaration order, of pointer
//! identities, or of dead types left over from editing. [`Dtd::content_hash`]
//! therefore hashes a **normalized serialization of the reduced DTD**:
//!
//! 1. useless types are removed first ([`Dtd::reduce`]) — two schemas that
//!    differ only in unreachable/unproductive types describe the same
//!    instance set and hash identically;
//! 2. types are serialized sorted by name (declaration order is invisible);
//! 3. disjunction alternatives are serialized sorted by name (the paper
//!    treats `B1 + … + Bn` as a set of distinct alternatives);
//! 4. concatenation child order is preserved (it is semantically ordered);
//! 5. the root is recorded explicitly.
//!
//! The digest is a 128-bit FNV-1a over that string: a fixed public function
//! with no per-process seed, so hashes agree across processes, builds and
//! machines. FNV is not collision-resistant against adversaries; registry
//! keys are a cache-correctness concern, not an authentication one, and
//! 128 bits make accidental collisions negligible.
//!
//! [`CompiledEmbedding`]: https://docs.rs/xse-core

use std::fmt;

use crate::{Dtd, Production};

/// A stable 128-bit content hash of a (reduced, normalized) DTD.
///
/// Equal hashes ⇔ equal canonical serializations (up to FNV collisions),
/// across processes. Display/`to_hex` renders 32 lowercase hex digits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DtdHash(u128);

impl DtdHash {
    /// The raw 128-bit digest.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Lowercase hex rendering (32 digits), the wire/stats format.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse the [`DtdHash::to_hex`] rendering back.
    pub fn from_hex(s: &str) -> Option<DtdHash> {
        // from_str_radix alone would accept a leading '+', letting
        // non-canonical 32-char strings through.
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(DtdHash)
    }
}

impl fmt::Display for DtdHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Debug for DtdHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DtdHash({:032x})", self.0)
    }
}

/// 128-bit FNV-1a (public, unseeded — deliberately process-independent).
fn fnv1a_128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

impl Dtd {
    /// Normalized serialization: one line per type, **sorted by type name**,
    /// with disjunction alternatives sorted by name; a `root` header pins
    /// the root type. Declaration order never appears, so two permuted
    /// constructions of the same schema serialize identically.
    ///
    /// This is a *hashing* format, not a parseable one — use
    /// [`Dtd`]'s `Display` (`to_string()`) for `<!ELEMENT …>` output.
    pub fn canonical_string(&self) -> String {
        use std::fmt::Write as _;
        let mut lines: Vec<String> = Vec::with_capacity(self.type_count());
        for t in self.types() {
            let mut line = String::new();
            let _ = write!(line, "{}=", self.name(t));
            match self.production(t) {
                Production::Str => line.push_str("str"),
                Production::Empty => line.push('e'),
                Production::Concat(cs) => {
                    line.push('(');
                    for (i, c) in cs.iter().enumerate() {
                        if i > 0 {
                            line.push(',');
                        }
                        line.push_str(self.name(*c));
                    }
                    line.push(')');
                }
                Production::Disjunction { alts, allows_empty } => {
                    let mut names: Vec<&str> = alts.iter().map(|c| self.name(*c)).collect();
                    names.sort_unstable();
                    line.push('(');
                    for (i, n) in names.iter().enumerate() {
                        if i > 0 {
                            line.push('|');
                        }
                        line.push_str(n);
                    }
                    if *allows_empty {
                        line.push_str("|e");
                    }
                    line.push(')');
                }
                Production::Star(b) => {
                    let _ = write!(line, "({})*", self.name(*b));
                }
            }
            lines.push(line);
        }
        lines.sort_unstable();
        let mut out = format!("root={}\n", self.name(self.root()));
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }

    /// Stable content hash of this schema: FNV-1a-128 of the *reduced*
    /// DTD's [`Dtd::canonical_string`]. Identical across processes and
    /// declaration orders; schemas differing only in useless types collide
    /// on purpose. A DTD with an unproductive root (no instances at all)
    /// falls back to hashing its own canonical form.
    pub fn content_hash(&self) -> DtdHash {
        let canon = match self.reduce() {
            Some((reduced, _)) => reduced.canonical_string(),
            None => self.canonical_string(),
        };
        DtdHash(fnv1a_128(canon.as_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permuted_declarations_collide() {
        // Same schema, types declared in a different order.
        let a = Dtd::builder("r")
            .concat("r", &["x", "y"])
            .str_type("x")
            .star("y", "z")
            .str_type("z")
            .build()
            .unwrap();
        let b = Dtd::builder("r")
            .str_type("z")
            .star("y", "z")
            .str_type("x")
            .concat("r", &["x", "y"])
            .build()
            .unwrap();
        assert_eq!(a.canonical_string(), b.canonical_string());
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn permuted_disjunction_alternatives_collide() {
        let a = Dtd::builder("r")
            .disjunction("r", &["p", "q"])
            .empty("p")
            .empty("q")
            .build()
            .unwrap();
        let b = Dtd::builder("r")
            .disjunction("r", &["q", "p"])
            .empty("q")
            .empty("p")
            .build()
            .unwrap();
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn concat_order_is_significant() {
        let a = Dtd::builder("r")
            .concat("r", &["x", "y"])
            .empty("x")
            .empty("y")
            .build()
            .unwrap();
        let b = Dtd::builder("r")
            .concat("r", &["y", "x"])
            .empty("x")
            .empty("y")
            .build()
            .unwrap();
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn useless_types_do_not_affect_the_hash() {
        let clean = Dtd::builder("r")
            .concat("r", &["a"])
            .str_type("a")
            .build()
            .unwrap();
        let with_orphan = Dtd::builder("r")
            .concat("r", &["a"])
            .str_type("a")
            .str_type("orphan")
            .build()
            .unwrap();
        assert_eq!(clean.content_hash(), with_orphan.content_hash());
    }

    #[test]
    fn different_roots_differ() {
        let a = Dtd::builder("r")
            .concat("r", &["s"])
            .concat("s", &["r2"])
            .empty("r2")
            .build()
            .unwrap();
        // Structurally similar but rooted elsewhere (names shifted so both
        // are consistent).
        let b = Dtd::builder("s")
            .concat("s", &["r2"])
            .empty("r2")
            .build()
            .unwrap();
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn parse_roundtrip_is_hash_stable() {
        // Display → parse → hash matches the original's hash (the wire
        // protocol ships DTDs as text and both sides must agree on keys).
        let d = Dtd::parse(
            "<!ELEMENT r (a, b)><!ELEMENT a (#PCDATA)>\
             <!ELEMENT b (c)*><!ELEMENT c (#PCDATA)>",
        )
        .unwrap();
        let reparsed = Dtd::parse(&d.to_string()).unwrap();
        assert_eq!(d.content_hash(), reparsed.content_hash());
    }

    #[test]
    fn hex_roundtrip() {
        let d = Dtd::builder("r").str_type("r").build().unwrap();
        let h = d.content_hash();
        assert_eq!(DtdHash::from_hex(&h.to_hex()), Some(h));
        assert_eq!(h.to_hex().len(), 32);
        assert!(DtdHash::from_hex("xyz").is_none());
        // Non-canonical 32-char strings must not parse: from_str_radix
        // alone would accept a leading sign.
        assert!(DtdHash::from_hex("+0000000000000000000000000000000").is_none());
        assert!(DtdHash::from_hex("-0000000000000000000000000000000").is_none());
        assert!(DtdHash::from_hex(" 0000000000000000000000000000000").is_none());
    }

    #[test]
    fn unproductive_root_still_hashes() {
        let d = Dtd::builder("r").concat("r", &["r"]).build().unwrap();
        // reduce() is None; the fallback hashes the raw canonical form.
        let h = d.content_hash();
        assert_ne!(h.as_u128(), 0);
    }
}
