//! DTD schemas in the normal form of Fan & Bohannon §2.1.
//!
//! A DTD is a triple `(E, P, r)`: a finite set of element types, a root type,
//! and for each type `A` a production `P(A)` of one of the normal forms
//!
//! ```text
//! α ::= str | ε | B1, …, Bn | B1 + … + Bn | B*
//! ```
//!
//! (PCDATA, empty, concatenation, disjunction, Kleene star). The paper notes
//! that this form loses no generality: any DTD converts to it in linear time
//! by introducing fresh element types. This crate provides:
//!
//! * the normal-form model ([`Dtd`], [`Production`], [`TypeId`]) plus general
//!   regular-expression content models ([`ContentModel`]) and the
//!   normalizing conversion ([`Dtd::from_content_models`]);
//! * a parser for `<!ELEMENT …>` declarations ([`Dtd::parse`]);
//! * **schema graphs** with AND / OR / STAR edges ([`SchemaGraph`],
//!   [`EdgeKind`]) — the graphs of Figure 1 — including SCC condensation
//!   used by embedding discovery;
//! * **consistency**: detection and removal of useless element types in
//!   `O(|S|²)` ([`Dtd::useless_types`], [`Dtd::reduce`]);
//! * **conformance validation** of [`XmlTree`]s ([`Dtd::validate`]);
//! * **minimum default instances** `mindef(A)` (§4.2), the constant
//!   fragments the instance mapping uses to pad required target structure;
//! * seeded **random instance generation** for tests and benchmarks;
//! * **canonical content hashing** ([`Dtd::content_hash`], [`DtdHash`]):
//!   a process-stable digest of the reduced DTD's normalized serialization,
//!   used by serving layers as a registry key.
//!
//! [`XmlTree`]: xse_xmltree::XmlTree

mod consistency;
mod display;
mod graph;
mod hash;
mod instance_gen;
mod mindef;
mod parse;
mod regex;
mod types;
mod validate;

pub use graph::{Edge, EdgeKind, EdgeTarget, SchemaGraph};
pub use hash::DtdHash;
pub use instance_gen::{GenConfig, InstanceGenerator};
pub use mindef::MindefPlan;
pub use parse::DtdParseError;
pub use regex::ContentModel;
pub use types::{Dtd, DtdBuilder, DtdError, Production, TypeId};
pub use validate::ValidationError;

/// The fixed default string value used by minimum default instances (§4.2).
pub const DEFAULT_STRING: &str = "#s";
