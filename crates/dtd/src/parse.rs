//! Parsing `<!ELEMENT …>` declaration lists into [`Dtd`]s.
//!
//! The accepted grammar is classic DTD element declarations:
//!
//! ```text
//! dtd   := decl+
//! decl  := '<!ELEMENT' name spec '>'
//! spec  := 'EMPTY' | '(' '#PCDATA' ')' | cm
//! cm    := group ('*' | '+' | '?')?
//! group := '(' item ((',' item)* | ('|' item)*) ')'
//! item  := (name | 'EMPTY' | group) ('*' | '+' | '?')?
//! ```
//!
//! `EMPTY` as a disjunction alternative is a non-standard extension writing
//! the paper's `A → B + ε` directly (equivalently use `(B)?`). The root type
//! is the first declared element unless [`Dtd::parse_with_root`] is used.
//! General expressions are normalized to the paper's form via
//! [`Dtd::from_content_models`]; already-normal declarations introduce no
//! synthetic types.

use std::fmt;

use crate::{ContentModel, Dtd, DtdError};

/// Error from [`Dtd::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DtdParseError {
    /// Lexical/syntactic problem at a byte offset.
    Syntax { at: usize, msg: String },
    /// The declarations parsed but the DTD is ill-formed.
    Semantic(DtdError),
}

impl fmt::Display for DtdParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtdParseError::Syntax { at, msg } => {
                write!(f, "DTD syntax error at byte {at}: {msg}")
            }
            DtdParseError::Semantic(e) => write!(f, "DTD error: {e}"),
        }
    }
}

impl std::error::Error for DtdParseError {}

impl From<DtdError> for DtdParseError {
    fn from(e: DtdError) -> Self {
        DtdParseError::Semantic(e)
    }
}

impl Dtd {
    /// Parse `<!ELEMENT …>` declarations; the first declared element is the
    /// root type.
    pub fn parse(input: &str) -> Result<Dtd, DtdParseError> {
        let decls = parse_decls(input)?;
        let root = decls
            .first()
            .map(|(n, _)| n.clone())
            .ok_or(DtdParseError::Syntax {
                at: 0,
                msg: "no element declarations".into(),
            })?;
        Ok(Dtd::from_content_models(&root, &decls)?)
    }

    /// Parse with an explicit root element name.
    pub fn parse_with_root(root: &str, input: &str) -> Result<Dtd, DtdParseError> {
        let decls = parse_decls(input)?;
        Ok(Dtd::from_content_models(root, &decls)?)
    }
}

fn parse_decls(input: &str) -> Result<Vec<(String, ContentModel)>, DtdParseError> {
    let mut p = P {
        s: input.as_bytes(),
        pos: 0,
    };
    let mut decls = Vec::new();
    loop {
        p.ws();
        if p.pos == p.s.len() {
            break;
        }
        p.expect("<!ELEMENT")?;
        p.ws();
        let name = p.name()?;
        p.ws();
        let model = p.spec()?;
        p.ws();
        p.expect(">")?;
        decls.push((name, model));
    }
    Ok(decls)
}

struct P<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, DtdParseError> {
        Err(DtdParseError::Syntax {
            at: self.pos,
            msg: msg.into(),
        })
    }

    fn ws(&mut self) {
        while self
            .s
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
        // Comments between declarations.
        if self.s[self.pos..].starts_with(b"<!--") {
            if let Some(i) = self.s[self.pos..].windows(3).position(|w| w == b"-->") {
                self.pos += i + 3;
                self.ws();
            }
        }
    }

    fn expect(&mut self, tok: &str) -> Result<(), DtdParseError> {
        if self.s[self.pos..].starts_with(tok.as_bytes()) {
            self.pos += tok.len();
            Ok(())
        } else {
            self.err(format!("expected {tok:?}"))
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn name(&mut self) -> Result<String, DtdParseError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| {
            c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':' | b'#')
        }) {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(String::from_utf8_lossy(&self.s[start..self.pos]).into_owned())
    }

    fn spec(&mut self) -> Result<ContentModel, DtdParseError> {
        self.ws();
        if self.s[self.pos..].starts_with(b"EMPTY") {
            self.pos += 5;
            return Ok(ContentModel::Empty);
        }
        if self.peek() != Some(b'(') {
            return self.err("expected '(' or EMPTY");
        }
        let m = self.group()?;
        Ok(self.postfix(m))
    }

    fn postfix(&mut self, m: ContentModel) -> ContentModel {
        match self.peek() {
            Some(b'*') => {
                self.pos += 1;
                ContentModel::Star(Box::new(m))
            }
            Some(b'+') => {
                self.pos += 1;
                ContentModel::Plus(Box::new(m))
            }
            Some(b'?') => {
                self.pos += 1;
                ContentModel::Opt(Box::new(m))
            }
            _ => m,
        }
    }

    /// Parse a parenthesized group; `self.pos` is at `(`.
    fn group(&mut self) -> Result<ContentModel, DtdParseError> {
        self.expect("(")?;
        self.ws();
        if self.s[self.pos..].starts_with(b"#PCDATA") {
            self.pos += 7;
            self.ws();
            self.expect(")")?;
            return Ok(ContentModel::Str);
        }
        let first = self.item()?;
        self.ws();
        match self.peek() {
            Some(b')') => {
                self.pos += 1;
                Ok(first)
            }
            Some(sep @ (b',' | b'|')) => {
                let mut items = vec![first];
                let mut saw_empty = false;
                while self.peek() == Some(sep) {
                    self.pos += 1;
                    self.ws();
                    if self.s[self.pos..].starts_with(b"EMPTY") && sep == b'|' {
                        self.pos += 5;
                        saw_empty = true;
                    } else {
                        items.push(self.item()?);
                    }
                    self.ws();
                }
                self.expect(")")?;
                let m = if sep == b',' {
                    ContentModel::Seq(items)
                } else {
                    ContentModel::Alt(items)
                };
                Ok(if saw_empty {
                    ContentModel::Opt(Box::new(m))
                } else {
                    m
                })
            }
            _ => self.err("expected ',', '|' or ')'"),
        }
    }

    fn item(&mut self) -> Result<ContentModel, DtdParseError> {
        self.ws();
        let base = if self.peek() == Some(b'(') {
            self.group()?
        } else {
            ContentModel::Name(self.name()?)
        };
        Ok(self.postfix(base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Production;

    #[test]
    fn parses_the_paper_fig2_schemas() {
        let s1 = Dtd::parse(
            "<!ELEMENT r (A)><!ELEMENT A (B,C)><!ELEMENT B (A|EMPTY)><!ELEMENT C EMPTY>",
        )
        .unwrap();
        assert_eq!(s1.type_count(), 4);
        let b = s1.type_id("B").unwrap();
        let a = s1.type_id("A").unwrap();
        assert_eq!(
            s1.production(b),
            &Production::Disjunction {
                alts: vec![a],
                allows_empty: true
            }
        );
        assert!(s1.is_recursive());

        let s2 = Dtd::parse("<!ELEMENT r (A)><!ELEMENT A (A|EMPTY)>").unwrap();
        assert_eq!(s2.type_count(), 2);
    }

    #[test]
    fn parses_pcdata_and_star() {
        let d = Dtd::parse("<!ELEMENT db (class)*><!ELEMENT class (#PCDATA)>").unwrap();
        let class = d.type_id("class").unwrap();
        assert_eq!(d.production(d.root()), &Production::Star(class));
        assert_eq!(d.production(class), &Production::Str);
    }

    #[test]
    fn parses_with_whitespace_and_comments() {
        let d = Dtd::parse(
            "<!-- the db -->\n<!ELEMENT db ( class )*>\n<!-- a class -->\n<!ELEMENT class ( cno , title )>\n<!ELEMENT cno (#PCDATA)>\n<!ELEMENT title (#PCDATA)>",
        )
        .unwrap();
        assert_eq!(d.type_count(), 4);
    }

    #[test]
    fn general_expressions_are_normalized() {
        let d = Dtd::parse(
            "<!ELEMENT r (a, (b|c)+, d?)><!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT c EMPTY><!ELEMENT d EMPTY>",
        )
        .unwrap();
        // r gets synthetic helpers for (b|c)+ and d?.
        assert!(d.type_count() > 5);
        assert!(d.is_consistent());
        // r's body is a plain concat after normalization.
        assert!(matches!(d.production(d.root()), Production::Concat(_)));
    }

    #[test]
    fn explicit_root_override() {
        let d = Dtd::parse_with_root("b", "<!ELEMENT a EMPTY><!ELEMENT b (a)>").unwrap();
        assert_eq!(d.name(d.root()), "b");
    }

    #[test]
    fn error_on_garbage() {
        assert!(Dtd::parse("<!ELEMENT r (a>").is_err());
        assert!(Dtd::parse("<!ELEMNT r (a)>").is_err());
        assert!(Dtd::parse("").is_err());
        assert!(Dtd::parse("<!ELEMENT r (a,)>").is_err());
    }

    #[test]
    fn error_on_undefined_reference() {
        let e = Dtd::parse("<!ELEMENT r (ghost)>").unwrap_err();
        assert!(matches!(
            e,
            DtdParseError::Semantic(DtdError::UndefinedType { .. })
        ));
    }

    #[test]
    fn mixed_separators_rejected() {
        assert!(Dtd::parse(
            "<!ELEMENT r (a,b|c)><!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT c EMPTY>"
        )
        .is_err());
    }

    #[test]
    fn roundtrip_through_display() {
        let src = "<!ELEMENT db (class)*><!ELEMENT class (cno,title,type)><!ELEMENT cno (#PCDATA)><!ELEMENT title (#PCDATA)><!ELEMENT type (regular|project)><!ELEMENT regular EMPTY><!ELEMENT project EMPTY>";
        let d = Dtd::parse(src).unwrap();
        let printed = d.to_string();
        let d2 = Dtd::parse(&printed).unwrap();
        assert_eq!(d.type_count(), d2.type_count());
        for t in d.types() {
            let t2 = d2.type_id(d.name(t)).unwrap();
            assert_eq!(d.production(t), d2.production(t2), "type {}", d.name(t));
        }
    }
}
