//! Consistency: useless element types and their removal (§2.1).
//!
//! A DTD is *consistent* when every element type actually appears in some
//! instance. A type is useless when it is **unproductive** (cannot derive any
//! finite subtree — e.g. mutually recursive concatenations) or
//! **unreachable** from the root. The paper removes useless types in
//! `O(|S|²)` along the lines of the standard CFG construction; `I(S') = I(S)`
//! is preserved because no instance ever touched a useless type.

use std::collections::HashMap;

use crate::types::TypeDef;
use crate::{Dtd, Production, TypeId};

impl Dtd {
    /// Types that can derive a finite instance subtree (fixpoint
    /// computation).
    pub fn productive_types(&self) -> Vec<bool> {
        let n = self.type_count();
        let mut productive = vec![false; n];
        loop {
            let mut changed = false;
            for t in self.types() {
                if productive[t.index()] {
                    continue;
                }
                let p = match self.production(t) {
                    // A star can always be instantiated with zero children.
                    Production::Str | Production::Empty | Production::Star(_) => true,
                    Production::Concat(cs) => cs.iter().all(|c| productive[c.index()]),
                    Production::Disjunction { alts, allows_empty } => {
                        *allows_empty || alts.iter().any(|c| productive[c.index()])
                    }
                };
                if p {
                    productive[t.index()] = true;
                    changed = true;
                }
            }
            if !changed {
                return productive;
            }
        }
    }

    /// Types reachable from the root **through instances**: a child is
    /// instance-reachable only if the edge to it can actually be taken, i.e.
    /// the child is productive (a star/disjunction never materializes an
    /// unproductive child, and a concatenation with an unproductive child is
    /// itself unproductive so nothing below it is reachable either).
    fn instance_reachable(&self, productive: &[bool]) -> Vec<bool> {
        let n = self.type_count();
        let mut reach = vec![false; n];
        if !productive[self.root.index()] {
            return reach;
        }
        let mut stack = vec![self.root];
        reach[self.root.index()] = true;
        while let Some(t) = stack.pop() {
            for &c in self.production(t).children() {
                if productive[c.index()] && !reach[c.index()] {
                    reach[c.index()] = true;
                    stack.push(c);
                }
            }
        }
        reach
    }

    /// The useless types of this DTD: unproductive or unreachable. A
    /// consistent DTD returns an empty list.
    pub fn useless_types(&self) -> Vec<TypeId> {
        let productive = self.productive_types();
        let reach = self.instance_reachable(&productive);
        self.types()
            .filter(|t| !(productive[t.index()] && reach[t.index()]))
            .collect()
    }

    /// `true` iff every type appears in some instance (and the root itself
    /// is productive).
    pub fn is_consistent(&self) -> bool {
        self.useless_types().is_empty()
    }

    /// Remove all useless types, returning the consistent DTD `S'` with
    /// `I(S') = I(S)` and the id remapping (old → new).
    ///
    /// Productions are rewritten: unproductive disjunction alternatives are
    /// dropped; `B*` with unproductive `B` becomes `ε` (its only instances
    /// had zero children anyway).
    ///
    /// Returns `None` when the root itself is unproductive — the DTD has
    /// no instances at all and no consistent equivalent exists.
    pub fn reduce(&self) -> Option<(Dtd, HashMap<TypeId, TypeId>)> {
        let productive = self.productive_types();
        if !productive[self.root.index()] {
            return None;
        }
        let reach = self.instance_reachable(&productive);
        let keep: Vec<TypeId> = self
            .types()
            .filter(|t| productive[t.index()] && reach[t.index()])
            .collect();
        let mut remap: HashMap<TypeId, TypeId> = HashMap::with_capacity(keep.len());
        for (i, &t) in keep.iter().enumerate() {
            remap.insert(t, TypeId::from_index(i));
        }
        let mut defs = Vec::with_capacity(keep.len());
        for &t in &keep {
            let prod = match self.production(t) {
                Production::Str => Production::Str,
                Production::Empty => Production::Empty,
                Production::Concat(cs) => {
                    // All children of a kept concatenation are productive
                    // (otherwise the parent would be unproductive) and
                    // reachable (through this very edge).
                    Production::Concat(cs.iter().map(|c| remap[c]).collect())
                }
                Production::Disjunction { alts, allows_empty } => {
                    let kept: Vec<TypeId> = alts
                        .iter()
                        .filter(|c| productive[c.index()])
                        .map(|c| remap[c])
                        .collect();
                    if kept.is_empty() {
                        // allows_empty must hold or the type were unproductive.
                        Production::Empty
                    } else {
                        Production::Disjunction {
                            alts: kept,
                            allows_empty: *allows_empty,
                        }
                    }
                }
                Production::Star(b) => {
                    if productive[b.index()] {
                        Production::Star(remap[b])
                    } else {
                        Production::Empty
                    }
                }
            };
            defs.push(TypeDef {
                name: self.name(t).to_string(),
                prod,
            });
        }
        let by_name = defs
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.clone(), TypeId::from_index(i)))
            .collect();
        Some((
            Dtd {
                defs,
                by_name,
                root: remap[&self.root],
            },
            remap,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_consistent_dtd_reports_no_useless_types() {
        let d = Dtd::builder("r")
            .concat("r", &["a"])
            .star("a", "b")
            .str_type("b")
            .build()
            .unwrap();
        assert!(d.is_consistent());
        assert!(d.useless_types().is_empty());
        let (r, map) = d.reduce().unwrap();
        assert_eq!(r.type_count(), 3);
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn mutual_concat_recursion_is_unproductive() {
        // a → b, b → a: neither derives a finite tree.
        let d = Dtd::builder("r")
            .disjunction_opt("r", &["a"])
            .concat("a", &["b"])
            .concat("b", &["a"])
            .build()
            .unwrap();
        let useless = d.useless_types();
        let a = d.type_id("a").unwrap();
        let b = d.type_id("b").unwrap();
        assert!(useless.contains(&a) && useless.contains(&b));
        let (red, _) = d.reduce().unwrap();
        assert_eq!(red.type_count(), 1);
        // The r → a+ε disjunction degrades to ε.
        assert_eq!(red.production(red.root()), &Production::Empty);
        assert!(red.is_consistent());
    }

    #[test]
    fn star_of_unproductive_child_becomes_empty() {
        let d = Dtd::builder("r")
            .star("r", "a")
            .concat("a", &["a"])
            .build()
            .unwrap();
        let (red, _) = d.reduce().unwrap();
        assert_eq!(red.type_count(), 1);
        assert_eq!(red.production(red.root()), &Production::Empty);
    }

    #[test]
    fn unreachable_types_are_dropped() {
        let d = Dtd::builder("r")
            .concat("r", &["a"])
            .empty("a")
            .str_type("orphan")
            .build()
            .unwrap();
        assert!(!d.is_consistent());
        let orphan = d.type_id("orphan").unwrap();
        assert_eq!(d.useless_types(), vec![orphan]);
        let (red, map) = d.reduce().unwrap();
        assert_eq!(red.type_count(), 2);
        assert!(red.type_id("orphan").is_none());
        assert!(!map.contains_key(&orphan));
        assert!(red.is_consistent());
    }

    #[test]
    fn unproductive_root_is_an_error() {
        let d = Dtd::builder("r").concat("r", &["r"]).build().unwrap();
        assert!(d.reduce().is_none());
        assert!(!d.is_consistent());
    }

    #[test]
    fn disjunction_drops_only_unproductive_alternatives() {
        let d = Dtd::builder("r")
            .disjunction("r", &["good", "bad"])
            .empty("good")
            .concat("bad", &["bad"])
            .build()
            .unwrap();
        let (red, _) = d.reduce().unwrap();
        let good = red.type_id("good").unwrap();
        assert_eq!(
            red.production(red.root()),
            &Production::Disjunction {
                alts: vec![good],
                allows_empty: false
            }
        );
    }

    #[test]
    fn reachability_is_blocked_by_unproductive_intermediates() {
        // r → a+ε; a → b; b → a. "b" is unreachable-in-instances even though
        // graph-reachable, because "a" is unproductive.
        let d = Dtd::builder("r")
            .disjunction_opt("r", &["a"])
            .concat("a", &["b"])
            .str_type("b")
            .build()
            .unwrap();
        // Here a IS productive (b is str): everything consistent.
        assert!(d.is_consistent());

        let d2 = Dtd::builder("r")
            .disjunction_opt("r", &["a"])
            .concat("a", &["a", "leaf"])
            .str_type("leaf")
            .build()
            .unwrap();
        // "a" unproductive ⇒ "leaf" unreachable through instances.
        let useless = d2.useless_types();
        assert_eq!(useless.len(), 2);
    }
}
