//! General regular-expression content models and their conversion to the
//! paper's normal form.
//!
//! Real DTDs use arbitrary regular expressions over element names
//! (`(a, (b|c)*, d+)?`). The paper's §2.1 observes that any such DTD can be
//! converted in linear time to the normal form by "introducing new element
//! types", and that queries can be rewritten accordingly. [`ContentModel`]
//! is the general form; [`crate::Dtd::from_content_models`] performs the
//! normalizing conversion, wrapping every composite subexpression in a fresh
//! synthetic element type named `name#k`.

use std::collections::HashMap;
use std::fmt;

use crate::types::TypeDef;
use crate::{Dtd, DtdError, Production, TypeId};

/// A general DTD content model over element names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContentModel {
    /// `(#PCDATA)`.
    Str,
    /// `EMPTY`.
    Empty,
    /// An element name.
    Name(String),
    /// `(e1, e2, …)`.
    Seq(Vec<ContentModel>),
    /// `(e1 | e2 | …)`.
    Alt(Vec<ContentModel>),
    /// `e*`.
    Star(Box<ContentModel>),
    /// `e+` (sugar: `e, e*`).
    Plus(Box<ContentModel>),
    /// `e?` (sugar: `e | ε`).
    Opt(Box<ContentModel>),
}

impl ContentModel {
    /// `true` when this model is already one of the paper's normal forms
    /// and needs no synthetic types.
    pub fn is_normal(&self) -> bool {
        match self {
            ContentModel::Str | ContentModel::Empty | ContentModel::Name(_) => true,
            ContentModel::Seq(items) | ContentModel::Alt(items) => {
                items.iter().all(|i| matches!(i, ContentModel::Name(_)))
            }
            ContentModel::Star(inner) => matches!(**inner, ContentModel::Name(_)),
            ContentModel::Opt(inner) => {
                matches!(**inner, ContentModel::Name(_))
                    || matches!(&**inner, ContentModel::Alt(items)
                    if items.iter().all(|i| matches!(i, ContentModel::Name(_))))
            }
            ContentModel::Plus(_) => false,
        }
    }

    /// All element names mentioned.
    pub fn names(&self, out: &mut Vec<String>) {
        match self {
            ContentModel::Str | ContentModel::Empty => {}
            ContentModel::Name(n) => out.push(n.clone()),
            ContentModel::Seq(items) | ContentModel::Alt(items) => {
                for i in items {
                    i.names(out);
                }
            }
            ContentModel::Star(i) | ContentModel::Plus(i) | ContentModel::Opt(i) => i.names(out),
        }
    }

    /// Whether a word (sequence of element names) matches this model.
    /// Backtracking matcher over positions — content models are tiny, words
    /// can be long; memoized on (subexpression, position) to stay linear-ish.
    pub fn matches(&self, word: &[&str]) -> bool {
        fn go(
            m: &ContentModel,
            word: &[&str],
            pos: usize,
            k: &mut dyn FnMut(usize) -> bool,
        ) -> bool {
            match m {
                ContentModel::Str | ContentModel::Empty => k(pos),
                ContentModel::Name(n) => {
                    if word.get(pos).is_some_and(|w| *w == n.as_str()) {
                        k(pos + 1)
                    } else {
                        false
                    }
                }
                ContentModel::Seq(items) => {
                    fn seq(
                        items: &[ContentModel],
                        word: &[&str],
                        pos: usize,
                        k: &mut dyn FnMut(usize) -> bool,
                    ) -> bool {
                        match items.split_first() {
                            None => k(pos),
                            Some((first, rest)) => {
                                go(first, word, pos, &mut |p| seq(rest, word, p, k))
                            }
                        }
                    }
                    seq(items, word, pos, k)
                }
                ContentModel::Alt(items) => items.iter().any(|i| go(i, word, pos, k)),
                ContentModel::Opt(inner) => go(inner, word, pos, k) || k(pos),
                ContentModel::Plus(inner) => go(inner, word, pos, &mut |p| {
                    go(&ContentModel::Star(inner.clone()), word, p, k)
                }),
                ContentModel::Star(inner) => {
                    if k(pos) {
                        return true;
                    }
                    // Each iteration must consume input or we loop forever.
                    go(inner, word, pos, &mut |p| p > pos && go(m, word, p, k))
                }
            }
        }
        go(self, word, 0, &mut |p| p == word.len())
    }
}

impl fmt::Display for ContentModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContentModel::Str => write!(f, "(#PCDATA)"),
            ContentModel::Empty => write!(f, "EMPTY"),
            ContentModel::Name(n) => write!(f, "{n}"),
            ContentModel::Seq(items) => {
                write!(f, "(")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{it}")?;
                }
                write!(f, ")")
            }
            ContentModel::Alt(items) => {
                write!(f, "(")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{it}")?;
                }
                write!(f, ")")
            }
            ContentModel::Star(i) => write!(f, "{i}*"),
            ContentModel::Plus(i) => write!(f, "{i}+"),
            ContentModel::Opt(i) => write!(f, "{i}?"),
        }
    }
}

/// Incrementally allocates synthetic wrapper types during normalization.
struct Normalizer {
    defs: Vec<TypeDef>,
    by_name: HashMap<String, TypeId>,
    synth_counter: usize,
}

impl Normalizer {
    /// Reduce `m` to a single type id whose production captures it,
    /// introducing synthetic types for composite subexpressions.
    fn atom(&mut self, owner: &str, m: &ContentModel) -> Result<TypeId, DtdError> {
        if let ContentModel::Name(n) = m {
            return self
                .by_name
                .get(n)
                .copied()
                .ok_or_else(|| DtdError::UndefinedType {
                    referenced: n.clone(),
                    by: owner.to_string(),
                });
        }
        let prod = self.production_of(owner, m)?;
        Ok(self.fresh(owner, prod))
    }

    fn fresh(&mut self, owner: &str, prod: Production) -> TypeId {
        self.synth_counter += 1;
        let name = format!("{owner}#{}", self.synth_counter);
        let id = TypeId::from_index(self.defs.len());
        self.by_name.insert(name.clone(), id);
        self.defs.push(TypeDef { name, prod });
        id
    }

    /// The normal-form production equivalent to `m` (for the *content* of a
    /// type, not wrapped).
    fn production_of(&mut self, owner: &str, m: &ContentModel) -> Result<Production, DtdError> {
        Ok(match m {
            ContentModel::Str => Production::Str,
            ContentModel::Empty => Production::Empty,
            ContentModel::Name(n) => {
                let id = self.atom(owner, &ContentModel::Name(n.clone()))?;
                Production::Concat(vec![id])
            }
            ContentModel::Seq(items) => {
                if items.is_empty() {
                    return Err(DtdError::EmptyBody(owner.to_string()));
                }
                let ids = items
                    .iter()
                    .map(|i| self.atom(owner, i))
                    .collect::<Result<Vec<_>, _>>()?;
                Production::Concat(ids)
            }
            ContentModel::Alt(items) => {
                if items.is_empty() {
                    return Err(DtdError::EmptyBody(owner.to_string()));
                }
                let mut ids = Vec::with_capacity(items.len());
                for i in items {
                    let id = self.atom(owner, i)?;
                    // Distinctness w.l.o.g.: deduplicate identical names.
                    if !ids.contains(&id) {
                        ids.push(id);
                    }
                }
                Production::Disjunction {
                    alts: ids,
                    allows_empty: false,
                }
            }
            ContentModel::Star(inner) => Production::Star(self.atom(owner, inner)?),
            ContentModel::Plus(inner) => {
                // e+ = e, e*
                let one = self.atom(owner, inner)?;
                let star = self.fresh(owner, Production::Star(one));
                Production::Concat(vec![one, star])
            }
            ContentModel::Opt(inner) => match &**inner {
                ContentModel::Alt(items) => {
                    let mut prod = self.production_of(owner, &ContentModel::Alt(items.clone()))?;
                    if let Production::Disjunction { allows_empty, .. } = &mut prod {
                        *allows_empty = true;
                    }
                    prod
                }
                other => {
                    let id = self.atom(owner, other)?;
                    Production::Disjunction {
                        alts: vec![id],
                        allows_empty: true,
                    }
                }
            },
        })
    }
}

impl Dtd {
    /// Build a DTD from general content models, normalizing to the paper's
    /// form. `decls` pairs each element name with its model; `root` names
    /// the root type. Composite subexpressions become synthetic types named
    /// `owner#k`.
    pub fn from_content_models(
        root: &str,
        decls: &[(String, ContentModel)],
    ) -> Result<Dtd, DtdError> {
        let mut n = Normalizer {
            defs: Vec::with_capacity(decls.len()),
            by_name: HashMap::with_capacity(decls.len()),
            synth_counter: 0,
        };
        // Declare all real types first so forward references resolve.
        for (i, (name, _)) in decls.iter().enumerate() {
            if n.by_name
                .insert(name.clone(), TypeId::from_index(i))
                .is_some()
            {
                return Err(DtdError::DuplicateType(name.clone()));
            }
            n.defs.push(TypeDef {
                name: name.clone(),
                prod: Production::Empty, // patched below
            });
        }
        for (i, (name, model)) in decls.iter().enumerate() {
            let prod = n.production_of(name, model)?;
            n.defs[i].prod = prod;
        }
        let root = *n
            .by_name
            .get(root)
            .ok_or_else(|| DtdError::UndefinedRoot(root.to_string()))?;
        Ok(Dtd {
            defs: n.defs,
            by_name: n.by_name,
            root,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(n: &str) -> ContentModel {
        ContentModel::Name(n.into())
    }

    #[test]
    fn normal_models_map_directly() {
        let d = Dtd::from_content_models(
            "r",
            &[
                ("r".into(), ContentModel::Seq(vec![name("a"), name("b")])),
                ("a".into(), ContentModel::Alt(vec![name("b"), name("c")])),
                ("b".into(), ContentModel::Star(Box::new(name("c")))),
                ("c".into(), ContentModel::Str),
            ],
        )
        .unwrap();
        assert_eq!(d.type_count(), 4); // no synthetic types
        let a = d.type_id("a").unwrap();
        assert!(matches!(d.production(a), Production::Disjunction { .. }));
    }

    #[test]
    fn plus_desugars_to_concat_with_star() {
        let d = Dtd::from_content_models(
            "r",
            &[
                ("r".into(), ContentModel::Plus(Box::new(name("a")))),
                ("a".into(), ContentModel::Empty),
            ],
        )
        .unwrap();
        // r → a, a#1 where a#1 → a*.
        assert_eq!(d.type_count(), 3);
        let a = d.type_id("a").unwrap();
        let synth = d.type_id("r#1").unwrap();
        assert_eq!(d.production(d.root()), &Production::Concat(vec![a, synth]));
        assert_eq!(d.production(synth), &Production::Star(a));
    }

    #[test]
    fn optional_maps_to_allows_empty() {
        let d = Dtd::from_content_models(
            "r",
            &[
                ("r".into(), ContentModel::Opt(Box::new(name("a")))),
                ("a".into(), ContentModel::Empty),
            ],
        )
        .unwrap();
        let a = d.type_id("a").unwrap();
        assert_eq!(
            d.production(d.root()),
            &Production::Disjunction {
                alts: vec![a],
                allows_empty: true
            }
        );
    }

    #[test]
    fn nested_composites_get_synthetic_types() {
        // r → (a, (b|c)*, d)
        let d = Dtd::from_content_models(
            "r",
            &[
                (
                    "r".into(),
                    ContentModel::Seq(vec![
                        name("a"),
                        ContentModel::Star(Box::new(ContentModel::Alt(vec![name("b"), name("c")]))),
                        name("d"),
                    ]),
                ),
                ("a".into(), ContentModel::Empty),
                ("b".into(), ContentModel::Empty),
                ("c".into(), ContentModel::Empty),
                ("d".into(), ContentModel::Empty),
            ],
        )
        .unwrap();
        // Synthetics: r#1 → b|c (the alt), r#2 → r#1* — r's body references
        // a, r#2, d.
        assert_eq!(d.type_count(), 7);
        let alt = d.type_id("r#1").unwrap();
        assert!(matches!(
            d.production(alt),
            Production::Disjunction { alts, .. } if alts.len() == 2
        ));
        assert!(d.is_consistent());
    }

    #[test]
    fn alt_deduplicates_repeated_names() {
        let d = Dtd::from_content_models(
            "r",
            &[
                ("r".into(), ContentModel::Alt(vec![name("a"), name("a")])),
                ("a".into(), ContentModel::Empty),
            ],
        )
        .unwrap();
        let a = d.type_id("a").unwrap();
        assert_eq!(
            d.production(d.root()),
            &Production::Disjunction {
                alts: vec![a],
                allows_empty: false
            }
        );
    }

    #[test]
    fn undefined_name_errors() {
        let e = Dtd::from_content_models("r", &[("r".into(), name("ghost"))]).unwrap_err();
        assert!(matches!(e, DtdError::UndefinedType { .. }));
    }

    #[test]
    fn word_matching_simple() {
        let m = ContentModel::Seq(vec![
            name("a"),
            ContentModel::Star(Box::new(name("b"))),
            ContentModel::Opt(Box::new(name("c"))),
        ]);
        assert!(m.matches(&["a"]));
        assert!(m.matches(&["a", "b", "b"]));
        assert!(m.matches(&["a", "b", "c"]));
        assert!(!m.matches(&["a", "c", "b"]));
        assert!(!m.matches(&[]));
    }

    #[test]
    fn word_matching_plus_and_alt() {
        let m = ContentModel::Plus(Box::new(ContentModel::Alt(vec![name("x"), name("y")])));
        assert!(m.matches(&["x"]));
        assert!(m.matches(&["x", "y", "x"]));
        assert!(!m.matches(&[]));
        assert!(!m.matches(&["z"]));
    }

    #[test]
    fn star_of_nullable_inner_terminates() {
        // (a?)* — inner can match ε; the matcher must not loop.
        let m = ContentModel::Star(Box::new(ContentModel::Opt(Box::new(name("a")))));
        assert!(m.matches(&[]));
        assert!(m.matches(&["a", "a"]));
        assert!(!m.matches(&["b"]));
    }

    #[test]
    fn display_roundtrips_shapes() {
        let m = ContentModel::Seq(vec![
            name("a"),
            ContentModel::Star(Box::new(ContentModel::Alt(vec![name("b"), name("c")]))),
        ]);
        assert_eq!(m.to_string(), "(a,(b|c)*)");
    }
}
