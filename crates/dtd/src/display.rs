//! Rendering DTDs back to `<!ELEMENT …>` declarations and to the graph
//! notation used in the paper's figures.

use std::fmt;

use crate::{Dtd, Production};

impl fmt::Display for Dtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in self.types() {
            write!(f, "<!ELEMENT {} ", self.name(t))?;
            match self.production(t) {
                Production::Str => write!(f, "(#PCDATA)")?,
                Production::Empty => write!(f, "EMPTY")?,
                Production::Concat(cs) => {
                    write!(f, "(")?;
                    for (i, c) in cs.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{}", self.name(*c))?;
                    }
                    write!(f, ")")?;
                }
                Production::Disjunction { alts, allows_empty } => {
                    write!(f, "(")?;
                    for (i, c) in alts.iter().enumerate() {
                        if i > 0 {
                            write!(f, "|")?;
                        }
                        write!(f, "{}", self.name(*c))?;
                    }
                    write!(f, ")")?;
                    if *allows_empty {
                        write!(f, "?")?;
                    }
                }
                Production::Star(b) => write!(f, "({})*", self.name(*b))?,
            }
            writeln!(f, ">")?;
        }
        Ok(())
    }
}

impl Dtd {
    /// A compact single-type description, e.g. `class -> cno, title, type`,
    /// in the paper's production notation.
    pub fn production_string(&self, t: crate::TypeId) -> String {
        let body = match self.production(t) {
            Production::Str => "str".to_string(),
            Production::Empty => "ε".to_string(),
            Production::Concat(cs) => cs
                .iter()
                .map(|c| self.name(*c))
                .collect::<Vec<_>>()
                .join(", "),
            Production::Disjunction { alts, allows_empty } => {
                let mut s = alts
                    .iter()
                    .map(|c| self.name(*c))
                    .collect::<Vec<_>>()
                    .join(" + ");
                if *allows_empty {
                    s.push_str(" + ε");
                }
                s
            }
            Production::Star(b) => format!("{}*", self.name(*b)),
        };
        format!("{} -> {}", self.name(t), body)
    }
}

#[cfg(test)]
mod tests {
    use crate::Dtd;

    #[test]
    fn display_emits_one_declaration_per_type() {
        let d = Dtd::builder("r")
            .concat("r", &["a", "b"])
            .disjunction_opt("a", &["b"])
            .star("b", "c")
            .str_type("c")
            .build()
            .unwrap();
        let s = d.to_string();
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("<!ELEMENT r (a,b)>"));
        assert!(s.contains("<!ELEMENT a (b)?>"));
        assert!(s.contains("<!ELEMENT b (c)*>"));
        assert!(s.contains("<!ELEMENT c (#PCDATA)>"));
    }

    #[test]
    fn production_string_uses_paper_notation() {
        let d = Dtd::builder("r")
            .disjunction_opt("r", &["a"])
            .empty("a")
            .build()
            .unwrap();
        assert_eq!(d.production_string(d.root()), "r -> a + ε");
        let a = d.type_id("a").unwrap();
        assert_eq!(d.production_string(a), "a -> ε");
    }
}
