//! Minimum default instances `mindef(A)` (§4.2).
//!
//! The instance-level mapping pads required-but-unmapped target structure
//! with a fixed default instance per type. The paper computes `mindef(A)`
//! with a rank-based fixpoint: `str` types get a single `#s` text child,
//! star types get no children, a concatenation waits for all children, and a
//! disjunction picks the *smallest* already-finished alternative w.r.t. the
//! fixed order on types (here: declaration order, i.e. `TypeId` order).

use xse_xmltree::{NodeId, TagId, XmlTree};

use crate::{Dtd, Production, TypeId, DEFAULT_STRING};

/// Plan of how each type's minimum default instance is built. Computed once
/// per DTD and reused for every materialization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MindefPlan {
    /// `A → str`: one `#s` text child.
    Text,
    /// `A → ε`, `A → B*`, or a disjunction taking its ε alternative: no
    /// children.
    Leaf,
    /// `A → B1,…,Bn`: all children's mindefs in order.
    AllChildren(Vec<TypeId>),
    /// Disjunction: the chosen alternative.
    OneChild(TypeId),
    /// Unproductive type — no instance, hence no mindef.
    None,
}

impl Dtd {
    /// Compute the mindef construction plan for every type (paper's
    /// rank-based loop). Unproductive types get [`MindefPlan::None`].
    pub fn mindef_plans(&self) -> Vec<MindefPlan> {
        let n = self.type_count();
        let mut plan = vec![MindefPlan::None; n];
        let mut done = vec![false; n];
        // Base cases: rank drops to 0 immediately.
        for t in self.types() {
            match self.production(t) {
                Production::Str => {
                    plan[t.index()] = MindefPlan::Text;
                    done[t.index()] = true;
                }
                Production::Empty | Production::Star(_) => {
                    plan[t.index()] = MindefPlan::Leaf;
                    done[t.index()] = true;
                }
                Production::Disjunction { allows_empty, .. } if *allows_empty => {
                    // ε is always the cheapest choice and, being "no type",
                    // precedes every element alternative in the fixed order.
                    plan[t.index()] = MindefPlan::Leaf;
                    done[t.index()] = true;
                }
                _ => {}
            }
        }
        // Fixpoint for concatenations and disjunctions.
        loop {
            let mut changed = false;
            for t in self.types() {
                if done[t.index()] {
                    continue;
                }
                match self.production(t) {
                    Production::Concat(cs) => {
                        if cs.iter().all(|c| done[c.index()]) {
                            plan[t.index()] = MindefPlan::AllChildren(cs.clone());
                            done[t.index()] = true;
                            changed = true;
                        }
                    }
                    Production::Disjunction { alts, .. } => {
                        // Smallest finished alternative w.r.t. TypeId order.
                        if let Some(&b) = alts
                            .iter()
                            .filter(|c| done[c.index()])
                            .min_by_key(|c| c.index())
                        {
                            plan[t.index()] = MindefPlan::OneChild(b);
                            done[t.index()] = true;
                            changed = true;
                        }
                    }
                    _ => unreachable!("base cases handled above"),
                }
            }
            if !changed {
                return plan;
            }
        }
    }

    /// Materialize `mindef(A)` as a standalone tree rooted at an `A` node.
    ///
    /// # Panics
    /// Panics when `A` is unproductive (inconsistent DTD) — call
    /// [`Dtd::reduce`] first.
    pub fn mindef(&self, a: TypeId) -> XmlTree {
        let plans = self.mindef_plans();
        let mut tree = XmlTree::new(self.name(a));
        let root = tree.root();
        self.mindef_children_with(&plans, a, &mut tree, root);
        tree
    }

    /// Append `mindef(A)` as a new child of `parent` inside an existing
    /// tree, returning the new node. Used by the instance mapping, which
    /// precomputes the plans once.
    pub fn mindef_into(
        &self,
        plans: &[MindefPlan],
        a: TypeId,
        tree: &mut XmlTree,
        parent: NodeId,
    ) -> NodeId {
        let node = tree.add_element(parent, self.name(a));
        self.mindef_children_with(plans, a, tree, node);
        node
    }

    /// [`Dtd::mindef_into`] with the tree's tag table precomputed:
    /// `tags[ty.index()]` must be `ty`'s name interned in `tree`'s symbol
    /// table. This is the instance-mapping hot path — default padding is
    /// emitted without any string hashing.
    pub fn mindef_into_tagged(
        &self,
        plans: &[MindefPlan],
        tags: &[TagId],
        a: TypeId,
        tree: &mut XmlTree,
        parent: NodeId,
    ) -> NodeId {
        let node = tree.add_element_tag(parent, tags[a.index()]);
        match &plans[a.index()] {
            MindefPlan::Text => {
                tree.add_text(node, DEFAULT_STRING);
            }
            MindefPlan::Leaf => {}
            MindefPlan::AllChildren(cs) => {
                for &c in cs {
                    self.mindef_into_tagged(plans, tags, c, tree, node);
                }
            }
            MindefPlan::OneChild(c) => {
                self.mindef_into_tagged(plans, tags, *c, tree, node);
            }
            MindefPlan::None => {
                panic!(
                    "mindef({}) requested for an unproductive type — reduce() the DTD first",
                    self.name(a)
                )
            }
        }
        node
    }

    fn mindef_children_with(
        &self,
        plans: &[MindefPlan],
        a: TypeId,
        tree: &mut XmlTree,
        node: NodeId,
    ) {
        match &plans[a.index()] {
            MindefPlan::Text => {
                tree.add_text(node, DEFAULT_STRING);
            }
            MindefPlan::Leaf => {}
            MindefPlan::AllChildren(cs) => {
                for &c in cs {
                    self.mindef_into(plans, c, tree, node);
                }
            }
            MindefPlan::OneChild(c) => {
                self.mindef_into(plans, *c, tree, node);
            }
            MindefPlan::None => {
                panic!(
                    "mindef({}) requested for an unproductive type — reduce() the DTD first",
                    self.name(a)
                )
            }
        }
    }

    /// Number of nodes in `mindef(A)` without materializing it (text nodes
    /// included).
    pub fn mindef_size(&self, a: TypeId) -> usize {
        let plans = self.mindef_plans();
        let mut memo = vec![0usize; self.type_count()];
        self.mindef_size_rec(&plans, a, &mut memo)
    }

    fn mindef_size_rec(&self, plans: &[MindefPlan], a: TypeId, memo: &mut [usize]) -> usize {
        if memo[a.index()] != 0 {
            return memo[a.index()];
        }
        let s = match &plans[a.index()] {
            MindefPlan::Text => 2,
            MindefPlan::Leaf => 1,
            MindefPlan::AllChildren(cs) => {
                1 + cs
                    .iter()
                    .map(|&c| self.mindef_size_rec(plans, c, memo))
                    .sum::<usize>()
            }
            MindefPlan::OneChild(c) => 1 + self.mindef_size_rec(plans, *c, memo),
            MindefPlan::None => panic!("mindef_size of unproductive type"),
        };
        memo[a.index()] = s;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The target school DTD fragment used by Example 4.3.
    fn example_4_3_dtd() -> Dtd {
        Dtd::builder("school")
            .concat("school", &["student", "category"])
            .concat("student", &["ssn", "name", "gpa", "taking"])
            .str_type("ssn")
            .str_type("name")
            .str_type("gpa")
            .star("taking", "cno")
            .str_type("cno")
            .disjunction("category", &["mandatory", "advanced"])
            .disjunction("mandatory", &["regular", "lab"])
            .concat("advanced", &["project"])
            .str_type("project")
            .concat("regular", &["required"])
            .star("required", "prereq")
            .star("prereq", "course")
            .empty("course")
            .str_type("lab")
            .build()
            .unwrap()
    }

    #[test]
    fn mindef_of_str_is_hash_s() {
        let d = example_4_3_dtd();
        let t = d.mindef(d.type_id("ssn").unwrap());
        assert_eq!(t.to_xml(), "<ssn>#s</ssn>");
    }

    #[test]
    fn mindef_of_star_has_no_children() {
        let d = example_4_3_dtd();
        let t = d.mindef(d.type_id("taking").unwrap());
        assert_eq!(t.to_xml(), "<taking/>");
    }

    #[test]
    fn mindef_of_student_matches_example_4_3() {
        let d = example_4_3_dtd();
        let t = d.mindef(d.type_id("student").unwrap());
        assert_eq!(
            t.to_xml(),
            "<student><ssn>#s</ssn><name>#s</name><gpa>#s</gpa><taking/></student>"
        );
    }

    #[test]
    fn mindef_of_disjunction_picks_smallest_ranked_alternative() {
        // category → mandatory + advanced; mandatory → regular + lab.
        // "lab" (str) finishes at rank 0 immediately, so in the first pass
        // "mandatory" resolves to its lab branch; in the second pass
        // "category" picks the smaller finished alternative — mandatory
        // (declared before advanced). Example 4.3 shows the other branch
        // because its fixed type order differs; the choice is an arbitrary
        // constant of the schema, which is what matters.
        let d = example_4_3_dtd();
        let t = d.mindef(d.type_id("category").unwrap());
        let s = t.to_xml();
        assert_eq!(
            s,
            "<category><mandatory><lab>#s</lab></mandatory></category>"
        );
        // Determinism: same plan every time.
        assert_eq!(s, d.mindef(d.type_id("category").unwrap()).to_xml());
    }

    #[test]
    fn mindef_respects_declaration_order_tie_break() {
        let d = Dtd::builder("r")
            .disjunction("r", &["b", "a"])
            .empty("a")
            .empty("b")
            .build()
            .unwrap();
        // Both alternatives are rank-0 immediately; "a" was declared after
        // "b"? No: declaration order is a(1)? Order: r=0, b? — builder adds
        // in call order: r, a, b. So a < b and mindef picks a.
        let t = d.mindef(d.root());
        assert_eq!(t.to_xml(), "<r><a/></r>");
    }

    #[test]
    fn optional_disjunction_prefers_epsilon() {
        let d = Dtd::builder("r")
            .disjunction_opt("r", &["a"])
            .str_type("a")
            .build()
            .unwrap();
        assert_eq!(d.mindef(d.root()).to_xml(), "<r/>");
    }

    #[test]
    fn recursive_dtd_mindef_terminates() {
        // class → cno, type; type → regular + project; regular → prereq;
        // prereq → class* — recursion broken by the star.
        let d = Dtd::builder("class")
            .concat("class", &["cno", "type"])
            .str_type("cno")
            .disjunction("type", &["regular", "project"])
            .concat("regular", &["prereq"])
            .star("prereq", "class")
            .empty("project")
            .build()
            .unwrap();
        let t = d.mindef(d.root());
        // type picks the smaller finished alternative; regular (declared
        // before project) finishes in round 2, project in round 0, so the
        // first time "type" is computable only "project" is finished.
        assert_eq!(
            t.to_xml(),
            "<class><cno>#s</cno><type><project/></type></class>"
        );
    }

    #[test]
    fn mindef_size_matches_materialization() {
        let d = example_4_3_dtd();
        for t in d.types() {
            assert_eq!(d.mindef_size(t), d.mindef(t).len(), "type {}", d.name(t));
        }
    }

    #[test]
    #[should_panic(expected = "unproductive")]
    fn mindef_of_unproductive_type_panics() {
        let d = Dtd::builder("r")
            .disjunction_opt("r", &["a"])
            .concat("a", &["a"])
            .build()
            .unwrap();
        let a = d.type_id("a").unwrap();
        let _ = d.mindef(a);
    }

    #[test]
    fn mindef_conforms_to_the_dtd() {
        let d = example_4_3_dtd();
        for t in d.types() {
            let m = d.mindef(t);
            d.validate_subtree(&m, m.root(), t)
                .unwrap_or_else(|e| panic!("mindef({}) invalid: {e}", d.name(t)));
        }
    }
}
