//! Seeded random generation of conforming instances, the document workload
//! generator behind the tests and benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xse_xmltree::{NodeId, XmlTree};

use crate::{Dtd, Production, TypeId};

/// Tuning knobs for [`InstanceGenerator`].
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Expected number of repetitions of a star child (geometric-ish).
    pub star_mean: f64,
    /// Hard cap on star repetitions.
    pub star_max: usize,
    /// Soft node budget: once exceeded, the generator steers toward the
    /// cheapest alternatives and zero star repetitions.
    pub max_nodes: usize,
    /// Alphabet for generated text values.
    pub text_words: &'static [&'static str],
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            star_mean: 2.0,
            star_max: 12,
            max_nodes: 10_000,
            text_words: &[
                "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india",
                "juliet", "kilo", "lima",
            ],
        }
    }
}

/// Generates random members of `I(S)` for a consistent DTD `S`.
pub struct InstanceGenerator<'a> {
    dtd: &'a Dtd,
    config: GenConfig,
    /// Minimal subtree size per type, used to steer away from explosion and
    /// to guarantee termination on recursive schemas.
    min_size: Vec<usize>,
}

impl<'a> InstanceGenerator<'a> {
    /// Create a generator for `dtd`.
    ///
    /// # Panics
    /// Panics if `dtd` has unproductive types reachable from the root
    /// (reduce first) — generation could not terminate.
    pub fn new(dtd: &'a Dtd, config: GenConfig) -> Self {
        let plans = dtd.mindef_plans();
        let mut memo = vec![0usize; dtd.type_count()];
        let mut min_size = vec![usize::MAX; dtd.type_count()];
        for t in dtd.types() {
            if !matches!(plans[t.index()], crate::mindef::MindefPlan::None) {
                min_size[t.index()] = dtd.mindef_size_for_gen(&plans, t, &mut memo);
            }
        }
        assert_ne!(
            min_size[dtd.root().index()],
            usize::MAX,
            "root type is unproductive"
        );
        InstanceGenerator {
            dtd,
            config,
            min_size,
        }
    }

    /// Generate one instance from the given seed. The same seed always
    /// yields the same document.
    pub fn generate(&self, seed: u64) -> XmlTree {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = XmlTree::with_capacity(
            self.dtd.name(self.dtd.root()),
            self.config.max_nodes,
            self.config.max_nodes * 4,
        );
        let tags: Vec<xse_xmltree::TagId> = self
            .dtd
            .types()
            .map(|t| tree.intern_tag(self.dtd.name(t)))
            .collect();
        let root = tree.root();
        let mut budget = self.config.max_nodes as isize;
        self.fill(
            &mut rng,
            &mut tree,
            &tags,
            root,
            self.dtd.root(),
            &mut budget,
        );
        tree
    }

    /// Generate a batch of instances with consecutive seeds.
    pub fn generate_many(&self, first_seed: u64, count: usize) -> Vec<XmlTree> {
        (0..count)
            .map(|i| self.generate(first_seed + i as u64))
            .collect()
    }

    fn fill(
        &self,
        rng: &mut StdRng,
        tree: &mut XmlTree,
        tags: &[xse_xmltree::TagId],
        node: NodeId,
        t: TypeId,
        budget: &mut isize,
    ) {
        *budget -= 1;
        match self.dtd.production(t) {
            Production::Empty => {}
            Production::Str => {
                let w = self.config.text_words[rng.random_range(0..self.config.text_words.len())];
                let n: u32 = rng.random_range(0..1000);
                tree.add_text(node, format!("{w}-{n}"));
                *budget -= 1;
            }
            Production::Concat(cs) => {
                for &c in cs.clone().iter() {
                    let child = tree.add_element_tag(node, tags[c.index()]);
                    self.fill(rng, tree, tags, child, c, budget);
                }
            }
            Production::Disjunction { alts, allows_empty } => {
                let exhausted = *budget <= 0;
                let viable: Vec<TypeId> = alts
                    .iter()
                    .copied()
                    .filter(|c| self.min_size[c.index()] != usize::MAX)
                    .collect();
                if viable.is_empty() || (exhausted && *allows_empty) {
                    // ε if allowed; otherwise fall through to cheapest.
                    if *allows_empty {
                        return;
                    }
                }
                let pick = if exhausted {
                    // Cheapest alternative to wind down.
                    *viable
                        .iter()
                        .min_by_key(|c| self.min_size[c.index()])
                        .expect("disjunction with no productive alternative")
                } else if *allows_empty && rng.random_bool(0.25) {
                    return;
                } else {
                    viable[rng.random_range(0..viable.len())]
                };
                let child = tree.add_element_tag(node, tags[pick.index()]);
                self.fill(rng, tree, tags, child, pick, budget);
            }
            Production::Star(b) => {
                if self.min_size[b.index()] == usize::MAX {
                    return; // unproductive child: only the empty repetition
                }
                let n = if *budget <= 0 {
                    0
                } else {
                    // Geometric with mean `star_mean`, capped.
                    let p = 1.0 / (1.0 + self.config.star_mean);
                    let mut n = 0;
                    while n < self.config.star_max && !rng.random_bool(p) {
                        n += 1;
                    }
                    n
                };
                for _ in 0..n {
                    let child = tree.add_element_tag(node, tags[b.index()]);
                    self.fill(rng, tree, tags, child, *b, budget);
                }
            }
        }
    }
}

impl Dtd {
    /// mindef-size helper shared with the generator (usize::MAX-free part).
    pub(crate) fn mindef_size_for_gen(
        &self,
        plans: &[crate::mindef::MindefPlan],
        t: TypeId,
        memo: &mut [usize],
    ) -> usize {
        use crate::mindef::MindefPlan;
        if memo[t.index()] != 0 {
            return memo[t.index()];
        }
        let s = match &plans[t.index()] {
            MindefPlan::Text => 2,
            MindefPlan::Leaf => 1,
            MindefPlan::AllChildren(cs) => {
                1 + cs
                    .iter()
                    .map(|&c| self.mindef_size_for_gen(plans, c, memo))
                    .sum::<usize>()
            }
            MindefPlan::OneChild(c) => 1 + self.mindef_size_for_gen(plans, *c, memo),
            MindefPlan::None => return usize::MAX,
        };
        memo[t.index()] = s;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn school_dtd() -> Dtd {
        Dtd::builder("db")
            .star("db", "class")
            .concat("class", &["cno", "title", "type"])
            .str_type("cno")
            .str_type("title")
            .disjunction("type", &["regular", "project"])
            .concat("regular", &["prereq"])
            .star("prereq", "class")
            .empty("project")
            .build()
            .unwrap()
    }

    #[test]
    fn generated_instances_conform() {
        let d = school_dtd();
        let g = InstanceGenerator::new(&d, GenConfig::default());
        for seed in 0..50 {
            let t = g.generate(seed);
            d.validate(&t)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", t.to_xml_pretty()));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let d = school_dtd();
        let g = InstanceGenerator::new(&d, GenConfig::default());
        let a = g.generate(42);
        let b = g.generate(42);
        assert!(a.equals(&b));
        let c = g.generate(43);
        // Overwhelmingly likely to differ.
        assert!(!a.equals(&c) || a.len() == c.len());
    }

    #[test]
    fn budget_bounds_recursive_blowup() {
        let d = school_dtd();
        let cfg = GenConfig {
            star_mean: 5.0,
            star_max: 8,
            max_nodes: 500,
            ..GenConfig::default()
        };
        let g = InstanceGenerator::new(&d, cfg);
        for seed in 0..20 {
            let t = g.generate(seed);
            // The budget is soft: once exhausted, stars stop and cheap
            // disjuncts are taken, so sizes stay within a small multiple.
            assert!(t.len() < 5_000, "seed {seed} exploded: {} nodes", t.len());
            d.validate(&t).unwrap();
        }
    }

    #[test]
    fn generate_many_uses_consecutive_seeds() {
        let d = school_dtd();
        let g = InstanceGenerator::new(&d, GenConfig::default());
        let batch = g.generate_many(7, 3);
        assert_eq!(batch.len(), 3);
        assert!(batch[0].equals(&g.generate(7)));
        assert!(batch[2].equals(&g.generate(9)));
    }

    #[test]
    fn sizes_scale_with_config() {
        let d = school_dtd();
        let small = InstanceGenerator::new(
            &d,
            GenConfig {
                star_mean: 0.5,
                ..GenConfig::default()
            },
        );
        let large = InstanceGenerator::new(
            &d,
            GenConfig {
                star_mean: 6.0,
                ..GenConfig::default()
            },
        );
        let s: usize = (0..10).map(|i| small.generate(i).len()).sum();
        let l: usize = (0..10).map(|i| large.generate(i).len()).sum();
        assert!(l > s, "star_mean must increase sizes ({l} vs {s})");
    }

    #[test]
    #[should_panic(expected = "unproductive")]
    fn unproductive_root_panics() {
        let d = Dtd::builder("r").concat("r", &["r"]).build().unwrap();
        let _ = InstanceGenerator::new(&d, GenConfig::default());
    }
}
