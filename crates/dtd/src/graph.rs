use std::collections::HashMap;

use crate::{Dtd, Production, TypeId};

/// What a schema-graph edge points at: a child element type, or the `str`
/// pseudo-node (the PCDATA child of a `A → str` production, drawn as the
/// omitted `str` children in Figure 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EdgeTarget {
    /// An element type.
    Type(TypeId),
    /// The `str` (PCDATA) pseudo-target.
    Str,
}

/// The kind of a schema-graph edge (§2.1):
///
/// * **AND** edges (solid) come from concatenations; when a type occurs more
///   than once in the same concatenation, each edge is labeled with the
///   occurrence number of that type (1-based, counted per label);
/// * **OR** edges (dashed) come from disjunctions;
/// * **STAR** edges (solid, labeled `*`) come from Kleene stars.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EdgeKind {
    /// Solid edge; `occurrence` is the paper's position label `k` ("the k-th
    /// occurrence of a type B in P(A)"), 1 when the child type is unique.
    And {
        /// 1-based occurrence index among same-type children.
        occurrence: u32,
    },
    /// Dashed edge (one and only one child).
    Or,
    /// Solid edge labeled `*` (zero or more children).
    Star,
}

impl EdgeKind {
    /// `true` for AND edges (including the implicit edge of `A → str`).
    pub fn is_and(self) -> bool {
        matches!(self, EdgeKind::And { .. })
    }

    /// `true` for OR (dashed) edges.
    pub fn is_or(self) -> bool {
        matches!(self, EdgeKind::Or)
    }

    /// `true` for STAR edges.
    pub fn is_star(self) -> bool {
        matches!(self, EdgeKind::Star)
    }
}

/// One edge of the schema graph. `slot` identifies the edge among its
/// parent's outgoing edges (the index into the production body), which is
/// how the paper's `path(A, B)` distinguishes repeated child types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Edge {
    /// The parent type `A`.
    pub parent: TypeId,
    /// Index of this edge in `P(A)`'s body (0-based).
    pub slot: usize,
    /// The child end.
    pub target: EdgeTarget,
    /// AND / OR / STAR.
    pub kind: EdgeKind,
}

/// The graph `G_S` of a DTD: one node per element type (plus the implicit
/// `str` leaves), and typed edges derived from the productions.
#[derive(Clone, Debug)]
pub struct SchemaGraph {
    /// Outgoing edges per type, indexed by `TypeId`.
    out: Vec<Vec<Edge>>,
    /// Incoming edges per type.
    into: Vec<Vec<Edge>>,
    /// Strongly connected component index per type (Tarjan order:
    /// components are numbered in reverse topological order).
    scc: Vec<u32>,
    scc_count: usize,
}

impl SchemaGraph {
    /// Build the schema graph of `dtd`.
    pub fn new(dtd: &Dtd) -> Self {
        let n = dtd.type_count();
        let mut out = vec![Vec::new(); n];
        let mut into = vec![Vec::new(); n];
        for t in dtd.types() {
            match dtd.production(t) {
                Production::Empty => {}
                Production::Str => out[t.index()].push(Edge {
                    parent: t,
                    slot: 0,
                    target: EdgeTarget::Str,
                    kind: EdgeKind::And { occurrence: 1 },
                }),
                Production::Concat(cs) => {
                    let mut seen: HashMap<TypeId, u32> = HashMap::new();
                    for (slot, &c) in cs.iter().enumerate() {
                        let occ = seen.entry(c).or_insert(0);
                        *occ += 1;
                        let e = Edge {
                            parent: t,
                            slot,
                            target: EdgeTarget::Type(c),
                            kind: EdgeKind::And { occurrence: *occ },
                        };
                        out[t.index()].push(e);
                        into[c.index()].push(e);
                    }
                }
                Production::Disjunction { alts, .. } => {
                    for (slot, &c) in alts.iter().enumerate() {
                        let e = Edge {
                            parent: t,
                            slot,
                            target: EdgeTarget::Type(c),
                            kind: EdgeKind::Or,
                        };
                        out[t.index()].push(e);
                        into[c.index()].push(e);
                    }
                }
                Production::Star(c) => {
                    let e = Edge {
                        parent: t,
                        slot: 0,
                        target: EdgeTarget::Type(*c),
                        kind: EdgeKind::Star,
                    };
                    out[t.index()].push(e);
                    into[c.index()].push(e);
                }
            }
        }
        let (scc, scc_count) = tarjan_scc(&out, n);
        SchemaGraph {
            out,
            into,
            scc,
            scc_count,
        }
    }

    /// Outgoing edges of `t` in production order.
    pub fn edges_from(&self, t: TypeId) -> &[Edge] {
        &self.out[t.index()]
    }

    /// Incoming edges of `t`.
    pub fn edges_into(&self, t: TypeId) -> &[Edge] {
        &self.into[t.index()]
    }

    /// The outgoing edges of `t` that lead to element type `child` (there
    /// can be several for repeated concatenation children).
    pub fn edges_between(&self, t: TypeId, child: TypeId) -> impl Iterator<Item = &Edge> {
        self.out[t.index()]
            .iter()
            .filter(move |e| e.target == EdgeTarget::Type(child))
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// Strongly-connected-component index of `t`. Components are numbered in
    /// reverse topological order: if there is an edge from component `x` to
    /// component `y ≠ x`, then `x > y`.
    pub fn scc_of(&self, t: TypeId) -> u32 {
        self.scc[t.index()]
    }

    /// Number of strongly connected components.
    pub fn scc_count(&self) -> usize {
        self.scc_count
    }

    /// `true` iff `a` and `b` are in the same strongly connected component
    /// (i.e. mutually reachable; a type forms a nontrivial SCC with itself
    /// only via an actual cycle).
    pub fn same_scc(&self, a: TypeId, b: TypeId) -> bool {
        self.scc[a.index()] == self.scc[b.index()]
    }

    /// Element types reachable from `t` (excluding `str` targets), including
    /// `t` itself.
    pub fn reachable_from(&self, t: TypeId) -> Vec<TypeId> {
        let mut seen = vec![false; self.out.len()];
        let mut stack = vec![t];
        seen[t.index()] = true;
        let mut order = Vec::new();
        while let Some(x) = stack.pop() {
            order.push(x);
            for e in &self.out[x.index()] {
                if let EdgeTarget::Type(c) = e.target {
                    if !seen[c.index()] {
                        seen[c.index()] = true;
                        stack.push(c);
                    }
                }
            }
        }
        order
    }
}

/// Iterative Tarjan SCC over the type graph. Returns the component index per
/// node and the number of components. Components are numbered in the order
/// Tarjan completes them, which is reverse topological order of the
/// condensation.
fn tarjan_scc(out: &[Vec<Edge>], n: usize) -> (Vec<u32>, usize) {
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNSET; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut comp_count = 0u32;

    // Explicit DFS stack: (node, next edge index).
    let mut dfs: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        dfs.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start as u32);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut ei)) = dfs.last_mut() {
            let edges = &out[v];
            let mut descended = false;
            while *ei < edges.len() {
                let EdgeTarget::Type(w) = edges[*ei].target else {
                    *ei += 1;
                    continue;
                };
                let w = w.index();
                *ei += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    dfs.push((w, 0));
                    descended = true;
                    break;
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            }
            if descended {
                continue;
            }
            // v finished.
            if low[v] == index[v] {
                loop {
                    let w = stack.pop().unwrap() as usize;
                    on_stack[w] = false;
                    comp[w] = comp_count;
                    if w == v {
                        break;
                    }
                }
                comp_count += 1;
            }
            dfs.pop();
            if let Some(&(u, _)) = dfs.last() {
                low[u] = low[u].min(low[v]);
            }
        }
    }
    (comp, comp_count as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dtd;

    /// The class DTD S0 of Figure 1(a), slightly abbreviated.
    fn fig1_s0() -> Dtd {
        Dtd::builder("db")
            .star("db", "class")
            .concat("class", &["cno", "title", "type"])
            .str_type("cno")
            .str_type("title")
            .disjunction("type", &["regular", "project"])
            .concat("regular", &["prereq"])
            .star("prereq", "class")
            .empty("project")
            .build()
            .unwrap()
    }

    #[test]
    fn edge_kinds_match_productions() {
        let d = fig1_s0();
        let g = SchemaGraph::new(&d);
        let db = d.root();
        let class = d.type_id("class").unwrap();
        let ty = d.type_id("type").unwrap();
        let cno = d.type_id("cno").unwrap();

        let db_edges = g.edges_from(db);
        assert_eq!(db_edges.len(), 1);
        assert_eq!(db_edges[0].kind, EdgeKind::Star);
        assert_eq!(db_edges[0].target, EdgeTarget::Type(class));

        let class_edges = g.edges_from(class);
        assert_eq!(class_edges.len(), 3);
        assert!(class_edges.iter().all(|e| e.kind.is_and()));

        let ty_edges = g.edges_from(ty);
        assert_eq!(ty_edges.len(), 2);
        assert!(ty_edges.iter().all(|e| e.kind.is_or()));

        let cno_edges = g.edges_from(cno);
        assert_eq!(cno_edges.len(), 1);
        assert_eq!(cno_edges[0].target, EdgeTarget::Str);
    }

    #[test]
    fn occurrence_labels_count_per_type() {
        let d = Dtd::builder("r")
            .concat("r", &["a", "b", "a", "a"])
            .empty("a")
            .empty("b")
            .build()
            .unwrap();
        let g = SchemaGraph::new(&d);
        let occs: Vec<u32> = g
            .edges_from(d.root())
            .iter()
            .map(|e| match e.kind {
                EdgeKind::And { occurrence } => occurrence,
                _ => panic!("expected AND"),
            })
            .collect();
        assert_eq!(occs, vec![1, 1, 2, 3]);
        let a = d.type_id("a").unwrap();
        assert_eq!(g.edges_between(d.root(), a).count(), 3);
        assert_eq!(g.edges_into(a).len(), 3);
    }

    #[test]
    fn scc_identifies_recursion() {
        let d = fig1_s0();
        let g = SchemaGraph::new(&d);
        let class = d.type_id("class").unwrap();
        let prereq = d.type_id("prereq").unwrap();
        let regular = d.type_id("regular").unwrap();
        let cno = d.type_id("cno").unwrap();
        // class → type → regular → prereq → class is a cycle.
        assert!(g.same_scc(class, prereq));
        assert!(g.same_scc(class, regular));
        assert!(!g.same_scc(class, cno));
        // Reverse topological numbering: edge from class's SCC to cno's SCC.
        assert!(g.scc_of(class) > g.scc_of(cno));
    }

    #[test]
    fn reachability_covers_the_connected_part() {
        let d = fig1_s0();
        let g = SchemaGraph::new(&d);
        let from_root = g.reachable_from(d.root());
        assert_eq!(from_root.len(), d.type_count());
        let project = d.type_id("project").unwrap();
        assert_eq!(g.reachable_from(project), vec![project]);
    }

    #[test]
    fn edge_count_sums_all_productions() {
        let d = fig1_s0();
        let g = SchemaGraph::new(&d);
        // db:1 class:3 cno:1 title:1 type:2 regular:1 prereq:1 project:0
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn acyclic_graph_has_one_scc_per_type() {
        let d = Dtd::builder("r")
            .concat("r", &["a", "b"])
            .str_type("a")
            .empty("b")
            .build()
            .unwrap();
        let g = SchemaGraph::new(&d);
        assert_eq!(g.scc_count(), 3);
    }
}
