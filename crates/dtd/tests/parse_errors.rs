//! Error-path coverage for `Dtd::parse`: malformed `<!ELEMENT>`
//! declarations, duplicate type definitions, and undefined references.

use xse_dtd::{Dtd, DtdError, DtdParseError};

fn syntax_err(input: &str) -> (usize, String) {
    match Dtd::parse(input).unwrap_err() {
        DtdParseError::Syntax { at, msg } => (at, msg),
        e @ DtdParseError::Semantic(_) => {
            panic!("expected a syntax error for {input:?}, got {e}")
        }
    }
}

fn semantic_err(input: &str) -> DtdError {
    match Dtd::parse(input).unwrap_err() {
        DtdParseError::Semantic(e) => e,
        e @ DtdParseError::Syntax { .. } => {
            panic!("expected a semantic error for {input:?}, got {e}")
        }
    }
}

#[test]
fn malformed_declarations_are_syntax_errors() {
    // Keyword typos and truncations.
    syntax_err("<!ELEMNT r (a)>");
    syntax_err("<!element r (a)>");
    syntax_err("<!ELEMENT");
    syntax_err("<!ELEMENT >");
    // Missing, unbalanced or empty groups.
    syntax_err("<!ELEMENT r >");
    syntax_err("<!ELEMENT r a>");
    syntax_err("<!ELEMENT r (>");
    syntax_err("<!ELEMENT r ()>");
    syntax_err("<!ELEMENT r (a>");
    syntax_err("<!ELEMENT r (a))>");
    syntax_err("<!ELEMENT r ((a)>");
    // Dangling and doubled separators.
    syntax_err("<!ELEMENT r (a,)>");
    syntax_err("<!ELEMENT r (a||b)>");
    syntax_err("<!ELEMENT r (,a)>");
    // #PCDATA cannot be mixed with names in this normal form.
    syntax_err("<!ELEMENT r (#PCDATA|a)>");
    // Trailing garbage after a complete declaration.
    syntax_err("<!ELEMENT r (a)> junk <!ELEMENT a EMPTY>");
    // Mixed separators in one group must be grouped explicitly.
    syntax_err("<!ELEMENT r (a,b|c)>");
}

#[test]
fn syntax_errors_carry_a_sensible_offset() {
    let (at, msg) = syntax_err("<!ELEMENT r (a,)>");
    assert!(at <= "<!ELEMENT r (a,)>".len(), "offset {at} out of range");
    assert!(at >= "<!ELEMENT r (".len(), "offset {at} before the group");
    assert!(!msg.is_empty());

    let (at, _) = syntax_err("");
    assert_eq!(at, 0);
    let display = Dtd::parse("").unwrap_err().to_string();
    assert!(display.contains("byte 0"), "unhelpful message: {display}");
}

#[test]
fn duplicate_type_definitions_are_rejected() {
    let e = semantic_err("<!ELEMENT r (a)><!ELEMENT a EMPTY><!ELEMENT a (#PCDATA)>");
    assert_eq!(e, DtdError::DuplicateType("a".into()));
    // Even when the duplicate bodies are identical.
    let e = semantic_err("<!ELEMENT r EMPTY><!ELEMENT r EMPTY>");
    assert_eq!(e, DtdError::DuplicateType("r".into()));
}

#[test]
fn undefined_references_are_rejected() {
    match semantic_err("<!ELEMENT r (a, ghost)><!ELEMENT a EMPTY>") {
        DtdError::UndefinedType { referenced, by } => {
            assert_eq!(referenced, "ghost");
            assert_eq!(by, "r");
        }
        e => panic!("expected UndefinedType, got {e}"),
    }
    // Undefined reference hiding inside a normalized sub-expression.
    match semantic_err("<!ELEMENT r (a, (b|ghost)+)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>") {
        DtdError::UndefinedType { referenced, .. } => assert_eq!(referenced, "ghost"),
        e => panic!("expected UndefinedType, got {e}"),
    }
}

#[test]
fn undefined_root_is_rejected() {
    let e = Dtd::parse_with_root("nope", "<!ELEMENT a EMPTY>").unwrap_err();
    assert!(
        matches!(e, DtdParseError::Semantic(DtdError::UndefinedRoot(ref r)) if r == "nope"),
        "got {e}"
    );
}

#[test]
fn duplicate_disjunction_alternatives_are_deduplicated() {
    // The parser normalizes `(a|a)` to `(a)` — distinctness holds w.l.o.g.
    // in the paper, so duplicates are collapsed rather than rejected (the
    // strict builder API is where `DuplicateAlternative` is raised).
    let d = Dtd::parse("<!ELEMENT r (a|a|b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>").unwrap();
    match d.production(d.root()) {
        xse_dtd::Production::Disjunction { alts, allows_empty } => {
            assert_eq!(alts.len(), 2, "duplicate alternative not collapsed");
            assert!(!allows_empty);
        }
        p => panic!("expected a disjunction, got {p:?}"),
    }
}

#[test]
fn errors_do_not_mask_valid_parses() {
    // The error cases above must not reject these near-miss valid inputs.
    Dtd::parse("<!ELEMENT r (a)?><!ELEMENT a EMPTY>").unwrap();
    Dtd::parse("<!ELEMENT r (a|EMPTY)><!ELEMENT a EMPTY>").unwrap();
    Dtd::parse("<!ELEMENT r ((a,b)|c)><!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT c EMPTY>")
        .unwrap();
}
