use std::sync::Arc;

/// A regular XPath (`XR`) expression (§2.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XrQuery {
    /// `ε` — the empty path (self).
    Empty,
    /// A label step `A` (child axis).
    Label(Arc<str>),
    /// `text()` — select text-node children.
    Text,
    /// `p1/p2` — path composition.
    Seq(Box<XrQuery>, Box<XrQuery>),
    /// `p1 ∪ p2` — union.
    Union(Box<XrQuery>, Box<XrQuery>),
    /// `p*` — Kleene closure (zero or more iterations of `p`).
    Star(Box<XrQuery>),
    /// `p[q]` — qualified path.
    Qualified(Box<XrQuery>, Qualifier),
    /// `//` — the descendant-or-self axis of the XPath fragment `X`
    /// (`p1//p2` parses to `p1 / DescOrSelf / p2`). Not part of `XR` proper:
    /// in `XR` it is expressible only when the label alphabet is known
    /// (as `(A1 ∪ … ∪ An)*`); keeping it first-class lets the crate evaluate
    /// `X` queries without fixing an alphabet, exactly as §3 needs when it
    /// separates `X` from `XR`.
    DescOrSelf,
}

/// A qualifier `q` (§2.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Qualifier {
    /// `true` — always holds (definable in `XR` as `[ε]`; kept first-class
    /// because the paper's `XR` paths use it as the default annotation).
    True,
    /// `p` — the path has a nonempty result at the context node.
    Path(Box<XrQuery>),
    /// `p/text() = 'c'` — some text node reached via `p/text()` carries `c`.
    /// The stored query includes the `text()` tail.
    TextEq(Box<XrQuery>, String),
    /// `position() = k` (1-based).
    Position(usize),
    /// `¬q`.
    Not(Box<Qualifier>),
    /// `q1 ∧ q2`.
    And(Box<Qualifier>, Box<Qualifier>),
    /// `q1 ∨ q2`.
    Or(Box<Qualifier>, Box<Qualifier>),
}

impl XrQuery {
    /// A label step.
    pub fn label(name: &str) -> XrQuery {
        XrQuery::Label(Arc::from(name))
    }

    /// `self / next`, flattening trivial `ε` on either side.
    pub fn then(self, next: XrQuery) -> XrQuery {
        match (self, next) {
            (XrQuery::Empty, q) => q,
            (p, XrQuery::Empty) => p,
            (p, q) => XrQuery::Seq(Box::new(p), Box::new(q)),
        }
    }

    /// `self ∪ other`.
    pub fn or(self, other: XrQuery) -> XrQuery {
        XrQuery::Union(Box::new(self), Box::new(other))
    }

    /// `self*`.
    pub fn star(self) -> XrQuery {
        XrQuery::Star(Box::new(self))
    }

    /// `self[q]`.
    pub fn with(self, q: Qualifier) -> XrQuery {
        XrQuery::Qualified(Box::new(self), q)
    }

    /// Sequence a whole list of steps: `steps[0]/steps[1]/…`.
    pub fn seq_all(steps: impl IntoIterator<Item = XrQuery>) -> XrQuery {
        steps.into_iter().fold(XrQuery::Empty, |acc, s| acc.then(s))
    }

    /// The paper's size `|Q|`: number of AST operators and steps, counting
    /// qualifiers.
    pub fn size(&self) -> usize {
        match self {
            XrQuery::Empty | XrQuery::Label(_) | XrQuery::Text | XrQuery::DescOrSelf => 1,
            XrQuery::Seq(a, b) | XrQuery::Union(a, b) => 1 + a.size() + b.size(),
            XrQuery::Star(p) => 1 + p.size(),
            XrQuery::Qualified(p, q) => 1 + p.size() + q.size(),
        }
    }

    /// `true` if the query contains a `p*` (making it `XR`-proper rather
    /// than plain XPath).
    pub fn uses_star(&self) -> bool {
        match self {
            XrQuery::Empty | XrQuery::Label(_) | XrQuery::Text | XrQuery::DescOrSelf => false,
            XrQuery::Seq(a, b) | XrQuery::Union(a, b) => a.uses_star() || b.uses_star(),
            XrQuery::Star(_) => true,
            XrQuery::Qualified(p, q) => p.uses_star() || q.uses_star(),
        }
    }

    /// `true` if the query contains a `position()` qualifier.
    pub fn uses_position(&self) -> bool {
        match self {
            XrQuery::Empty | XrQuery::Label(_) | XrQuery::Text | XrQuery::DescOrSelf => false,
            XrQuery::Seq(a, b) | XrQuery::Union(a, b) => a.uses_position() || b.uses_position(),
            XrQuery::Star(p) => p.uses_position(),
            XrQuery::Qualified(p, q) => p.uses_position() || q.uses_position(),
        }
    }

    /// `true` if the query is in the XPath fragment `X` (no Kleene star;
    /// `//` allowed).
    pub fn in_fragment_x(&self) -> bool {
        !self.uses_star()
    }
}

impl Qualifier {
    /// Size contribution of the qualifier.
    pub fn size(&self) -> usize {
        match self {
            Qualifier::True | Qualifier::Position(_) => 1,
            Qualifier::Path(p) => 1 + p.size(),
            Qualifier::TextEq(p, _) => 1 + p.size(),
            Qualifier::Not(q) => 1 + q.size(),
            Qualifier::And(a, b) | Qualifier::Or(a, b) => 1 + a.size() + b.size(),
        }
    }

    fn uses_star(&self) -> bool {
        match self {
            Qualifier::True | Qualifier::Position(_) => false,
            Qualifier::Path(p) | Qualifier::TextEq(p, _) => p.uses_star(),
            Qualifier::Not(q) => q.uses_star(),
            Qualifier::And(a, b) | Qualifier::Or(a, b) => a.uses_star() || b.uses_star(),
        }
    }

    fn uses_position(&self) -> bool {
        match self {
            Qualifier::True => false,
            Qualifier::Position(_) => true,
            Qualifier::Path(p) | Qualifier::TextEq(p, _) => p.uses_position(),
            Qualifier::Not(q) => q.uses_position(),
            Qualifier::And(a, b) | Qualifier::Or(a, b) => a.uses_position() || b.uses_position(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn then_flattens_empty() {
        let a = XrQuery::label("a");
        assert_eq!(XrQuery::Empty.then(a.clone()), a);
        assert_eq!(a.clone().then(XrQuery::Empty), a);
        let ab = XrQuery::label("a").then(XrQuery::label("b"));
        assert!(matches!(ab, XrQuery::Seq(_, _)));
    }

    #[test]
    fn seq_all_builds_left_nested_chain() {
        let q = XrQuery::seq_all(vec![
            XrQuery::label("a"),
            XrQuery::label("b"),
            XrQuery::label("c"),
        ]);
        assert_eq!(q.size(), 5);
        assert_eq!(q.to_string(), "a/b/c");
    }

    #[test]
    fn size_counts_qualifiers() {
        let q = XrQuery::label("a").with(Qualifier::Position(2));
        assert_eq!(q.size(), 3);
        let q2 = XrQuery::label("a").with(Qualifier::TextEq(Box::new(XrQuery::Text), "x".into()));
        assert_eq!(q2.size(), 4);
    }

    #[test]
    fn star_and_position_detection() {
        let q = XrQuery::label("a").star().then(XrQuery::label("b"));
        assert!(q.uses_star());
        assert!(!q.in_fragment_x());
        assert!(!q.uses_position());
        let q2 = XrQuery::label("a").with(Qualifier::Not(Box::new(Qualifier::Position(1))));
        assert!(q2.uses_position());
        assert!(q2.in_fragment_x());
    }
}
