//! Set-based, document-ordered evaluation of `XR` queries on [`XmlTree`]s.
//!
//! `v[[p]]` — the paper's evaluation of `p` at context node `v` — is a set
//! of node ids. We return them sorted in document order, which both matches
//! the intuition of XPath node lists and makes `position()` well defined:
//! `p[position() = k]` keeps, for each context node, the `k`-th node of the
//! per-context result list of `p`.

use std::collections::BTreeSet;

use xse_xmltree::{NodeId, XmlTree};

use crate::{Qualifier, XrQuery};

/// Reusable evaluator holding the document-order ranks of one tree.
pub struct Evaluator<'a> {
    tree: &'a XmlTree,
    /// rank[node.index()] = preorder position.
    rank: Vec<u32>,
}

impl<'a> Evaluator<'a> {
    /// Prepare an evaluator for `tree` (O(|T|)).
    pub fn new(tree: &'a XmlTree) -> Self {
        let mut rank = vec![0u32; tree.len()];
        for (i, id) in tree.preorder().enumerate() {
            rank[id.index()] = i as u32;
        }
        Evaluator { tree, rank }
    }

    /// The tree this evaluator works on.
    pub fn tree(&self) -> &'a XmlTree {
        self.tree
    }

    /// Evaluate `q` at context node `ctx`; result in document order, no
    /// duplicates.
    pub fn eval(&self, q: &XrQuery, ctx: NodeId) -> Vec<NodeId> {
        let mut set = self.eval_set(q, &BTreeSet::from([self.key(ctx)]));
        let out: Vec<NodeId> = set.iter().map(|&(_, id)| id).collect();
        set.clear();
        out
    }

    /// Evaluate at the root (the paper's `p(T)`).
    pub fn eval_root(&self, q: &XrQuery) -> Vec<NodeId> {
        self.eval(q, self.tree.root())
    }

    fn key(&self, id: NodeId) -> (u32, NodeId) {
        (self.rank[id.index()], id)
    }

    /// Core: evaluate `q` from every context in `ctxs` and union the
    /// results. Contexts and results are doc-order keyed sets.
    fn eval_set(&self, q: &XrQuery, ctxs: &BTreeSet<(u32, NodeId)>) -> BTreeSet<(u32, NodeId)> {
        match q {
            XrQuery::Empty => ctxs.clone(),
            XrQuery::Label(l) => {
                let mut out = BTreeSet::new();
                // Resolve the label against the document's symbol table once
                // per step, not once per context node; an unknown label
                // matches nothing.
                if let Some(want) = self.tree.tag_id(l) {
                    for &(_, v) in ctxs {
                        for c in self.tree.children_with_tag_id(v, want) {
                            out.insert(self.key(c));
                        }
                    }
                }
                out
            }
            XrQuery::Text => {
                let mut out = BTreeSet::new();
                for &(_, v) in ctxs {
                    for &c in self.tree.children(v) {
                        if self.tree.is_text(c) {
                            out.insert(self.key(c));
                        }
                    }
                }
                out
            }
            XrQuery::DescOrSelf => {
                let mut out = BTreeSet::new();
                for &(_, v) in ctxs {
                    for d in self.tree.descendants_or_self(v) {
                        out.insert(self.key(d));
                    }
                }
                out
            }
            XrQuery::Seq(a, b) => {
                let mid = self.eval_set(a, ctxs);
                self.eval_set(b, &mid)
            }
            XrQuery::Union(a, b) => {
                let mut out = self.eval_set(a, ctxs);
                out.extend(self.eval_set(b, ctxs));
                out
            }
            XrQuery::Star(p) => {
                // Fixpoint: closure of `p` steps, including zero steps.
                let mut all = ctxs.clone();
                let mut frontier = ctxs.clone();
                while !frontier.is_empty() {
                    let next = self.eval_set(p, &frontier);
                    frontier = next.difference(&all).copied().collect();
                    all.extend(frontier.iter().copied());
                }
                all
            }
            XrQuery::Qualified(p, q) => {
                // Per-context filtering so position() is meaningful.
                let mut out = BTreeSet::new();
                for &ctx in ctxs {
                    let res = self.eval_set(p, &BTreeSet::from([ctx]));
                    for (i, &key) in res.iter().enumerate() {
                        if self.holds(q, key.1, i + 1) {
                            out.insert(key);
                        }
                    }
                }
                out
            }
        }
    }

    /// Does qualifier `q` hold at node `n` with the given 1-based position
    /// in its selection list?
    fn holds(&self, q: &Qualifier, n: NodeId, pos: usize) -> bool {
        match q {
            Qualifier::True => true,
            Qualifier::Position(k) => pos == *k,
            Qualifier::Path(p) => !self.eval(p, n).is_empty(),
            Qualifier::TextEq(p, c) => self
                .eval(p, n)
                .iter()
                .any(|&id| self.tree.text_value(id) == Some(c)),
            Qualifier::Not(inner) => !self.holds(inner, n, pos),
            Qualifier::And(a, b) => self.holds(a, n, pos) && self.holds(b, n, pos),
            Qualifier::Or(a, b) => self.holds(a, n, pos) || self.holds(b, n, pos),
        }
    }
}

/// One-shot evaluation of `q` at `ctx` in `tree`.
pub fn eval_at(tree: &XmlTree, q: &XrQuery, ctx: NodeId) -> Vec<NodeId> {
    Evaluator::new(tree).eval(q, ctx)
}

/// One-shot evaluation at the root: the paper's `p(T)`.
pub fn eval_at_root(tree: &XmlTree, q: &XrQuery) -> Vec<NodeId> {
    Evaluator::new(tree).eval_root(q)
}

impl XrQuery {
    /// Evaluate this query at the root of `tree`.
    pub fn eval(&self, tree: &XmlTree) -> Vec<NodeId> {
        eval_at_root(tree, self)
    }

    /// Evaluate and render results as strings: text nodes yield their
    /// PCDATA value, elements yield their tag with the node id (a printable
    /// stand-in for the paper's `generate-id()` discussion).
    pub fn eval_strings(&self, tree: &XmlTree) -> Vec<String> {
        self.eval(tree)
            .into_iter()
            .map(|id| match tree.text_value(id) {
                Some(v) => v.to_string(),
                None => format!("<{}>#{id}", tree.tag(id).unwrap_or("?")),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use xse_xmltree::parse_xml;

    fn doc() -> XmlTree {
        parse_xml(
            "<db>\
               <class><cno>CS240</cno><type><regular/></type></class>\
               <class><cno>CS331</cno><type><project/></type></class>\
               <class><cno>CS550</cno><type><regular/></type></class>\
             </db>",
        )
        .unwrap()
    }

    fn eval(doc: &XmlTree, q: &str) -> Vec<NodeId> {
        parse_query(q).unwrap().eval(doc)
    }

    fn tags(doc: &XmlTree, ids: &[NodeId]) -> Vec<String> {
        ids.iter()
            .map(|&i| doc.tag(i).unwrap_or("#text").to_string())
            .collect()
    }

    #[test]
    fn label_steps_select_children_in_doc_order() {
        let d = doc();
        let r = eval(&d, "class");
        assert_eq!(r.len(), 3);
        assert_eq!(tags(&d, &r), vec!["class"; 3]);
        // Document order.
        let order: Vec<usize> = r.iter().map(|i| i.index()).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
    }

    #[test]
    fn empty_path_is_self() {
        let d = doc();
        let r = eval(&d, ".");
        assert_eq!(r, vec![d.root()]);
    }

    #[test]
    fn seq_composes() {
        let d = doc();
        let r = eval(&d, "class/cno/text()");
        let vals: Vec<_> = r.iter().map(|&i| d.text_value(i).unwrap()).collect();
        assert_eq!(vals, vec!["CS240", "CS331", "CS550"]);
    }

    #[test]
    fn union_dedups() {
        let d = doc();
        let r = eval(&d, "class | class");
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn position_is_per_context() {
        let d = doc();
        let r = eval(&d, "class[position() = 2]/cno/text()");
        let vals: Vec<_> = r.iter().map(|&i| d.text_value(i).unwrap()).collect();
        assert_eq!(vals, vec!["CS331"]);
        // Each class has one cno, so position()=1 keeps all of them.
        let r = eval(&d, "class/cno[position() = 1]");
        assert_eq!(r.len(), 3);
        let r = eval(&d, "class/cno[position() = 2]");
        assert!(r.is_empty());
    }

    #[test]
    fn path_qualifier_filters() {
        let d = doc();
        let r = eval(&d, "class[type/regular]/cno/text()");
        let vals: Vec<_> = r.iter().map(|&i| d.text_value(i).unwrap()).collect();
        assert_eq!(vals, vec!["CS240", "CS550"]);
    }

    #[test]
    fn text_eq_qualifier() {
        let d = doc();
        let r = eval(&d, "class[cno/text() = 'CS331']");
        assert_eq!(r.len(), 1);
        let r = eval(&d, "class[cno/text() = 'CS999']");
        assert!(r.is_empty());
    }

    #[test]
    fn boolean_qualifiers() {
        let d = doc();
        assert_eq!(eval(&d, "class[not type/regular]").len(), 1);
        assert_eq!(
            eval(&d, "class[type/regular and cno/text() = 'CS240']").len(),
            1
        );
        assert_eq!(
            eval(&d, "class[type/project or cno/text() = 'CS240']").len(),
            2
        );
        assert_eq!(eval(&d, "class[true]").len(), 3);
    }

    #[test]
    fn star_closure_on_recursive_structure() {
        let d = parse_xml("<r><A><B><A><B><A/></B><C/></A></B><C/></A></r>").unwrap();
        // (A/B)* from the root's A... the paper's Fig-2 style chain.
        let r = eval(&d, "A/(B/A)*");
        assert_eq!(r.len(), 3, "A, A/B/A, A/B/A/B/A");
        assert!(tags(&d, &r).iter().all(|t| t == "A"));
        // Zero iterations included:
        let r0 = eval(&d, "A/(B/A)*[position() = 1]");
        assert_eq!(r0.len(), 1);
    }

    #[test]
    fn star_terminates_on_cycles_of_results() {
        // ε* must terminate immediately.
        let d = doc();
        let r = eval(&d, ".*");
        assert_eq!(r, vec![d.root()]);
    }

    #[test]
    fn descendant_or_self_axis() {
        let d = doc();
        let r = eval(&d, ".//cno");
        assert_eq!(r.len(), 3);
        let r = eval(&d, "class//regular");
        assert_eq!(r.len(), 2);
        // .//. is everything (queries are root-relative, so // needs a
        // leading context step).
        let all = eval(&d, ".//.");
        assert_eq!(all.len(), d.len());
    }

    #[test]
    fn eval_strings_renders_text_and_elements() {
        let d = doc();
        let q = parse_query("class/cno/text()").unwrap();
        assert_eq!(q.eval_strings(&d), vec!["CS240", "CS331", "CS550"]);
        let q = parse_query("class[position() = 1]/type").unwrap();
        let s = q.eval_strings(&d);
        assert_eq!(s.len(), 1);
        assert!(s[0].starts_with("<type>#"));
    }

    #[test]
    fn evaluator_reuse_matches_one_shot() {
        let d = doc();
        let ev = Evaluator::new(&d);
        let q = parse_query("class[type/regular]/cno").unwrap();
        assert_eq!(ev.eval_root(&q), eval_at_root(&d, &q));
        assert_eq!(ev.tree().len(), d.len());
    }

    #[test]
    fn qualifier_inside_star_body() {
        let d = parse_xml("<r><A><B><A><B/><C/></A></B><C/></A></r>").unwrap();
        let r = eval(&d, "A/(B[position() = 1]/A)*");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn deep_chain_probe() {
        // 2k-deep chain: Star must be iterative enough (frontier-based).
        let mut t = XmlTree::new("r");
        let mut cur = t.root();
        for _ in 0..2000 {
            cur = t.add_element(cur, "A");
        }
        let r = eval(&t, "A*");
        assert_eq!(r.len(), 2001); // root + 2000 A's (zero-step includes root)
    }
}
