//! Regular XPath — the class `XR` of Marx (2004) used throughout
//! Fan & Bohannon §2.2 — and the XPath fragment `X`.
//!
//! ```text
//! p ::= ε | A | p/text() | p/p | p ∪ p | p* | p[q]
//! q ::= p | p/text() = 'c' | position() = k | ¬q | q ∧ q | q ∨ q
//! ```
//!
//! `X` replaces `p*` by `p//p` (descendant-or-self). This crate provides the
//! AST ([`XrQuery`], [`Qualifier`]), a parser ([`parse_query`]) accepting
//! both ASCII (`|`, `not`, `and`, `or`, `.`) and paper (`∪`, `¬`, `∧`, `∨`,
//! `ε`) spellings, an evaluator over [`XmlTree`]s with document-order,
//! set-based semantics ([`XrQuery::eval`]), and the `XR`-*path* subclass
//! `η1/…/ηk` ([`XrPath`]) that schema embeddings map edges to.
//!
//! Query results are sets of node ids (`v[[p]]` in the paper); queries whose
//! last step is `text()` yield text-node ids, whose string values are the
//! paper's PCDATA results ([`XrQuery::eval_strings`]).
//!
//! [`XmlTree`]: xse_xmltree::XmlTree

mod ast;
mod display;
mod eval;
mod parser;
mod shape;
mod xrpath;

pub use ast::{Qualifier, XrQuery};
pub use eval::{eval_at, eval_at_root, Evaluator};
pub use parser::{parse_query, QueryParseError};
pub use shape::{normalize_query, shape_key};
pub use xrpath::{PathStep, XrPath};
