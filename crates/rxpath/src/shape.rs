//! Canonical query-shape keys for translation-plan caching.
//!
//! Two textually different queries often denote the same `XR` expression
//! (`a[true]` vs `a`, `./a` vs `a`, `not not q` vs `q`). A plan cache
//! keyed on the raw text would compile one plan per spelling;
//! [`shape_key`] instead normalizes the AST with semantics-preserving
//! rewrites and renders the result in the parser's concrete syntax, so
//! equivalent spellings share one cache entry. Every rewrite preserves
//! query results on all trees — equal keys therefore guarantee
//! interchangeable translation plans.

use crate::{Qualifier, XrQuery};

/// Canonical cache key: the [`normalize_query`]d AST rendered via
/// `Display` (which round-trips through the parser).
pub fn shape_key(q: &XrQuery) -> String {
    normalize_query(q).to_string()
}

/// Apply semantics-preserving normalizations: drop `[true]` qualifiers,
/// flatten `ε` out of compositions, collapse `ε*` to `ε`, and cancel
/// double negations. The result evaluates identically on every tree.
pub fn normalize_query(q: &XrQuery) -> XrQuery {
    match q {
        XrQuery::Empty | XrQuery::Label(_) | XrQuery::Text | XrQuery::DescOrSelf => q.clone(),
        // `then` folds ε on either side.
        XrQuery::Seq(a, b) => normalize_query(a).then(normalize_query(b)),
        XrQuery::Union(a, b) => normalize_query(a).or(normalize_query(b)),
        XrQuery::Star(p) => match normalize_query(p) {
            // ε* = ε.
            XrQuery::Empty => XrQuery::Empty,
            p => p.star(),
        },
        XrQuery::Qualified(p, q) => {
            let p = normalize_query(p);
            match normalize_qualifier(q) {
                // p[true] = p.
                Qualifier::True => p,
                q => p.with(q),
            }
        }
    }
}

fn normalize_qualifier(q: &Qualifier) -> Qualifier {
    match q {
        Qualifier::True | Qualifier::Position(_) => q.clone(),
        Qualifier::Path(p) => Qualifier::Path(Box::new(normalize_query(p))),
        Qualifier::TextEq(p, c) => Qualifier::TextEq(Box::new(normalize_query(p)), c.clone()),
        Qualifier::Not(x) => match normalize_qualifier(x) {
            // ¬¬q = q.
            Qualifier::Not(inner) => *inner,
            x => Qualifier::Not(Box::new(x)),
        },
        Qualifier::And(a, b) => {
            let (a, b) = (normalize_qualifier(a), normalize_qualifier(b));
            match (a, b) {
                // true ∧ q = q.
                (Qualifier::True, x) | (x, Qualifier::True) => x,
                (a, b) => Qualifier::And(Box::new(a), Box::new(b)),
            }
        }
        Qualifier::Or(a, b) => Qualifier::Or(
            Box::new(normalize_qualifier(a)),
            Box::new(normalize_qualifier(b)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::{normalize_query, shape_key};
    use crate::parse_query;

    fn key(s: &str) -> String {
        shape_key(&parse_query(s).unwrap())
    }

    #[test]
    fn equivalent_spellings_share_a_key() {
        assert_eq!(key("a[true]"), key("a"));
        assert_eq!(key("./a/."), key("a"));
        assert_eq!(key("a[not not b]"), key("a[b]"));
        assert_eq!(key("a[true and b]"), key("a[b]"));
        assert_eq!(key(".*/a"), key("a"));
    }

    #[test]
    fn distinct_queries_keep_distinct_keys() {
        assert_ne!(key("a"), key("b"));
        assert_ne!(key("a/b"), key("a[b]"));
        assert_ne!(key("a[position() = 1]"), key("a[position() = 2]"));
        assert_ne!(key("a*"), key("a"));
        assert_ne!(key("a[not b]"), key("a[b]"));
    }

    #[test]
    fn keys_reparse_to_the_normal_form() {
        for s in [
            "a[true]/b",
            "class[cno/text() = 'CS331']/(type/regular/prereq/class)*",
            "a | b[not not c]",
            "a//b",
        ] {
            let q = parse_query(s).unwrap();
            let norm = normalize_query(&q);
            let reparsed = parse_query(&norm.to_string()).unwrap();
            assert_eq!(normalize_query(&reparsed), norm, "{s}");
        }
    }

    #[test]
    fn normalization_preserves_evaluation() {
        use xse_xmltree::parse_xml;
        let tree = parse_xml(
            "<db><class><cno>CS331</cno><type><regular/></type></class>\
             <class><cno>CS240</cno></class></db>",
        )
        .unwrap();
        for s in [
            "class[true]",
            "./class/cno/.",
            "class[not not type]",
            "class[true and cno/text() = 'CS331']",
            ".*/class",
        ] {
            let q = parse_query(s).unwrap();
            assert_eq!(q.eval(&tree), normalize_query(&q).eval(&tree), "{s}");
        }
    }
}
