//! `XR` paths — the subclass of `XR` queries that schema embeddings map
//! edges to (§4.1): `ρ = η1/…/ηk` where each `ηi` is `A[q]` with `q` either
//! `true` or a `position()` qualifier, optionally ending with `text()` (for
//! `path(A, str)`).

use std::fmt;
use std::sync::Arc;

use crate::{Qualifier, XrQuery};

/// One step `A[q]` of an `XR` path.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PathStep {
    /// The label `A`.
    pub label: Arc<str>,
    /// `Some(k)` for `A[position() = k]`, `None` for plain `A` (≡ `A[true]`).
    pub pos: Option<usize>,
}

impl PathStep {
    /// A plain step.
    pub fn plain(label: &str) -> Self {
        PathStep {
            label: Arc::from(label),
            pos: None,
        }
    }

    /// A positioned step `A[position() = k]`.
    pub fn at(label: &str, k: usize) -> Self {
        PathStep {
            label: Arc::from(label),
            pos: Some(k),
        }
    }
}

/// An `XR` path `η1/…/ηk` with an optional `text()` tail.
///
/// `steps` may be empty only when `text_tail` holds (`path(A, str) = text()`
/// in Example 4.2 maps the `str` edge of a type whose image already is the
/// path's origin).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct XrPath {
    /// The element steps.
    pub steps: Vec<PathStep>,
    /// Whether the path ends with `/text()`.
    pub text_tail: bool,
}

impl XrPath {
    /// Build from steps without a text tail.
    pub fn new(steps: Vec<PathStep>) -> Self {
        XrPath {
            steps,
            text_tail: false,
        }
    }

    /// Build from steps with a `text()` tail.
    pub fn with_text(steps: Vec<PathStep>) -> Self {
        XrPath {
            steps,
            text_tail: true,
        }
    }

    /// Convenience: parse a `/`-separated path such as
    /// `basic/class/semester[position() = 1]/title` or `text()`.
    pub fn parse(input: &str) -> Result<Self, String> {
        let q = crate::parse_query(input).map_err(|e| e.to_string())?;
        Self::from_query(&q).ok_or_else(|| format!("{input:?} is not an XR path"))
    }

    /// Recognize an `XR` path inside a general query; `None` when the query
    /// is not of the `η1/…/ηk` shape.
    pub fn from_query(q: &XrQuery) -> Option<Self> {
        let mut steps = Vec::new();
        let mut text_tail = false;
        if !collect(q, &mut steps, &mut text_tail) {
            return None;
        }
        if steps.is_empty() && !text_tail {
            return None; // k ≥ 1 (or a lone text())
        }
        return Some(XrPath { steps, text_tail });

        fn collect(q: &XrQuery, steps: &mut Vec<PathStep>, text: &mut bool) -> bool {
            match q {
                // Steps guard against anything following a text() tail.
                XrQuery::Seq(a, b) => collect(a, steps, text) && collect(b, steps, text),
                XrQuery::Label(l) => {
                    if *text {
                        return false;
                    }
                    steps.push(PathStep {
                        label: l.clone(),
                        pos: None,
                    });
                    true
                }
                XrQuery::Qualified(p, q) => {
                    let XrQuery::Label(l) = &**p else {
                        return false;
                    };
                    if *text {
                        return false;
                    }
                    let pos = match q {
                        Qualifier::True => None,
                        Qualifier::Position(k) => Some(*k),
                        _ => return false,
                    };
                    steps.push(PathStep {
                        label: l.clone(),
                        pos,
                    });
                    true
                }
                XrQuery::Text => {
                    if *text {
                        return false;
                    }
                    *text = true;
                    true
                }
                _ => false,
            }
        }
    }

    /// Back to a general query.
    pub fn to_query(&self) -> XrQuery {
        let mut q = XrQuery::Empty;
        for s in &self.steps {
            let step = match s.pos {
                None => XrQuery::Label(s.label.clone()),
                Some(k) => XrQuery::Label(s.label.clone()).with(Qualifier::Position(k)),
            };
            q = q.then(step);
        }
        if self.text_tail {
            q = q.then(XrQuery::Text);
        }
        q
    }

    /// Number of steps `|ρ|` (the text tail counts as one, matching the
    /// paper's `path(A, str)` length accounting).
    pub fn len(&self) -> usize {
        self.steps.len() + usize::from(self.text_tail)
    }

    /// `true` when the path has no steps and no text tail.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty() && !self.text_tail
    }

    /// Purely syntactic prefix test: `self` is a prefix of `other` when
    /// `other = self/η…` with **strictly** more steps, comparing steps by
    /// label and literal position annotation. (The embedding validity check
    /// refines this with schema-aware position canonicalization.)
    pub fn is_proper_prefix_of(&self, other: &XrPath) -> bool {
        if self.text_tail || self.len() >= other.len() {
            return false;
        }
        self.steps
            .iter()
            .zip(other.steps.iter())
            .all(|(a, b)| a == b)
    }

    /// Concatenate two paths (`self/other`).
    ///
    /// # Panics
    /// Panics if `self` already ends in `text()`.
    pub fn join(&self, other: &XrPath) -> XrPath {
        assert!(!self.text_tail, "cannot extend past a text() tail");
        let mut steps = self.steps.clone();
        steps.extend(other.steps.iter().cloned());
        XrPath {
            steps,
            text_tail: other.text_tail,
        }
    }
}

impl fmt::Display for XrPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for s in &self.steps {
            if !first {
                write!(f, "/")?;
            }
            first = false;
            match s.pos {
                None => write!(f, "{}", s.label)?,
                Some(k) => write!(f, "{}[position() = {k}]", s.label)?,
            }
        }
        if self.text_tail {
            if !first {
                write!(f, "/")?;
            }
            write!(f, "text()")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    #[test]
    fn parses_plain_and_positioned_steps() {
        let p = XrPath::parse("basic/class/semester[position() = 1]/title").unwrap();
        assert_eq!(p.steps.len(), 4);
        assert_eq!(p.steps[2], PathStep::at("semester", 1));
        assert_eq!(p.steps[3], PathStep::plain("title"));
        assert!(!p.text_tail);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn parses_text_tail_and_bare_text() {
        let p = XrPath::parse("a/text()").unwrap();
        assert_eq!(p.steps.len(), 1);
        assert!(p.text_tail);
        assert_eq!(p.len(), 2);

        let p = XrPath::parse("text()").unwrap();
        assert!(p.steps.is_empty());
        assert!(p.text_tail);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn rejects_non_path_queries() {
        for s in ["a | b", "(a/b)*", "a[b]", "a//b", ".", "a/text()/b"] {
            let q = parse_query(s).unwrap();
            assert!(XrPath::from_query(&q).is_none(), "{s} must not be a path");
        }
    }

    #[test]
    fn accepts_true_qualifier_steps() {
        let q = parse_query("a[true]/b").unwrap();
        let p = XrPath::from_query(&q).unwrap();
        assert_eq!(p.steps[0], PathStep::plain("a"));
    }

    #[test]
    fn roundtrips_through_query_form() {
        for s in ["a", "a/b[position() = 2]/c", "a/text()", "text()"] {
            let p = XrPath::parse(s).unwrap();
            let q = p.to_query();
            let p2 = XrPath::from_query(&q).unwrap();
            assert_eq!(p, p2, "{s}");
        }
    }

    #[test]
    fn display_matches_parse() {
        let p = XrPath::parse("a/b[position() = 2]/text()").unwrap();
        assert_eq!(p.to_string(), "a/b[position() = 2]/text()");
        assert_eq!(XrPath::parse(&p.to_string()).unwrap(), p);
    }

    #[test]
    fn prefix_test_is_strict_and_literal() {
        let a = XrPath::parse("x/y").unwrap();
        let b = XrPath::parse("x/y/z").unwrap();
        let c = XrPath::parse("x/y[position() = 1]/z").unwrap();
        assert!(a.is_proper_prefix_of(&b));
        assert!(!b.is_proper_prefix_of(&a));
        assert!(!a.is_proper_prefix_of(&a));
        // Literal comparison: y vs y[position()=1] differ.
        assert!(!a.is_proper_prefix_of(&c));
        // Fig 3(c): B'[1] vs B'[2] are not prefixes of each other.
        let p1 = XrPath::parse("B[position() = 1]").unwrap();
        let p2 = XrPath::parse("B[position() = 2]").unwrap();
        assert!(!p1.is_proper_prefix_of(&p2));
        assert!(!p2.is_proper_prefix_of(&p1));
    }

    #[test]
    fn join_concatenates() {
        let a = XrPath::parse("x/y").unwrap();
        let b = XrPath::parse("z/text()").unwrap();
        let j = a.join(&b);
        assert_eq!(j.to_string(), "x/y/z/text()");
    }

    #[test]
    #[should_panic(expected = "text()")]
    fn join_past_text_panics() {
        let a = XrPath::parse("x/text()").unwrap();
        let b = XrPath::parse("y").unwrap();
        let _ = a.join(&b);
    }
}
