//! Recursive-descent parser for the `XR` concrete syntax.
//!
//! Accepted spellings (paper / ASCII):
//!
//! * empty path: `ε` or `.`
//! * union: `∪` or `|`
//! * qualifier connectives: `¬ ∧ ∨` or `not/! and/&& or/||`
//! * `text()`, `position() = k`, string literals in `'…'` or `"…"`
//! * Kleene star as a postfix `*` on a step or parenthesized group
//! * `//` — the descendant-or-self axis of the fragment `X`.

use std::fmt;

use crate::{Qualifier, XrQuery};

/// Parse error with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// Description of the problem.
    pub msg: String,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for QueryParseError {}

/// Parse an `XR` (or fragment-`X`) query.
pub fn parse_query(input: &str) -> Result<XrQuery, QueryParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.union()?;
    if p.pos != p.tokens.len() {
        return Err(QueryParseError {
            at: p.offset(),
            msg: format!("unexpected trailing {:?}", p.tokens[p.pos].1),
        });
    }
    Ok(q)
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Name(String),
    Str(String),
    Num(usize),
    Slash,
    DSlash,
    Pipe,
    Star,
    LBrack,
    RBrack,
    LParen,
    RParen,
    Eq,
    Dot,
    NotOp,
    AndOp,
    OrOp,
}

fn lex(input: &str) -> Result<Vec<(usize, Tok)>, QueryParseError> {
    let mut out = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(at, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek().is_some_and(|&(_, c)| c == '/') {
                    chars.next();
                    out.push((at, Tok::DSlash));
                } else {
                    out.push((at, Tok::Slash));
                }
            }
            '|' => {
                chars.next();
                if chars.peek().is_some_and(|&(_, c)| c == '|') {
                    chars.next();
                    out.push((at, Tok::OrOp));
                } else {
                    out.push((at, Tok::Pipe));
                }
            }
            '&' => {
                chars.next();
                if chars.peek().is_some_and(|&(_, c)| c == '&') {
                    chars.next();
                    out.push((at, Tok::AndOp));
                } else {
                    return Err(QueryParseError {
                        at,
                        msg: "single '&' (use '&&' or 'and')".into(),
                    });
                }
            }
            '∪' => {
                chars.next();
                out.push((at, Tok::Pipe));
            }
            '¬' | '!' => {
                chars.next();
                out.push((at, Tok::NotOp));
            }
            '∧' => {
                chars.next();
                out.push((at, Tok::AndOp));
            }
            '∨' => {
                chars.next();
                out.push((at, Tok::OrOp));
            }
            'ε' | '.' => {
                chars.next();
                out.push((at, Tok::Dot));
            }
            '*' => {
                chars.next();
                out.push((at, Tok::Star));
            }
            '[' => {
                chars.next();
                out.push((at, Tok::LBrack));
            }
            ']' => {
                chars.next();
                out.push((at, Tok::RBrack));
            }
            '(' => {
                chars.next();
                out.push((at, Tok::LParen));
            }
            ')' => {
                chars.next();
                out.push((at, Tok::RParen));
            }
            '=' => {
                chars.next();
                out.push((at, Tok::Eq));
            }
            '\'' | '"' => {
                let quote = c;
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some((_, c)) if c == quote => break,
                        Some((_, c)) => s.push(c),
                        None => {
                            return Err(QueryParseError {
                                at,
                                msg: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                out.push((at, Tok::Str(s)));
            }
            c if c.is_ascii_digit() => {
                let mut n = 0usize;
                while let Some(&(_, c)) = chars.peek() {
                    if let Some(d) = c.to_digit(10) {
                        n = n * 10 + d as usize;
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((at, Tok::Num(n)));
            }
            c if c.is_alphanumeric() || c == '_' || c == '#' => {
                let mut s = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_alphanumeric() || matches!(c, '_' | '-' | ':' | '#') {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((at, Tok::Name(s)));
            }
            other => {
                return Err(QueryParseError {
                    at,
                    msg: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |t| t.0)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, QueryParseError> {
        Err(QueryParseError {
            at: self.offset(),
            msg: msg.into(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.1)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|t| &t.1)
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), QueryParseError> {
        if self.eat(&t) {
            Ok(())
        } else {
            self.err(format!("expected {t:?}, found {:?}", self.peek()))
        }
    }

    fn name_is(&self, s: &str) -> bool {
        matches!(self.peek(), Some(Tok::Name(n)) if n == s)
    }

    /// union := seq ('|' seq)*
    fn union(&mut self) -> Result<XrQuery, QueryParseError> {
        let mut q = self.seq()?;
        while self.eat(&Tok::Pipe) {
            q = q.or(self.seq()?);
        }
        Ok(q)
    }

    /// seq := postfix (('/' | '//') postfix)*
    fn seq(&mut self) -> Result<XrQuery, QueryParseError> {
        let mut q = self.postfix()?;
        loop {
            if self.eat(&Tok::Slash) {
                q = q.then(self.postfix()?);
            } else if self.eat(&Tok::DSlash) {
                q = q.then(XrQuery::DescOrSelf).then(self.postfix()?);
            } else {
                return Ok(q);
            }
        }
    }

    /// postfix := atom ('*' | '[' qual ']')*
    fn postfix(&mut self) -> Result<XrQuery, QueryParseError> {
        let mut q = self.atom()?;
        loop {
            if self.eat(&Tok::Star) {
                q = q.star();
            } else if self.eat(&Tok::LBrack) {
                let qual = self.qualifier()?;
                self.expect(Tok::RBrack)?;
                q = q.with(qual);
            } else {
                return Ok(q);
            }
        }
    }

    /// atom := '.' | name | 'text()' | '(' union ')'
    fn atom(&mut self) -> Result<XrQuery, QueryParseError> {
        if self.eat(&Tok::Dot) {
            return Ok(XrQuery::Empty);
        }
        if self.eat(&Tok::LParen) {
            let q = self.union()?;
            self.expect(Tok::RParen)?;
            return Ok(q);
        }
        match self.peek().cloned() {
            Some(Tok::Name(n)) => {
                // `text()` / `desc-or-self()` step?
                if self.peek2() == Some(&Tok::LParen) {
                    if n == "text" {
                        self.pos += 2;
                        self.expect(Tok::RParen)?;
                        return Ok(XrQuery::Text);
                    }
                    if n == "desc-or-self" {
                        self.pos += 2;
                        self.expect(Tok::RParen)?;
                        return Ok(XrQuery::DescOrSelf);
                    }
                }
                self.pos += 1;
                Ok(XrQuery::label(&n))
            }
            other => self.err(format!("expected a path step, found {other:?}")),
        }
    }

    /// qual := andq (('or') andq)*
    fn qualifier(&mut self) -> Result<Qualifier, QueryParseError> {
        let mut q = self.and_q()?;
        loop {
            if self.eat(&Tok::OrOp) || self.eat_word("or") {
                q = Qualifier::Or(Box::new(q), Box::new(self.and_q()?));
            } else {
                return Ok(q);
            }
        }
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if self.name_is(w) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn and_q(&mut self) -> Result<Qualifier, QueryParseError> {
        let mut q = self.not_q()?;
        loop {
            if self.eat(&Tok::AndOp) || self.eat_word("and") {
                q = Qualifier::And(Box::new(q), Box::new(self.not_q()?));
            } else {
                return Ok(q);
            }
        }
    }

    fn not_q(&mut self) -> Result<Qualifier, QueryParseError> {
        if self.eat(&Tok::NotOp) || self.eat_word("not") {
            return Ok(Qualifier::Not(Box::new(self.not_q()?)));
        }
        self.prim_q()
    }

    fn prim_q(&mut self) -> Result<Qualifier, QueryParseError> {
        // `true` standing alone.
        if self.name_is("true") {
            let next_continues_path = matches!(
                self.peek2(),
                Some(Tok::Slash | Tok::DSlash | Tok::LBrack | Tok::Star | Tok::Eq | Tok::Pipe)
            );
            if !next_continues_path {
                self.pos += 1;
                return Ok(Qualifier::True);
            }
        }
        // `position() = k`.
        if self.name_is("position") && self.peek2() == Some(&Tok::LParen) {
            self.pos += 2;
            self.expect(Tok::RParen)?;
            self.expect(Tok::Eq)?;
            match self.peek().cloned() {
                Some(Tok::Num(k)) => {
                    self.pos += 1;
                    if k == 0 {
                        return self.err("position() is 1-based");
                    }
                    return Ok(Qualifier::Position(k));
                }
                other => return self.err(format!("expected a number, found {other:?}")),
            }
        }
        // Try a path (possibly ending `= 'c'`); backtrack to a parenthesized
        // qualifier if that fails.
        let save = self.pos;
        match self.union() {
            Ok(p) => {
                if self.eat(&Tok::Eq) {
                    match self.peek().cloned() {
                        Some(Tok::Str(c)) => {
                            self.pos += 1;
                            return Ok(Qualifier::TextEq(Box::new(p), c));
                        }
                        other => {
                            return self.err(format!("expected a string literal, found {other:?}"))
                        }
                    }
                }
                Ok(Qualifier::Path(Box::new(p)))
            }
            Err(path_err) => {
                self.pos = save;
                if self.eat(&Tok::LParen) {
                    let q = self.qualifier()?;
                    self.expect(Tok::RParen)?;
                    return Ok(q);
                }
                Err(path_err)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_paths() {
        assert_eq!(parse_query("a").unwrap(), XrQuery::label("a"));
        assert_eq!(
            parse_query("a/b").unwrap(),
            XrQuery::label("a").then(XrQuery::label("b"))
        );
        assert_eq!(parse_query(".").unwrap(), XrQuery::Empty);
        assert_eq!(parse_query("ε").unwrap(), XrQuery::Empty);
        assert_eq!(
            parse_query("a/text()").unwrap(),
            XrQuery::label("a").then(XrQuery::Text)
        );
    }

    #[test]
    fn union_and_precedence() {
        // a | b/c == a | (b/c)
        let q = parse_query("a | b/c").unwrap();
        assert_eq!(
            q,
            XrQuery::label("a").or(XrQuery::label("b").then(XrQuery::label("c")))
        );
        assert_eq!(parse_query("a ∪ b").unwrap(), parse_query("a | b").unwrap());
    }

    #[test]
    fn star_binds_to_atom_or_group() {
        let q = parse_query("a*").unwrap();
        assert_eq!(q, XrQuery::label("a").star());
        let q = parse_query("(a/b)*").unwrap();
        assert_eq!(q, XrQuery::label("a").then(XrQuery::label("b")).star());
        // a/b* = a/(b*)
        let q = parse_query("a/b*").unwrap();
        assert_eq!(q, XrQuery::label("a").then(XrQuery::label("b").star()));
    }

    #[test]
    fn qualifiers() {
        let q = parse_query("a[b]").unwrap();
        assert_eq!(
            q,
            XrQuery::label("a").with(Qualifier::Path(Box::new(XrQuery::label("b"))))
        );
        let q = parse_query("a[position() = 3]").unwrap();
        assert_eq!(q, XrQuery::label("a").with(Qualifier::Position(3)));
        let q = parse_query("a[text() = 'CS331']").unwrap();
        assert_eq!(
            q,
            XrQuery::label("a").with(Qualifier::TextEq(Box::new(XrQuery::Text), "CS331".into()))
        );
        let q = parse_query("a[true]").unwrap();
        assert_eq!(q, XrQuery::label("a").with(Qualifier::True));
    }

    #[test]
    fn boolean_connectives_and_unicode() {
        let q1 = parse_query("a[not b and c or d]").unwrap();
        let q2 = parse_query("a[((¬b) ∧ c) ∨ d]").unwrap();
        assert_eq!(q1, q2);
        // Precedence: or < and < not.
        let XrQuery::Qualified(_, q) = q1 else {
            panic!()
        };
        assert!(matches!(q, Qualifier::Or(_, _)));
    }

    #[test]
    fn parenthesized_qualifier_backtracks() {
        let q = parse_query("a[(b or c)]").unwrap();
        let XrQuery::Qualified(_, q) = q else {
            panic!()
        };
        assert!(matches!(q, Qualifier::Or(_, _)));
        // While (b | c) stays a path union.
        let q = parse_query("a[(b | c)]").unwrap();
        let XrQuery::Qualified(_, q) = q else {
            panic!()
        };
        assert!(matches!(q, Qualifier::Path(_)));
    }

    #[test]
    fn example_4_7_query_parses() {
        let q = parse_query(
            "courses/current/course[basic/cno/text() = 'CS331']/(category/mandatory/regular/required/prereq/course)*",
        )
        .unwrap();
        assert!(q.uses_star());
        assert!(q.size() > 10);
    }

    #[test]
    fn descendant_or_self() {
        let q = parse_query("a//b").unwrap();
        assert_eq!(
            q,
            XrQuery::label("a")
                .then(XrQuery::DescOrSelf)
                .then(XrQuery::label("b"))
        );
        assert!(q.in_fragment_x());
        let q = parse_query("//b").err();
        assert!(
            q.is_some(),
            "leading // unsupported (queries are root-relative)"
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("").is_err());
        assert!(parse_query("a/").is_err());
        assert!(parse_query("a[").is_err());
        assert!(parse_query("a]").is_err());
        assert!(parse_query("a[position() = 0]").is_err());
        assert!(parse_query("a[text() = unquoted]").is_err());
        assert!(parse_query("a & b").is_err());
        assert!(parse_query("a b").is_err());
    }

    #[test]
    fn text_and_position_can_be_labels_elsewhere() {
        // "text" and "position" without parentheses are ordinary labels.
        assert_eq!(parse_query("text").unwrap(), XrQuery::label("text"));
        assert_eq!(parse_query("position").unwrap(), XrQuery::label("position"));
        // A label literally named "true" still works as a step.
        assert_eq!(
            parse_query("true/b").unwrap(),
            XrQuery::label("true").then(XrQuery::label("b"))
        );
    }
}
