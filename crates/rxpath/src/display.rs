//! Rendering queries in the ASCII concrete syntax accepted by the parser.

use std::fmt;

use crate::{Qualifier, XrQuery};

/// Binding strength used to decide parenthesization.
fn prec(q: &XrQuery) -> u8 {
    match q {
        XrQuery::Union(_, _) => 0,
        XrQuery::Seq(_, _) => 1,
        XrQuery::Star(_) | XrQuery::Qualified(_, _) => 2,
        XrQuery::Empty | XrQuery::Label(_) | XrQuery::Text | XrQuery::DescOrSelf => 3,
    }
}

fn write_child(f: &mut fmt::Formatter<'_>, child: &XrQuery, min: u8) -> fmt::Result {
    if prec(child) < min {
        write!(f, "({child})")
    } else {
        write!(f, "{child}")
    }
}

impl fmt::Display for XrQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XrQuery::Empty => write!(f, "."),
            XrQuery::Label(l) => write!(f, "{l}"),
            XrQuery::Text => write!(f, "text()"),
            XrQuery::DescOrSelf => write!(f, "desc-or-self()"),
            XrQuery::Seq(a, b) => {
                // p1//p2 prints with the double slash it parsed from.
                if matches!(**b, XrQuery::Seq(ref x, _) if matches!(**x, XrQuery::DescOrSelf)) {
                    let XrQuery::Seq(x, rest) = &**b else {
                        unreachable!()
                    };
                    debug_assert!(matches!(**x, XrQuery::DescOrSelf));
                    write_child(f, a, 1)?;
                    write!(f, "//")?;
                    return write_child(f, rest, 2);
                }
                if matches!(**b, XrQuery::DescOrSelf) {
                    write_child(f, a, 1)?;
                    return write!(f, "//.");
                }
                write_child(f, a, 1)?;
                write!(f, "/")?;
                write_child(f, b, 2)
            }
            XrQuery::Union(a, b) => {
                write_child(f, a, 0)?;
                write!(f, " | ")?;
                write_child(f, b, 1)
            }
            XrQuery::Star(p) => {
                write_child(f, p, 3)?;
                write!(f, "*")
            }
            XrQuery::Qualified(p, q) => {
                write_child(f, p, 2)?;
                write!(f, "[{q}]")
            }
        }
    }
}

impl fmt::Display for Qualifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Qualifier::True => write!(f, "true"),
            Qualifier::Path(p) => write!(f, "{p}"),
            Qualifier::TextEq(p, c) => write!(f, "{p} = '{c}'"),
            Qualifier::Position(k) => write!(f, "position() = {k}"),
            Qualifier::Not(q) => match **q {
                Qualifier::And(_, _) | Qualifier::Or(_, _) => write!(f, "not({q})"),
                _ => write!(f, "not {q}"),
            },
            Qualifier::And(a, b) => {
                let wrap = |f: &mut fmt::Formatter<'_>, x: &Qualifier| match x {
                    Qualifier::Or(_, _) => write!(f, "({x})"),
                    _ => write!(f, "{x}"),
                };
                wrap(f, a)?;
                write!(f, " and ")?;
                wrap(f, b)
            }
            Qualifier::Or(a, b) => write!(f, "{a} or {b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{parse_query, Qualifier, XrQuery};

    fn roundtrip(s: &str) {
        let q = parse_query(s).unwrap();
        let printed = q.to_string();
        let q2 = parse_query(&printed)
            .unwrap_or_else(|e| panic!("reprint of {s:?} as {printed:?} does not parse: {e}"));
        assert_eq!(q, q2, "{s:?} -> {printed:?}");
    }

    #[test]
    fn displays_basic_forms() {
        assert_eq!(XrQuery::label("a").to_string(), "a");
        assert_eq!(
            XrQuery::label("a").then(XrQuery::Text).to_string(),
            "a/text()"
        );
        assert_eq!(
            XrQuery::label("a")
                .or(XrQuery::label("b"))
                .star()
                .to_string(),
            "(a | b)*"
        );
        assert_eq!(
            XrQuery::label("a").with(Qualifier::Position(2)).to_string(),
            "a[position() = 2]"
        );
    }

    #[test]
    fn display_parses_back() {
        for s in [
            "a/b/c",
            "(a/b)*",
            "a[b/text() = 'x']/c",
            "a[position() = 2 and not b]",
            "a | b/c | d",
            "courses/current/course[basic/cno/text() = 'CS331']/(category/mandatory/regular/required/prereq/course)*",
            "a//b",
            ".",
            "a[true]",
            "a[not(b or c)]",
        ] {
            roundtrip(s);
        }
    }
}
