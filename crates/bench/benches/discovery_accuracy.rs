//! EXP-A/EXP-B micro-slice: one discovery call per strategy on a noised
//! corpus schema (the full sweeps live in the `report` binary), followed
//! by a per-strategy breakdown of *why* restart attempts die (the
//! rejection-kind counters of `DiscoveryStats`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xse_bench::experiments::STRATEGIES;
use xse_discovery::{find_embedding, find_embedding_with_stats, DiscoveryConfig};
use xse_workloads::corpus;
use xse_workloads::noise::{noised_copy, NoiseConfig};
use xse_workloads::simgen::{ambiguous, SimConfig};

fn bench(c: &mut Criterion) {
    let src = corpus::news_like();
    let copy = noised_copy(&src, NoiseConfig::level(0.3), 7);
    let att = ambiguous(
        &src,
        &copy,
        SimConfig {
            accuracy: 0.9,
            ambiguity: 2.0,
        },
        7,
    );
    let mut g = c.benchmark_group("discovery_accuracy");
    g.sample_size(10);
    for strategy in STRATEGIES {
        g.bench_with_input(
            BenchmarkId::new("news-0.3-noise", format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                let cfg = DiscoveryConfig {
                    strategy,
                    ..DiscoveryConfig::default()
                };
                b.iter(|| find_embedding(&src, &copy.target, &att, &cfg).is_some())
            },
        );
    }
    g.finish();

    // Why do attempts die? One stats-collecting run per strategy —
    // sequential, so the counters describe the deterministic search
    // prefix rather than scheduling-dependent speculative attempts.
    println!("discovery_accuracy: rejection breakdown (attempts / pfp solves / rejects prefix+sim+other)");
    for strategy in STRATEGIES {
        let cfg = DiscoveryConfig {
            strategy,
            threads: 1,
            ..DiscoveryConfig::default()
        };
        let (e, s) = find_embedding_with_stats(&src, &copy.target, &att, &cfg);
        println!(
            "  {strategy:?}: found={} attempts={} local_solves={} rejects={} ({} prefix, {} similarity, {} other)",
            e.is_some(),
            s.attempts,
            s.local_solves,
            s.validation_rejects,
            s.rejects_prefix,
            s.rejects_similarity,
            s.rejects_other,
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
