//! EXP-A/EXP-B micro-slice: one discovery call per strategy on a noised
//! corpus schema (the full sweeps live in the `report` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xse_discovery::{find_embedding, DiscoveryConfig, Strategy};
use xse_workloads::corpus;
use xse_workloads::noise::{noised_copy, NoiseConfig};
use xse_workloads::simgen::{ambiguous, SimConfig};

fn bench(c: &mut Criterion) {
    let src = corpus::news_like();
    let copy = noised_copy(&src, NoiseConfig::level(0.3), 7);
    let att = ambiguous(
        &src,
        &copy,
        SimConfig {
            accuracy: 0.9,
            ambiguity: 2.0,
        },
        7,
    );
    let mut g = c.benchmark_group("discovery_accuracy");
    g.sample_size(10);
    for strategy in [
        Strategy::Random,
        Strategy::QualityOrdered,
        Strategy::IndependentSet,
    ] {
        g.bench_with_input(
            BenchmarkId::new("news-0.3-noise", format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                let cfg = DiscoveryConfig {
                    strategy,
                    ..DiscoveryConfig::default()
                };
                b.iter(|| find_embedding(&src, &copy.target, &att, &cfg).is_some())
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
