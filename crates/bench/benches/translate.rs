//! TAB-2 micro-slice: query translation time on the Figure 1 embedding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xse_bench::fixtures;
use xse_rxpath::parse_query;

fn bench(c: &mut Criterion) {
    let (s0, s) = fixtures::fig1_pair();
    let e = fixtures::fig1_embedding(&s0, &s);
    let queries = [
        ("step", "class"),
        ("path", "class/type/regular/prereq"),
        ("qualified", "class[cno/text() = 'CS331']/title"),
        (
            "example-4-8",
            "class[cno/text() = 'CS331']/(type/regular/prereq/class)*",
        ),
        (
            "union-star",
            "(class/type/regular/prereq/class)* | class/cno",
        ),
    ];
    let mut g = c.benchmark_group("translate");
    for (name, q) in queries {
        let parsed = parse_query(q).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &parsed, |b, parsed| {
            b.iter(|| e.translate(parsed).unwrap().size())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
