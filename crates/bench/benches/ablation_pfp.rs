//! ABL-1 micro-slice: prefix-free search with and without the reachability
//! index pruning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xse_discovery::{find_embedding, DiscoveryConfig};
use xse_workloads::corpus;
use xse_workloads::noise::{noised_copy, NoiseConfig};
use xse_workloads::simgen::exact;

fn bench(c: &mut Criterion) {
    let src = corpus::auction_like();
    let copy = noised_copy(&src, NoiseConfig::level(0.4), 29);
    let att = exact(&src, &copy);
    let mut g = c.benchmark_group("ablation_pfp");
    g.sample_size(10);
    for (name, disable) in [("with-pruning", false), ("no-pruning", true)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(name),
            &disable,
            |b, &disable| {
                let mut cfg = DiscoveryConfig::default();
                cfg.pfp.disable_reach_pruning = disable;
                b.iter(|| find_embedding(&src, &copy.target, &att, &cfg).is_some())
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
