//! EXP-C micro-slice: discovery runtime vs. schema size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xse_discovery::{find_embedding, DiscoveryConfig};
use xse_workloads::noise::{noised_copy, NoiseConfig};
use xse_workloads::scale::random_schema;
use xse_workloads::simgen::exact;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("discovery_scale");
    g.sample_size(10);
    for n in [20usize, 60, 120] {
        let src = random_schema(n, n as u64);
        let copy = noised_copy(&src, NoiseConfig::level(0.25), 17);
        let att = exact(&src, &copy);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let cfg = DiscoveryConfig {
                restarts: 8,
                ..DiscoveryConfig::default()
            };
            b.iter(|| find_embedding(&src, &copy.target, &att, &cfg).is_some())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
