//! EXP-C micro-slice: discovery runtime vs. schema size and worker
//! threads (the parallel restart engine).
//!
//! Set `XSE_SCALE_SMOKE=1` for the CI smoke sweep: one small size, few
//! restarts, but both the sequential and the parallel engine paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xse_bench::experiments::thread_sweep;
use xse_discovery::{find_embedding, DiscoveryConfig};
use xse_workloads::noise::{noised_copy, NoiseConfig};
use xse_workloads::scale::random_schema;
use xse_workloads::simgen::exact;

fn bench(c: &mut Criterion) {
    let smoke = std::env::var_os("XSE_SCALE_SMOKE").is_some();
    let sizes: &[usize] = if smoke { &[20] } else { &[20, 60, 120, 200] };
    let restarts = if smoke { 4 } else { 8 };
    let mut g = c.benchmark_group("discovery_scale");
    g.sample_size(10);
    for &n in sizes {
        let src = random_schema(n, n as u64);
        let copy = noised_copy(&src, NoiseConfig::level(0.25), 17);
        let att = exact(&src, &copy);
        for threads in thread_sweep() {
            g.bench_with_input(
                BenchmarkId::new(format!("n{n}"), format!("t{threads}")),
                &threads,
                |b, &threads| {
                    let cfg = DiscoveryConfig {
                        restarts,
                        threads,
                        ..DiscoveryConfig::default()
                    };
                    b.iter(|| find_embedding(&src, &copy.target, &att, &cfg).is_some())
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
