//! TAB-4 micro-slice: generated XSLT vs. the direct algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xse_bench::fixtures;
use xse_dtd::{GenConfig, InstanceGenerator};
use xse_xslt::{apply_stylesheet, generate_forward, generate_inverse};

fn bench(c: &mut Criterion) {
    let (s0, s) = fixtures::fig1_pair();
    let e = fixtures::fig1_embedding(&s0, &s);
    let fwd = generate_forward(&e);
    let inv = generate_inverse(&e);
    let gen = InstanceGenerator::new(
        &s0,
        GenConfig {
            max_nodes: 2_000,
            star_mean: 3.0,
            ..GenConfig::default()
        },
    );
    let t1 = gen.generate(42);
    let t2 = e.apply(&t1).unwrap().tree;
    let mut g = c.benchmark_group("xslt_apply");
    g.sample_size(20);
    g.bench_with_input(BenchmarkId::new("forward", t1.len()), &t1, |b, t1| {
        b.iter(|| apply_stylesheet(&fwd, t1, None).unwrap().len())
    });
    g.bench_with_input(BenchmarkId::new("inverse", t2.len()), &t2, |b, t2| {
        b.iter(|| apply_stylesheet(&inv, t2, None).unwrap().len())
    });
    g.bench_with_input(BenchmarkId::new("direct-apply", t1.len()), &t1, |b, t1| {
        b.iter(|| e.apply(t1).unwrap().tree.len())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
