//! Serving-layer micro-slice: the registry's warm hit path vs. a fresh
//! compile, plus the full `handle_request` dispatcher round-trip.
//!
//! `XSE_SCALE_SMOKE=1` shrinks sample counts so CI can run the whole bench
//! as a regression gate; the correctness assertions (warm hits share one
//! `Arc`, warm lookup at least 10× faster than evict-and-recompile) run in
//! both modes.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use xse_service::loadgen::loadgen_discovery;
use xse_service::{handle_request, EmbeddingRegistry, RegistryConfig, Request, Response};

fn wrap_pair() -> (String, String) {
    let s1 =
        "<!ELEMENT r (a, b)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (c*)>\n<!ELEMENT c (#PCDATA)>";
    let s2 = "<!ELEMENT r (x, y)>\n<!ELEMENT x (a)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT y (w)>\n<!ELEMENT w (c2*)>\n<!ELEMENT c2 (c)>\n<!ELEMENT c (#PCDATA)>";
    (s1.to_string(), s2.to_string())
}

fn registry() -> Arc<EmbeddingRegistry> {
    Arc::new(EmbeddingRegistry::new(RegistryConfig {
        discovery: loadgen_discovery(),
        ..RegistryConfig::default()
    }))
}

fn registry_with_shards(shards: usize) -> Arc<EmbeddingRegistry> {
    Arc::new(EmbeddingRegistry::new(RegistryConfig {
        shards,
        discovery: loadgen_discovery(),
        ..RegistryConfig::default()
    }))
}

/// Regression gate for the serving claim: resolving an already-compiled
/// pair (hash-memoized text lookup + `Arc` clone) must be at least 10×
/// faster than evicting and recompiling it. The real margin is orders of
/// magnitude; if the hit path ever re-parses or re-runs discovery, this
/// trips long before the e2e latency gate does.
fn assert_warm_hit_beats_recompile() {
    let (s, t) = wrap_pair();
    let reg = registry();
    let (_, first) = reg.get_or_compile(&s, &t).unwrap();
    let (_, second) = reg.get_or_compile(&s, &t).unwrap();
    assert!(
        Arc::ptr_eq(&first, &second),
        "warm hits must share one compiled engine"
    );
    let median = |f: &dyn Fn()| {
        let mut samples: Vec<std::time::Duration> = (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                f();
                t0.elapsed()
            })
            .collect();
        samples.sort();
        samples[1]
    };
    let t_warm = median(&|| {
        for _ in 0..32 {
            std::hint::black_box(reg.get_or_compile(&s, &t).unwrap());
        }
    });
    let t_cold = median(&|| {
        for _ in 0..32 {
            reg.evict(&s, &t).unwrap();
            std::hint::black_box(reg.get_or_compile(&s, &t).unwrap());
        }
    });
    assert!(
        t_warm * 10 <= t_cold,
        "warm hit path ({t_warm:?}/32 ops) not 10x faster than \
         evict-and-recompile ({t_cold:?}/32 ops)"
    );
}

/// Regression gate for the negative cache: once a DTD pair has failed
/// discovery, repeating the request within the TTL must be answered from
/// the negative cache — no re-parse, no re-discovery — making the repeat
/// at least 10× faster than the initial failure and bumping the
/// `negative_hits` counter.
fn assert_negative_cache_absorbs_repeat_failures() {
    let (s, t) = (
        "<!ELEMENT r (a, b)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT b (#PCDATA)>",
        "<!ELEMENT r (#PCDATA)>",
    );
    let reg = registry();
    let t0 = std::time::Instant::now();
    assert!(reg.get_or_compile(s, t).is_err(), "pair must not embed");
    let t_fail = t0.elapsed();
    let t0 = std::time::Instant::now();
    for _ in 0..32 {
        assert!(reg.get_or_compile(s, t).is_err());
    }
    let t_cached = t0.elapsed();
    assert_eq!(reg.stats().negative_hits, 32, "repeats must hit the cache");
    assert!(
        t_cached * 10 <= t_fail * 32,
        "negative-cache hit ({t_cached:?}/32 ops) not 10x faster than the \
         initial failed discovery ({t_fail:?}/op)"
    );
}

/// Regression gate for sharding: routing a warm hit through the 8-shard
/// registry (hash-mix + stripe pick + read-locked table) must stay within
/// 3× of the single-shard lookup. The two paths share all code except the
/// stripe pick, so a real regression here means the fast path started
/// taking a shard mutex or re-hashing.
fn assert_sharded_warm_hit_not_regressed() {
    let (s, t) = wrap_pair();
    let one = registry_with_shards(1);
    let eight = registry_with_shards(8);
    one.get_or_compile(&s, &t).unwrap();
    eight.get_or_compile(&s, &t).unwrap();
    let median = |f: &dyn Fn()| {
        let mut samples: Vec<std::time::Duration> = (0..5)
            .map(|_| {
                let t0 = std::time::Instant::now();
                f();
                t0.elapsed()
            })
            .collect();
        samples.sort();
        samples[2]
    };
    let t_one = median(&|| {
        for _ in 0..256 {
            std::hint::black_box(one.get_or_compile(&s, &t).unwrap());
        }
    });
    let t_eight = median(&|| {
        for _ in 0..256 {
            std::hint::black_box(eight.get_or_compile(&s, &t).unwrap());
        }
    });
    assert!(
        t_eight <= t_one * 3,
        "8-shard warm hit ({t_eight:?}/256 ops) regressed past 3x the \
         single-shard lookup ({t_one:?}/256 ops)"
    );
}

fn bench(c: &mut Criterion) {
    assert_warm_hit_beats_recompile();
    assert_negative_cache_absorbs_repeat_failures();
    assert_sharded_warm_hit_not_regressed();

    let smoke = std::env::var_os("XSE_SCALE_SMOKE").is_some();
    let (s, t) = wrap_pair();
    let mut g = c.benchmark_group("service_registry");
    g.sample_size(if smoke { 10 } else { 20 });

    let warm = registry();
    warm.get_or_compile(&s, &t).unwrap();
    g.bench_function("get_or_compile/warm", |b| {
        b.iter(|| warm.get_or_compile(&s, &t).unwrap().1.size())
    });

    let warm_one = registry_with_shards(1);
    warm_one.get_or_compile(&s, &t).unwrap();
    g.bench_function("get_or_compile/warm_1shard", |b| {
        b.iter(|| warm_one.get_or_compile(&s, &t).unwrap().1.size())
    });

    g.bench_function("get_or_compile/cold", |b| {
        b.iter(|| {
            warm.evict(&s, &t).unwrap();
            warm.get_or_compile(&s, &t).unwrap().1.size()
        })
    });

    let served = registry();
    let doc = "<r><a>hi</a><b><c>1</c><c>2</c></b></r>";
    let apply = Request::Apply {
        source_dtd: s.clone(),
        target_dtd: t.clone(),
        xml: doc.to_string(),
    };
    g.bench_function("handle_request/apply", |b| {
        b.iter(|| match handle_request(&served, &apply) {
            Response::Document { xml } => xml.len(),
            other => panic!("{other:?}"),
        })
    });

    let translate = Request::Translate {
        source_dtd: s.clone(),
        target_dtd: t.clone(),
        query: "b/c".to_string(),
    };
    g.bench_function("handle_request/translate", |b| {
        b.iter(|| match handle_request(&served, &translate) {
            Response::Translated { size, states, .. } => size + states,
            other => panic!("{other:?}"),
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
