//! FIG-T micro-slice: InstMap and inverse wall time vs. document size, plus
//! batch throughput of `apply_batch` at 1 vs N threads.
//!
//! `XSE_SCALE_SMOKE=1` shrinks sizes and sample counts so CI can execute the
//! whole bench as a fast regression gate for tree-layout changes; the
//! correctness assertions (batch output byte-identical to sequential, batch
//! at 1 thread not slower than sequential) run in both modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xse_bench::fixtures;
use xse_dtd::{GenConfig, InstanceGenerator};

/// Regression gate for the invert hot path's label-offset index: on a wide
/// node, `nth_child_with_tag_id` (binary search over the per-node tag
/// groups) must not lose to the linear `children_with_tag_id(..).nth(k)`
/// sibling scan it replaced. The margin is enormous on wide fan-outs
/// (`O(log c)` vs `O(c)`), so this asserts a plain ≤ with median-of-3
/// timing — if the index silently degrades to a scan, the gate trips.
fn assert_indexed_nav_beats_scan() {
    use xse_xmltree::XmlTree;
    let mut t = XmlTree::new("r");
    let a = t.intern_tag("a");
    let b = t.intern_tag("b");
    for i in 0..8_192 {
        t.add_element_tag(t.root(), if i % 2 == 0 { a } else { b });
    }
    t.freeze();
    let positions: Vec<usize> = (0..64).map(|i| i * 64).collect();
    // Correctness first: the index answers exactly what the scan answers.
    for &k in &positions {
        assert_eq!(
            t.nth_child_with_tag_id(t.root(), a, k),
            t.children_with_tag_id(t.root(), a).nth(k),
            "indexed nav diverges from scan at k = {k}"
        );
    }
    let _ = t.nth_child_with_tag_id(t.root(), a, 0); // index built, not timed
    let median = |f: &dyn Fn() -> usize| {
        let mut samples: Vec<std::time::Duration> = (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                std::hint::black_box(f());
                t0.elapsed()
            })
            .collect();
        samples.sort();
        samples[1]
    };
    let t_scan = median(&|| {
        positions
            .iter()
            .filter_map(|&k| t.children_with_tag_id(t.root(), a).nth(k))
            .count()
    });
    let t_index = median(&|| {
        positions
            .iter()
            .filter_map(|&k| t.nth_child_with_tag_id(t.root(), a, k))
            .count()
    });
    assert!(
        t_index <= t_scan,
        "label-offset index slower than sibling scan on a wide node: \
         {t_index:?} vs {t_scan:?}"
    );
}

fn bench(c: &mut Criterion) {
    assert_indexed_nav_beats_scan();
    let smoke = std::env::var_os("XSE_SCALE_SMOKE").is_some();
    let (s0, s) = fixtures::fig1_pair();
    let e = fixtures::fig1_embedding(&s0, &s);
    let mut g = c.benchmark_group("instance_map");
    g.sample_size(if smoke { 10 } else { 20 });
    let sizes: &[usize] = if smoke {
        &[200, 800]
    } else {
        &[500, 2_000, 8_000]
    };
    for &n in sizes {
        let gen = InstanceGenerator::new(
            &s0,
            GenConfig {
                max_nodes: n,
                star_mean: 3.0,
                ..GenConfig::default()
            },
        );
        // Smoke mode keeps runs short, so dodge seeds whose star rolls
        // produce a near-empty document; the full run keeps the historical
        // seeds (and hence the historical size labels in EXPERIMENTS.md).
        let t1 = if smoke {
            (0..32)
                .map(|s| gen.generate(n as u64 + s))
                .max_by_key(|t| t.len())
                .unwrap()
        } else {
            gen.generate(n as u64)
        };
        let out = e.apply(&t1).unwrap();
        g.throughput(Throughput::Elements(t1.len() as u64));
        g.bench_with_input(BenchmarkId::new("apply", t1.len()), &t1, |b, t1| {
            b.iter(|| e.apply(t1).unwrap().tree.len())
        });
        g.bench_with_input(
            BenchmarkId::new("invert", out.tree.len()),
            &out.tree,
            |b, t2| b.iter(|| e.invert(t2).unwrap().len()),
        );
    }
    g.finish();

    // Batch throughput: mid-sized documents, sequential vs scoped-thread
    // fan-out — the day-one measurement for the parallel path.
    let gen = InstanceGenerator::new(
        &s0,
        GenConfig {
            max_nodes: if smoke { 300 } else { 800 },
            star_mean: 3.0,
            ..GenConfig::default()
        },
    );
    let n_docs = if smoke { 8u64 } else { 64 };
    let docs: Vec<_> = (0..n_docs).map(|seed| gen.generate(seed)).collect();
    let total_nodes: u64 = docs.iter().map(|d| d.len() as u64).sum();
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    // 1-vs-N comparison, part one — correctness: every batch configuration
    // produces byte-identical serialization to the sequential loop.
    let sequential: Vec<String> = docs
        .iter()
        .map(|d| e.apply(d).unwrap().tree.to_xml())
        .collect();
    for threads in [1, 2, hw_threads] {
        let batch: Vec<String> = e
            .apply_batch_with(&docs, threads)
            .into_iter()
            .map(|r| r.unwrap().tree.to_xml())
            .collect();
        assert_eq!(batch, sequential, "apply_batch({threads}) diverges");
    }
    // Part two — no pessimization: batch at threads=1 must not lose to the
    // plain sequential loop (it degenerates to exactly that loop; the 1.5×
    // slack only absorbs scheduler noise). Median of 3 to de-flake.
    let time = |f: &dyn Fn() -> usize| {
        let mut samples: Vec<std::time::Duration> = (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                std::hint::black_box(f());
                t0.elapsed()
            })
            .collect();
        samples.sort();
        samples[1]
    };
    let t_seq = time(&|| docs.iter().map(|d| e.apply(d).unwrap().tree.len()).sum());
    let t_batch1 = time(&|| {
        e.apply_batch_with(&docs, 1)
            .into_iter()
            .map(|r| r.unwrap().tree.len())
            .sum()
    });
    assert!(
        t_batch1 <= t_seq * 3 / 2,
        "apply_batch(1) slower than sequential: {t_batch1:?} vs {t_seq:?}"
    );

    let mut g = c.benchmark_group("apply_batch");
    g.sample_size(10);
    g.throughput(Throughput::Elements(total_nodes));
    // BTreeSet dedups the thread counts (hw_threads may be 1 or 2).
    for threads in std::collections::BTreeSet::from([1usize, 2, hw_threads]) {
        g.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    e.apply_batch_with(&docs, threads)
                        .into_iter()
                        .map(|r| r.unwrap().tree.len())
                        .sum::<usize>()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
