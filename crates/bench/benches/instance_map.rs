//! FIG-T micro-slice: InstMap and inverse wall time vs. document size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xse_bench::fixtures;
use xse_dtd::{GenConfig, InstanceGenerator};

fn bench(c: &mut Criterion) {
    let (s0, s) = fixtures::fig1_pair();
    let e = fixtures::fig1_embedding(&s0, &s);
    let mut g = c.benchmark_group("instance_map");
    g.sample_size(20);
    for n in [500usize, 2_000, 8_000] {
        let gen = InstanceGenerator::new(
            &s0,
            GenConfig {
                max_nodes: n,
                star_mean: 3.0,
                ..GenConfig::default()
            },
        );
        let t1 = gen.generate(n as u64);
        let out = e.apply(&t1).unwrap();
        g.throughput(Throughput::Elements(t1.len() as u64));
        g.bench_with_input(BenchmarkId::new("apply", t1.len()), &t1, |b, t1| {
            b.iter(|| e.apply(t1).unwrap().tree.len())
        });
        g.bench_with_input(
            BenchmarkId::new("invert", out.tree.len()),
            &out.tree,
            |b, t2| b.iter(|| e.invert(t2).unwrap().len()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
