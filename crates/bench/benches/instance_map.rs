//! FIG-T micro-slice: InstMap and inverse wall time vs. document size, plus
//! batch throughput of `apply_batch` at 1 vs N threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xse_bench::fixtures;
use xse_dtd::{GenConfig, InstanceGenerator};

fn bench(c: &mut Criterion) {
    let (s0, s) = fixtures::fig1_pair();
    let e = fixtures::fig1_embedding(&s0, &s);
    let mut g = c.benchmark_group("instance_map");
    g.sample_size(20);
    for n in [500usize, 2_000, 8_000] {
        let gen = InstanceGenerator::new(
            &s0,
            GenConfig {
                max_nodes: n,
                star_mean: 3.0,
                ..GenConfig::default()
            },
        );
        let t1 = gen.generate(n as u64);
        let out = e.apply(&t1).unwrap();
        g.throughput(Throughput::Elements(t1.len() as u64));
        g.bench_with_input(BenchmarkId::new("apply", t1.len()), &t1, |b, t1| {
            b.iter(|| e.apply(t1).unwrap().tree.len())
        });
        g.bench_with_input(
            BenchmarkId::new("invert", out.tree.len()),
            &out.tree,
            |b, t2| b.iter(|| e.invert(t2).unwrap().len()),
        );
    }
    g.finish();

    // Batch throughput: 64 mid-sized documents, sequential vs scoped-thread
    // fan-out — the day-one measurement for the parallel path.
    let gen = InstanceGenerator::new(
        &s0,
        GenConfig {
            max_nodes: 800,
            star_mean: 3.0,
            ..GenConfig::default()
        },
    );
    let docs: Vec<_> = (0..64u64).map(|seed| gen.generate(seed)).collect();
    let total_nodes: u64 = docs.iter().map(|d| d.len() as u64).sum();
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut g = c.benchmark_group("apply_batch");
    g.sample_size(10);
    g.throughput(Throughput::Elements(total_nodes));
    // BTreeSet dedups the thread counts (hw_threads may be 1 or 2).
    for threads in std::collections::BTreeSet::from([1usize, 2, hw_threads]) {
        g.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    e.apply_batch_with(&docs, threads)
                        .into_iter()
                        .map(|r| r.unwrap().tree.len())
                        .sum::<usize>()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
