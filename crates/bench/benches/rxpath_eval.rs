//! Substrate microbench: XR evaluation (direct vs. ANFA) on a generated
//! school document.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xse_anfa::Anfa;
use xse_dtd::{GenConfig, InstanceGenerator};
use xse_rxpath::parse_query;
use xse_workloads::corpus;

fn bench(c: &mut Criterion) {
    let d = corpus::fig1_class();
    let gen = InstanceGenerator::new(
        &d,
        GenConfig {
            max_nodes: 5_000,
            star_mean: 3.0,
            ..GenConfig::default()
        },
    );
    let t = gen.generate(1);
    let queries = [
        ("path", "class/cno/text()"),
        ("qualified", "class[type/regular]/cno"),
        ("star", "class/(type/regular/prereq/class)*/cno"),
    ];
    let mut g = c.benchmark_group("rxpath_eval");
    for (name, q) in queries {
        let parsed = parse_query(q).unwrap();
        let anfa = Anfa::from_query(&parsed).unwrap();
        g.bench_with_input(BenchmarkId::new("direct", name), &parsed, |b, q| {
            b.iter(|| q.eval(&t).len())
        });
        g.bench_with_input(BenchmarkId::new("anfa", name), &anfa, |b, m| {
            b.iter(|| m.eval_root(&t).len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
