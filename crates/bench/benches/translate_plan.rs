//! Translation-plan micro-slice: warm plan-cache lookups vs. per-call
//! compilation, and table-driven plan evaluation vs. the interpreted ANFA
//! evaluator, on the Figure 1 embedding.
//!
//! `XSE_SCALE_SMOKE=1` shrinks sample counts so CI can run the whole bench
//! as a regression gate; the correctness assertions (warm lookup at least
//! 5× faster than a cold compile, plan eval no slower than direct eval)
//! run in both modes.

use criterion::{criterion_group, criterion_main, Criterion};
use xse_anfa::EvalScratch;
use xse_bench::fixtures;
use xse_dtd::{GenConfig, InstanceGenerator};
use xse_rxpath::parse_query;
use xse_xmltree::XmlTree;

const QUERY: &str = "class[cno/text() = 'CS331']/(type/regular/prereq/class)*";

fn median(f: &dyn Fn()) -> std::time::Duration {
    let mut samples: Vec<std::time::Duration> = (0..3)
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples[1]
}

/// Regression gate for the plan cache: translating an already-seen query
/// shape (canonical-key lookup + `Arc` clone) must be at least 5× faster
/// than compiling the translation from scratch. The real margin is orders
/// of magnitude; if the hit path ever re-runs `Tr` + pruning + table
/// construction, this trips long before any e2e latency gate does.
fn assert_warm_plan_beats_cold() {
    let (s0, s) = fixtures::fig1_pair();
    let e = fixtures::fig1_embedding(&s0, &s);
    let q = parse_query(QUERY).unwrap();
    e.translate(&q).unwrap(); // prime the cache
    let t_warm = median(&|| {
        for _ in 0..32 {
            std::hint::black_box(e.translate(&q).unwrap().size());
        }
    });
    let t_cold = median(&|| {
        for _ in 0..32 {
            std::hint::black_box(e.compile_translation(&q).unwrap().size());
        }
    });
    assert!(
        t_warm * 5 <= t_cold,
        "warm plan lookup ({t_warm:?}/32 ops) not 5x faster than \
         per-call translation ({t_cold:?}/32 ops)"
    );
}

/// The point of pre-compiling: evaluating the translated query through the
/// plan's transition tables must not be slower than interpreting the ANFA
/// directly on the same image.
fn assert_plan_eval_beats_direct(tr: &xse_core::TranslatePlan, image: &XmlTree) {
    let t_plan = median(&|| {
        for _ in 0..8 {
            std::hint::black_box(tr.eval(image).len());
        }
    });
    let t_direct = median(&|| {
        for _ in 0..8 {
            std::hint::black_box(tr.anfa.eval_root(image).len());
        }
    });
    assert!(
        t_plan <= t_direct,
        "plan eval ({t_plan:?}/8 ops) trails direct ANFA eval \
         ({t_direct:?}/8 ops)"
    );
}

fn bench(c: &mut Criterion) {
    assert_warm_plan_beats_cold();

    let (s0, s) = fixtures::fig1_pair();
    let e = fixtures::fig1_embedding(&s0, &s);
    let q = parse_query(QUERY).unwrap();
    let tr = e.translate(&q).unwrap();

    // A mid-sized image to evaluate against: generate a source instance
    // and push it through σd.
    let gen = InstanceGenerator::new(
        &s0,
        GenConfig {
            max_nodes: 400,
            ..GenConfig::default()
        },
    );
    let image = e.apply(&gen.generate(7)).unwrap().tree;
    assert_plan_eval_beats_direct(&tr, &image);

    let smoke = std::env::var_os("XSE_SCALE_SMOKE").is_some();
    let mut g = c.benchmark_group("translate_plan");
    g.sample_size(if smoke { 10 } else { 20 });

    g.bench_function("translate/warm", |b| {
        b.iter(|| e.translate(&q).unwrap().size())
    });
    g.bench_function("translate/cold", |b| {
        b.iter(|| e.compile_translation(&q).unwrap().size())
    });

    g.bench_function("eval/plan", |b| b.iter(|| tr.eval(&image).len()));
    let mut scratch = EvalScratch::new();
    let mut out = Vec::new();
    g.bench_function("eval/plan_scratch", |b| {
        b.iter(|| {
            tr.eval_with(&image, &mut scratch, &mut out);
            out.len()
        })
    });
    g.bench_function("eval/direct", |b| {
        b.iter(|| tr.anfa.eval_root(&image).len())
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
