//! Regenerate every table and figure of EXPERIMENTS.md.
//!
//! Usage: `report [all|exp-a|exp-b|exp-c|exp-p|tab-1|tab-2|tab-3|tab-4|fig-t|exp-e|abl-1|fig1]`

use xse_bench::experiments as x;
use xse_bench::pct;

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = what == "all";
    if all || what == "fig1" {
        fig1();
    }
    if all || what == "exp-a" {
        exp_a();
    }
    if all || what == "exp-b" {
        exp_b();
    }
    if all || what == "exp-c" {
        exp_c();
    }
    if all || what == "exp-p" {
        exp_p();
    }
    if all || what == "tab-1" {
        tab1();
    }
    if all || what == "tab-2" {
        tab2();
    }
    if all || what == "tab-3" {
        tab3();
    }
    if all || what == "tab-4" {
        tab4();
    }
    if all || what == "fig-t" {
        fig_t();
    }
    if all || what == "exp-e" {
        exp_e();
    }
    if all || what == "abl-1" {
        abl1();
    }
}

fn fig1() {
    println!("## FIG-1: the paper's Figure 1 / Example 4.2 embedding\n");
    let (s0, s) = xse_bench::fixtures::fig1_pair();
    let e = xse_bench::fixtures::fig1_embedding(&s0, &s);
    println!("{}", e.describe());
}

fn exp_a() {
    println!("## EXP-A: success rate vs. att ambiguity (structural noise 0.3, accuracy 0.9)\n");
    println!("| ambiguity | Random found | Random λ-correct | QualityOrdered found | QO λ-correct | IndepSet found | IS λ-correct |");
    println!("|---|---|---|---|---|---|---|");
    for r in x::exp_a(6) {
        println!(
            "| {:.0} | {:.0}% | {:.0}% | {:.0}% | {:.0}% | {:.0}% | {:.0}% |",
            r.x, r.found[0], r.correct[0], r.found[1], r.correct[1], r.found[2], r.correct[2]
        );
    }
    println!();
}

fn exp_b() {
    println!("## EXP-B: success rate vs. structural noise level (ambiguity 2, accuracy 1.0)\n");
    println!("| noise | Random found | Random λ-correct | QualityOrdered found | QO λ-correct | IndepSet found | IS λ-correct |");
    println!("|---|---|---|---|---|---|---|");
    for r in x::exp_b(6) {
        println!(
            "| {:.1} | {:.0}% | {:.0}% | {:.0}% | {:.0}% | {:.0}% | {:.0}% |",
            r.x, r.found[0], r.correct[0], r.found[1], r.correct[1], r.found[2], r.correct[2]
        );
    }
    println!();
}

fn exp_c() {
    println!("## EXP-C: discovery runtime vs. schema size (noised copy, exact att)\n");
    println!("| |S1| types | Random ms | QualityOrdered ms | IndepSet ms | all found |");
    println!("|---|---|---|---|---|");
    for r in x::exp_c(&[10, 25, 50, 100, 200, 400]) {
        println!(
            "| {} | {:.1} | {:.1} | {:.1} | {} |",
            r.size,
            r.millis[0],
            r.millis[1],
            r.millis[2],
            r.found.iter().all(|&b| b)
        );
    }
    println!();
}

fn exp_p() {
    println!(
        "## EXP-P: parallel restart engine (random schemas, noise 0.3, ambiguity 4, 48 restarts)\n"
    );
    let threads = xse_bench::experiments::thread_sweep();
    println!("| |S1| types | threads | ms | found | attempts | speedup vs 1 |");
    println!("|---|---|---|---|---|---|");
    for r in x::exp_p(&[50, 100, 200, 400], &threads) {
        println!(
            "| {} | {} | {:.1} | {} | {} | {:.2}× |",
            r.size, r.threads, r.millis, r.found, r.attempts, r.speedup
        );
    }
    println!();
}

fn tab1() {
    println!("## TAB-1: corpus discovery (structural noise 0.4, exact att, Random strategy)\n");
    println!("| schema | types | edges | recursive | found | λ-correct | |σ| | ms | attempts |");
    println!("|---|---|---|---|---|---|---|---|---|");
    for r in x::tab1() {
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {:.1} | {} |",
            r.name,
            r.types,
            r.edges,
            r.recursive,
            r.found,
            r.lambda_correct,
            r.sigma_size,
            r.millis,
            r.attempts
        );
    }
    println!();
}

fn tab2() {
    println!("## TAB-2: query translation (Theorem 4.3b bound |Q|·|σ|·|S1|)\n");
    let rows = x::tab2(8);
    println!("| |Q| | |Tr(Q)| | bound | within | µs |");
    println!("|---|---|---|---|---|");
    let mut within = 0;
    for r in &rows {
        println!(
            "| {} | {} | {} | {} | {:.0} |",
            r.q_size,
            r.tr_size,
            r.bound,
            r.tr_size <= r.bound,
            r.micros
        );
        within += usize::from(r.tr_size <= r.bound);
    }
    println!("\nwithin bound: {}\n", pct(within, rows.len()));
}

fn tab3() {
    println!("## TAB-3: information preservation (randomized instances × queries)\n");
    println!("| embedding | instances | type-safe | injective | roundtrip | q-checks | q-preserving | bound ok |");
    println!("|---|---|---|---|---|---|---|---|");
    for r in x::tab3(10, 12) {
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            r.name,
            r.instances,
            pct(r.type_safe, r.instances),
            pct(r.injective, r.instances),
            pct(r.roundtrip, r.instances),
            r.queries,
            pct(r.query_preserving, r.queries),
            pct(r.bound_ok, r.queries),
        );
    }
    println!();
}

fn tab4() {
    println!("## TAB-4: XSLT coding of σd / σd⁻¹ vs. direct algorithms\n");
    let r = x::tab4(20);
    println!("| embedding | fwd rules | inv rules | trials | σd ≡ XSLT | XSLT roundtrip |");
    println!("|---|---|---|---|---|---|");
    println!(
        "| {} | {} | {} | {} | {} | {} |",
        r.name,
        r.rules_fwd,
        r.rules_inv,
        r.trials,
        pct(r.fwd_equal, r.trials),
        pct(r.roundtrip_equal, r.trials)
    );
    println!();
}

fn fig_t() {
    println!("## FIG-T: instance mapping scaling (Figure 1 embedding)\n");
    println!("| |T| nodes | |σd(T)| nodes | apply ms | invert ms | XSLT fwd ms |");
    println!("|---|---|---|---|---|");
    for r in x::fig_t(&[500, 2_000, 8_000, 32_000]) {
        println!(
            "| {} | {} | {:.2} | {:.2} | {:.2} |",
            r.src_nodes, r.tgt_nodes, r.apply_ms, r.invert_ms, r.xslt_fwd_ms
        );
    }
    println!();
}

fn exp_e() {
    println!("## EXP-E: Theorem 5.1 reduction (3SAT ⤳ Schema-Embedding)\n");
    println!("| formula | satisfiable | embedding found | agree |");
    println!("|---|---|---|---|");
    for r in x::exp_e() {
        println!(
            "| {} | {} | {} | {} |",
            r.formula,
            r.satisfiable,
            r.embedding_found,
            r.satisfiable == r.embedding_found
        );
    }
    println!();
}

fn abl1() {
    println!("## ABL-1: prefix-free search ablations (corpus, noise 0.4, exact att)\n");
    println!("| configuration | solved | total | ms |");
    println!("|---|---|---|---|");
    for r in x::abl1() {
        println!(
            "| {} | {} | {} | {:.0} |",
            r.config, r.solved, r.total, r.millis
        );
    }
    println!();
}
