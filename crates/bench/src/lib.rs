//! Experiment implementations shared by the `report` binary (which prints
//! every table and figure of EXPERIMENTS.md) and the Criterion benches.

pub mod experiments;
pub mod fixtures;

/// Format a fraction as a percentage string.
pub fn pct(hits: usize, total: usize) -> String {
    if total == 0 {
        "n/a".to_string()
    } else {
        format!("{:.0}%", 100.0 * hits as f64 / total as f64)
    }
}
