//! Shared fixtures: the paper's Figure 1 embedding (Example 4.2) built
//! explicitly, for the experiments that need a fixed hand-written embedding
//! rather than a discovered one.

use xse_core::{CompiledEmbedding, EmbeddingBuilder};
use xse_dtd::Dtd;
use xse_workloads::corpus;

/// The Figure 1 source (class DTD `S0`) and target (school DTD `S`).
pub fn fig1_pair() -> (Dtd, Dtd) {
    (corpus::fig1_class(), corpus::fig1_school())
}

/// The Example 4.2 embedding `σ1 : S0 → S` (owned — the DTDs are cloned
/// into the compiled engine, so the returned value outlives its inputs).
pub fn fig1_embedding(s0: &Dtd, s: &Dtd) -> CompiledEmbedding {
    EmbeddingBuilder::new(s0.clone(), s.clone())
        .map_type("db", "school")
        .map_type("class", "course")
        .map_type("type", "category")
        .edge("db", "class", "courses/current/course")
        .edge("class", "cno", "basic/cno")
        .edge(
            "class",
            "title",
            "basic/class2/semester[position() = 1]/title",
        )
        .edge("class", "type", "category")
        .edge("type", "regular", "mandatory/regular")
        .edge("type", "project", "advanced/project")
        .edge("regular", "prereq", "required/prereq")
        .edge("prereq", "class", "course")
        .text_edge("cno", "text()")
        .text_edge("title", "text()")
        .text_edge("project", "text()")
        .build()
        .expect("Example 4.2 is valid")
}

/// The Example 4.9 embedding `σ2 : S1 → S` (student DTD into the school).
pub fn fig1_student_embedding(s1: &Dtd, s: &Dtd) -> CompiledEmbedding {
    EmbeddingBuilder::new(s1.clone(), s.clone())
        .map_type("sdb", "school")
        .map_type("cno", "cno2")
        .edge("sdb", "student", "students/student")
        .edge("student", "ssn", "ssn")
        .edge("student", "name", "name")
        .edge("student", "taking", "taking")
        .edge("taking", "cno", "cno2")
        .text_edge("ssn", "text()")
        .text_edge("name", "text()")
        .text_edge("cno", "text()")
        .build()
        .expect("Example 4.9 is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_fig1_embeddings_validate() {
        let (s0, s) = fig1_pair();
        let e1 = fig1_embedding(&s0, &s);
        assert!(e1.size() > 10);
        let s1 = corpus::fig1_student();
        let e2 = fig1_student_embedding(&s1, &s);
        assert!(e2.size() > 5);
    }
}
