//! Shared fixtures: the paper's Figure 1 embedding (Example 4.2) built
//! explicitly, for the experiments that need a fixed hand-written embedding
//! rather than a discovered one.

use xse_core::{Embedding, PathMapping, TypeMapping};
use xse_dtd::Dtd;
use xse_workloads::corpus;

/// The Figure 1 source (class DTD `S0`) and target (school DTD `S`).
pub fn fig1_pair() -> (Dtd, Dtd) {
    (corpus::fig1_class(), corpus::fig1_school())
}

/// The Example 4.2 embedding `σ1 : S0 → S`.
pub fn fig1_embedding<'a>(s0: &'a Dtd, s: &'a Dtd) -> Embedding<'a> {
    let lambda = TypeMapping::by_name_pairs(
        s0,
        s,
        &[("db", "school"), ("class", "course"), ("type", "category")],
    )
    .expect("Figure 1 names");
    let mut paths = PathMapping::new(s0);
    paths
        .edge(s0, "db", "class", "courses/current/course")
        .edge(s0, "class", "cno", "basic/cno")
        .edge(
            s0,
            "class",
            "title",
            "basic/class2/semester[position() = 1]/title",
        )
        .edge(s0, "class", "type", "category")
        .edge(s0, "type", "regular", "mandatory/regular")
        .edge(s0, "type", "project", "advanced/project")
        .edge(s0, "regular", "prereq", "required/prereq")
        .edge(s0, "prereq", "class", "course")
        .text_edge(s0, "cno", "text()")
        .text_edge(s0, "title", "text()")
        .text_edge(s0, "project", "text()");
    Embedding::new(s0, s, lambda, paths).expect("Example 4.2 is valid")
}

/// The Example 4.9 embedding `σ2 : S1 → S` (student DTD into the school).
pub fn fig1_student_embedding<'a>(s1: &'a Dtd, s: &'a Dtd) -> Embedding<'a> {
    let lambda = TypeMapping::by_name_pairs(
        s1,
        s,
        &[("sdb", "school"), ("taking", "taking"), ("cno", "cno2")],
    )
    .expect("Figure 1 names");
    let mut paths = PathMapping::new(s1);
    paths
        .edge(s1, "sdb", "student", "students/student")
        .edge(s1, "student", "ssn", "ssn")
        .edge(s1, "student", "name", "name")
        .edge(s1, "student", "taking", "taking")
        .edge(s1, "taking", "cno", "cno2")
        .text_edge(s1, "ssn", "text()")
        .text_edge(s1, "name", "text()")
        .text_edge(s1, "cno", "text()");
    Embedding::new(s1, s, lambda, paths).expect("Example 4.9 is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_fig1_embeddings_validate() {
        let (s0, s) = fig1_pair();
        let e1 = fig1_embedding(&s0, &s);
        assert!(e1.size() > 10);
        let s1 = corpus::fig1_student();
        let e2 = fig1_student_embedding(&s1, &s);
        assert!(e2.size() > 5);
    }
}
