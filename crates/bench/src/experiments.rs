//! The experiment suite (see DESIGN.md §5 and EXPERIMENTS.md).
//!
//! Every function returns printable rows so the `report` binary and the
//! Criterion benches share one implementation.

use std::time::Instant;

use xse_core::{preserve, SimilarityMatrix};
use xse_discovery::{find_embedding, find_embedding_with_stats, DiscoveryConfig, Strategy};
use xse_dtd::{Dtd, GenConfig, InstanceGenerator, SchemaGraph};
use xse_workloads::noise::{lambda_matches_truth, noised_copy, NoiseConfig};
use xse_workloads::querygen::{random_queries, QueryConfig};
use xse_workloads::simgen::{ambiguous, exact, SimConfig};
use xse_workloads::{corpus, scale};
use xse_xslt::{apply_stylesheet, generate_forward, generate_inverse};

/// One row of EXP-A / EXP-B: a success-rate measurement.
pub struct RateRow {
    /// The sweep coordinate (ambiguity or noise level).
    pub x: f64,
    /// Per strategy: (embedding found, λ equals ground truth), in
    /// `[Random, QualityOrdered, IndependentSet]` order, as percentages.
    pub found: [f64; 3],
    /// λ-accuracy percentage per strategy.
    pub correct: [f64; 3],
}

/// The strategies in report order.
pub const STRATEGIES: [Strategy; 3] = [
    Strategy::Random,
    Strategy::QualityOrdered,
    Strategy::IndependentSet,
];

/// Thread counts for the parallel-engine sweeps (EXP-P and the
/// `discovery_scale` bench): always 1 (sequential path) and 2 (parallel
/// path, even on a single-core box), then 4 and the machine's available
/// parallelism, deduplicated.
pub fn thread_sweep() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut t = vec![1, 2, 4, max];
    t.sort_unstable();
    t.dedup();
    t
}

/// EXP-A: success vs. similarity-matrix ambiguity (spurious candidates per
/// source type), at fixed structural noise.
pub fn exp_a(trials: usize) -> Vec<RateRow> {
    let sweep = [0.0, 1.0, 2.0, 4.0, 6.0, 8.0];
    let schemas = [
        corpus::fig1_class(),
        corpus::news_like(),
        corpus::orders_like(),
    ];
    sweep
        .iter()
        .map(|&ambiguity| {
            let mut found = [0usize; 3];
            let mut correct = [0usize; 3];
            let mut total = 0usize;
            for (si, src) in schemas.iter().enumerate() {
                for trial in 0..trials {
                    let seed = (si * 1000 + trial) as u64;
                    let copy = noised_copy(src, NoiseConfig::level(0.3), seed);
                    let att = ambiguous(
                        src,
                        &copy,
                        SimConfig {
                            accuracy: 0.9,
                            ambiguity,
                        },
                        seed ^ 0xABCD,
                    );
                    total += 1;
                    for (k, strategy) in STRATEGIES.into_iter().enumerate() {
                        let cfg = DiscoveryConfig {
                            strategy,
                            seed,
                            ..DiscoveryConfig::default()
                        };
                        if let Some(e) = find_embedding(src, &copy.target, &att, &cfg) {
                            found[k] += 1;
                            if lambda_matches_truth(src, &e, &copy) {
                                correct[k] += 1;
                            }
                        }
                    }
                }
            }
            RateRow {
                x: ambiguity,
                found: found.map(|f| 100.0 * f as f64 / total as f64),
                correct: correct.map(|c| 100.0 * c as f64 / total as f64),
            }
        })
        .collect()
}

/// EXP-B: success vs. structural noise level, at mild `att` ambiguity.
pub fn exp_b(trials: usize) -> Vec<RateRow> {
    let sweep = [0.0, 0.2, 0.4, 0.6, 0.8];
    let schemas = [
        corpus::dblp_like(),
        corpus::mondial_like(),
        corpus::genealogy_like(),
    ];
    sweep
        .iter()
        .map(|&level| {
            let mut found = [0usize; 3];
            let mut correct = [0usize; 3];
            let mut total = 0usize;
            for (si, src) in schemas.iter().enumerate() {
                for trial in 0..trials {
                    let seed = (si * 1000 + trial) as u64;
                    let copy = noised_copy(src, NoiseConfig::level(level), seed);
                    let att = ambiguous(
                        src,
                        &copy,
                        SimConfig {
                            accuracy: 1.0,
                            ambiguity: 2.0,
                        },
                        seed ^ 0xBEEF,
                    );
                    total += 1;
                    for (k, strategy) in STRATEGIES.into_iter().enumerate() {
                        let cfg = DiscoveryConfig {
                            strategy,
                            seed,
                            ..DiscoveryConfig::default()
                        };
                        if let Some(e) = find_embedding(src, &copy.target, &att, &cfg) {
                            found[k] += 1;
                            if lambda_matches_truth(src, &e, &copy) {
                                correct[k] += 1;
                            }
                        }
                    }
                }
            }
            RateRow {
                x: level,
                found: found.map(|f| 100.0 * f as f64 / total as f64),
                correct: correct.map(|c| 100.0 * c as f64 / total as f64),
            }
        })
        .collect()
}

/// One row of EXP-C: runtime vs. schema size.
pub struct ScaleRow {
    /// Source schema size (element types).
    pub size: usize,
    /// Discovery wall time (ms) per strategy.
    pub millis: [f64; 3],
    /// Whether each strategy found an embedding.
    pub found: [bool; 3],
}

/// EXP-C: discovery runtime vs. schema size on noised self-copies with
/// exact ground-truth `att` (the paper's "seconds or minutes" regime).
pub fn exp_c(sizes: &[usize]) -> Vec<ScaleRow> {
    sizes
        .iter()
        .map(|&n| {
            let src = scale::random_schema(n, n as u64);
            let copy = noised_copy(&src, NoiseConfig::level(0.25), 17);
            let att = exact(&src, &copy);
            let mut millis = [0.0; 3];
            let mut found = [false; 3];
            for (k, strategy) in STRATEGIES.into_iter().enumerate() {
                let cfg = DiscoveryConfig {
                    strategy,
                    restarts: 8,
                    ..DiscoveryConfig::default()
                };
                let t0 = Instant::now();
                let e = find_embedding(&src, &copy.target, &att, &cfg);
                millis[k] = t0.elapsed().as_secs_f64() * 1000.0;
                found[k] = e.is_some();
            }
            ScaleRow {
                size: n,
                millis,
                found,
            }
        })
        .collect()
}

/// One row of EXP-P: the parallel restart engine at one `(size, threads)`
/// coordinate.
pub struct ParallelRow {
    /// Source schema size (element types).
    pub size: usize,
    /// Worker threads (`DiscoveryConfig::threads`).
    pub threads: usize,
    /// Discovery wall time (ms).
    pub millis: f64,
    /// Whether an embedding was found.
    pub found: bool,
    /// Restart attempts started across all workers.
    pub attempts: usize,
    /// `threads = 1` wall time at the same size divided by this row's.
    pub speedup: f64,
}

/// EXP-P: discovery wall-clock vs. worker threads on large random schemas
/// with an ambiguous `att`, so several restarts fail before one succeeds —
/// the regime the parallel restart engine targets. The returned embedding
/// is asserted byte-identical across every thread count (the engine's
/// deterministic winner-selection rule).
pub fn exp_p(sizes: &[usize], thread_counts: &[usize]) -> Vec<ParallelRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        let src = scale::random_schema(n, n as u64);
        let copy = noised_copy(&src, NoiseConfig::level(0.3), 17);
        // Accurate but ambiguous att: four spurious mid-score candidates
        // per type. The truth stays top-ranked, yet enough early attempts
        // wander off that the winner lands at attempt 2–14 across the
        // sweep — restarts genuinely matter.
        let att = ambiguous(
            &src,
            &copy,
            SimConfig {
                accuracy: 1.0,
                ambiguity: 4.0,
            },
            n as u64 ^ 0x5EED,
        );
        let mut base_ms = 0.0;
        let mut base_describe: Option<Option<String>> = None;
        for &threads in thread_counts {
            let cfg = DiscoveryConfig {
                restarts: 48,
                threads,
                ..DiscoveryConfig::default()
            };
            let t0 = Instant::now();
            let (e, stats) = find_embedding_with_stats(&src, &copy.target, &att, &cfg);
            let millis = t0.elapsed().as_secs_f64() * 1000.0;
            let describe = e.as_ref().map(|e| e.describe());
            match &base_describe {
                None => {
                    base_ms = millis;
                    base_describe = Some(describe.clone());
                }
                Some(b) => assert_eq!(
                    *b, describe,
                    "size {n}: threads={threads} diverged from threads={}",
                    thread_counts[0]
                ),
            }
            rows.push(ParallelRow {
                size: n,
                threads,
                millis,
                found: e.is_some(),
                attempts: stats.attempts,
                speedup: base_ms / millis,
            });
        }
    }
    rows
}

/// One row of TAB-1: per-schema discovery on a noised copy.
pub struct CorpusRow {
    pub name: &'static str,
    pub types: usize,
    pub edges: usize,
    pub recursive: bool,
    pub found: bool,
    pub lambda_correct: bool,
    pub sigma_size: usize,
    pub millis: f64,
    pub attempts: usize,
}

/// TAB-1: the corpus at structural noise 0.4, exact att.
pub fn tab1() -> Vec<CorpusRow> {
    corpus::corpus()
        .into_iter()
        .map(|(name, src)| {
            let copy = noised_copy(&src, NoiseConfig::level(0.4), 23);
            let att = exact(&src, &copy);
            let cfg = DiscoveryConfig::default();
            let t0 = Instant::now();
            let (e, stats) = find_embedding_with_stats(&src, &copy.target, &att, &cfg);
            let millis = t0.elapsed().as_secs_f64() * 1000.0;
            let graph = SchemaGraph::new(&src);
            CorpusRow {
                name,
                types: src.type_count(),
                edges: graph.edge_count(),
                recursive: src.is_recursive(),
                found: e.is_some(),
                lambda_correct: e
                    .as_ref()
                    .is_some_and(|e| lambda_matches_truth(&src, e, &copy)),
                sigma_size: e.as_ref().map_or(0, |e| e.size()),
                millis,
                attempts: stats.attempts,
            }
        })
        .collect()
}

/// One row of TAB-2: translation size/time vs. query size.
pub struct TranslateRow {
    pub query: String,
    pub q_size: usize,
    pub tr_size: usize,
    pub bound: usize,
    pub micros: f64,
}

/// TAB-2: Theorem 4.3(b) bounds on the Figure 1 embedding with random
/// queries of growing depth.
pub fn tab2(count: usize) -> Vec<TranslateRow> {
    let (s0, s) = crate::fixtures::fig1_pair();
    let e = crate::fixtures::fig1_embedding(&s0, &s);
    let mut rows = Vec::new();
    for depth in [2, 4, 6, 8] {
        let queries = random_queries(
            &s0,
            QueryConfig {
                max_depth: depth,
                ..QueryConfig::default()
            },
            depth as u64,
            count,
        );
        for q in queries {
            let t0 = Instant::now();
            let Ok(tr) = e.translate(&q) else { continue };
            let micros = t0.elapsed().as_secs_f64() * 1e6;
            rows.push(TranslateRow {
                query: q.to_string(),
                q_size: q.size(),
                tr_size: tr.size(),
                bound: q.size() * e.size() * s0.type_count(),
                micros,
            });
        }
    }
    rows
}

/// One row of FIG-T: instance mapping scaling.
pub struct InstanceRow {
    pub src_nodes: usize,
    pub tgt_nodes: usize,
    pub apply_ms: f64,
    pub invert_ms: f64,
    pub xslt_fwd_ms: f64,
}

/// FIG-T: `InstMap` and `σd⁻¹` wall time vs. document size.
pub fn fig_t(sizes: &[usize]) -> Vec<InstanceRow> {
    let (s0, s) = crate::fixtures::fig1_pair();
    let e = crate::fixtures::fig1_embedding(&s0, &s);
    let fwd = generate_forward(&e);
    sizes
        .iter()
        .map(|&n| {
            let gen = InstanceGenerator::new(
                &s0,
                GenConfig {
                    max_nodes: n,
                    star_mean: 4.0,
                    ..GenConfig::default()
                },
            );
            // Geometric star counts occasionally roll tiny documents; take
            // the first seed that fills at least half the budget.
            let t1 = (0..64u64)
                .map(|s| gen.generate(n as u64 + s))
                .find(|t| t.len() >= n / 2)
                .expect("some seed fills the budget");
            let t0 = Instant::now();
            let out = e.apply(&t1).expect("type safe");
            let apply_ms = t0.elapsed().as_secs_f64() * 1000.0;
            let t0 = Instant::now();
            let back = e.invert(&out.tree).expect("invertible");
            let invert_ms = t0.elapsed().as_secs_f64() * 1000.0;
            assert!(back.equals(&t1), "roundtrip failed at size {n}");
            let t0 = Instant::now();
            let via = apply_stylesheet(&fwd, &t1, None).expect("stylesheet");
            let xslt_fwd_ms = t0.elapsed().as_secs_f64() * 1000.0;
            assert!(via.equals(&out.tree));
            InstanceRow {
                src_nodes: t1.len(),
                tgt_nodes: out.tree.len(),
                apply_ms,
                invert_ms,
                xslt_fwd_ms,
            }
        })
        .collect()
}

/// TAB-3: preservation guarantees over randomized instances and queries.
pub struct PreserveRow {
    pub name: &'static str,
    pub instances: usize,
    pub queries: usize,
    pub type_safe: usize,
    pub injective: usize,
    pub roundtrip: usize,
    pub query_preserving: usize,
    pub bound_ok: usize,
}

/// TAB-3 on the Figure 1 embedding plus discovered corpus embeddings.
pub fn tab3(instances: usize, queries_per: usize) -> Vec<PreserveRow> {
    let mut rows = Vec::new();
    let (s0, s) = crate::fixtures::fig1_pair();
    let e = crate::fixtures::fig1_embedding(&s0, &s);
    rows.push(preserve_row(
        "fig1-class->school",
        &s0,
        &e,
        instances,
        queries_per,
    ));

    for (name, src) in [
        ("dblp->noised", corpus::dblp_like()),
        ("news->noised", corpus::news_like()),
    ] {
        // The compiled embedding is owned, so the schemas can stay on the
        // stack (the old lifetime-bound API needed Box::leak here).
        let copy = noised_copy(&src, NoiseConfig::level(0.4), 31);
        let att = exact(&src, &copy);
        if let Some(e) = find_embedding(&src, &copy.target, &att, &DiscoveryConfig::default()) {
            rows.push(preserve_row(name, &src, &e, instances, queries_per));
        }
    }
    rows
}

fn preserve_row(
    name: &'static str,
    src: &Dtd,
    e: &xse_core::CompiledEmbedding,
    instances: usize,
    queries_per: usize,
) -> PreserveRow {
    let gen = InstanceGenerator::new(
        src,
        GenConfig {
            max_nodes: 400,
            ..GenConfig::default()
        },
    );
    let queries = random_queries(src, QueryConfig::default(), 5, queries_per);
    let mut row = PreserveRow {
        name,
        instances,
        queries: queries.len() * instances,
        type_safe: 0,
        injective: 0,
        roundtrip: 0,
        query_preserving: 0,
        bound_ok: 0,
    };
    for seed in 0..instances {
        let t1 = gen.generate(seed as u64);
        row.type_safe += usize::from(preserve::check_type_safety(e, &t1).is_ok());
        row.injective += usize::from(preserve::check_injectivity(e, &t1).is_ok());
        row.roundtrip += usize::from(preserve::check_roundtrip(e, &t1).is_ok());
        for q in &queries {
            row.query_preserving +=
                usize::from(preserve::check_query_preservation(e, &t1, q).is_ok());
            row.bound_ok += usize::from(preserve::check_translation_bound(e, q).is_ok());
        }
    }
    row
}

/// TAB-4: XSLT stylesheets vs. the direct algorithms.
pub struct XsltRow {
    pub name: &'static str,
    pub rules_fwd: usize,
    pub rules_inv: usize,
    pub trials: usize,
    pub fwd_equal: usize,
    pub roundtrip_equal: usize,
}

/// TAB-4 over the Figure 1 embedding.
pub fn tab4(trials: usize) -> XsltRow {
    let (s0, s) = crate::fixtures::fig1_pair();
    let e = crate::fixtures::fig1_embedding(&s0, &s);
    let fwd = generate_forward(&e);
    let inv = generate_inverse(&e);
    let gen = InstanceGenerator::new(
        &s0,
        GenConfig {
            max_nodes: 300,
            ..GenConfig::default()
        },
    );
    let mut row = XsltRow {
        name: "fig1-class->school",
        rules_fwd: fwd.len(),
        rules_inv: inv.len(),
        trials,
        fwd_equal: 0,
        roundtrip_equal: 0,
    };
    for seed in 0..trials {
        let t1 = gen.generate(seed as u64);
        let direct = e.apply(&t1).unwrap().tree;
        let via = apply_stylesheet(&fwd, &t1, None).unwrap();
        row.fwd_equal += usize::from(direct.equals(&via));
        let back = apply_stylesheet(&inv, &via, None).unwrap();
        row.roundtrip_equal += usize::from(back.equals(&t1));
    }
    row
}

/// EXP-E: the Theorem 5.1 reduction, satisfiable vs. not.
pub struct SatRow {
    pub formula: String,
    pub satisfiable: bool,
    pub embedding_found: bool,
}

/// EXP-E over a few fixed tiny formulas.
pub fn exp_e() -> Vec<SatRow> {
    use xse_discovery::sat::{Lit, Sat};
    let lit = |var, positive| Lit { var, positive };
    let cases: Vec<(&str, Sat)> = vec![
        (
            "(x1 ∨ x2) ∧ (¬x1 ∨ x2)",
            Sat {
                vars: 2,
                clauses: vec![
                    vec![lit(0, true), lit(1, true)],
                    vec![lit(0, false), lit(1, true)],
                ],
            },
        ),
        (
            "x1 ∧ ¬x1",
            Sat {
                vars: 1,
                clauses: vec![vec![lit(0, true)], vec![lit(0, false)]],
            },
        ),
        (
            "(x1 ∨ ¬x2) ∧ (¬x1 ∨ x2) ∧ (x1 ∨ x2)",
            Sat {
                vars: 2,
                clauses: vec![
                    vec![lit(0, true), lit(1, false)],
                    vec![lit(0, false), lit(1, true)],
                    vec![lit(0, true), lit(1, true)],
                ],
            },
        ),
    ];
    cases
        .into_iter()
        .map(|(formula, sat)| {
            let s1 = xse_discovery::sat::source_dtd(&sat);
            let s2 = xse_discovery::sat::target_dtd(&sat);
            // The Theorem 5.1 proof forces λ(Ci)=Ci, λ(Z)=Z, λ(W)=W and
            // λ(Ys) ∈ {Ts, Fs} in any valid embedding; encoding exactly
            // those candidates in att preserves the iff while keeping the
            // heuristic search tractable (the free Ys choices still carry
            // the truth assignment).
            let mut att = SimilarityMatrix::zero(s1.type_count(), s2.type_count());
            for a in s1.types() {
                let name = s1.name(a).to_string();
                if name.starts_with('Y') {
                    for b in s2.types() {
                        if s2.name(b).starts_with('T') || s2.name(b).starts_with('F') {
                            att.set(a, b, 1.0);
                        }
                    }
                } else if let Some(b) = s2.type_id(&name) {
                    att.set(a, b, 1.0);
                }
            }
            let cfg = DiscoveryConfig {
                restarts: 400,
                max_combos: 256,
                ..DiscoveryConfig::default()
            };
            SatRow {
                formula: formula.to_string(),
                satisfiable: sat.satisfiable(),
                embedding_found: find_embedding(&s1, &s2, &att, &cfg).is_some(),
            }
        })
        .collect()
}

/// ABL-1: prefix-free search with and without reachability pruning, and
/// with and without the star-bump refinement.
pub struct AblationRow {
    pub config: &'static str,
    pub solved: usize,
    pub total: usize,
    pub millis: f64,
}

/// ABL-1 instances: large noised random schemas (pruning pressure) plus a
/// schema whose two fixed children share one target star (bump pressure).
fn abl1_cases() -> Vec<(Dtd, Dtd, SimilarityMatrix)> {
    let mut cases = Vec::new();
    for n in [80usize, 160] {
        let src = scale::random_schema(n, n as u64);
        let copy = noised_copy(&src, NoiseConfig::level(0.5), 29);
        let att = exact(&src, &copy);
        cases.push((src, copy.target, att));
    }
    // Star-sharing pair: r → a, b must land in positions 1 and 2 of the
    // target's single repetition — unsolvable without the star bump.
    let src = Dtd::builder("r")
        .concat("r", &["a", "b"])
        .str_type("a")
        .str_type("b")
        .build()
        .unwrap();
    let tgt = Dtd::builder("r")
        .star("r", "slot")
        .concat("slot", &["v"])
        .str_type("v")
        .build()
        .unwrap();
    let att = SimilarityMatrix::permissive(&src, &tgt);
    cases.push((src, tgt, att));
    cases
}

/// ABL-1 over hard instances.
pub fn abl1() -> Vec<AblationRow> {
    let cases: [(&'static str, bool, usize); 3] = [
        ("full (pruning + bump)", false, 8),
        ("no reach pruning", true, 8),
        ("no star bump", false, 0),
    ];
    let instances = abl1_cases();
    cases
        .into_iter()
        .map(|(label, disable_pruning, max_bump)| {
            let mut solved = 0;
            let mut total = 0;
            let t0 = Instant::now();
            for (src, tgt, att) in &instances {
                let mut cfg = DiscoveryConfig::default();
                cfg.pfp.disable_reach_pruning = disable_pruning;
                cfg.pfp.max_star_bump = max_bump;
                total += 1;
                solved += usize::from(find_embedding(src, tgt, att, &cfg).is_some());
            }
            AblationRow {
                config: label,
                solved,
                total,
                millis: t0.elapsed().as_secs_f64() * 1000.0,
            }
        })
        .collect()
}
