//! Stylesheet data model: the 3-tuples `(match(ri), mode(ri), output(ri))`.

use std::fmt;

use xse_rxpath::XrQuery;

/// A match pattern — "essentially a subset of XPath expressions containing
/// only child, descendant, and attribute axes". Our generated stylesheets
/// need element tags with an optional relative filter (`category[mandatory/
/// regular]`), so that is what the model provides, plus text and wildcard
/// patterns for built-in-style rules.
#[derive(Clone, Debug)]
pub enum Pattern {
    /// Matches an element with this tag; when `filter` is present the query
    /// evaluated at the node must be nonempty.
    Element {
        /// Required tag.
        name: String,
        /// Optional existence filter, e.g. the `[Bi]` of the disjunction
        /// rules.
        filter: Option<XrQuery>,
    },
    /// Matches any text node.
    AnyText,
    /// Matches any node (the minimum-default templates' `match = ε`).
    Any,
}

impl Pattern {
    /// An element pattern without a filter.
    pub fn element(name: &str) -> Pattern {
        Pattern::Element {
            name: name.to_string(),
            filter: None,
        }
    }

    /// An element pattern with a filter query.
    pub fn element_with(name: &str, filter: XrQuery) -> Pattern {
        Pattern::Element {
            name: name.to_string(),
            filter: Some(filter),
        }
    }

    /// Specificity used for rule selection (higher wins): filtered element >
    /// plain element > text > any.
    pub fn specificity(&self) -> u8 {
        match self {
            Pattern::Element {
                filter: Some(_), ..
            } => 3,
            Pattern::Element { filter: None, .. } => 2,
            Pattern::AnyText => 1,
            Pattern::Any => 0,
        }
    }
}

/// A node of a rule's output tree.
#[derive(Clone, Debug)]
pub enum OutputNode {
    /// A literal element.
    Element {
        /// Tag to emit.
        tag: String,
        /// Children in order.
        children: Vec<OutputNode>,
    },
    /// A literal text node (the `#s` defaults in fragment completions).
    Text(String),
    /// An apply-templates instruction: evaluate `select` at the current
    /// source node, recursively process each result in document order with
    /// `mode`, splice the outputs here.
    Apply {
        /// Select expression (relative `XR` query).
        select: XrQuery,
        /// Mode of the recursive application (`None` = unmoded).
        mode: Option<String>,
    },
    /// Copy the current text node's string value (the built-in text rule's
    /// body, available for explicit rules too).
    CopyText,
}

/// One template rule.
#[derive(Clone, Debug)]
pub struct TemplateRule {
    /// `match(ri)`.
    pub pattern: Pattern,
    /// `mode(ri)`.
    pub mode: Option<String>,
    /// `output(ri)` — possibly several roots (a forest).
    pub output: Vec<OutputNode>,
}

/// An XSLT stylesheet: an ordered set of template rules. When several rules
/// match a node in the same mode, higher pattern specificity wins, ties
/// broken by definition order (earlier wins) — generators list specific
/// rules before fallbacks.
#[derive(Clone, Debug, Default)]
pub struct Stylesheet {
    /// The rules, in definition order.
    pub rules: Vec<TemplateRule>,
}

impl Stylesheet {
    /// Create an empty stylesheet.
    pub fn new() -> Self {
        Stylesheet::default()
    }

    /// Append a rule.
    pub fn add(&mut self, rule: TemplateRule) {
        self.rules.push(rule);
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` when there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

impl fmt::Display for Stylesheet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "<xsl:stylesheet version=\"1.0\">")?;
        for r in &self.rules {
            let m = match &r.pattern {
                Pattern::Element { name, filter: None } => name.clone(),
                Pattern::Element {
                    name,
                    filter: Some(q),
                } => format!("{name}[{q}]"),
                Pattern::AnyText => "text()".to_string(),
                Pattern::Any => "node()".to_string(),
            };
            write!(f, "  <xsl:template match=\"{m}\"")?;
            if let Some(mode) = &r.mode {
                write!(f, " mode=\"{mode}\"")?;
            }
            writeln!(f, ">")?;
            for o in &r.output {
                write_output(f, o, 2)?;
            }
            writeln!(f, "  </xsl:template>")?;
        }
        writeln!(f, "</xsl:stylesheet>")
    }
}

fn write_output(f: &mut fmt::Formatter<'_>, o: &OutputNode, depth: usize) -> fmt::Result {
    let pad = "  ".repeat(depth);
    match o {
        OutputNode::Element { tag, children } => {
            if children.is_empty() {
                writeln!(f, "{pad}<{tag}/>")
            } else {
                writeln!(f, "{pad}<{tag}>")?;
                for c in children {
                    write_output(f, c, depth + 1)?;
                }
                writeln!(f, "{pad}</{tag}>")
            }
        }
        OutputNode::Text(s) => writeln!(f, "{pad}{s}"),
        OutputNode::Apply { select, mode } => {
            write!(f, "{pad}<xsl:apply-templates select=\"{select}\"")?;
            if let Some(m) = mode {
                write!(f, " mode=\"{m}\"")?;
            }
            writeln!(f, "/>")
        }
        OutputNode::CopyText => writeln!(f, "{pad}<xsl:value-of select=\".\"/>"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xse_rxpath::parse_query;

    #[test]
    fn specificity_orders_patterns() {
        let filtered = Pattern::element_with("a", parse_query("b").unwrap());
        assert!(filtered.specificity() > Pattern::element("a").specificity());
        assert!(Pattern::element("a").specificity() > Pattern::AnyText.specificity());
        assert!(Pattern::AnyText.specificity() > Pattern::Any.specificity());
    }

    #[test]
    fn display_renders_template_markup() {
        let mut s = Stylesheet::new();
        s.add(TemplateRule {
            pattern: Pattern::element_with("category", parse_query("mandatory/regular").unwrap()),
            mode: None,
            output: vec![OutputNode::Element {
                tag: "type".into(),
                children: vec![OutputNode::Apply {
                    select: parse_query("mandatory/regular").unwrap(),
                    mode: Some("inv-regular".into()),
                }],
            }],
        });
        let text = s.to_string();
        assert!(text.contains("<xsl:template match=\"category[mandatory/regular]\">"));
        assert!(text
            .contains("<xsl:apply-templates select=\"mandatory/regular\" mode=\"inv-regular\"/>"));
        assert!(!s.is_empty());
        assert_eq!(s.len(), 1);
    }
}
