//! Generating the `σd` stylesheet (§4.3, cases (1)–(4); Example 4.6).
//!
//! Each source production becomes one or more template rules whose output
//! is the production fragment shape with apply-templates at the hot leaves:
//!
//! 1. concatenations — one rule, constant fragment, one apply per child;
//! 2. disjunctions — one rule per alternative, matched by `A[Bi]`, plus a
//!    completion-only fallback for an `ε` alternative;
//! 3. stars — a prefix rule emitting the constant part up to the
//!    multiplicity node and a suffix rule in a dedicated mode (`fwd*-A`)
//!    emitting one repetition per source child;
//! 4. str — the fragment chain ending in the copied text value.
//!
//! A mode per source type (`fwd-A`) keeps rules apart when `λ` maps two
//! source types to one target tag (see the crate docs).

use xse_core::{CompiledEmbedding, ResolvedPath, ResolvedStep};
use xse_dtd::{Dtd, MindefPlan, Production, TypeId};
use xse_rxpath::{Qualifier, XrQuery};
use xse_xmltree::{NodeKind, XmlTree};

use crate::{OutputNode, Pattern, Stylesheet, TemplateRule};

/// Generate the forward (`σd`) stylesheet. Apply it with
/// [`apply_stylesheet`](crate::apply_stylesheet)`(…, None)`; an unmoded
/// bootstrap rule dispatches the source root into its `fwd-…` mode.
pub fn generate_forward(e: &CompiledEmbedding) -> Stylesheet {
    let mut sheet = Stylesheet::new();
    let plans = e.mindef_plans();
    let src = e.source();

    // Bootstrap: route the root into its mode.
    sheet.add(TemplateRule {
        pattern: Pattern::element(src.name(src.root())),
        mode: None,
        output: vec![OutputNode::Apply {
            select: XrQuery::Empty,
            mode: Some(fwd_mode(src, src.root())),
        }],
    });

    for a in src.types() {
        let la = e.lambda(a);
        let tag = e.target().name(la).to_string();
        match src.production(a) {
            Production::Empty => {
                sheet.add(TemplateRule {
                    pattern: Pattern::element(src.name(a)),
                    mode: Some(fwd_mode(src, a)),
                    output: vec![element(&tag, fragment_children(e, plans, la, &[]))],
                });
            }
            Production::Str => {
                let chain = (
                    e.path(a, 0),
                    OutputNode::Apply {
                        select: XrQuery::Text,
                        mode: None, // built-in text rule copies the value
                    },
                );
                sheet.add(TemplateRule {
                    pattern: Pattern::element(src.name(a)),
                    mode: Some(fwd_mode(src, a)),
                    output: vec![element(&tag, fragment_children(e, plans, la, &[chain]))],
                });
            }
            Production::Concat(cs) => {
                // Occurrence-aware selects for repeated child types.
                let mut occ: std::collections::HashMap<TypeId, usize> =
                    std::collections::HashMap::new();
                let repeated: std::collections::HashSet<TypeId> = {
                    let mut seen = std::collections::HashSet::new();
                    cs.iter().filter(|c| !seen.insert(**c)).copied().collect()
                };
                let chains: Vec<(&ResolvedPath, OutputNode)> = cs
                    .iter()
                    .enumerate()
                    .map(|(slot, &c)| {
                        let k = occ.entry(c).or_insert(0);
                        *k += 1;
                        let mut select = XrQuery::label(src.name(c));
                        if repeated.contains(&c) {
                            select = select.with(Qualifier::Position(*k));
                        }
                        (
                            e.path(a, slot),
                            OutputNode::Apply {
                                select,
                                mode: Some(fwd_mode(src, c)),
                            },
                        )
                    })
                    .collect();
                sheet.add(TemplateRule {
                    pattern: Pattern::element(src.name(a)),
                    mode: Some(fwd_mode(src, a)),
                    output: vec![element(&tag, fragment_children(e, plans, la, &chains))],
                });
            }
            Production::Disjunction { alts, allows_empty } => {
                for (slot, &c) in alts.iter().enumerate() {
                    let chain = (
                        e.path(a, slot),
                        OutputNode::Apply {
                            select: XrQuery::label(src.name(c)),
                            mode: Some(fwd_mode(src, c)),
                        },
                    );
                    sheet.add(TemplateRule {
                        pattern: Pattern::element_with(src.name(a), XrQuery::label(src.name(c))),
                        mode: Some(fwd_mode(src, a)),
                        output: vec![element(&tag, fragment_children(e, plans, la, &[chain]))],
                    });
                }
                if *allows_empty {
                    sheet.add(TemplateRule {
                        pattern: Pattern::element(src.name(a)),
                        mode: Some(fwd_mode(src, a)),
                        output: vec![element(&tag, fragment_children(e, plans, la, &[]))],
                    });
                }
            }
            Production::Star(b) => {
                let rp = e.path(a, 0);
                let mult = rp.first_star_step().expect("validated star path");
                // Prefix rule: constant part + apply children in star mode.
                let star_mode = format!("fwd*-{}", src.name(a));
                let prefix_chain = (
                    // A pseudo-path of only the prefix steps; the terminal
                    // apply sits at the star parent.
                    &ResolvedPath {
                        origin: rp.origin,
                        steps: rp.steps[..mult].to_vec(),
                        text_tail: false,
                    },
                    OutputNode::Apply {
                        select: XrQuery::label(src.name(*b)),
                        mode: Some(star_mode.clone()),
                    },
                );
                // fragment_children places terminals *at the endpoint* of
                // their chain, i.e. inside the star parent. For an empty
                // prefix the apply lands directly under λ(A).
                sheet.add(TemplateRule {
                    pattern: Pattern::element(src.name(a)),
                    mode: Some(fwd_mode(src, a)),
                    output: vec![element(
                        &tag,
                        fragment_children_with_inner_terminal(
                            e,
                            plans,
                            la,
                            &rp.steps[..mult],
                            prefix_chain.1,
                        ),
                    )],
                });
                // Suffix rule: one repetition — the multiplicity element,
                // the suffix chain, and at the chain's endpoint the child's
                // own rule emits λ(B) (so the endpoint step is *replaced*
                // by the apply, exactly like a hot leaf).
                let suffix = &rp.steps[mult + 1..];
                let inner = OutputNode::Apply {
                    select: XrQuery::Empty,
                    mode: Some(fwd_mode(src, *b)),
                };
                let mult_step = &rp.steps[mult];
                let mult_tag = e.target().name(mult_step.ty).to_string();
                let body = if suffix.is_empty() {
                    // The multiplicity node is λ(B) itself.
                    inner
                } else {
                    let suffix_path = ResolvedPath {
                        origin: mult_step.ty,
                        steps: suffix.to_vec(),
                        text_tail: false,
                    };
                    element(
                        &mult_tag,
                        fragment_children(e, plans, mult_step.ty, &[(&suffix_path, inner)]),
                    )
                };
                sheet.add(TemplateRule {
                    pattern: Pattern::element(src.name(*b)),
                    mode: Some(star_mode),
                    output: vec![body],
                });
            }
        }
    }
    sheet
}

pub(crate) fn fwd_mode(src: &Dtd, a: TypeId) -> String {
    format!("fwd-{}", src.name(a))
}

fn element(tag: &str, children: Vec<OutputNode>) -> OutputNode {
    OutputNode::Element {
        tag: tag.to_string(),
        children,
    }
}

/// Fragment node over output trees.
struct FragO {
    ty: TypeId,
    slot: usize,
    pos: usize,
    children: Vec<FragO>,
    terminal: Option<OutputNode>,
}

/// Build the completed children of a fragment rooted at target type
/// `root_ty`, merging the given chains (each a resolved path plus the
/// output to place at its endpoint).
fn fragment_children(
    e: &CompiledEmbedding,
    plans: &[MindefPlan],
    root_ty: TypeId,
    chains: &[(&ResolvedPath, OutputNode)],
) -> Vec<OutputNode> {
    let mut top: Vec<FragO> = Vec::new();
    let mut root_terminal: Option<OutputNode> = None;
    for (rp, term) in chains {
        if rp.steps.is_empty() {
            // text()-only chain: terminal right under the root.
            root_terminal = Some(term.clone());
            continue;
        }
        add_chain(&mut top, &rp.steps, term.clone());
    }
    if matches!(e.target().production(root_ty), Production::Str) {
        return vec![root_terminal.unwrap_or(OutputNode::Text(xse_dtd::DEFAULT_STRING.to_string()))];
    }
    complete(e, plans, root_ty, top)
}

/// Like [`fragment_children`] but with a single chain of `steps` whose
/// terminal is *spliced among the children* of the chain endpoint (used for
/// the star prefix/suffix rules, where the apply node hangs under the star
/// parent rather than replacing an element).
fn fragment_children_with_inner_terminal(
    e: &CompiledEmbedding,
    plans: &[MindefPlan],
    root_ty: TypeId,
    steps: &[ResolvedStep],
    terminal: OutputNode,
) -> Vec<OutputNode> {
    if steps.is_empty() {
        // Terminal sits directly under the root; still complete the root's
        // production around it. Star roots need no completion.
        return match e.target().production(root_ty) {
            Production::Star(_) => vec![terminal],
            _ => {
                // The root is the star parent only when its production is a
                // star; other cases cannot occur for validated star paths.
                vec![terminal]
            }
        };
    }
    let mut top: Vec<FragO> = Vec::new();
    add_chain_open(&mut top, steps, terminal);
    complete(e, plans, root_ty, top)
}

fn add_chain(level: &mut Vec<FragO>, steps: &[ResolvedStep], terminal: OutputNode) {
    let (last, prefix) = steps.split_last().expect("nonempty chain");
    let mut level = level;
    for step in prefix {
        level = step_into(level, step);
    }
    level.push(FragO {
        ty: last.ty,
        slot: last.slot,
        pos: last.pos.unwrap_or(1),
        children: Vec::new(),
        terminal: Some(terminal),
    });
}

/// Chain whose endpoint element is materialized normally and receives the
/// terminal as an inner child (star-parent apply position).
fn add_chain_open(level: &mut Vec<FragO>, steps: &[ResolvedStep], terminal: OutputNode) {
    let mut level = level;
    for step in steps {
        level = step_into(level, step);
    }
    level.push(FragO {
        ty: TypeId::from_index(0),
        slot: usize::MAX, // sentinel: raw output splice
        pos: 0,
        children: Vec::new(),
        terminal: Some(terminal),
    });
}

fn step_into<'f>(level: &'f mut Vec<FragO>, step: &ResolvedStep) -> &'f mut Vec<FragO> {
    let pos = step.pos.unwrap_or(1);
    let idx = match level
        .iter()
        .position(|n| n.slot == step.slot && n.pos == pos && n.ty == step.ty)
    {
        Some(i) => i,
        None => {
            level.push(FragO {
                ty: step.ty,
                slot: step.slot,
                pos,
                children: Vec::new(),
                terminal: None,
            });
            level.len() - 1
        }
    };
    &mut level[idx].children
}

/// Mindef-complete a fragment level under a node of type `ty`, emitting
/// ordered output nodes (the OutputNode mirror of core's materialization).
fn complete(
    e: &CompiledEmbedding,
    plans: &[MindefPlan],
    ty: TypeId,
    mut level: Vec<FragO>,
) -> Vec<OutputNode> {
    let target = e.target();
    // Raw splices (star-parent apply positions) are appended after the
    // structural children of the node.
    let mut splices: Vec<OutputNode> = Vec::new();
    level.retain_mut(|n| {
        if n.slot == usize::MAX {
            splices.push(n.terminal.take().expect("splice terminal"));
            false
        } else {
            true
        }
    });

    let mut out: Vec<OutputNode> = Vec::new();
    match target.production(ty) {
        Production::Str => {
            out.push(OutputNode::Text(xse_dtd::DEFAULT_STRING.to_string()));
        }
        Production::Empty => {}
        Production::Concat(cs) => {
            level.sort_by_key(|c| c.slot);
            let mut iter = level.into_iter().peekable();
            for (slot, &cty) in cs.iter().enumerate() {
                if iter.peek().is_some_and(|c| c.slot == slot) {
                    out.push(emit(e, plans, iter.next().unwrap()));
                } else {
                    out.push(mindef_output(target, cty));
                }
            }
        }
        Production::Disjunction { allows_empty, .. } => match level.len() {
            0 => {
                if !allows_empty {
                    if let MindefPlan::OneChild(c) = &plans[ty.index()] {
                        out.push(mindef_output(target, *c));
                    }
                }
            }
            1 => out.push(emit(e, plans, level.into_iter().next().unwrap())),
            n => unreachable!("{n} chains under an OR node"),
        },
        Production::Star(b) => {
            level.sort_by_key(|c| c.pos);
            let mut next = 1;
            for child in level {
                while next < child.pos {
                    out.push(mindef_output(target, *b));
                    next += 1;
                }
                out.push(emit(e, plans, child));
                next += 1;
            }
        }
    }
    out.extend(splices);
    out
}

fn emit(e: &CompiledEmbedding, plans: &[MindefPlan], node: FragO) -> OutputNode {
    let tag = e.target().name(node.ty).to_string();
    match node.terminal {
        Some(term) => term, // hot leaf: the child's rule outputs λ(B) itself
        None => OutputNode::Element {
            tag,
            children: complete(e, plans, node.ty, node.children),
        },
    }
}

/// Render `mindef(ty)` as literal output.
fn mindef_output(target: &Dtd, ty: TypeId) -> OutputNode {
    let tree = target.mindef(ty);
    fn conv(tree: &XmlTree, n: xse_xmltree::NodeId) -> OutputNode {
        match tree.kind(n) {
            NodeKind::Text(v) => OutputNode::Text(v.to_string()),
            NodeKind::Element(tag) => OutputNode::Element {
                tag: tag.to_string(),
                children: tree.children(n).iter().map(|&c| conv(tree, c)).collect(),
            },
        }
    }
    conv(&tree, tree.root())
}
