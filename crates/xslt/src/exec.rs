//! The XSLT processing model (§4.3, after Wadler 2000).
//!
//! Processing revolves around context nodes: instantiate the chosen rule's
//! output for the context node; every apply-templates leaf evaluates its
//! select expression at the context node and recursively processes the
//! selected nodes in document order, splicing the resulting forests in
//! place. Unmatched nodes fall back to XSLT's built-in rules.

use std::fmt;

use xse_rxpath::Evaluator;
use xse_xmltree::{NodeId, XmlTree};

use crate::{OutputNode, Pattern, Stylesheet};

/// Errors from stylesheet application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XsltError {
    /// The transformation result is not a single-rooted document.
    NotSingleRooted(usize),
    /// Runaway recursion guard tripped (cyclic select expressions).
    DepthExceeded,
}

impl fmt::Display for XsltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XsltError::NotSingleRooted(n) => {
                write!(f, "stylesheet produced {n} root nodes, expected exactly 1")
            }
            XsltError::DepthExceeded => write!(f, "apply-templates recursion too deep"),
        }
    }
}

const MAX_DEPTH: usize = 100_000;

/// Apply `sheet` to `source`, starting (like an XSLT processor) by applying
/// templates to the document root in `start_mode`.
pub fn apply_stylesheet(
    sheet: &Stylesheet,
    source: &XmlTree,
    start_mode: Option<&str>,
) -> Result<XmlTree, XsltError> {
    let ev = Evaluator::new(source);
    let mut forest = Forest::new();
    let mut engine = Engine {
        sheet,
        source,
        ev,
        depth: 0,
    };
    engine.apply(source.root(), start_mode, &mut forest)?;
    // The forest must be a single element; build the output tree.
    let roots: Vec<&PendingNode> = forest.roots.iter().collect();
    match roots.as_slice() {
        [PendingNode::Element { tag, children }] => {
            let mut out = XmlTree::new(tag.as_str());
            // The pending forest mirrors the output 1:1; reserving from the
            // source size keeps arena growth amortized for big documents.
            out.reserve(source.len(), source.text_bytes());
            let root = out.root();
            for c in children {
                materialize(c, &mut out, root);
            }
            Ok(out)
        }
        other => Err(XsltError::NotSingleRooted(other.len())),
    }
}

/// Output under construction (cheap tree, converted to `XmlTree` at the
/// end so intermediate splicing needs no arena surgery).
enum PendingNode {
    Element {
        tag: String,
        children: Vec<PendingNode>,
    },
    Text(String),
}

struct Forest {
    roots: Vec<PendingNode>,
}

impl Forest {
    fn new() -> Self {
        Forest { roots: Vec::new() }
    }
}

fn materialize(p: &PendingNode, out: &mut XmlTree, at: NodeId) {
    match p {
        PendingNode::Element { tag, children } => {
            let id = out.add_element(at, tag.as_str());
            for c in children {
                materialize(c, out, id);
            }
        }
        PendingNode::Text(s) => {
            out.add_text(at, s);
        }
    }
}

struct Engine<'a> {
    sheet: &'a Stylesheet,
    source: &'a XmlTree,
    ev: Evaluator<'a>,
    depth: usize,
}

impl<'a> Engine<'a> {
    /// Apply templates to `node` in `mode`, appending output to `out`.
    fn apply(
        &mut self,
        node: NodeId,
        mode: Option<&str>,
        out: &mut Forest,
    ) -> Result<(), XsltError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(XsltError::DepthExceeded);
        }
        let rule = self.select_rule(node, mode);
        match rule {
            Some(idx) => {
                let rule = &self.sheet.rules[idx];
                let output = rule.output.clone();
                for o in &output {
                    self.instantiate(o, node, &mut out.roots)?;
                }
            }
            None => {
                // Built-in rules: elements recurse into children (same
                // mode); text nodes copy their value.
                match self.source.text_value(node) {
                    Some(v) => out.roots.push(PendingNode::Text(v.to_string())),
                    None => {
                        for &c in self.source.children(node) {
                            self.apply(c, mode, out)?;
                        }
                    }
                }
            }
        }
        self.depth -= 1;
        Ok(())
    }

    /// Highest-specificity matching rule; ties broken by definition order.
    fn select_rule(&self, node: NodeId, mode: Option<&str>) -> Option<usize> {
        let mut best: Option<(u8, usize)> = None;
        for (i, r) in self.sheet.rules.iter().enumerate() {
            if r.mode.as_deref() != mode {
                continue;
            }
            let matches = match &r.pattern {
                Pattern::Any => true,
                Pattern::AnyText => self.source.is_text(node),
                Pattern::Element { name, filter } => {
                    self.source.tag(node) == Some(name.as_str())
                        && filter
                            .as_ref()
                            .is_none_or(|q| !self.ev.eval(q, node).is_empty())
                }
            };
            if matches {
                let spec = r.pattern.specificity();
                if best.is_none_or(|(s, _)| spec > s) {
                    best = Some((spec, i));
                }
            }
        }
        best.map(|(_, i)| i)
    }

    fn instantiate(
        &mut self,
        o: &OutputNode,
        ctx: NodeId,
        out: &mut Vec<PendingNode>,
    ) -> Result<(), XsltError> {
        match o {
            OutputNode::Element { tag, children } => {
                let mut kids = Vec::new();
                for c in children {
                    self.instantiate(c, ctx, &mut kids)?;
                }
                out.push(PendingNode::Element {
                    tag: tag.clone(),
                    children: kids,
                });
            }
            OutputNode::Text(s) => out.push(PendingNode::Text(s.clone())),
            OutputNode::CopyText => {
                if let Some(v) = self.source.text_value(ctx) {
                    out.push(PendingNode::Text(v.to_string()));
                }
            }
            OutputNode::Apply { select, mode } => {
                let selected = self.ev.eval(select, ctx);
                let mut forest = Forest::new();
                for n in selected {
                    self.apply(n, mode.as_deref(), &mut forest)?;
                }
                out.append(&mut forest.roots);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TemplateRule;
    use xse_rxpath::parse_query;
    use xse_xmltree::parse_xml;

    fn rule(pattern: Pattern, mode: Option<&str>, output: Vec<OutputNode>) -> TemplateRule {
        TemplateRule {
            pattern,
            mode: mode.map(String::from),
            output,
        }
    }

    #[test]
    fn identity_via_builtins() {
        // No rules at all: builtins walk elements and copy text — the
        // result is the concatenated text, which is not single-rooted for
        // elements; wrap with one rule for the root.
        let mut s = Stylesheet::new();
        s.add(rule(
            Pattern::element("r"),
            None,
            vec![OutputNode::Element {
                tag: "r".into(),
                children: vec![OutputNode::Apply {
                    select: parse_query("a/text()").unwrap(),
                    mode: None,
                }],
            }],
        ));
        let src = parse_xml("<r><a>hi</a></r>").unwrap();
        let out = apply_stylesheet(&s, &src, None).unwrap();
        assert_eq!(out.to_xml(), "<r>hi</r>");
    }

    #[test]
    fn modes_partition_rules() {
        let mut s = Stylesheet::new();
        s.add(rule(
            Pattern::element("r"),
            None,
            vec![OutputNode::Element {
                tag: "out".into(),
                children: vec![
                    OutputNode::Apply {
                        select: parse_query("x").unwrap(),
                        mode: Some("one".into()),
                    },
                    OutputNode::Apply {
                        select: parse_query("x").unwrap(),
                        mode: Some("two".into()),
                    },
                ],
            }],
        ));
        s.add(rule(
            Pattern::element("x"),
            Some("one"),
            vec![OutputNode::Element {
                tag: "first".into(),
                children: vec![],
            }],
        ));
        s.add(rule(
            Pattern::element("x"),
            Some("two"),
            vec![OutputNode::Element {
                tag: "second".into(),
                children: vec![],
            }],
        ));
        let src = parse_xml("<r><x/></r>").unwrap();
        let out = apply_stylesheet(&s, &src, None).unwrap();
        assert_eq!(out.to_xml(), "<out><first/><second/></out>");
    }

    #[test]
    fn filtered_patterns_beat_plain_ones() {
        let mut s = Stylesheet::new();
        s.add(rule(
            Pattern::element("r"),
            None,
            vec![OutputNode::Element {
                tag: "d".into(),
                children: vec![OutputNode::Apply {
                    select: parse_query("v").unwrap(),
                    mode: None,
                }],
            }],
        ));
        // Plain rule listed first; filtered rule must still win.
        s.add(rule(
            Pattern::element("v"),
            None,
            vec![OutputNode::Text("plain".into())],
        ));
        s.add(rule(
            Pattern::element_with("v", parse_query("flag").unwrap()),
            None,
            vec![OutputNode::Text("flagged".into())],
        ));
        let out = apply_stylesheet(&s, &parse_xml("<r><v><flag/></v></r>").unwrap(), None).unwrap();
        assert_eq!(out.to_xml(), "<d>flagged</d>");
        let out = apply_stylesheet(&s, &parse_xml("<r><v/></r>").unwrap(), None).unwrap();
        assert_eq!(out.to_xml(), "<d>plain</d>");
    }

    #[test]
    fn apply_splices_in_document_order() {
        let mut s = Stylesheet::new();
        s.add(rule(
            Pattern::element("r"),
            None,
            vec![OutputNode::Element {
                tag: "list".into(),
                children: vec![OutputNode::Apply {
                    select: parse_query("item/text()").unwrap(),
                    mode: None,
                }],
            }],
        ));
        let src = parse_xml("<r><item>1</item><item>2</item><item>3</item></r>").unwrap();
        let out = apply_stylesheet(&s, &src, None).unwrap();
        assert_eq!(out.to_xml(), "<list>123</list>");
    }

    #[test]
    fn non_single_rooted_results_error() {
        let mut s = Stylesheet::new();
        s.add(rule(
            Pattern::element("r"),
            None,
            vec![
                OutputNode::Element {
                    tag: "a".into(),
                    children: vec![],
                },
                OutputNode::Element {
                    tag: "b".into(),
                    children: vec![],
                },
            ],
        ));
        let err = apply_stylesheet(&s, &parse_xml("<r/>").unwrap(), None).unwrap_err();
        assert_eq!(err, XsltError::NotSingleRooted(2));
    }

    #[test]
    fn start_mode_selects_rules() {
        let mut s = Stylesheet::new();
        s.add(rule(
            Pattern::element("r"),
            Some("alt"),
            vec![OutputNode::Element {
                tag: "alt".into(),
                children: vec![],
            }],
        ));
        let out = apply_stylesheet(&s, &parse_xml("<r/>").unwrap(), Some("alt")).unwrap();
        assert_eq!(out.to_xml(), "<alt/>");
    }
}
