//! The simplified XSLT model of §4.3 and stylesheet generation for `σd` and
//! `σd⁻¹`.
//!
//! A stylesheet is a set of template rules `(match, mode, output)`; output
//! trees contain *apply-templates* leaves `(select, mode)`. Processing
//! instantiates the highest-priority matching rule for a context node and
//! recursively applies templates to the nodes its selects return — the
//! worklist semantics spelled out in the paper (after Wadler's formal
//! semantics). Built-in rules mirror XSLT's: an unmatched element applies
//! templates to its children in the same mode; an unmatched text node copies
//! its value.
//!
//! [`generate_forward`] emits one rule per source production implementing
//! the instance mapping (cases (1)–(4) of §4.3: constant fragment trees with
//! apply-templates at hot leaves, per-alternative rules for disjunctions,
//! prefix/suffix rule pairs with a dedicated mode for stars), and
//! [`generate_inverse`] emits the `invt` templates recovering the source
//! document. One deliberate deviation: rules carry a *mode per source type*
//! (`fwd-A` / `inv-A`) where the paper uses a single mode — with a
//! non-injective `λ`, two source types can share a target tag and modes are
//! what keeps their rules apart.
//!
//! The `Display` impl renders a stylesheet as `<xsl:template>` markup
//! matching the paper's listings (Examples 4.5, 4.6).

mod exec;
mod gen_forward;
mod gen_inverse;
mod model;

pub use exec::{apply_stylesheet, XsltError};
pub use gen_forward::generate_forward;
pub use gen_inverse::generate_inverse;
pub use model::{OutputNode, Pattern, Stylesheet, TemplateRule};

use xse_core::CompiledEmbedding;

/// Stylesheet generation as methods on the compiled engine, so
/// [`CompiledEmbedding`] is the single entry point for every derived
/// artifact (`apply`, `invert`, `translate`, and the §4.3 stylesheets).
pub trait StylesheetGen {
    /// The forward (`σd`) stylesheet — see [`generate_forward`].
    fn generate_forward(&self) -> Stylesheet;
    /// The inverse (`σd⁻¹`) stylesheet — see [`generate_inverse`].
    fn generate_inverse(&self) -> Stylesheet;
}

impl StylesheetGen for CompiledEmbedding {
    fn generate_forward(&self) -> Stylesheet {
        generate_forward(self)
    }

    fn generate_inverse(&self) -> Stylesheet {
        generate_inverse(self)
    }
}
