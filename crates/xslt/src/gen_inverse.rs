//! Generating the `σd⁻¹` stylesheet (§4.3, `invt`; Example 4.5).
//!
//! One rule (or one per alternative) for every source type `A`, matching
//! the image tag `λ(A)` in mode `inv-A`. The output tree is the recovered
//! `<A>` element whose children are apply-templates along the edge paths:
//!
//! 1. concatenations — `n` applies, `select = path(A, Bi)`;
//! 2. disjunctions — one rule per alternative with match filter
//!    `λ(A)[path(A, Bi)]`, plus an empty-output fallback for `ε`;
//! 3. stars — a single apply whose select traverses `path(A, B)` with the
//!    multiplicity step unpositioned, returning every repetition in
//!    document order;
//! 4. str — an apply selecting the text path; the built-in text rule copies
//!    the value.

use xse_core::{CompiledEmbedding, ResolvedPath};
use xse_dtd::{Dtd, Production, TypeId};
use xse_rxpath::{Qualifier, XrQuery};

use crate::{OutputNode, Pattern, Stylesheet, TemplateRule};

/// Generate the inverse (`σd⁻¹`) stylesheet. Apply with
/// [`apply_stylesheet`](crate::apply_stylesheet)`(…, None)` to a document
/// produced by the forward mapping.
pub fn generate_inverse(e: &CompiledEmbedding) -> Stylesheet {
    let mut sheet = Stylesheet::new();
    let src = e.source();
    let tgt = e.target();

    // Bootstrap: route the target root into the source root's mode.
    sheet.add(TemplateRule {
        pattern: Pattern::element(tgt.name(tgt.root())),
        mode: None,
        output: vec![OutputNode::Apply {
            select: XrQuery::Empty,
            mode: Some(inv_mode(src, src.root())),
        }],
    });

    for a in src.types() {
        let la_tag = tgt.name(e.lambda(a));
        let a_tag = src.name(a);
        match src.production(a) {
            Production::Empty => sheet.add(TemplateRule {
                pattern: Pattern::element(la_tag),
                mode: Some(inv_mode(src, a)),
                output: vec![OutputNode::Element {
                    tag: a_tag.to_string(),
                    children: vec![],
                }],
            }),
            Production::Str => sheet.add(TemplateRule {
                pattern: Pattern::element(la_tag),
                mode: Some(inv_mode(src, a)),
                output: vec![OutputNode::Element {
                    tag: a_tag.to_string(),
                    children: vec![OutputNode::Apply {
                        select: path_query(tgt, e.path(a, 0), false),
                        mode: None, // built-in copies the text node
                    }],
                }],
            }),
            Production::Concat(cs) => {
                let children = cs
                    .iter()
                    .enumerate()
                    .map(|(slot, &c)| OutputNode::Apply {
                        select: path_query(tgt, e.path(a, slot), false),
                        mode: Some(inv_mode(src, c)),
                    })
                    .collect();
                sheet.add(TemplateRule {
                    pattern: Pattern::element(la_tag),
                    mode: Some(inv_mode(src, a)),
                    output: vec![OutputNode::Element {
                        tag: a_tag.to_string(),
                        children,
                    }],
                });
            }
            Production::Disjunction { alts, allows_empty } => {
                for (slot, &c) in alts.iter().enumerate() {
                    let select = path_query(tgt, e.path(a, slot), false);
                    sheet.add(TemplateRule {
                        pattern: Pattern::element_with(la_tag, select.clone()),
                        mode: Some(inv_mode(src, a)),
                        output: vec![OutputNode::Element {
                            tag: a_tag.to_string(),
                            children: vec![OutputNode::Apply {
                                select,
                                mode: Some(inv_mode(src, c)),
                            }],
                        }],
                    });
                }
                if *allows_empty {
                    sheet.add(TemplateRule {
                        pattern: Pattern::element(la_tag),
                        mode: Some(inv_mode(src, a)),
                        output: vec![OutputNode::Element {
                            tag: a_tag.to_string(),
                            children: vec![],
                        }],
                    });
                }
            }
            Production::Star(b) => sheet.add(TemplateRule {
                pattern: Pattern::element(la_tag),
                mode: Some(inv_mode(src, a)),
                output: vec![OutputNode::Element {
                    tag: a_tag.to_string(),
                    children: vec![OutputNode::Apply {
                        // Multiplicity step unpositioned: selects every
                        // repetition in document order.
                        select: path_query(tgt, e.path(a, 0), true),
                        mode: Some(inv_mode(src, *b)),
                    }],
                }],
            }),
        }
    }
    sheet
}

pub(crate) fn inv_mode(src: &Dtd, a: TypeId) -> String {
    format!("inv-{}", src.name(a))
}

/// Render a resolved path as a select query. `open_multiplicity` leaves the
/// first STAR step unpositioned (star edges); otherwise every canonical
/// position is written out.
fn path_query(tgt: &Dtd, rp: &ResolvedPath, open_multiplicity: bool) -> XrQuery {
    let mult = if open_multiplicity {
        rp.first_star_step()
    } else {
        None
    };
    let mut q = XrQuery::Empty;
    for (i, s) in rp.steps.iter().enumerate() {
        let mut step = XrQuery::label(tgt.name(s.ty));
        let pos = if Some(i) == mult { None } else { s.pos };
        if let Some(k) = pos {
            step = step.with(Qualifier::Position(k));
        }
        q = q.then(step);
    }
    if rp.text_tail {
        q = q.then(XrQuery::Text);
    }
    q
}

#[cfg(test)]
mod tests {
    use crate::{apply_stylesheet, generate_forward, generate_inverse};
    use xse_core::{CompiledEmbedding, EmbeddingBuilder};
    use xse_dtd::{Dtd, GenConfig, InstanceGenerator};
    use xse_xmltree::parse_xml;

    /// The shared wrap fixture (see xse-core's tests).
    fn wrap() -> (Dtd, Dtd) {
        let s1 = Dtd::builder("r")
            .concat("r", &["a", "b"])
            .str_type("a")
            .star("b", "c")
            .str_type("c")
            .build()
            .unwrap();
        let s2 = Dtd::builder("r")
            .concat("r", &["x", "y"])
            .concat("x", &["a", "pad"])
            .str_type("a")
            .str_type("pad")
            .concat("y", &["w"])
            .star("w", "c2")
            .concat("c2", &["c"])
            .str_type("c")
            .build()
            .unwrap();
        (s1, s2)
    }

    fn wrap_embedding(s1: &Dtd, s2: &Dtd) -> CompiledEmbedding {
        EmbeddingBuilder::new(s1.clone(), s2.clone())
            .map_type("b", "w")
            .edge("r", "a", "x/a")
            .edge("r", "b", "y/w")
            .edge("b", "c", "c2/c")
            .text_edge("a", "text()")
            .text_edge("c", "text()")
            .build()
            .unwrap()
    }

    #[test]
    fn forward_stylesheet_equals_instmap() {
        let (s1, s2) = wrap();
        let e = wrap_embedding(&s1, &s2);
        let fwd = generate_forward(&e);
        let gen = InstanceGenerator::new(&s1, GenConfig::default());
        for seed in 0..20 {
            let t1 = gen.generate(seed);
            let direct = e.apply(&t1).unwrap().tree;
            let via_xslt = apply_stylesheet(&fwd, &t1, None).unwrap();
            assert!(
                direct.equals(&via_xslt),
                "seed {seed}: {:?}\nsheet:\n{fwd}",
                direct.first_difference(&via_xslt)
            );
        }
    }

    #[test]
    fn inverse_stylesheet_equals_invert() {
        let (s1, s2) = wrap();
        let e = wrap_embedding(&s1, &s2);
        let inv = generate_inverse(&e);
        let gen = InstanceGenerator::new(&s1, GenConfig::default());
        for seed in 0..20 {
            let t1 = gen.generate(seed);
            let t2 = e.apply(&t1).unwrap().tree;
            let back = apply_stylesheet(&inv, &t2, None).unwrap();
            assert!(
                back.equals(&t1),
                "seed {seed}: {:?}\nsheet:\n{inv}",
                back.first_difference(&t1)
            );
        }
    }

    #[test]
    fn school_example_stylesheets_roundtrip() {
        // The Figure 1 / Example 4.2 embedding, end to end through XSLT.
        let s0 = Dtd::builder("db")
            .star("db", "class")
            .concat("class", &["cno", "title", "type"])
            .str_type("cno")
            .str_type("title")
            .disjunction("type", &["regular", "project"])
            .concat("regular", &["prereq"])
            .star("prereq", "class")
            .str_type("project")
            .build()
            .unwrap();
        let s = Dtd::builder("school")
            .concat("school", &["courses"])
            .concat("courses", &["history", "current"])
            .star("history", "course")
            .star("current", "course")
            .concat("course", &["basic", "category"])
            .concat("basic", &["cno", "credit", "class2"])
            .str_type("cno")
            .str_type("credit")
            .star("class2", "semester")
            .concat("semester", &["title", "year"])
            .str_type("title")
            .str_type("year")
            .disjunction("category", &["mandatory", "advanced"])
            .disjunction("mandatory", &["regular", "lab"])
            .concat("advanced", &["project"])
            .str_type("project")
            .concat("regular", &["required"])
            .star("required", "prereq")
            .star("prereq", "course")
            .str_type("lab")
            .build()
            .unwrap();
        let e = EmbeddingBuilder::new(s0, s)
            .map_type("db", "school")
            .map_type("class", "course")
            .map_type("type", "category")
            .edge("db", "class", "courses/current/course")
            .edge("class", "cno", "basic/cno")
            .edge(
                "class",
                "title",
                "basic/class2/semester[position() = 1]/title",
            )
            .edge("class", "type", "category")
            .edge("type", "regular", "mandatory/regular")
            .edge("type", "project", "advanced/project")
            .edge("regular", "prereq", "required/prereq")
            .edge("prereq", "class", "course")
            .text_edge("cno", "text()")
            .text_edge("title", "text()")
            .text_edge("project", "text()")
            .build()
            .unwrap();

        let fwd = generate_forward(&e);
        let inv = generate_inverse(&e);
        // The Example 4.6 shapes: a course template with basic/credit/#s,
        // two category templates, db prefix/suffix pair.
        let text = fwd.to_string();
        assert!(text.contains("mode=\"fwd*-db\""), "{text}");
        assert!(text.contains("match=\"type[regular]\""), "{text}");
        let t1 = parse_xml(
            "<db>\
               <class><cno>CS331</cno><title>DB</title><type><regular><prereq>\
                  <class><cno>CS240</cno><title>Algo</title><type><project>p1</project></type></class>\
               </prereq></regular></type></class>\
             </db>",
        )
        .unwrap();
        let direct = e.apply(&t1).unwrap().tree;
        let via = apply_stylesheet(&fwd, &t1, None).unwrap();
        assert!(direct.equals(&via), "{:?}", direct.first_difference(&via));
        let back = apply_stylesheet(&inv, &via, None).unwrap();
        assert!(back.equals(&t1), "{:?}", back.first_difference(&t1));
    }
}
