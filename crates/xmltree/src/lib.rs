//! Ordered, node-labeled XML document trees.
//!
//! This crate implements the XML instance model of Section 2.1 of
//! Fan & Bohannon, *Information Preserving XML Schema Embedding* (VLDB 2005 /
//! TODS 2008):
//!
//! * an XML instance is an **ordered tree** whose nodes are either *elements*
//!   (labeled with an element-type tag) or *text nodes* (carrying a `PCDATA`
//!   string value and always leaves);
//! * every node carries a **stable node id** drawn from the countably
//!   infinite id universe `U`; the set of ids of a tree `T` is `dom(T)`;
//! * two trees are **equal** (`T1 = T2`) when they are isomorphic by an
//!   isomorphism that is the identity on string values — i.e. same shape,
//!   same tags, same text, ids ignored;
//! * instance mappings `σd : I(S1) → I(S2)` come with a partial **id
//!   mapping** `idM()` from `dom(σd(T))` back to `dom(T)` ([`IdMap`]).
//!
//! Trees are stored in an arena ([`XmlTree`]) indexed by [`NodeId`]; node ids
//! are never reused within a tree, so they behave like the paper's abstract
//! ids while remaining cheap dense indexes.

mod builder;
mod idmap;
mod node;
mod parse;
mod serialize;

pub use builder::TreeBuilder;
pub use idmap::IdMap;
pub use node::{Node, NodeId, NodeKind, XmlTree};
pub use parse::{parse_xml, ParseError};
pub use serialize::escape_text;
