//! Ordered, node-labeled XML document trees, stored as a flat CSR arena.
//!
//! This crate implements the XML instance model of Section 2.1 of
//! Fan & Bohannon, *Information Preserving XML Schema Embedding* (VLDB 2005 /
//! TODS 2008):
//!
//! * an XML instance is an **ordered tree** whose nodes are either *elements*
//!   (labeled with an element-type tag) or *text nodes* (carrying a `PCDATA`
//!   string value and always leaves);
//! * every node carries a **stable node id** drawn from the countably
//!   infinite id universe `U`; the set of ids of a tree `T` is `dom(T)`;
//! * two trees are **equal** (`T1 = T2`) when they are isomorphic by an
//!   isomorphism that is the identity on string values — i.e. same shape,
//!   same tags, same text, ids ignored;
//! * instance mappings `σd : I(S1) → I(S2)` come with a partial **id
//!   mapping** `idM()` from `dom(σd(T))` back to `dom(T)` ([`IdMap`]).
//!
//! # Representation
//!
//! [`XmlTree`] is a struct-of-arrays arena tuned for the paper's workloads —
//! instance mapping (`σd`), validation and query evaluation are pure tree
//! traversals, so the layout optimizes traversal over mutation:
//!
//! * **Flat node records.** Each node is a fixed 32-byte record in one
//!   `Vec`: parent, intrusive child links, an interned tag, and a text span.
//!   [`NodeId`] is the record's index — dense, stable, never reused, a
//!   faithful stand-in for the paper's abstract ids.
//! * **Interned tags.** Element labels are [`TagId`]s into a per-tree
//!   [`SymbolTable`]; a document has one distinct tag per element type of
//!   its schema, so the table is tiny and label comparison on hot paths
//!   (validation, navigation, query steps) is an integer compare. Builders
//!   that know their tags up front can intern once and append with
//!   [`XmlTree::add_element_tag`], skipping all string hashing.
//! * **Shared text buffer.** Text nodes store `(start, len)` byte ranges
//!   into one buffer per tree — no per-node `String`.
//! * **CSR child spans with a cheap freeze.** Appends maintain
//!   first-child/next-sibling links (O(1), allocation-free). The first
//!   traversal after a batch of mutations — or an explicit
//!   [`XmlTree::freeze`] — compacts the links into compressed-sparse-row
//!   form: all child lists laid out contiguously in one edge array, so
//!   [`XmlTree::children`] returns a `&[NodeId]` slice with two array
//!   lookups. Mutating again invalidates the spans; the next read
//!   re-compacts. Freezing never renumbers: `dom(T)`, document order and
//!   equality are invariant.
//!
//! Parsing ([`parse_xml`]) builds straight into the arena with capacity
//! pre-reserved from the input length; serialization
//! ([`XmlTree::to_xml`] / [`XmlTree::to_xml_pretty`]) round-trips through it.

mod builder;
mod idmap;
mod node;
mod parse;
mod serialize;
mod symbol;

pub use builder::TreeBuilder;
pub use idmap::IdMap;
pub use node::{NodeId, NodeKind, Preorder, XmlTree};
pub use parse::{parse_xml, ParseError};
pub use serialize::escape_text;
pub use symbol::{SymbolTable, TagId};
