use std::fmt;

use crate::{NodeId, XmlTree};

/// Error raised by [`parse_xml`], with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the problem was detected.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a small XML subset into an [`XmlTree`]: elements, character data,
/// the five predefined entities, comments, processing instructions and a
/// leading XML declaration / DOCTYPE (the latter three are skipped).
/// Attributes are rejected — the paper's document model has none.
/// Whitespace-only text between elements is dropped; text adjacent to
/// elements is kept verbatim.
pub fn parse_xml(input: &str) -> Result<XmlTree, ParseError> {
    Parser {
        input: input.as_bytes(),
        pos: 0,
    }
    .parse_document()
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.pos,
            msg: msg.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), ParseError> {
        match self.input[self.pos..]
            .windows(end.len())
            .position(|w| w == end.as_bytes())
        {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => self.err(format!("unterminated construct, expected {end:?}")),
        }
    }

    fn skip_misc(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                // DOCTYPE may contain a bracketed internal subset.
                let mut depth = 0usize;
                loop {
                    match self.peek() {
                        Some(b'[') => depth += 1,
                        Some(b']') => depth = depth.saturating_sub(1),
                        Some(b'>') if depth == 0 => {
                            self.pos += 1;
                            break;
                        }
                        Some(_) => {}
                        None => return self.err("unterminated DOCTYPE"),
                    }
                    self.pos += 1;
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_document(mut self) -> Result<XmlTree, ParseError> {
        self.skip_misc()?;
        if self.peek() != Some(b'<') {
            return self.err("expected root element");
        }
        // Cheap size estimate so the arena never reallocates mid-parse:
        // every element contributes at least one '<' (open or self-closing
        // tag), and text payload is bounded by the input length.
        let lt_count = self.input.iter().filter(|&&b| b == b'<').count();
        let name = self.parse_open_tag()?;
        let mut tree = XmlTree::with_capacity(name.0, lt_count.max(1), self.input.len() / 4);
        let root = tree.root();
        if !name.1 {
            self.parse_content(&mut tree, root)?;
        }
        self.skip_misc()?;
        if self.pos != self.input.len() {
            return self.err("trailing content after root element");
        }
        Ok(tree)
    }

    /// Parse `<name>` / `<name/>`, returning the name and whether it was
    /// self-closing. `self.pos` must be at `<`.
    fn parse_open_tag(&mut self) -> Result<(&'a str, bool), ParseError> {
        self.pos += 1; // consume '<'
        let name = self.parse_name()?;
        self.skip_ws();
        match self.peek() {
            Some(b'/') => {
                self.pos += 1;
                if self.peek() != Some(b'>') {
                    return self.err("expected '>' after '/'");
                }
                self.pos += 1;
                Ok((name, true))
            }
            Some(b'>') => {
                self.pos += 1;
                Ok((name, false))
            }
            Some(b'=') | Some(b'"') => self.err("attributes are not supported"),
            Some(c) if c.is_ascii_alphabetic() => self.err("attributes are not supported"),
            _ => self.err("malformed start tag"),
        }
    }

    fn parse_name(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        // The accept loop above admits ASCII only, so the bytes are UTF-8.
        Ok(std::str::from_utf8(&self.input[start..self.pos]).expect("names are ASCII"))
    }

    fn parse_content(&mut self, tree: &mut XmlTree, parent: NodeId) -> Result<(), ParseError> {
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return self.err("unexpected end of input inside element"),
                Some(b'<') => {
                    if self.starts_with("<!--") {
                        self.skip_until("-->")?;
                        continue;
                    }
                    if self.starts_with("<?") {
                        self.skip_until("?>")?;
                        continue;
                    }
                    Self::flush_text(tree, parent, &mut text);
                    if self.starts_with("</") {
                        self.pos += 2;
                        let name = self.parse_name()?;
                        self.skip_ws();
                        if self.peek() != Some(b'>') {
                            return self.err("malformed end tag");
                        }
                        self.pos += 1;
                        let expected = tree.tag(parent).unwrap_or("#text");
                        if name != expected {
                            return self.err(format!(
                                "mismatched end tag </{name}>, expected </{expected}>"
                            ));
                        }
                        return Ok(());
                    }
                    let (name, selfclosing) = self.parse_open_tag()?;
                    let child = tree.add_element(parent, name);
                    if !selfclosing {
                        self.parse_content(tree, child)?;
                    }
                }
                Some(b'&') => {
                    text.push(self.parse_entity()?);
                }
                Some(c) => {
                    // ASCII fast path; multi-byte UTF-8 copied byte-wise,
                    // which is sound because no multi-byte sequence contains
                    // '<' or '&'.
                    text.push(c as char);
                    self.pos += 1;
                    if c >= 0x80 {
                        // Re-decode the full character properly.
                        text.pop();
                        let rest = &self.input[self.pos - 1..];
                        let s = std::str::from_utf8(rest)
                            .map_err(|_| ParseError {
                                at: self.pos - 1,
                                msg: "invalid UTF-8".into(),
                            })?
                            .chars()
                            .next()
                            .unwrap();
                        text.push(s);
                        self.pos += s.len_utf8() - 1;
                    }
                }
            }
        }
    }

    fn flush_text(tree: &mut XmlTree, parent: NodeId, text: &mut String) {
        if text.chars().any(|c| !c.is_whitespace()) {
            // Bytes are copied into the tree's shared buffer, so the scratch
            // String keeps its capacity across flushes.
            tree.add_text(parent, text.as_str());
        }
        text.clear();
    }

    fn parse_entity(&mut self) -> Result<char, ParseError> {
        for (ent, ch) in [
            ("&lt;", '<'),
            ("&gt;", '>'),
            ("&amp;", '&'),
            ("&quot;", '"'),
            ("&apos;", '\''),
        ] {
            if self.starts_with(ent) {
                self.pos += ent.len();
                return Ok(ch);
            }
        }
        if self.starts_with("&#") {
            let semi = self.input[self.pos..]
                .iter()
                .position(|&b| b == b';')
                .ok_or(ParseError {
                    at: self.pos,
                    msg: "unterminated character reference".into(),
                })?;
            let body = &self.input[self.pos + 2..self.pos + semi];
            let code = if body.first() == Some(&b'x') {
                u32::from_str_radix(&String::from_utf8_lossy(&body[1..]), 16)
            } else {
                String::from_utf8_lossy(body).parse()
            };
            let ch = code
                .ok()
                .and_then(char::from_u32)
                .ok_or_else(|| ParseError {
                    at: self.pos,
                    msg: "invalid character reference".into(),
                })?;
            self.pos += semi + 1;
            return Ok(ch);
        }
        self.err("unknown entity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let t = parse_xml("<db><class><cno>CS331</cno><type/></class></db>").unwrap();
        assert_eq!(t.tag(t.root()), Some("db"));
        let class = t.children(t.root())[0];
        assert_eq!(t.tag(class), Some("class"));
        let cno = t.children(class)[0];
        let txt = t.children(cno)[0];
        assert_eq!(t.text_value(txt), Some("CS331"));
        assert_eq!(t.children(t.children(class)[1]).len(), 0);
    }

    #[test]
    fn roundtrip_compact_and_pretty() {
        let src = "<a><b>x &amp; y</b><c><d/></c></a>";
        let t = parse_xml(src).unwrap();
        assert_eq!(t.to_xml(), src);
        let t2 = parse_xml(&t.to_xml_pretty()).unwrap();
        assert!(t.equals(&t2), "{:?}", t.first_difference(&t2));
    }

    #[test]
    fn drops_whitespace_only_text() {
        let t = parse_xml("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(t.children(t.root()).len(), 2);
    }

    #[test]
    fn keeps_meaningful_whitespace_inside_text() {
        let t = parse_xml("<a>hello  world</a>").unwrap();
        let txt = t.children(t.root())[0];
        assert_eq!(t.text_value(txt), Some("hello  world"));
    }

    #[test]
    fn decodes_entities_and_char_refs() {
        let t = parse_xml("<a>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</a>").unwrap();
        let txt = t.children(t.root())[0];
        assert_eq!(t.text_value(txt), Some("<>&\"'AB"));
    }

    #[test]
    fn skips_prolog_comments_and_pis() {
        let t = parse_xml(
            "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a (b)>]><!-- hi --><a><!-- in --><b/><?pi data?></a>",
        )
        .unwrap();
        assert_eq!(t.tag(t.root()), Some("a"));
        assert_eq!(t.children(t.root()).len(), 1);
    }

    #[test]
    fn rejects_mismatched_tags() {
        let e = parse_xml("<a><b></a></b>").unwrap_err();
        assert!(e.msg.contains("mismatched"), "{e}");
    }

    #[test]
    fn rejects_attributes() {
        let e = parse_xml("<a x=\"1\"/>").unwrap_err();
        assert!(e.msg.contains("attributes"), "{e}");
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse_xml("<a/><b/>").is_err());
        assert!(parse_xml("<a><b>").is_err());
        assert!(parse_xml("").is_err());
    }

    #[test]
    fn parses_unicode_text() {
        let t = parse_xml("<a>héllo wörld ✓</a>").unwrap();
        let txt = t.children(t.root())[0];
        assert_eq!(t.text_value(txt), Some("héllo wörld ✓"));
    }
}
