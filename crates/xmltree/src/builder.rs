use crate::{NodeId, XmlTree};

/// A cursor-style builder for constructing documents in tests and examples.
///
/// ```
/// use xse_xmltree::TreeBuilder;
/// let tree = TreeBuilder::new("db")
///     .open("class")
///     .leaf_text("cno", "CS331")
///     .open("type")
///     .elem("regular")
///     .close()
///     .close()
///     .build();
/// assert_eq!(
///     tree.to_xml(),
///     "<db><class><cno>CS331</cno><type><regular/></type></class></db>"
/// );
/// ```
pub struct TreeBuilder {
    tree: XmlTree,
    stack: Vec<NodeId>,
}

impl TreeBuilder {
    /// Start a document with the given root tag; the cursor is the root.
    pub fn new(root_tag: &str) -> Self {
        let tree = XmlTree::new(root_tag);
        let root = tree.root();
        TreeBuilder {
            tree,
            stack: vec![root],
        }
    }

    fn cursor(&self) -> NodeId {
        *self.stack.last().expect("builder cursor underflow")
    }

    /// Append an element child and move the cursor into it.
    pub fn open(mut self, tag: &str) -> Self {
        let id = self.tree.add_element(self.cursor(), tag);
        self.stack.push(id);
        self
    }

    /// Append an empty element child, leaving the cursor in place.
    pub fn elem(mut self, tag: &str) -> Self {
        self.tree.add_element(self.cursor(), tag);
        self
    }

    /// Append a text child, leaving the cursor in place.
    pub fn text(mut self, value: &str) -> Self {
        self.tree.add_text(self.cursor(), value);
        self
    }

    /// Shorthand for `open(tag).text(value).close()`.
    pub fn leaf_text(self, tag: &str, value: &str) -> Self {
        self.open(tag).text(value).close()
    }

    /// Move the cursor back to the parent element.
    ///
    /// # Panics
    /// Panics when called at the root.
    pub fn close(mut self) -> Self {
        assert!(self.stack.len() > 1, "close() called at the root");
        self.stack.pop();
        self
    }

    /// Finish, returning the tree. Any elements still open are implicitly
    /// closed.
    pub fn build(self) -> XmlTree {
        self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_structure() {
        let t = TreeBuilder::new("r")
            .open("a")
            .text("x")
            .close()
            .elem("b")
            .build();
        assert_eq!(t.to_xml(), "<r><a>x</a><b/></r>");
    }

    #[test]
    fn unclosed_elements_are_fine() {
        let t = TreeBuilder::new("r").open("a").open("b").build();
        assert_eq!(t.to_xml(), "<r><a><b/></a></r>");
    }

    #[test]
    #[should_panic(expected = "close() called at the root")]
    fn close_at_root_panics() {
        let _ = TreeBuilder::new("r").close();
    }
}
