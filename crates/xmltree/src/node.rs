use std::fmt;
use std::sync::OnceLock;

use crate::symbol::{SymbolTable, TagId};

/// Identifier of a node within one [`XmlTree`].
///
/// Ids are dense indexes into the tree's arena. They are stable for the
/// lifetime of the tree — removing is not supported, so an id handed out once
/// stays valid — which makes them a faithful stand-in for the paper's
/// abstract node ids in `dom(T)`. Freezing / CSR compaction never renumbers:
/// `dom(T)` is invariant under [`XmlTree::freeze`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The numeric index of this id in its tree's arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct an id from an arena index (use only with indexes obtained
    /// from [`NodeId::index`] on the same tree).
    pub fn from_index(i: usize) -> Self {
        let i = u32::try_from(i).expect("tree larger than u32::MAX nodes");
        assert_ne!(i, NIL, "tree larger than u32::MAX - 1 nodes");
        NodeId(i)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Niche index meaning "no node" in the flat link fields.
const NIL: u32 = u32::MAX;
/// Tag slot value marking a text node (real [`TagId`]s are dense from 0).
const TEXT: u32 = u32::MAX;

/// One flat arena record: 32 bytes, no heap ownership. Tags are interned
/// [`TagId`]s, text payloads are byte ranges into the tree's shared buffer,
/// and child structure lives in intrusive first/last-child + next-sibling
/// links that [`XmlTree::freeze`] compacts into CSR spans.
#[derive(Clone, Copy, Debug)]
struct NodeRec {
    parent: u32,
    next_sibling: u32,
    first_child: u32,
    last_child: u32,
    child_count: u32,
    /// `TagId` for elements, [`TEXT`] for text nodes.
    tag: u32,
    text_start: u32,
    text_len: u32,
}

/// What a node is: an element with a tag, or a text (PCDATA) leaf. Borrowed
/// from the tree's interned tag table / shared text buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind<'a> {
    /// An element node labeled with an element-type tag.
    Element(&'a str),
    /// A text node carrying a string (PCDATA) value. Always a leaf.
    Text(&'a str),
}

/// Compressed-sparse-row view of the child lists: all children of all nodes
/// in one contiguous array, each parent owning the span
/// `edges[spans[p] .. spans[p] + child_count(p)]`. Built lazily on first
/// read after a mutation (see [`XmlTree::freeze`]).
#[derive(Clone, Debug)]
struct Csr {
    edges: Vec<NodeId>,
    spans: Vec<u32>,
}

/// Label-offset index over the CSR: per parent, the same child span as
/// [`Csr`] but **stably sorted by tag**, with a parallel array of the tags.
/// Within one parent the children of each tag form a contiguous run in
/// document order, so "the `k`-th child labeled `t`" is a binary search for
/// the run plus an offset — `O(log c)` instead of the `O(c)` sibling scan —
/// which is what canonical-position navigation on the invert hot path does
/// per step. Built lazily on the first wide-fanout lookup (small parents
/// are cheaper to scan; see [`XmlTree::nth_child_with_tag_id`]).
#[derive(Clone, Debug)]
struct TagIndex {
    /// Children per parent span, stably sorted by tag slot value.
    edges: Vec<NodeId>,
    /// `tags[i]` is the tag slot of `edges[i]` (text nodes sort last).
    tags: Vec<u32>,
}

/// Fan-out at or below this uses the linear sibling scan even when an index
/// exists: for a handful of children the scan is faster than two binary
/// searches, and most real parents are small.
const SMALL_FANOUT: usize = 16;

/// An ordered, node-labeled XML tree with stable node ids, stored as a
/// struct-of-arrays arena.
///
/// The tree always has a root element (created by [`XmlTree::new`]). Nodes
/// are appended with [`XmlTree::add_element`] / [`XmlTree::add_text`] and are
/// never removed, so every [`NodeId`] stays valid. Appends maintain cheap
/// intrusive sibling links; the first traversal after a batch of mutations
/// compacts them into CSR spans ([`XmlTree::freeze`]), after which
/// [`XmlTree::children`] is a contiguous slice.
#[derive(Clone, Debug)]
pub struct XmlTree {
    symbols: SymbolTable,
    nodes: Vec<NodeRec>,
    text: String,
    csr: OnceLock<Csr>,
    tag_index: OnceLock<TagIndex>,
}

impl XmlTree {
    /// Create a tree whose root element is labeled `root_tag`.
    pub fn new(root_tag: impl AsRef<str>) -> Self {
        Self::with_capacity(root_tag, 0, 0)
    }

    /// Create a tree with pre-reserved arena capacity: `nodes` node records
    /// and `text_bytes` bytes of text payload. Parsers and instance mappings
    /// that know (or can estimate) the output size use this to avoid
    /// reallocation during construction.
    pub fn with_capacity(root_tag: impl AsRef<str>, nodes: usize, text_bytes: usize) -> Self {
        let mut symbols = SymbolTable::new();
        let tag = symbols.intern(root_tag.as_ref());
        let mut node_vec = Vec::with_capacity(nodes.max(1));
        node_vec.push(NodeRec {
            parent: NIL,
            next_sibling: NIL,
            first_child: NIL,
            last_child: NIL,
            child_count: 0,
            tag: tag.0,
            text_start: 0,
            text_len: 0,
        });
        XmlTree {
            symbols,
            nodes: node_vec,
            text: String::with_capacity(text_bytes),
            csr: OnceLock::new(),
            tag_index: OnceLock::new(),
        }
    }

    /// Reserve capacity for at least `nodes` more node records and
    /// `text_bytes` more bytes of text payload.
    pub fn reserve(&mut self, nodes: usize, text_bytes: usize) {
        self.nodes.reserve(nodes);
        self.text.reserve(text_bytes);
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes in the tree (elements and text nodes), i.e. `|dom(T)|`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff the tree consists of just the root element.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Total bytes of text (PCDATA) payload stored in the shared buffer.
    pub fn text_bytes(&self) -> usize {
        self.text.len()
    }

    /// Intern a tag in this tree's symbol table without creating a node.
    /// Use with [`XmlTree::add_element_tag`] to build large documents
    /// without per-node string hashing.
    pub fn intern_tag(&mut self, tag: &str) -> TagId {
        self.symbols.intern(tag)
    }

    /// The id of an already-interned tag, if any. A tag that was never
    /// interned labels no node of this tree.
    pub fn tag_id(&self, tag: &str) -> Option<TagId> {
        self.symbols.get(tag)
    }

    /// The tag string of an interned [`TagId`].
    pub fn tag_name(&self, tag: TagId) -> &str {
        self.symbols.name(tag)
    }

    fn rec(&self, id: NodeId) -> &NodeRec {
        &self.nodes[id.index()]
    }

    /// Drop the CSR cache and its label-offset index (called by every
    /// mutation).
    fn invalidate(&mut self) {
        if self.csr.get_mut().is_some() {
            self.csr = OnceLock::new();
        }
        if self.tag_index.get_mut().is_some() {
            self.tag_index = OnceLock::new();
        }
    }

    fn build_csr(&self) -> Csr {
        let n = self.nodes.len();
        let mut spans = Vec::with_capacity(n);
        let mut edges = Vec::with_capacity(n.saturating_sub(1));
        for rec in &self.nodes {
            spans.push(edges.len() as u32);
            let mut c = rec.first_child;
            while c != NIL {
                edges.push(NodeId(c));
                c = self.nodes[c as usize].next_sibling;
            }
        }
        Csr { edges, spans }
    }

    fn csr(&self) -> &Csr {
        self.csr.get_or_init(|| self.build_csr())
    }

    /// Compact the intrusive sibling links into CSR spans now, so later
    /// reads pay nothing. Traversal accessors ([`XmlTree::children`] et al.)
    /// do this lazily on first use; calling `freeze` is never required for
    /// correctness — mutations after a freeze simply invalidate the spans
    /// and the next read re-compacts. Node ids, document order and equality
    /// are invariant under freezing.
    pub fn freeze(&mut self) {
        if self.csr.get_mut().is_none() {
            let csr = self.build_csr();
            let _ = self.csr.set(csr);
        }
    }

    /// Append a new element labeled `tag` as the last child of `parent`.
    pub fn add_element(&mut self, parent: NodeId, tag: impl AsRef<str>) -> NodeId {
        let tag = self.symbols.intern(tag.as_ref());
        self.add_element_tag(parent, tag)
    }

    /// Append a new element with a pre-interned tag as the last child of
    /// `parent`. This is the allocation-free hot path: no hashing, no string
    /// copy, one arena push plus a link splice.
    pub fn add_element_tag(&mut self, parent: NodeId, tag: TagId) -> NodeId {
        debug_assert!(tag.index() < self.symbols.len(), "foreign TagId");
        self.push_rec(parent, tag.0, 0, 0)
    }

    /// Append a new text node with string `value` as the last child of
    /// `parent`. The bytes are copied into the tree's shared text buffer.
    pub fn add_text(&mut self, parent: NodeId, value: impl AsRef<str>) -> NodeId {
        let v = value.as_ref();
        let start = u32::try_from(self.text.len()).expect("text buffer larger than u32::MAX");
        let len = u32::try_from(v.len()).expect("text value larger than u32::MAX");
        let _ = start.checked_add(len).expect("text buffer overflows u32");
        self.text.push_str(v);
        self.push_rec(parent, TEXT, start, len)
    }

    fn push_rec(&mut self, parent: NodeId, tag: u32, text_start: u32, text_len: u32) -> NodeId {
        self.invalidate();
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeRec {
            parent: parent.0,
            next_sibling: NIL,
            first_child: NIL,
            last_child: NIL,
            child_count: 0,
            tag,
            text_start,
            text_len,
        });
        let prev_last = self.nodes[parent.index()].last_child;
        if prev_last == NIL {
            self.nodes[parent.index()].first_child = id.0;
        } else {
            self.nodes[prev_last as usize].next_sibling = id.0;
        }
        let p = &mut self.nodes[parent.index()];
        p.last_child = id.0;
        p.child_count += 1;
        id
    }

    /// Insert a new element labeled `tag` as the `pos`-th (0-based) child of
    /// `parent`, shifting later siblings right (`pos` clamps to the end).
    pub fn insert_element(&mut self, parent: NodeId, pos: usize, tag: impl AsRef<str>) -> NodeId {
        let tag = self.symbols.intern(tag.as_ref());
        self.invalidate();
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeRec {
            parent: parent.0,
            next_sibling: NIL,
            first_child: NIL,
            last_child: NIL,
            child_count: 0,
            tag: tag.0,
            text_start: 0,
            text_len: 0,
        });
        // Find the splice point: the (pos-1)-th child, or None for the front.
        let mut before = NIL;
        let mut cur = self.nodes[parent.index()].first_child;
        for _ in 0..pos {
            if cur == NIL {
                break;
            }
            before = cur;
            cur = self.nodes[cur as usize].next_sibling;
        }
        if before == NIL {
            let first = self.nodes[parent.index()].first_child;
            self.nodes[id.index()].next_sibling = first;
            self.nodes[parent.index()].first_child = id.0;
        } else {
            let after = self.nodes[before as usize].next_sibling;
            self.nodes[id.index()].next_sibling = after;
            self.nodes[before as usize].next_sibling = id.0;
        }
        let p = &mut self.nodes[parent.index()];
        if p.last_child == before || p.last_child == NIL {
            p.last_child = id.0;
        }
        p.child_count += 1;
        id
    }

    /// Reorder the children of `parent` to the given permutation of its
    /// current child list.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of the current children.
    pub fn reorder_children(&mut self, parent: NodeId, order: &[NodeId]) {
        let current: Vec<NodeId> = self.children_linked(parent).collect();
        assert_eq!(current.len(), order.len(), "reorder: wrong arity");
        let mut sorted_a = current;
        let mut sorted_b: Vec<NodeId> = order.to_vec();
        sorted_a.sort_unstable();
        sorted_b.sort_unstable();
        assert_eq!(sorted_a, sorted_b, "reorder: not a permutation");
        self.invalidate();
        for w in order.windows(2) {
            self.nodes[w[0].index()].next_sibling = w[1].0;
        }
        if let (Some(&first), Some(&last)) = (order.first(), order.last()) {
            self.nodes[last.index()].next_sibling = NIL;
            let p = &mut self.nodes[parent.index()];
            p.first_child = first.0;
            p.last_child = last.0;
        }
    }

    /// The node's kind (element or text), borrowed from the arena.
    pub fn kind(&self, id: NodeId) -> NodeKind<'_> {
        let r = self.rec(id);
        if r.tag == TEXT {
            NodeKind::Text(self.text_slice(r))
        } else {
            NodeKind::Element(self.symbols.name(TagId(r.tag)))
        }
    }

    fn text_slice(&self, r: &NodeRec) -> &str {
        &self.text[r.text_start as usize..(r.text_start + r.text_len) as usize]
    }

    /// The element tag of `id`, or `None` for a text node.
    pub fn tag(&self, id: NodeId) -> Option<&str> {
        let r = self.rec(id);
        if r.tag == TEXT {
            None
        } else {
            Some(self.symbols.name(TagId(r.tag)))
        }
    }

    /// The interned tag id of `id`, or `None` for a text node.
    pub fn node_tag_id(&self, id: NodeId) -> Option<TagId> {
        let r = self.rec(id);
        if r.tag == TEXT {
            None
        } else {
            Some(TagId(r.tag))
        }
    }

    /// The string value of `id`, or `None` for an element node.
    pub fn text_value(&self, id: NodeId) -> Option<&str> {
        let r = self.rec(id);
        if r.tag == TEXT {
            Some(self.text_slice(r))
        } else {
            None
        }
    }

    /// `true` iff `id` is a text node.
    pub fn is_text(&self, id: NodeId) -> bool {
        self.rec(id).tag == TEXT
    }

    /// The ordered children of `id`, as a contiguous CSR span.
    ///
    /// The first call after a mutation compacts the sibling links into CSR
    /// form (O(|T|), amortized over the whole read phase); subsequent calls
    /// are two array lookups.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        let csr = self.csr();
        let start = csr.spans[id.index()] as usize;
        &csr.edges[start..start + self.rec(id).child_count as usize]
    }

    /// Number of children of `id` (O(1), no CSR required).
    pub fn child_count(&self, id: NodeId) -> usize {
        self.rec(id).child_count as usize
    }

    /// The ordered children of `id` via the intrusive links, without
    /// touching (or building) the CSR cache. Internal mutation helpers use
    /// this to avoid invalidation churn.
    fn children_linked(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut cur = self.rec(id).first_child;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let out = NodeId(cur);
            cur = self.nodes[cur as usize].next_sibling;
            Some(out)
        })
    }

    /// The parent of `id` (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        let p = self.rec(id).parent;
        (p != NIL).then_some(NodeId(p))
    }

    /// The element children of `id` with tag `tag`, in document order.
    pub fn children_with_tag<'a>(
        &'a self,
        id: NodeId,
        tag: &str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        let want = self.symbols.get(tag).map(|t| t.0);
        self.children(id)
            .iter()
            .copied()
            .filter(move |&c| want == Some(self.nodes[c.index()].tag))
    }

    /// The element children of `id` with the given interned tag, in document
    /// order — the integer-compare fast path of
    /// [`XmlTree::children_with_tag`].
    pub fn children_with_tag_id(
        &self,
        id: NodeId,
        tag: TagId,
    ) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id)
            .iter()
            .copied()
            .filter(move |&c| self.nodes[c.index()].tag == tag.0)
    }

    fn build_tag_index(&self) -> TagIndex {
        let csr = self.csr();
        let mut edges = csr.edges.clone();
        // Stable per-span sort by tag: within a parent, each tag's children
        // stay in document order, so run offset == same-label position.
        for (p, rec) in self.nodes.iter().enumerate() {
            let start = csr.spans[p] as usize;
            let end = start + rec.child_count as usize;
            edges[start..end].sort_by_key(|&c| self.nodes[c.index()].tag);
        }
        let tags = edges.iter().map(|&c| self.nodes[c.index()].tag).collect();
        TagIndex { edges, tags }
    }

    /// The `k`-th (0-based) element child of `id` labeled `tag`, in document
    /// order — `children_with_tag_id(id, tag).nth(k)` without the sibling
    /// scan.
    ///
    /// Small fan-outs use the linear scan directly. The first lookup on a
    /// wide parent builds a per-node label-offset index over the CSR
    /// (children grouped by tag; `O(|T| log c)`, cached until the next
    /// mutation), after which every canonical-position step is a binary
    /// search — the invert hot path's `nth(k)` stops being `O(c)`.
    pub fn nth_child_with_tag_id(&self, id: NodeId, tag: TagId, k: usize) -> Option<NodeId> {
        let count = self.rec(id).child_count as usize;
        if k >= count {
            return None;
        }
        if count <= SMALL_FANOUT {
            return self.children_with_tag_id(id, tag).nth(k);
        }
        let idx = self.tag_index.get_or_init(|| self.build_tag_index());
        let start = self.csr().spans[id.index()] as usize;
        let span = &idx.tags[start..start + count];
        let lo = span.partition_point(|&t| t < tag.0);
        let hi = span.partition_point(|&t| t <= tag.0);
        idx.edges[start + lo..start + hi].get(k).copied()
    }

    /// 1-based position of `id` among its same-tag siblings (the paper's
    /// `position()` for a step labeled with `id`'s tag). The root has
    /// position 1. Text nodes are counted among text siblings.
    pub fn position_among_same_label(&self, id: NodeId) -> usize {
        let Some(p) = self.parent(id) else { return 1 };
        let me = self.rec(id).tag;
        let mut pos = 0;
        for &c in self.children(p) {
            if self.nodes[c.index()].tag == me {
                pos += 1;
            }
            if c == id {
                return pos;
            }
        }
        unreachable!("node not found among its parent's children")
    }

    /// Depth of `id` (root is 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Preorder (document-order) traversal of the subtree rooted at `id`.
    /// Allocation-free: walks the intrusive links directly.
    pub fn descendants_or_self(&self, id: NodeId) -> Preorder<'_> {
        Preorder {
            tree: self,
            next: Some(id),
            origin: id,
        }
    }

    /// Preorder traversal of the whole document.
    pub fn preorder(&self) -> Preorder<'_> {
        self.descendants_or_self(self.root())
    }

    /// Number of nodes in the subtree rooted at `id`.
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.descendants_or_self(id).count()
    }

    /// The tags on the path from the root to `id`, inclusive (text node
    /// rendered as `#text`).
    pub fn label_path(&self, id: NodeId) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            out.push(self.tag(c).unwrap_or("#text").to_string());
            cur = self.parent(c);
        }
        out.reverse();
        out
    }

    /// Paper equality: `T1 = T2` iff they are isomorphic by an isomorphism
    /// that is the identity on string values (same shape, tags and text —
    /// node ids are ignored).
    pub fn equals(&self, other: &XmlTree) -> bool {
        self.subtree_equals(self.root(), other, other.root())
    }

    /// Paper equality of two subtrees (`n1 = n2` in the paper's notation).
    ///
    /// Since preorder plus per-node arity determines a tree uniquely, two
    /// zipped preorder walks suffice — iterative, so very deep documents are
    /// fine.
    pub fn subtree_equals(&self, a: NodeId, other: &XmlTree, b: NodeId) -> bool {
        let mut ita = self.descendants_or_self(a);
        let mut itb = other.descendants_or_self(b);
        loop {
            match (ita.next(), itb.next()) {
                (None, None) => return true,
                (Some(x), Some(y)) => {
                    let (rx, ry) = (self.rec(x), other.rec(y));
                    if rx.child_count != ry.child_count {
                        return false;
                    }
                    match (rx.tag == TEXT, ry.tag == TEXT) {
                        (true, true) => {
                            if self.text_slice(rx) != other.text_slice(ry) {
                                return false;
                            }
                        }
                        (false, false) => {
                            if self.symbols.name(TagId(rx.tag)) != other.symbols.name(TagId(ry.tag))
                            {
                                return false;
                            }
                        }
                        _ => return false,
                    }
                }
                _ => return false,
            }
        }
    }

    /// First point where `self` and `other` differ, as a human-readable
    /// description, or `None` if the trees are equal. Useful in test
    /// diagnostics.
    pub fn first_difference(&self, other: &XmlTree) -> Option<String> {
        // Explicit stack, pushed in reverse so pops follow document order.
        let mut stack = vec![(self.root(), other.root())];
        while let Some((a, b)) = stack.pop() {
            let here = || self.label_path(a).join("/");
            match (self.kind(a), other.kind(b)) {
                (NodeKind::Text(x), NodeKind::Text(y)) => {
                    if x != y {
                        return Some(format!("at {}: text {:?} vs {:?}", here(), x, y));
                    }
                }
                (NodeKind::Element(x), NodeKind::Element(y)) => {
                    if x != y {
                        return Some(format!("at {}: tag {:?} vs {:?}", here(), x, y));
                    }
                    let (ca, cb) = (self.children(a), other.children(b));
                    if ca.len() != cb.len() {
                        return Some(format!("at {}: arity {} vs {}", here(), ca.len(), cb.len()));
                    }
                    for (&x, &y) in ca.iter().zip(cb.iter()).rev() {
                        stack.push((x, y));
                    }
                }
                (NodeKind::Text(_), NodeKind::Element(t)) => {
                    return Some(format!("at {}: text vs element <{}>", here(), t))
                }
                (NodeKind::Element(t), NodeKind::Text(_)) => {
                    return Some(format!("at {}: element <{}> vs text", here(), t))
                }
            }
        }
        None
    }

    /// Count of element nodes with each tag, for quick workload statistics.
    pub fn tag_histogram(&self) -> std::collections::BTreeMap<String, usize> {
        let mut by_id = vec![0usize; self.symbols.len()];
        for rec in &self.nodes {
            if rec.tag != TEXT {
                by_id[rec.tag as usize] += 1;
            }
        }
        by_id
            .into_iter()
            .enumerate()
            .filter(|&(_, n)| n > 0)
            .map(|(i, n)| (self.symbols.name(TagId(i as u32)).to_string(), n))
            .collect()
    }

    /// Iterate over `(id, kind)` pairs in arena (allocation) order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeKind<'_>)> {
        (0..self.nodes.len()).map(|i| {
            let id = NodeId(i as u32);
            (id, self.kind(id))
        })
    }
}

/// Document-order traversal handed out by [`XmlTree::preorder`]. Walks the
/// arena's intrusive first-child / next-sibling links — no heap allocation,
/// no CSR dependency.
pub struct Preorder<'a> {
    tree: &'a XmlTree,
    next: Option<NodeId>,
    origin: NodeId,
}

impl<'a> Iterator for Preorder<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        let rec = self.tree.rec(cur);
        self.next = if rec.first_child != NIL {
            Some(NodeId(rec.first_child))
        } else {
            // Climb until a next sibling exists, stopping at the origin.
            let mut x = cur;
            loop {
                if x == self.origin {
                    break None;
                }
                let r = self.tree.rec(x);
                if r.next_sibling != NIL {
                    break Some(NodeId(r.next_sibling));
                }
                x = NodeId(r.parent);
            }
        };
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn school() -> (XmlTree, NodeId, NodeId) {
        let mut t = XmlTree::new("db");
        let class = t.add_element(t.root(), "class");
        let cno = t.add_element(class, "cno");
        t.add_text(cno, "CS331");
        (t, class, cno)
    }

    #[test]
    fn root_has_no_parent_and_depth_zero() {
        let t = XmlTree::new("r");
        assert_eq!(t.parent(t.root()), None);
        assert_eq!(t.depth(t.root()), 0);
        assert_eq!(t.tag(t.root()), Some("r"));
        assert!(t.is_empty());
    }

    #[test]
    fn add_children_preserves_order() {
        let mut t = XmlTree::new("r");
        let a = t.add_element(t.root(), "a");
        let b = t.add_element(t.root(), "b");
        let c = t.add_element(t.root(), "a");
        assert_eq!(t.children(t.root()), &[a, b, c]);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        let with_a: Vec<_> = t.children_with_tag(t.root(), "a").collect();
        assert_eq!(with_a, vec![a, c]);
        // Unknown tags match nothing (and never alias text nodes).
        t.add_text(t.root(), "x");
        assert_eq!(t.children_with_tag(t.root(), "zzz").count(), 0);
    }

    #[test]
    fn interned_tag_fast_paths_agree_with_strings() {
        let mut t = XmlTree::new("r");
        let a_tag = t.intern_tag("a");
        let a = t.add_element_tag(t.root(), a_tag);
        t.add_element(t.root(), "b");
        let c = t.add_element(t.root(), "a");
        assert_eq!(t.tag_id("a"), Some(a_tag));
        assert_eq!(t.tag_name(a_tag), "a");
        assert_eq!(t.node_tag_id(a), Some(a_tag));
        let by_id: Vec<_> = t.children_with_tag_id(t.root(), a_tag).collect();
        let by_str: Vec<_> = t.children_with_tag(t.root(), "a").collect();
        assert_eq!(by_id, by_str);
        assert_eq!(by_id, vec![a, c]);
        let txt = t.add_text(t.root(), "v");
        assert_eq!(t.node_tag_id(txt), None);
    }

    #[test]
    fn nth_child_with_tag_id_agrees_with_scan() {
        // Both below and above the SMALL_FANOUT cutoff, against text nodes
        // and interleaved tags, including after mutations (invalidation).
        for width in [3usize, 5, 40, 200] {
            let mut t = XmlTree::new("r");
            let a = t.intern_tag("a");
            let b = t.intern_tag("b");
            for i in 0..width {
                if i % 3 == 0 {
                    t.add_element_tag(t.root(), b);
                } else {
                    t.add_element_tag(t.root(), a);
                }
                if i % 5 == 0 {
                    t.add_text(t.root(), "x");
                }
            }
            for tag in [a, b] {
                let scan: Vec<_> = t.children_with_tag_id(t.root(), tag).collect();
                for k in 0..scan.len() + 2 {
                    assert_eq!(
                        t.nth_child_with_tag_id(t.root(), tag, k),
                        scan.get(k).copied(),
                        "width {width}, k {k}"
                    );
                }
            }
            // Mutate (invalidates the index), then re-query.
            let extra = t.add_element_tag(t.root(), a);
            let scan: Vec<_> = t.children_with_tag_id(t.root(), a).collect();
            assert_eq!(
                t.nth_child_with_tag_id(t.root(), a, scan.len() - 1),
                Some(extra)
            );
        }
    }

    #[test]
    fn nth_child_with_tag_id_unknown_tag_and_empty() {
        let mut t = XmlTree::new("r");
        let ghost = t.intern_tag("ghost");
        assert_eq!(t.nth_child_with_tag_id(t.root(), ghost, 0), None);
        let a = t.intern_tag("a");
        for _ in 0..50 {
            t.add_element_tag(t.root(), a);
        }
        assert_eq!(t.nth_child_with_tag_id(t.root(), ghost, 0), None);
        assert_eq!(t.nth_child_with_tag_id(t.root(), a, 50), None);
        assert!(t.nth_child_with_tag_id(t.root(), a, 49).is_some());
    }

    #[test]
    fn insert_element_at_position() {
        let mut t = XmlTree::new("r");
        let a = t.add_element(t.root(), "a");
        let c = t.add_element(t.root(), "c");
        let b = t.insert_element(t.root(), 1, "b");
        assert_eq!(t.children(t.root()), &[a, b, c]);
        // Out-of-range positions clamp to the end.
        let d = t.insert_element(t.root(), 99, "d");
        assert_eq!(t.children(t.root()).last(), Some(&d));
        // Insertion at the front relinks first_child.
        let z = t.insert_element(t.root(), 0, "z");
        assert_eq!(t.children(t.root()), &[z, a, b, c, d]);
        // And appends after a front-insert still land at the end.
        let e = t.add_element(t.root(), "e");
        assert_eq!(t.children(t.root()), &[z, a, b, c, d, e]);
    }

    #[test]
    fn text_nodes_are_leaves_with_values() {
        let (t, _, cno) = school();
        let txt = t.children(cno)[0];
        assert!(t.is_text(txt));
        assert_eq!(t.text_value(txt), Some("CS331"));
        assert_eq!(t.tag(txt), None);
        assert!(t.children(txt).is_empty());
    }

    #[test]
    fn kind_borrows_tag_and_text() {
        let (t, class, cno) = school();
        assert_eq!(t.kind(class), NodeKind::Element("class"));
        let txt = t.children(cno)[0];
        assert_eq!(t.kind(txt), NodeKind::Text("CS331"));
    }

    #[test]
    fn position_among_same_label() {
        let mut t = XmlTree::new("r");
        let a1 = t.add_element(t.root(), "a");
        let b = t.add_element(t.root(), "b");
        let a2 = t.add_element(t.root(), "a");
        assert_eq!(t.position_among_same_label(a1), 1);
        assert_eq!(t.position_among_same_label(b), 1);
        assert_eq!(t.position_among_same_label(a2), 2);
        assert_eq!(t.position_among_same_label(t.root()), 1);
        // Text nodes count among text siblings.
        let x1 = t.add_text(t.root(), "x");
        let x2 = t.add_text(t.root(), "y");
        assert_eq!(t.position_among_same_label(x1), 1);
        assert_eq!(t.position_among_same_label(x2), 2);
    }

    #[test]
    fn preorder_is_document_order() {
        let mut t = XmlTree::new("r");
        let a = t.add_element(t.root(), "a");
        let a1 = t.add_element(a, "a1");
        let a2 = t.add_element(a, "a2");
        let b = t.add_element(t.root(), "b");
        let order: Vec<_> = t.preorder().collect();
        assert_eq!(order, vec![t.root(), a, a1, a2, b]);
        assert_eq!(t.subtree_size(a), 3);
        // Subtree traversal stops at the subtree boundary.
        let sub: Vec<_> = t.descendants_or_self(a).collect();
        assert_eq!(sub, vec![a, a1, a2]);
    }

    #[test]
    fn freeze_preserves_ids_order_and_equality() {
        let mut t = XmlTree::new("r");
        let a = t.add_element(t.root(), "a");
        t.add_text(a, "x");
        t.add_element(t.root(), "b");
        let before: Vec<_> = t.preorder().collect();
        let unfrozen = t.clone();
        t.freeze();
        let after: Vec<_> = t.preorder().collect();
        assert_eq!(before, after, "dom(T) and document order are stable");
        assert!(t.equals(&unfrozen));
        assert_eq!(t.to_xml(), unfrozen.to_xml());
    }

    #[test]
    fn interleaved_mutation_and_reads_stay_consistent() {
        let mut t = XmlTree::new("r");
        let a = t.add_element(t.root(), "a");
        assert_eq!(t.children(t.root()), &[a]); // builds CSR
        let b = t.add_element(t.root(), "b"); // invalidates CSR
        assert_eq!(t.children(t.root()), &[a, b]); // rebuilds
        let c = t.add_element(a, "c");
        assert_eq!(t.children(a), &[c]);
        assert_eq!(t.children(t.root()), &[a, b]);
    }

    #[test]
    fn equality_ignores_ids_but_not_order() {
        let mut t1 = XmlTree::new("r");
        t1.add_element(t1.root(), "a");
        t1.add_element(t1.root(), "b");

        // Same shape, built in a different insertion order internally.
        let mut t2 = XmlTree::new("r");
        t2.add_element(t2.root(), "a");
        t2.add_element(t2.root(), "b");
        assert!(t1.equals(&t2));
        assert_eq!(t1.first_difference(&t2), None);

        let mut t3 = XmlTree::new("r");
        t3.add_element(t3.root(), "b");
        t3.add_element(t3.root(), "a");
        assert!(!t1.equals(&t3));
        assert!(t1.first_difference(&t3).unwrap().contains("tag"));
    }

    #[test]
    fn equality_across_different_symbol_tables() {
        // Same document, but tags interned in different orders, so the raw
        // TagIds differ — equality must compare names, not ids.
        let mut t1 = XmlTree::new("r");
        t1.add_element(t1.root(), "a");
        t1.add_element(t1.root(), "b");
        let mut t2 = XmlTree::new("r");
        t2.intern_tag("zzz");
        t2.intern_tag("b");
        t2.add_element(t2.root(), "a");
        t2.add_element(t2.root(), "b");
        assert!(t1.equals(&t2));
    }

    #[test]
    fn equality_compares_text_values() {
        let mut t1 = XmlTree::new("r");
        t1.add_text(t1.root(), "x");
        let mut t2 = XmlTree::new("r");
        t2.add_text(t2.root(), "y");
        assert!(!t1.equals(&t2));
        assert!(t1.first_difference(&t2).unwrap().contains("text"));
        let mut t3 = XmlTree::new("r");
        t3.add_text(t3.root(), "x");
        assert!(t1.equals(&t3));
    }

    #[test]
    fn equality_detects_arity_and_kind_mismatch() {
        let mut t1 = XmlTree::new("r");
        t1.add_element(t1.root(), "a");
        let t2 = XmlTree::new("r");
        assert!(!t1.equals(&t2));
        assert!(t1.first_difference(&t2).unwrap().contains("arity"));

        let mut t3 = XmlTree::new("r");
        t3.add_text(t3.root(), "a");
        assert!(!t1.equals(&t3));
    }

    #[test]
    fn reorder_children_permutes() {
        let mut t = XmlTree::new("r");
        let a = t.add_element(t.root(), "a");
        let b = t.add_element(t.root(), "b");
        t.reorder_children(t.root(), &[b, a]);
        assert_eq!(t.children(t.root()), &[b, a]);
        // Appends after a reorder land after the new last child.
        let c = t.add_element(t.root(), "c");
        assert_eq!(t.children(t.root()), &[b, a, c]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn reorder_rejects_non_permutation() {
        let mut t = XmlTree::new("r");
        let a = t.add_element(t.root(), "a");
        t.add_element(t.root(), "b");
        t.reorder_children(t.root(), &[a, a]);
    }

    #[test]
    fn label_path_and_histogram() {
        let (t, class, cno) = school();
        assert_eq!(t.label_path(cno), vec!["db", "class", "cno"]);
        assert_eq!(t.label_path(class), vec!["db", "class"]);
        let h = t.tag_histogram();
        assert_eq!(h.get("class"), Some(&1));
        assert_eq!(h.get("cno"), Some(&1));
        assert_eq!(h.get("#text"), None);
    }

    #[test]
    fn iter_visits_arena_order() {
        let (t, _, _) = school();
        let kinds: Vec<_> = t.iter().map(|(_, k)| k).collect();
        assert_eq!(
            kinds,
            vec![
                NodeKind::Element("db"),
                NodeKind::Element("class"),
                NodeKind::Element("cno"),
                NodeKind::Text("CS331"),
            ]
        );
    }

    #[test]
    fn text_bytes_counts_payload() {
        let (t, _, _) = school();
        assert_eq!(t.text_bytes(), "CS331".len());
    }

    #[test]
    fn deep_tree_equality_does_not_overflow() {
        let mut t1 = XmlTree::new("r");
        let mut t2 = XmlTree::new("r");
        let (mut c1, mut c2) = (t1.root(), t2.root());
        for _ in 0..200_000 {
            c1 = t1.add_element(c1, "d");
            c2 = t2.add_element(c2, "d");
        }
        assert!(t1.equals(&t2));
        assert!(t1.first_difference(&t2).is_none());
    }
}
