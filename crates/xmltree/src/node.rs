use std::fmt;
use std::sync::Arc;

/// Identifier of a node within one [`XmlTree`].
///
/// Ids are dense indexes into the tree's arena. They are stable for the
/// lifetime of the tree — removing is not supported, so an id handed out once
/// stays valid — which makes them a faithful stand-in for the paper's
/// abstract node ids in `dom(T)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The numeric index of this id in its tree's arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct an id from an arena index (use only with indexes obtained
    /// from [`NodeId::index`] on the same tree).
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("tree larger than u32::MAX nodes"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node is: an element with a tag, or a text (PCDATA) leaf.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// An element node labeled with an element-type tag. Tags are shared
    /// `Arc<str>`s so that the many nodes of a large document do not each
    /// own a copy of their tag.
    Element(Arc<str>),
    /// A text node carrying a string (PCDATA) value. Always a leaf.
    Text(String),
}

/// One node of an [`XmlTree`].
#[derive(Clone, Debug)]
pub struct Node {
    pub(crate) kind: NodeKind,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
}

impl Node {
    /// The node's kind (element or text).
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }

    /// The parent id, or `None` for the root.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// The ordered children.
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }
}

/// An ordered, node-labeled XML tree with stable node ids.
///
/// The tree always has a root element (created by [`XmlTree::new`]). Nodes
/// are appended with [`XmlTree::add_element`] / [`XmlTree::add_text`] and are
/// never removed, so every [`NodeId`] stays valid.
#[derive(Clone, Debug)]
pub struct XmlTree {
    nodes: Vec<Node>,
    root: NodeId,
}

impl XmlTree {
    /// Create a tree whose root element is labeled `root_tag`.
    pub fn new(root_tag: impl Into<Arc<str>>) -> Self {
        let root = Node {
            kind: NodeKind::Element(root_tag.into()),
            parent: None,
            children: Vec::new(),
        };
        XmlTree {
            nodes: vec![root],
            root: NodeId(0),
        }
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes in the tree (elements and text nodes), i.e. `|dom(T)|`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff the tree consists of just the root element.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.nodes[0].children.is_empty()
    }

    /// Access a node.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this tree.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Append a new element labeled `tag` as the last child of `parent`.
    pub fn add_element(&mut self, parent: NodeId, tag: impl Into<Arc<str>>) -> NodeId {
        self.push_node(parent, NodeKind::Element(tag.into()))
    }

    /// Append a new text node with string `value` as the last child of
    /// `parent`.
    pub fn add_text(&mut self, parent: NodeId, value: impl Into<String>) -> NodeId {
        self.push_node(parent, NodeKind::Text(value.into()))
    }

    /// Insert a new element labeled `tag` as the `pos`-th (0-based) child of
    /// `parent`, shifting later siblings right.
    pub fn insert_element(
        &mut self,
        parent: NodeId,
        pos: usize,
        tag: impl Into<Arc<str>>,
    ) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node {
            kind: NodeKind::Element(tag.into()),
            parent: Some(parent),
            children: Vec::new(),
        });
        let siblings = &mut self.nodes[parent.index()].children;
        let pos = pos.min(siblings.len());
        siblings.insert(pos, id);
        id
    }

    fn push_node(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node {
            kind,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Reorder the children of `parent` to the given permutation of its
    /// current child list.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of the current children.
    pub fn reorder_children(&mut self, parent: NodeId, order: &[NodeId]) {
        let current = &self.nodes[parent.index()].children;
        assert_eq!(current.len(), order.len(), "reorder: wrong arity");
        let mut sorted_a: Vec<NodeId> = current.clone();
        let mut sorted_b: Vec<NodeId> = order.to_vec();
        sorted_a.sort_unstable();
        sorted_b.sort_unstable();
        assert_eq!(sorted_a, sorted_b, "reorder: not a permutation");
        self.nodes[parent.index()].children = order.to_vec();
    }

    /// The element tag of `id`, or `None` for a text node.
    pub fn tag(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element(t) => Some(t),
            NodeKind::Text(_) => None,
        }
    }

    /// The string value of `id`, or `None` for an element node.
    pub fn text_value(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element(_) => None,
            NodeKind::Text(v) => Some(v),
        }
    }

    /// `true` iff `id` is a text node.
    pub fn is_text(&self, id: NodeId) -> bool {
        matches!(self.node(id).kind, NodeKind::Text(_))
    }

    /// The ordered children of `id`.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// The parent of `id` (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// The element children of `id` with tag `tag`, in document order.
    pub fn children_with_tag<'a>(
        &'a self,
        id: NodeId,
        tag: &'a str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.children(id)
            .iter()
            .copied()
            .filter(move |&c| self.tag(c) == Some(tag))
    }

    /// 1-based position of `id` among its same-tag siblings (the paper's
    /// `position()` for a step labeled with `id`'s tag). The root has
    /// position 1. Text nodes are counted among text siblings.
    pub fn position_among_same_label(&self, id: NodeId) -> usize {
        let Some(p) = self.parent(id) else { return 1 };
        let me = &self.node(id).kind;
        let mut pos = 0;
        for &c in self.children(p) {
            let same = match (&self.node(c).kind, me) {
                (NodeKind::Element(a), NodeKind::Element(b)) => a == b,
                (NodeKind::Text(_), NodeKind::Text(_)) => true,
                _ => false,
            };
            if same {
                pos += 1;
            }
            if c == id {
                return pos;
            }
        }
        unreachable!("node not found among its parent's children")
    }

    /// Depth of `id` (root is 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Preorder (document-order) traversal of the subtree rooted at `id`.
    pub fn descendants_or_self(&self, id: NodeId) -> Preorder<'_> {
        Preorder {
            tree: self,
            stack: vec![id],
        }
    }

    /// Preorder traversal of the whole document.
    pub fn preorder(&self) -> Preorder<'_> {
        self.descendants_or_self(self.root)
    }

    /// Number of nodes in the subtree rooted at `id`.
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.descendants_or_self(id).count()
    }

    /// The tags on the path from the root to `id`, inclusive (text node
    /// rendered as `#text`).
    pub fn label_path(&self, id: NodeId) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            out.push(match &self.node(c).kind {
                NodeKind::Element(t) => t.to_string(),
                NodeKind::Text(_) => "#text".to_string(),
            });
            cur = self.parent(c);
        }
        out.reverse();
        out
    }

    /// Paper equality: `T1 = T2` iff they are isomorphic by an isomorphism
    /// that is the identity on string values (same shape, tags and text —
    /// node ids are ignored).
    pub fn equals(&self, other: &XmlTree) -> bool {
        self.subtree_equals(self.root, other, other.root)
    }

    /// Paper equality of two subtrees (`n1 = n2` in the paper's notation).
    pub fn subtree_equals(&self, a: NodeId, other: &XmlTree, b: NodeId) -> bool {
        // Iterative to survive very deep documents.
        let mut stack = vec![(a, b)];
        while let Some((a, b)) = stack.pop() {
            let (na, nb) = (self.node(a), other.node(b));
            match (&na.kind, &nb.kind) {
                (NodeKind::Text(x), NodeKind::Text(y)) => {
                    if x != y {
                        return false;
                    }
                }
                (NodeKind::Element(x), NodeKind::Element(y)) => {
                    if x != y || na.children.len() != nb.children.len() {
                        return false;
                    }
                    stack.extend(na.children.iter().copied().zip(nb.children.iter().copied()));
                }
                _ => return false,
            }
        }
        true
    }

    /// First point where `self` and `other` differ, as a human-readable
    /// description, or `None` if the trees are equal. Useful in test
    /// diagnostics.
    pub fn first_difference(&self, other: &XmlTree) -> Option<String> {
        self.diff_at(self.root, other, other.root)
    }

    fn diff_at(&self, a: NodeId, other: &XmlTree, b: NodeId) -> Option<String> {
        let here = || self.label_path(a).join("/");
        let (na, nb) = (self.node(a), other.node(b));
        match (&na.kind, &nb.kind) {
            (NodeKind::Text(x), NodeKind::Text(y)) => {
                if x != y {
                    return Some(format!("at {}: text {:?} vs {:?}", here(), x, y));
                }
            }
            (NodeKind::Element(x), NodeKind::Element(y)) => {
                if x != y {
                    return Some(format!("at {}: tag {:?} vs {:?}", here(), x, y));
                }
                if na.children.len() != nb.children.len() {
                    return Some(format!(
                        "at {}: arity {} vs {}",
                        here(),
                        na.children.len(),
                        nb.children.len()
                    ));
                }
                for (&ca, &cb) in na.children.iter().zip(nb.children.iter()) {
                    if let Some(d) = self.diff_at(ca, other, cb) {
                        return Some(d);
                    }
                }
            }
            (NodeKind::Text(_), NodeKind::Element(t)) => {
                return Some(format!("at {}: text vs element <{}>", here(), t))
            }
            (NodeKind::Element(t), NodeKind::Text(_)) => {
                return Some(format!("at {}: element <{}> vs text", here(), t))
            }
        }
        None
    }

    /// Count of element nodes with each tag, for quick workload statistics.
    pub fn tag_histogram(&self) -> std::collections::BTreeMap<String, usize> {
        let mut h = std::collections::BTreeMap::new();
        for (_, node) in self.iter() {
            if let NodeKind::Element(t) = &node.kind {
                *h.entry(t.to_string()).or_insert(0) += 1;
            }
        }
        h
    }

    /// Iterate over `(id, node)` pairs in arena (allocation) order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_index(i), n))
    }
}

/// Document-order traversal handed out by [`XmlTree::preorder`].
pub struct Preorder<'a> {
    tree: &'a XmlTree,
    stack: Vec<NodeId>,
}

impl<'a> Iterator for Preorder<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let children = self.tree.children(id);
        self.stack.extend(children.iter().rev().copied());
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn school() -> (XmlTree, NodeId, NodeId) {
        let mut t = XmlTree::new("db");
        let class = t.add_element(t.root(), "class");
        let cno = t.add_element(class, "cno");
        t.add_text(cno, "CS331");
        (t, class, cno)
    }

    #[test]
    fn root_has_no_parent_and_depth_zero() {
        let t = XmlTree::new("r");
        assert_eq!(t.parent(t.root()), None);
        assert_eq!(t.depth(t.root()), 0);
        assert_eq!(t.tag(t.root()), Some("r"));
        assert!(t.is_empty());
    }

    #[test]
    fn add_children_preserves_order() {
        let mut t = XmlTree::new("r");
        let a = t.add_element(t.root(), "a");
        let b = t.add_element(t.root(), "b");
        let c = t.add_element(t.root(), "a");
        assert_eq!(t.children(t.root()), &[a, b, c]);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        let with_a: Vec<_> = t.children_with_tag(t.root(), "a").collect();
        assert_eq!(with_a, vec![a, c]);
    }

    #[test]
    fn insert_element_at_position() {
        let mut t = XmlTree::new("r");
        let a = t.add_element(t.root(), "a");
        let c = t.add_element(t.root(), "c");
        let b = t.insert_element(t.root(), 1, "b");
        assert_eq!(t.children(t.root()), &[a, b, c]);
        // Out-of-range positions clamp to the end.
        let d = t.insert_element(t.root(), 99, "d");
        assert_eq!(t.children(t.root()).last(), Some(&d));
    }

    #[test]
    fn text_nodes_are_leaves_with_values() {
        let (t, _, cno) = school();
        let txt = t.children(cno)[0];
        assert!(t.is_text(txt));
        assert_eq!(t.text_value(txt), Some("CS331"));
        assert_eq!(t.tag(txt), None);
        assert!(t.children(txt).is_empty());
    }

    #[test]
    fn position_among_same_label() {
        let mut t = XmlTree::new("r");
        let a1 = t.add_element(t.root(), "a");
        let b = t.add_element(t.root(), "b");
        let a2 = t.add_element(t.root(), "a");
        assert_eq!(t.position_among_same_label(a1), 1);
        assert_eq!(t.position_among_same_label(b), 1);
        assert_eq!(t.position_among_same_label(a2), 2);
        assert_eq!(t.position_among_same_label(t.root()), 1);
    }

    #[test]
    fn preorder_is_document_order() {
        let mut t = XmlTree::new("r");
        let a = t.add_element(t.root(), "a");
        let a1 = t.add_element(a, "a1");
        let a2 = t.add_element(a, "a2");
        let b = t.add_element(t.root(), "b");
        let order: Vec<_> = t.preorder().collect();
        assert_eq!(order, vec![t.root(), a, a1, a2, b]);
        assert_eq!(t.subtree_size(a), 3);
    }

    #[test]
    fn equality_ignores_ids_but_not_order() {
        let mut t1 = XmlTree::new("r");
        t1.add_element(t1.root(), "a");
        t1.add_element(t1.root(), "b");

        // Same shape, built in a different insertion order internally.
        let mut t2 = XmlTree::new("r");
        t2.add_element(t2.root(), "a");
        t2.add_element(t2.root(), "b");
        assert!(t1.equals(&t2));
        assert_eq!(t1.first_difference(&t2), None);

        let mut t3 = XmlTree::new("r");
        t3.add_element(t3.root(), "b");
        t3.add_element(t3.root(), "a");
        assert!(!t1.equals(&t3));
        assert!(t1.first_difference(&t3).unwrap().contains("tag"));
    }

    #[test]
    fn equality_compares_text_values() {
        let mut t1 = XmlTree::new("r");
        t1.add_text(t1.root(), "x");
        let mut t2 = XmlTree::new("r");
        t2.add_text(t2.root(), "y");
        assert!(!t1.equals(&t2));
        assert!(t1.first_difference(&t2).unwrap().contains("text"));
        let mut t3 = XmlTree::new("r");
        t3.add_text(t3.root(), "x");
        assert!(t1.equals(&t3));
    }

    #[test]
    fn equality_detects_arity_and_kind_mismatch() {
        let mut t1 = XmlTree::new("r");
        t1.add_element(t1.root(), "a");
        let t2 = XmlTree::new("r");
        assert!(!t1.equals(&t2));
        assert!(t1.first_difference(&t2).unwrap().contains("arity"));

        let mut t3 = XmlTree::new("r");
        t3.add_text(t3.root(), "a");
        assert!(!t1.equals(&t3));
    }

    #[test]
    fn reorder_children_permutes() {
        let mut t = XmlTree::new("r");
        let a = t.add_element(t.root(), "a");
        let b = t.add_element(t.root(), "b");
        t.reorder_children(t.root(), &[b, a]);
        assert_eq!(t.children(t.root()), &[b, a]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn reorder_rejects_non_permutation() {
        let mut t = XmlTree::new("r");
        let a = t.add_element(t.root(), "a");
        t.add_element(t.root(), "b");
        t.reorder_children(t.root(), &[a, a]);
    }

    #[test]
    fn label_path_and_histogram() {
        let (t, class, cno) = school();
        assert_eq!(t.label_path(cno), vec!["db", "class", "cno"]);
        assert_eq!(t.label_path(class), vec!["db", "class"]);
        let h = t.tag_histogram();
        assert_eq!(h.get("class"), Some(&1));
        assert_eq!(h.get("cno"), Some(&1));
        assert_eq!(h.get("#text"), None);
    }

    #[test]
    fn deep_tree_equality_does_not_overflow() {
        let mut t1 = XmlTree::new("r");
        let mut t2 = XmlTree::new("r");
        let (mut c1, mut c2) = (t1.root(), t2.root());
        for _ in 0..200_000 {
            c1 = t1.add_element(c1, "d");
            c2 = t2.add_element(c2, "d");
        }
        assert!(t1.equals(&t2));
    }
}
