use std::collections::HashMap;
use std::fmt;

/// Interned element-tag identifier, valid within one [`SymbolTable`] (and
/// therefore within one [`crate::XmlTree`]).
///
/// Comparing two `TagId`s from the same table is equivalent to comparing the
/// tag strings, which turns per-node label checks on hot paths (validation,
/// navigation, query evaluation) into integer compares.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagId(pub(crate) u32);

impl TagId {
    /// The numeric index of this tag in its table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Interning table mapping element tags to dense [`TagId`]s.
///
/// A document has few distinct tags (one per element type of its schema), so
/// the table stays tiny even for multi-million-node trees; every element
/// node stores a 4-byte `TagId` instead of owning its tag string.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    names: Vec<Box<str>>,
    lookup: HashMap<Box<str>, TagId>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> TagId {
        if let Some(&id) = self.lookup.get(name) {
            return id;
        }
        let id = TagId(u32::try_from(self.names.len()).expect("more than u32::MAX distinct tags"));
        self.names.push(name.into());
        self.lookup.insert(name.into(), id);
        id
    }

    /// Look up an already-interned tag without interning it.
    pub fn get(&self, name: &str) -> Option<TagId> {
        self.lookup.get(name).copied()
    }

    /// The tag string of `id`.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this table.
    pub fn name(&self, id: TagId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct tags interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` iff no tag has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_ne!(a, b);
        assert_eq!(t.intern("a"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), "a");
        assert_eq!(t.name(b), "b");
        assert_eq!((a.index(), b.index()), (0, 1));
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = SymbolTable::new();
        assert!(t.is_empty());
        assert_eq!(t.get("x"), None);
        let x = t.intern("x");
        assert_eq!(t.get("x"), Some(x));
        assert_eq!(t.len(), 1);
    }
}
