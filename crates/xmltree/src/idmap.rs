use std::collections::HashMap;

use crate::NodeId;

/// The paper's (partial) node id mapping `idM()`.
///
/// An instance mapping `σd : I(S1) → I(S2)` is accompanied by a mapping that
/// sends node ids of the *target* document `σd(T)` back to the ids of the
/// *source* nodes they were copied from; it is the identity on string values.
/// Query preservation w.r.t. regular XPath is stated through this mapping:
/// `Q(T) = idM(Tr(Q)(σd(T)))`.
///
/// The map is partial: target nodes fabricated by the mapping (minimum
/// default instances, intermediate path nodes) have no source preimage.
#[derive(Clone, Debug, Default)]
pub struct IdMap {
    fwd: HashMap<NodeId, NodeId>,
    rev: HashMap<NodeId, NodeId>,
}

impl IdMap {
    /// An empty id mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that target node `tgt` was copied from source node `src`.
    ///
    /// # Panics
    /// Panics if either endpoint is already mapped — `σd` is injective
    /// (Theorem 4.1), so a bijection between mapped nodes is an invariant.
    pub fn insert(&mut self, tgt: NodeId, src: NodeId) {
        let old = self.fwd.insert(tgt, src);
        assert!(old.is_none(), "idM: target node {tgt:?} mapped twice");
        let old = self.rev.insert(src, tgt);
        assert!(old.is_none(), "idM: source node {src:?} mapped twice");
    }

    /// `idM(tgt)`: the source node `tgt` was copied from, if any.
    pub fn source_of(&self, tgt: NodeId) -> Option<NodeId> {
        self.fwd.get(&tgt).copied()
    }

    /// The target node a source node was copied to, if any (the inverse
    /// direction, useful when checking injectivity).
    pub fn target_of(&self, src: NodeId) -> Option<NodeId> {
        self.rev.get(&src).copied()
    }

    /// Number of mapped pairs.
    pub fn len(&self) -> usize {
        self.fwd.len()
    }

    /// `true` iff no pair is mapped.
    pub fn is_empty(&self) -> bool {
        self.fwd.is_empty()
    }

    /// Apply `idM` to a set of target ids, dropping unmapped ones — exactly
    /// how the paper recovers `Q(T)` from `Tr(Q)(σd(T))`.
    pub fn map_result<'a>(
        &'a self,
        ids: impl IntoIterator<Item = NodeId> + 'a,
    ) -> impl Iterator<Item = NodeId> + 'a {
        ids.into_iter().filter_map(move |id| self.source_of(id))
    }

    /// Iterate over `(target, source)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.fwd.iter().map(|(&t, &s)| (t, s))
    }

    /// Compose with another id mapping: if `self : dom(T2) → dom(T1)` and
    /// `earlier : dom(T1) → dom(T0)`, the result maps `dom(T2) → dom(T0)`.
    /// Pairs whose intermediate node is unmapped in `earlier` are dropped
    /// (the composition is partial, like its factors).
    pub fn compose(&self, earlier: &IdMap) -> IdMap {
        let mut out = IdMap::new();
        for (t, mid) in self.iter() {
            if let Some(s) = earlier.source_of(mid) {
                out.insert(t, s);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn roundtrips_both_directions() {
        let mut m = IdMap::new();
        m.insert(n(10), n(1));
        m.insert(n(11), n(2));
        assert_eq!(m.source_of(n(10)), Some(n(1)));
        assert_eq!(m.target_of(n(2)), Some(n(11)));
        assert_eq!(m.source_of(n(12)), None);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic(expected = "mapped twice")]
    fn rejects_double_target() {
        let mut m = IdMap::new();
        m.insert(n(10), n(1));
        m.insert(n(10), n(2));
    }

    #[test]
    #[should_panic(expected = "mapped twice")]
    fn rejects_double_source() {
        let mut m = IdMap::new();
        m.insert(n(10), n(1));
        m.insert(n(11), n(1));
    }

    #[test]
    fn map_result_filters_unmapped() {
        let mut m = IdMap::new();
        m.insert(n(10), n(1));
        let out: Vec<_> = m.map_result(vec![n(10), n(99)]).collect();
        assert_eq!(out, vec![n(1)]);
    }

    #[test]
    fn composition_is_partial() {
        // T2 -> T1
        let mut later = IdMap::new();
        later.insert(n(20), n(10));
        later.insert(n(21), n(11));
        // T1 -> T0, but n(11) has no preimage recorded.
        let mut earlier = IdMap::new();
        earlier.insert(n(10), n(0));
        let c = later.compose(&earlier);
        assert_eq!(c.source_of(n(20)), Some(n(0)));
        assert_eq!(c.source_of(n(21)), None);
        assert_eq!(c.len(), 1);
    }
}
