use crate::NodeId;

/// Sentinel marking "no mapping" in the dense direction vectors.
const NIL: u32 = u32::MAX;

/// The paper's (partial) node id mapping `idM()`.
///
/// An instance mapping `σd : I(S1) → I(S2)` is accompanied by a mapping that
/// sends node ids of the *target* document `σd(T)` back to the ids of the
/// *source* nodes they were copied from; it is the identity on string values.
/// Query preservation w.r.t. regular XPath is stated through this mapping:
/// `Q(T) = idM(Tr(Q)(σd(T)))`.
///
/// The map is partial: target nodes fabricated by the mapping (minimum
/// default instances, intermediate path nodes) have no source preimage.
///
/// Node ids are dense arena indexes, so both directions are stored as flat
/// vectors indexed by id — insertion and lookup are array accesses, with no
/// hashing on the apply hot path.
#[derive(Clone, Debug, Default)]
pub struct IdMap {
    /// `fwd[target] = source` (or [`NIL`]).
    fwd: Vec<u32>,
    /// `rev[source] = target` (or [`NIL`]).
    rev: Vec<u32>,
    len: usize,
}

impl IdMap {
    /// An empty id mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty mapping pre-sized for documents of `targets` / `sources`
    /// nodes, so inserts during an apply never reallocate.
    pub fn with_capacity(targets: usize, sources: usize) -> Self {
        IdMap {
            fwd: vec![NIL; targets],
            rev: vec![NIL; sources],
            len: 0,
        }
    }

    fn slot(v: &mut Vec<u32>, id: NodeId) -> &mut u32 {
        let i = id.index();
        if i >= v.len() {
            v.resize(i + 1, NIL);
        }
        &mut v[i]
    }

    /// Record that target node `tgt` was copied from source node `src`.
    ///
    /// # Panics
    /// Panics if either endpoint is already mapped — `σd` is injective
    /// (Theorem 4.1), so a bijection between mapped nodes is an invariant.
    pub fn insert(&mut self, tgt: NodeId, src: NodeId) {
        let f = Self::slot(&mut self.fwd, tgt);
        assert!(*f == NIL, "idM: target node {tgt:?} mapped twice");
        *f = src.0;
        let r = Self::slot(&mut self.rev, src);
        assert!(*r == NIL, "idM: source node {src:?} mapped twice");
        *r = tgt.0;
        self.len += 1;
    }

    /// `idM(tgt)`: the source node `tgt` was copied from, if any.
    pub fn source_of(&self, tgt: NodeId) -> Option<NodeId> {
        match self.fwd.get(tgt.index()) {
            Some(&s) if s != NIL => Some(NodeId(s)),
            _ => None,
        }
    }

    /// The target node a source node was copied to, if any (the inverse
    /// direction, useful when checking injectivity).
    pub fn target_of(&self, src: NodeId) -> Option<NodeId> {
        match self.rev.get(src.index()) {
            Some(&t) if t != NIL => Some(NodeId(t)),
            _ => None,
        }
    }

    /// Number of mapped pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no pair is mapped.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Apply `idM` to a set of target ids, dropping unmapped ones — exactly
    /// how the paper recovers `Q(T)` from `Tr(Q)(σd(T))`.
    pub fn map_result<'a>(
        &'a self,
        ids: impl IntoIterator<Item = NodeId> + 'a,
    ) -> impl Iterator<Item = NodeId> + 'a {
        ids.into_iter().filter_map(move |id| self.source_of(id))
    }

    /// Iterate over `(target, source)` pairs, ordered by target id.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.fwd
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s != NIL)
            .map(|(t, &s)| (NodeId(t as u32), NodeId(s)))
    }

    /// Compose with another id mapping: if `self : dom(T2) → dom(T1)` and
    /// `earlier : dom(T1) → dom(T0)`, the result maps `dom(T2) → dom(T0)`.
    /// Pairs whose intermediate node is unmapped in `earlier` are dropped
    /// (the composition is partial, like its factors).
    pub fn compose(&self, earlier: &IdMap) -> IdMap {
        let mut out = IdMap::with_capacity(self.fwd.len(), earlier.rev.len());
        for (t, mid) in self.iter() {
            if let Some(s) = earlier.source_of(mid) {
                out.insert(t, s);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn roundtrips_both_directions() {
        let mut m = IdMap::new();
        m.insert(n(10), n(1));
        m.insert(n(11), n(2));
        assert_eq!(m.source_of(n(10)), Some(n(1)));
        assert_eq!(m.target_of(n(2)), Some(n(11)));
        assert_eq!(m.source_of(n(12)), None);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic(expected = "mapped twice")]
    fn rejects_double_target() {
        let mut m = IdMap::new();
        m.insert(n(10), n(1));
        m.insert(n(10), n(2));
    }

    #[test]
    #[should_panic(expected = "mapped twice")]
    fn rejects_double_source() {
        let mut m = IdMap::new();
        m.insert(n(10), n(1));
        m.insert(n(11), n(1));
    }

    #[test]
    fn map_result_filters_unmapped() {
        let mut m = IdMap::new();
        m.insert(n(10), n(1));
        let out: Vec<_> = m.map_result(vec![n(10), n(99)]).collect();
        assert_eq!(out, vec![n(1)]);
    }

    #[test]
    fn iter_is_ordered_by_target() {
        let mut m = IdMap::new();
        m.insert(n(11), n(2));
        m.insert(n(3), n(7));
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs, vec![(n(3), n(7)), (n(11), n(2))]);
    }

    #[test]
    fn with_capacity_presizes_without_mapping() {
        let m = IdMap::with_capacity(16, 8);
        assert!(m.is_empty());
        assert_eq!(m.source_of(n(3)), None);
        assert_eq!(m.target_of(n(3)), None);
    }

    #[test]
    fn composition_is_partial() {
        // T2 -> T1
        let mut later = IdMap::new();
        later.insert(n(20), n(10));
        later.insert(n(21), n(11));
        // T1 -> T0, but n(11) has no preimage recorded.
        let mut earlier = IdMap::new();
        earlier.insert(n(10), n(0));
        let c = later.compose(&earlier);
        assert_eq!(c.source_of(n(20)), Some(n(0)));
        assert_eq!(c.source_of(n(21)), None);
        assert_eq!(c.len(), 1);
    }
}
