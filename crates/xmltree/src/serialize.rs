use std::fmt::Write as _;

use crate::{NodeKind, XmlTree};

/// Escape a string for use as XML character data (also safe inside
/// double-quoted attribute values).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

impl XmlTree {
    /// Serialize to compact XML text (no insignificant whitespace), the
    /// format accepted back by [`crate::parse_xml`].
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_node(&mut out, self.root(), None, 0);
        out
    }

    /// Serialize to indented XML text for human consumption.
    ///
    /// Indentation inserts whitespace-only text, so `parse_xml(pretty)`
    /// equals the original tree only because the parser drops
    /// whitespace-only text between elements.
    pub fn to_xml_pretty(&self) -> String {
        let mut out = String::new();
        self.write_node(&mut out, self.root(), Some("  "), 0);
        out.push('\n');
        out
    }

    fn write_node(&self, out: &mut String, id: crate::NodeId, indent: Option<&str>, depth: usize) {
        let pad = |out: &mut String, depth: usize| {
            if let Some(unit) = indent {
                if !out.is_empty() {
                    out.push('\n');
                }
                for _ in 0..depth {
                    out.push_str(unit);
                }
            }
        };
        match self.kind(id) {
            NodeKind::Text(v) => {
                pad(out, depth);
                out.push_str(&escape_text(v));
            }
            NodeKind::Element(tag) => {
                pad(out, depth);
                let children = self.children(id);
                if children.is_empty() {
                    let _ = write!(out, "<{tag}/>");
                } else {
                    let _ = write!(out, "<{tag}>");
                    // A single text child is kept inline so values do not
                    // accrete surrounding whitespace in pretty mode.
                    let inline = children.len() == 1 && self.is_text(children[0]);
                    if inline {
                        out.push_str(&escape_text(self.text_value(children[0]).unwrap()));
                    } else {
                        for &c in children {
                            self.write_node(out, c, indent, depth + 1);
                        }
                        pad(out, depth);
                    }
                    let _ = write!(out, "</{tag}>");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::XmlTree;

    #[test]
    fn escapes_special_characters() {
        assert_eq!(
            super::escape_text("a<b>&\"'c"),
            "a&lt;b&gt;&amp;&quot;&apos;c"
        );
        assert_eq!(super::escape_text("plain"), "plain");
    }

    #[test]
    fn compact_serialization() {
        let mut t = XmlTree::new("db");
        let class = t.add_element(t.root(), "class");
        let cno = t.add_element(class, "cno");
        t.add_text(cno, "CS<331>");
        t.add_element(class, "type");
        assert_eq!(
            t.to_xml(),
            "<db><class><cno>CS&lt;331&gt;</cno><type/></class></db>"
        );
    }

    #[test]
    fn pretty_serialization_is_indented() {
        let mut t = XmlTree::new("db");
        let class = t.add_element(t.root(), "class");
        let cno = t.add_element(class, "cno");
        t.add_text(cno, "CS331");
        let pretty = t.to_xml_pretty();
        assert_eq!(
            pretty,
            "<db>\n  <class>\n    <cno>CS331</cno>\n  </class>\n</db>\n"
        );
    }

    #[test]
    fn empty_element_uses_self_closing_form() {
        let t = XmlTree::new("r");
        assert_eq!(t.to_xml(), "<r/>");
    }
}
