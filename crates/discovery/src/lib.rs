//! Computing schema embeddings (§5).
//!
//! The `Schema-Embedding` problem — given `S1`, `S2` and a similarity matrix
//! `att`, find a valid embedding — is NP-complete (Theorem 5.1; the 3SAT
//! reduction is implemented in [`sat`] and exercised by the test suite), and
//! its two natural subproblems `Local-Embedding` and `Assemble-Embedding`
//! are NP-complete on their own (Theorems 5.2, 5.3). Practical algorithms
//! are therefore heuristic:
//!
//! * [`index`] — per-kind reachability indexes over the target graph
//!   (which nodes can reach which through AND-only / OR-bearing /
//!   STAR-bearing paths), the pruning oracle for the path search;
//! * [`pfp`] — the **prefix-free path problem**: given an origin and one
//!   endpoint-with-kind requirement per edge, find pairwise prefix-free
//!   target paths (a DFS that does not mark reached targets done, plus a
//!   position-bump refinement for siblings sharing a STAR prefix);
//! * [`solver`] — assembling local embeddings into a global one with the
//!   three strategies the paper evaluates: **Random** (randomly ordered
//!   target matches, restarts), **Quality-Ordered** (best `att` first), and
//!   **Independent-Set** (candidate local mappings as weighted vertices of
//!   a conflict graph; a greedy + local-search WIS heuristic substitutes
//!   for the quadratic-over-a-sphere solver of Busygin et al.);
//! * every assembled candidate is re-validated by
//!   [`CompiledEmbedding::new`](xse_core::CompiledEmbedding::new), so a
//!   returned embedding is always sound — heuristics can only cause false
//!   negatives. [`find_embedding`] hands back the owned, `Send + Sync`
//!   compiled engine, ready to be shared across threads.
//!
//! Restart attempts are embarrassingly parallel and run on a scoped-thread
//! engine ([`DiscoveryConfig::threads`]): every attempt seeds its RNG from
//! `(seed, attempt_index)` alone and the lowest successful attempt index
//! wins, so the discovered embedding is byte-identical for every thread
//! count.

pub mod index;
pub mod pfp;
pub mod sat;
pub mod solver;
pub mod wis;

pub use solver::{
    find_embedding, find_embedding_with_stats, DiscoveryConfig, DiscoveryStats, Strategy,
};
