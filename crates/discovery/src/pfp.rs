//! The prefix-free path problem (§5.2).
//!
//! *Given a source node `s` and `n` target nodes `t1 … tn`, find paths
//! `p1 … pn`, each from `s` to its `ti`, no path a prefix of another* —
//! with the embedding refinements: each path must additionally be of its
//! edge's kind (AND / OR / STAR / text-tailed AND), and positions
//! disambiguate repeated concatenation children and STAR crossings.
//!
//! Candidates are enumerated by a depth-first search over the
//! `(type, flags)` product graph — revisiting a `(type, flags)` state inside
//! one path is forbidden, which bounds path length by `4·|E2|` while still
//! allowing the single cycle unfolds the small-model property
//! (Theorem 4.4-style bound) calls for. The assignment search then picks
//! one candidate per requirement, backtracking on prefix conflicts, with a
//! *star bump*: when two chosen paths collide only at an unpinned STAR
//! crossing, the later one is retried at the next free position (this is
//! how two fixed source children land in repetitions 1 and 2 of one target
//! star, the Figure 3(c) pattern generalized).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use xse_dtd::{Dtd, EdgeKind, EdgeTarget, Production, SchemaGraph, TypeId};
use xse_rxpath::{PathStep, XrPath};

use crate::index::ReachIndex;

/// The kind of path an edge requires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReqKind {
    /// Concatenation edge: AND path.
    And,
    /// Disjunction edge: OR path.
    Or,
    /// Star edge: STAR path.
    Star,
    /// `str` edge: AND path ending in `text()` at any str-typed node.
    Text,
}

/// One requirement: reach `endpoint` (ignored for [`ReqKind::Text`]) from
/// the shared origin with a path of kind `kind`.
#[derive(Clone, Copy, Debug)]
pub struct PathReq {
    /// Required endpoint `λ(B)`; unused for text requirements.
    pub endpoint: TypeId,
    /// Required path kind.
    pub kind: ReqKind,
}

/// Search limits.
#[derive(Clone, Debug)]
pub struct PfpConfig {
    /// Maximum candidates enumerated per requirement.
    pub max_candidates: usize,
    /// DFS node-expansion budget per requirement.
    pub expansion_budget: usize,
    /// Highest star position the bump refinement will try.
    pub max_star_bump: usize,
    /// ABL-1 switch: disable the reachability-index pruning (the DFS then
    /// explores blindly within its budget). Never useful in production.
    pub disable_reach_pruning: bool,
}

impl Default for PfpConfig {
    fn default() -> Self {
        PfpConfig {
            max_candidates: 48,
            expansion_budget: 20_000,
            max_star_bump: 8,
            disable_reach_pruning: false,
        }
    }
}

/// Solve the prefix-free path problem. `rng` (when given) shuffles edge
/// exploration order — the Random strategy's source of diversity. Returns
/// one syntactic path per requirement, or `None` if the search fails
/// (heuristically — the problem is NP-complete).
pub fn solve(
    target: &Dtd,
    graph: &SchemaGraph,
    idx: &ReachIndex,
    origin: TypeId,
    reqs: &[PathReq],
    cfg: &PfpConfig,
    rng: Option<&mut StdRng>,
) -> Option<Vec<XrPath>> {
    let mut enumerator = Enumerator {
        target,
        idx,
        cfg,
        rng,
    };
    // Candidate lists per requirement.
    let mut candidates: Vec<Vec<XrPath>> = Vec::with_capacity(reqs.len());
    for req in reqs {
        let c = enumerator.enumerate(origin, *req);
        if c.is_empty() {
            return None;
        }
        candidates.push(c);
    }
    // Most-constrained requirement first.
    let mut order: Vec<usize> = (0..reqs.len()).collect();
    order.sort_by_key(|&i| candidates[i].len());

    let mut chosen: Vec<Option<XrPath>> = vec![None; reqs.len()];
    if assign(
        target,
        graph,
        origin,
        &order,
        &candidates,
        &mut chosen,
        0,
        cfg,
    ) {
        Some(chosen.into_iter().map(Option::unwrap).collect())
    } else {
        None
    }
}

/// Backtracking assignment over candidate lists.
#[allow(clippy::too_many_arguments)]
fn assign(
    target: &Dtd,
    graph: &SchemaGraph,
    origin: TypeId,
    order: &[usize],
    candidates: &[Vec<XrPath>],
    chosen: &mut Vec<Option<XrPath>>,
    depth: usize,
    cfg: &PfpConfig,
) -> bool {
    let Some(&req_idx) = order.get(depth) else {
        return true;
    };
    for cand in &candidates[req_idx] {
        // Try the candidate and, on star-collisions, bumped variants.
        let mut variant = cand.clone();
        let mut bumps = 0usize;
        loop {
            match first_conflict(target, graph, origin, chosen, &variant) {
                Conflict::None => {
                    chosen[req_idx] = Some(variant);
                    if assign(
                        target,
                        graph,
                        origin,
                        order,
                        candidates,
                        chosen,
                        depth + 1,
                        cfg,
                    ) {
                        return true;
                    }
                    chosen[req_idx] = None;
                    break;
                }
                Conflict::Bumpable(star_at) => {
                    if bumps >= cfg.max_star_bump {
                        break;
                    }
                    match bump_star(&variant, star_at) {
                        Some(v) => {
                            variant = v;
                            bumps += 1;
                        }
                        None => break,
                    }
                }
                Conflict::Hard => break,
            }
        }
    }
    false
}

enum Conflict {
    /// Prefix-compatible with every chosen path.
    None,
    /// Conflicts, but pinning the star step at this index may resolve it.
    Bumpable(usize),
    /// Conflicts with no bumpable star step.
    Hard,
}

/// Where (if anywhere) `cand` collides with the chosen paths. Collision =
/// one path covers a prefix of the other, comparing `(label, position)`
/// steps with `None` star positions covering everything.
fn first_conflict(
    target: &Dtd,
    graph: &SchemaGraph,
    origin: TypeId,
    chosen: &[Option<XrPath>],
    cand: &XrPath,
) -> Conflict {
    for other in chosen.iter().flatten() {
        let m = cand.steps.len().min(other.steps.len());
        let mut all = true;
        let mut star_overlap: Option<usize> = None;
        for i in 0..m {
            let (a, b) = (&cand.steps[i], &other.steps[i]);
            if a.label != b.label {
                all = false;
                break;
            }
            if let (Some(x), Some(y)) = (a.pos, b.pos) {
                if x != y {
                    all = false;
                    break;
                }
            }
            // Overlapping step (equal positions, or a `None` star position
            // covering everything): a bump can separate the paths here if
            // the step crosses a star edge — but never at a `None` position
            // on the *candidate*, which is a star requirement's multiplicity
            // point and must stay open.
            if star_overlap.is_none()
                && cand.steps[i].pos.is_some()
                && step_is_star(target, graph, origin, cand, i)
            {
                star_overlap = Some(i);
            }
        }
        if all {
            // Full overlap along the shorter path: conflict, unless the
            // shorter ends with a text tail and the longer goes on with
            // element steps (different component kinds).
            let (short, long) = if cand.steps.len() <= other.steps.len() {
                (cand, other)
            } else {
                (other, cand)
            };
            if short.text_tail && long.steps.len() > short.steps.len() {
                continue;
            }
            return match star_overlap {
                Some(i) => Conflict::Bumpable(i),
                None => Conflict::Hard,
            };
        }
    }
    Conflict::None
}

/// Does step `i` of `path` (resolved from `origin`) cross a star edge?
fn step_is_star(
    target: &Dtd,
    graph: &SchemaGraph,
    origin: TypeId,
    path: &XrPath,
    i: usize,
) -> bool {
    let mut cur = origin;
    for (j, step) in path.steps.iter().enumerate() {
        let Some((ty, kind)) = child_by_label(target, graph, cur, &step.label) else {
            return false;
        };
        if j == i {
            return kind.is_star();
        }
        cur = ty;
    }
    false
}

fn child_by_label(
    target: &Dtd,
    graph: &SchemaGraph,
    t: TypeId,
    label: &str,
) -> Option<(TypeId, EdgeKind)> {
    graph.edges_from(t).iter().find_map(|e| match e.target {
        EdgeTarget::Type(c) if target.name(c) == label => Some((c, e.kind)),
        _ => None,
    })
}

/// Produce a variant of `path` with the star step at `i` pinned to the next
/// position (None → 2, Some(k) → k+1). The caller re-checks conflicts.
fn bump_star(path: &XrPath, i: usize) -> Option<XrPath> {
    let step = path.steps.get(i)?;
    let next = match step.pos {
        None => 2,
        Some(k) => k + 1,
    };
    let mut out = path.clone();
    out.steps[i] = PathStep {
        label: step.label.clone(),
        pos: Some(next),
    };
    Some(out)
}

/// DFS candidate enumeration.
struct Enumerator<'a> {
    target: &'a Dtd,
    idx: &'a ReachIndex,
    cfg: &'a PfpConfig,
    rng: Option<&'a mut StdRng>,
}

impl<'a> Enumerator<'a> {
    fn enumerate(&mut self, origin: TypeId, req: PathReq) -> Vec<XrPath> {
        let n = self.target.type_count();
        let mut out: Vec<XrPath> = Vec::new();
        let mut budget = self.cfg.expansion_budget;

        // Text requirement at a str-typed origin: the empty path + text().
        if req.kind == ReqKind::Text && matches!(self.target.production(origin), Production::Str) {
            out.push(XrPath::with_text(Vec::new()));
        }

        // Stack frames: (type, star_seen, or_seen, steps-so-far).
        // visited guards (type, star, or) states along the current path.
        let mut steps: Vec<PathStep> = Vec::new();
        let mut visited = vec![false; n * 4];
        self.dfs(
            origin,
            false,
            false,
            req,
            &mut steps,
            &mut visited,
            &mut out,
            &mut budget,
        );
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &mut self,
        at: TypeId,
        star: bool,
        or: bool,
        req: PathReq,
        steps: &mut Vec<PathStep>,
        visited: &mut Vec<bool>,
        out: &mut Vec<XrPath>,
        budget: &mut usize,
    ) {
        if out.len() >= self.cfg.max_candidates || *budget == 0 {
            return;
        }
        *budget -= 1;
        let state = at.index() * 4 + usize::from(star) * 2 + usize::from(or);
        if visited[state] {
            return;
        }
        visited[state] = true;

        // Emit if the requirement is satisfied here.
        if !steps.is_empty() {
            let emit = match req.kind {
                ReqKind::And => at == req.endpoint && !or,
                ReqKind::Or => at == req.endpoint && or,
                ReqKind::Star => at == req.endpoint && star && !or,
                ReqKind::Text => !or && matches!(self.target.production(at), Production::Str),
            };
            if emit {
                let mut p = XrPath::new(steps.clone());
                if req.kind == ReqKind::Text {
                    p.text_tail = true;
                }
                out.push(p);
            }
        }

        // Expansion, pruned by feasibility.
        let mut edges: Vec<(TypeId, EdgeKind, Option<usize>)> = Vec::new();
        match self.target.production(at) {
            Production::Concat(cs) => {
                let mut occ: std::collections::HashMap<TypeId, usize> =
                    std::collections::HashMap::new();
                let repeated: std::collections::HashSet<TypeId> = {
                    let mut seen = std::collections::HashSet::new();
                    let mut rep = std::collections::HashSet::new();
                    for &c in cs {
                        if !seen.insert(c) {
                            rep.insert(c);
                        }
                    }
                    rep
                };
                for &c in cs {
                    let k = occ.entry(c).or_insert(0);
                    *k += 1;
                    let pos = repeated.contains(&c).then_some(*k);
                    edges.push((
                        c,
                        EdgeKind::And {
                            occurrence: *k as u32,
                        },
                        pos,
                    ));
                }
            }
            Production::Disjunction { alts, .. } => {
                for &c in alts {
                    edges.push((c, EdgeKind::Or, None));
                }
            }
            Production::Star(b) => {
                // Positions: canonical pin to 1 — except the *first* star
                // crossing of a STAR requirement, which is the multiplicity
                // point and must stay open.
                let pos = if req.kind == ReqKind::Star && !star {
                    None
                } else {
                    Some(1)
                };
                edges.push((*b, EdgeKind::Star, pos));
            }
            Production::Str | Production::Empty => {}
        }
        if let Some(rng) = self.rng.as_deref_mut() {
            edges.shuffle(rng);
        }
        for (child, kind, pos) in edges {
            if kind.is_or() && !matches!(req.kind, ReqKind::Or) {
                continue; // AND/STAR/Text paths are solid-only
            }
            let nstar = star || kind.is_star();
            let nor = or || kind.is_or();
            if !self.feasible(child, nstar, nor, req) {
                continue;
            }
            steps.push(PathStep {
                label: self.target.name(child).into(),
                pos,
            });
            self.dfs(child, nstar, nor, req, steps, visited, out, budget);
            steps.pop();
        }
        visited[state] = false;
    }

    /// Can the requirement still complete from `at` with the given flags
    /// (or is it already satisfied at `at`)?
    fn feasible(&self, at: TypeId, star: bool, or: bool, req: PathReq) -> bool {
        if self.cfg.disable_reach_pruning {
            return true;
        }
        let done_here = |need_flags: bool| need_flags;
        match req.kind {
            ReqKind::And => !or && (at == req.endpoint || self.idx.solid.get(at, req.endpoint)),
            ReqKind::Star => {
                !or && if star {
                    at == req.endpoint || self.idx.solid.get(at, req.endpoint)
                } else {
                    self.idx.solid_star.get(at, req.endpoint)
                }
            }
            ReqKind::Or => {
                if or {
                    at == req.endpoint || self.idx.any.get(at, req.endpoint)
                } else {
                    self.idx.with_or.get(at, req.endpoint)
                }
            }
            ReqKind::Text => {
                let _ = done_here;
                !or && self.idx.str_solid[at.index()]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xse_dtd::Dtd;

    fn setup(d: &Dtd) -> (SchemaGraph, ReachIndex) {
        let g = SchemaGraph::new(d);
        let idx = ReachIndex::new(d, &g);
        (g, idx)
    }

    fn school() -> Dtd {
        Dtd::builder("school")
            .concat("school", &["courses"])
            .concat("courses", &["history", "current"])
            .star("history", "course")
            .star("current", "course")
            .concat("course", &["cno", "category"])
            .str_type("cno")
            .disjunction("category", &["regular", "project"])
            .empty("regular")
            .str_type("project")
            .build()
            .unwrap()
    }

    #[test]
    fn finds_single_star_path() {
        let d = school();
        let (g, idx) = setup(&d);
        let reqs = [PathReq {
            endpoint: d.type_id("course").unwrap(),
            kind: ReqKind::Star,
        }];
        let paths = solve(&d, &g, &idx, d.root(), &reqs, &PfpConfig::default(), None).unwrap();
        assert_eq!(paths.len(), 1);
        let p = paths[0].to_string();
        assert!(
            p == "courses/history/course" || p == "courses/current/course",
            "{p}"
        );
    }

    #[test]
    fn finds_or_path_through_category() {
        let d = school();
        let (g, idx) = setup(&d);
        let reqs = [PathReq {
            endpoint: d.type_id("regular").unwrap(),
            kind: ReqKind::Or,
        }];
        let paths = solve(
            &d,
            &g,
            &idx,
            d.type_id("course").unwrap(),
            &reqs,
            &PfpConfig::default(),
            None,
        )
        .unwrap();
        assert_eq!(paths[0].to_string(), "category/regular");
    }

    #[test]
    fn finds_text_path() {
        let d = school();
        let (g, idx) = setup(&d);
        let reqs = [PathReq {
            endpoint: d.root(), // ignored
            kind: ReqKind::Text,
        }];
        let paths = solve(
            &d,
            &g,
            &idx,
            d.type_id("cno").unwrap(),
            &reqs,
            &PfpConfig::default(),
            None,
        )
        .unwrap();
        assert_eq!(paths[0].to_string(), "text()");
        // From course, the nearest str node is cno.
        let paths = solve(
            &d,
            &g,
            &idx,
            d.type_id("course").unwrap(),
            &reqs,
            &PfpConfig::default(),
            None,
        )
        .unwrap();
        assert_eq!(paths[0].to_string(), "cno/text()");
    }

    #[test]
    fn prefix_conflicts_force_distinct_paths() {
        // Two AND requirements to the same endpoint through one star: the
        // bump refinement must pin distinct positions.
        let d = Dtd::builder("r")
            .star("r", "item")
            .concat("item", &["v"])
            .str_type("v")
            .build()
            .unwrap();
        let (g, idx) = setup(&d);
        let item = d.type_id("item").unwrap();
        let reqs = [
            PathReq {
                endpoint: item,
                kind: ReqKind::And,
            },
            PathReq {
                endpoint: item,
                kind: ReqKind::And,
            },
        ];
        let paths = solve(&d, &g, &idx, d.root(), &reqs, &PfpConfig::default(), None).unwrap();
        let mut rendered: Vec<String> = paths.iter().map(|p| p.to_string()).collect();
        rendered.sort();
        assert_ne!(rendered[0], rendered[1]);
        assert!(
            rendered.iter().any(|p| p.contains("position()")),
            "{rendered:?}"
        );
    }

    #[test]
    fn impossible_requirements_fail() {
        let d = school();
        let (g, idx) = setup(&d);
        // AND path to "regular" is impossible (needs an OR edge).
        let reqs = [PathReq {
            endpoint: d.type_id("regular").unwrap(),
            kind: ReqKind::And,
        }];
        assert!(solve(&d, &g, &idx, d.root(), &reqs, &PfpConfig::default(), None).is_none());
        // STAR path from course to category: no star edge on the way.
        let reqs = [PathReq {
            endpoint: d.type_id("category").unwrap(),
            kind: ReqKind::Star,
        }];
        assert!(solve(
            &d,
            &g,
            &idx,
            d.type_id("course").unwrap(),
            &reqs,
            &PfpConfig::default(),
            None
        )
        .is_none());
    }

    #[test]
    fn repeated_concat_children_get_positions() {
        let d = Dtd::builder("r")
            .concat("r", &["a", "a"])
            .str_type("a")
            .build()
            .unwrap();
        let (g, idx) = setup(&d);
        let a = d.type_id("a").unwrap();
        let reqs = [
            PathReq {
                endpoint: a,
                kind: ReqKind::And,
            },
            PathReq {
                endpoint: a,
                kind: ReqKind::And,
            },
        ];
        let paths = solve(&d, &g, &idx, d.root(), &reqs, &PfpConfig::default(), None).unwrap();
        let mut rendered: Vec<String> = paths.iter().map(|p| p.to_string()).collect();
        rendered.sort();
        assert_eq!(rendered[0], "a[position() = 1]");
        assert_eq!(rendered[1], "a[position() = 2]");
    }

    #[test]
    fn randomized_enumeration_is_seed_deterministic() {
        use rand::SeedableRng;
        let d = school();
        let (g, idx) = setup(&d);
        let reqs = [PathReq {
            endpoint: d.type_id("course").unwrap(),
            kind: ReqKind::Star,
        }];
        let mut r1 = rand::rngs::StdRng::seed_from_u64(7);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(7);
        let p1 = solve(
            &d,
            &g,
            &idx,
            d.root(),
            &reqs,
            &PfpConfig::default(),
            Some(&mut r1),
        );
        let p2 = solve(
            &d,
            &g,
            &idx,
            d.root(),
            &reqs,
            &PfpConfig::default(),
            Some(&mut r2),
        );
        assert_eq!(p1.map(|v| v[0].to_string()), p2.map(|v| v[0].to_string()));
    }
}
