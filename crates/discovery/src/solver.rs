//! Assembling local embeddings into a global schema embedding (§5.1–5.2).
//!
//! The solver walks the source types in BFS order from the root. A type's
//! λ-image is already fixed when it is reached (the root by definition,
//! every other type by the parent that first mapped it); the *local
//! embedding* step then chooses λ-images for the yet-unmapped children —
//! candidate targets come from the similarity matrix, ordered per strategy —
//! and solves the prefix-free path problem for the production's edges.
//! Combinations are tried up to a budget; a full failure restarts the
//! whole assembly with a fresh random order (the paper's restart loop).
//!
//! Every assembled candidate passes through [`CompiledEmbedding::new`], so
//! discovery never returns an invalid embedding.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use xse_core::{CompiledEmbedding, EmbeddingError, PathMapping, SimilarityMatrix, TypeMapping};
use xse_dtd::{Dtd, Production, SchemaGraph, TypeId};

use crate::index::ReachIndex;
use crate::pfp::{self, PathReq, PfpConfig, ReqKind};
use crate::wis::ConflictGraph;

/// The three assembly heuristics evaluated in the paper's experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// Visit candidate targets in random (similarity-biased) order, with
    /// restarts — the paper's best performer.
    Random,
    /// Candidates in decreasing `att` order ("start with better mappings").
    QualityOrdered,
    /// Generate a pool of local mappings, pick a consistent heavy subset
    /// via weighted-independent-set, then repair by search.
    IndependentSet,
}

/// Knobs for [`find_embedding`].
#[derive(Clone, Debug)]
pub struct DiscoveryConfig {
    /// Assembly strategy.
    pub strategy: Strategy,
    /// RNG seed (results are deterministic per seed).
    pub seed: u64,
    /// Number of restart attempts.
    pub restarts: usize,
    /// λ-candidate combinations tried per source type before giving up on
    /// an attempt.
    pub max_combos: usize,
    /// Prefix-free path search limits.
    pub pfp: PfpConfig,
    /// Pool size per source type for the Independent-Set strategy.
    pub pool_per_type: usize,
    /// Worker threads for the restart engine: `0` (the default) spawns one
    /// worker per available core, `1` runs fully sequentially on the
    /// caller's thread. Restart attempts are embarrassingly parallel —
    /// every attempt index derives its RNG from `(seed, index)` alone, and
    /// the engine returns the success with the **lowest attempt index** —
    /// so the discovered embedding is byte-identical for every thread
    /// count. Only the [`DiscoveryStats`] counters may differ: parallel
    /// workers can start (and then abandon) attempts beyond the winner.
    pub threads: usize,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            strategy: Strategy::Random,
            seed: 0xE5CA_B05E,
            restarts: 24,
            max_combos: 64,
            pfp: PfpConfig::default(),
            pool_per_type: 6,
            threads: 0,
        }
    }
}

/// Counters reported by [`find_embedding_with_stats`]. Workers accumulate
/// counters independently; [`DiscoveryStats::merge`] folds them together.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiscoveryStats {
    /// Restart attempts started (summed across workers).
    pub attempts: usize,
    /// Local-embedding (pfp) solves.
    pub local_solves: usize,
    /// WIS λ-seed derivations (Independent-Set strategy: one per attempt).
    pub wis_seeds: usize,
    /// Candidate embeddings rejected by final validation — the sum of the
    /// three `rejects_*` kinds below.
    pub validation_rejects: usize,
    /// Rejected for prefix-freeness violations (a path covering a prefix
    /// of another, or aliased disjunction alternatives).
    pub rejects_prefix: usize,
    /// Rejected because `att(A, λ(A)) = 0` for some source type `A`.
    pub rejects_similarity: usize,
    /// Rejected by any other validation failure.
    pub rejects_other: usize,
}

impl DiscoveryStats {
    /// Fold another worker's counters into `self`.
    pub fn merge(&mut self, other: &DiscoveryStats) {
        self.attempts += other.attempts;
        self.local_solves += other.local_solves;
        self.wis_seeds += other.wis_seeds;
        self.validation_rejects += other.validation_rejects;
        self.rejects_prefix += other.rejects_prefix;
        self.rejects_similarity += other.rejects_similarity;
        self.rejects_other += other.rejects_other;
    }
}

/// The RNG for one restart attempt, derived from `(seed, attempt)` alone —
/// never from which worker runs the attempt or from what ran before it —
/// so sequential and parallel engines explore identical per-attempt search
/// trees.
fn attempt_rng(seed: u64, attempt: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Resolve [`DiscoveryConfig::threads`] (`0` = available parallelism).
fn effective_threads(cfg: &DiscoveryConfig) -> usize {
    if cfg.threads == 0 {
        thread::available_parallelism().map_or(1, NonZeroUsize::get)
    } else {
        cfg.threads
    }
}

/// Find a valid schema embedding `S1 → S2` w.r.t. `att`, or `None` if the
/// heuristics fail (the problem is NP-complete, Theorem 5.1 — failure does
/// not prove non-existence). The result is an owned
/// [`CompiledEmbedding`] — it does not borrow the input DTDs (they are
/// cloned once into shared `Arc`s), so it can be stored, sent across
/// threads, and reused long after discovery.
///
/// # Parallelism and determinism
///
/// Restart attempts run on [`DiscoveryConfig::threads`] scoped workers.
/// Each attempt index `i` seeds its own RNG from `(cfg.seed, i)`, and the
/// engine's **winner-selection rule** is: among all attempts that produce
/// a validated embedding, the one with the *lowest attempt index* wins —
/// exactly the attempt a sequential run would have stopped at. Workers
/// publish the best winning index through an atomic bound and abandon
/// attempts that can no longer win. Consequently `find_embedding` returns
/// a byte-identical embedding for every `threads` value given the same
/// `DiscoveryConfig`.
pub fn find_embedding(
    source: &Dtd,
    target: &Dtd,
    att: &SimilarityMatrix,
    cfg: &DiscoveryConfig,
) -> Option<CompiledEmbedding> {
    find_embedding_with_stats(source, target, att, cfg).0
}

/// [`find_embedding`] plus search counters (for the experiment harness).
pub fn find_embedding_with_stats(
    source: &Dtd,
    target: &Dtd,
    att: &SimilarityMatrix,
    cfg: &DiscoveryConfig,
) -> (Option<CompiledEmbedding>, DiscoveryStats) {
    if att.dims() != (source.type_count(), target.type_count()) {
        return (None, DiscoveryStats::default());
    }
    // One owned copy of each schema; every validated candidate shares them.
    let source_arc = Arc::new(source.clone());
    let target_arc = Arc::new(target.clone());
    let src_graph = SchemaGraph::new(source);
    let tgt_graph = SchemaGraph::new(target);
    let idx = ReachIndex::new(target, &tgt_graph);
    // Lowest attempt index that has produced a validated embedding so far;
    // attempts above it can no longer win and are cancelled.
    let bound = AtomicUsize::new(usize::MAX);
    let env = Env {
        source,
        target,
        source_arc: &source_arc,
        target_arc: &target_arc,
        src_graph: &src_graph,
        tgt_graph: &tgt_graph,
        idx: &idx,
        att,
        cfg,
        bound: &bound,
    };
    let total = cfg.restarts.max(1);
    let workers = effective_threads(cfg).min(total);

    if workers <= 1 {
        // Sequential path: attempts in index order, first success wins —
        // by construction the same winner the parallel engine selects.
        let mut stats = DiscoveryStats::default();
        for attempt in 0..total {
            stats.attempts += 1;
            if let Some(e) = env.run_attempt(attempt, &mut stats) {
                return (Some(e), stats);
            }
        }
        return (None, stats);
    }

    // Parallel engine: workers claim attempt indices from a shared counter
    // and record successes; the lowest successful index wins. Indices are
    // claimed in order and an index is only skipped when it lies above an
    // already-known success, so every attempt below the winner runs to
    // completion and fails deterministically — the winner is exactly the
    // attempt the sequential loop would have returned.
    let next = AtomicUsize::new(0);
    let found: Mutex<Vec<(usize, CompiledEmbedding)>> = Mutex::new(Vec::new());
    let merged = Mutex::new(DiscoveryStats::default());
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut local = DiscoveryStats::default();
                loop {
                    let attempt = next.fetch_add(1, Ordering::Relaxed);
                    if attempt >= total || attempt > bound.load(Ordering::Acquire) {
                        break;
                    }
                    local.attempts += 1;
                    if let Some(e) = env.run_attempt(attempt, &mut local) {
                        bound.fetch_min(attempt, Ordering::AcqRel);
                        found.lock().unwrap().push((attempt, e));
                    }
                }
                merged.lock().unwrap().merge(&local);
            });
        }
    });
    let stats = merged.into_inner().unwrap();
    let winner = found
        .into_inner()
        .unwrap()
        .into_iter()
        .min_by_key(|&(attempt, _)| attempt)
        .map(|(_, e)| e);
    (winner, stats)
}

struct Env<'e> {
    source: &'e Dtd,
    target: &'e Dtd,
    source_arc: &'e Arc<Dtd>,
    target_arc: &'e Arc<Dtd>,
    src_graph: &'e SchemaGraph,
    tgt_graph: &'e SchemaGraph,
    idx: &'e ReachIndex,
    att: &'e SimilarityMatrix,
    cfg: &'e DiscoveryConfig,
    bound: &'e AtomicUsize,
}

impl<'e> Env<'e> {
    /// Source types in BFS order from the root (parents before children on
    /// first contact; consistent DTDs have everything reachable).
    fn bfs_order(&self) -> Vec<TypeId> {
        let mut order = Vec::with_capacity(self.source.type_count());
        let mut seen = vec![false; self.source.type_count()];
        let mut queue = std::collections::VecDeque::from([self.source.root()]);
        seen[self.source.root().index()] = true;
        while let Some(t) = queue.pop_front() {
            order.push(t);
            for &c in self.source.production(t).children() {
                if !seen[c.index()] {
                    seen[c.index()] = true;
                    queue.push_back(c);
                }
            }
        }
        order
    }

    /// Run attempt `attempt` end to end on the calling thread: derive its
    /// RNG from `(seed, attempt)`, assemble a candidate, validate it.
    /// `&self`-pure — safe to call from any worker concurrently.
    fn run_attempt(&self, attempt: usize, stats: &mut DiscoveryStats) -> Option<CompiledEmbedding> {
        let mut rng = attempt_rng(self.cfg.seed, attempt);
        // Independent-Set derives a freshly shuffled λ-seed for *every*
        // restart: seeding only attempt 0 would silently degrade every
        // later restart to the Random strategy.
        let wis_seed = if self.cfg.strategy == Strategy::IndependentSet {
            stats.wis_seeds += 1;
            self.wis_lambda_seed(&mut rng)
        } else {
            None
        };
        let (lambda, paths) = self.attempt(&mut rng, attempt, wis_seed.as_deref(), stats)?;
        match CompiledEmbedding::new(
            Arc::clone(self.source_arc),
            Arc::clone(self.target_arc),
            lambda,
            paths,
        ) {
            Ok(e) => {
                if e.check_similarity(self.att).is_ok() {
                    return Some(e);
                }
                stats.validation_rejects += 1;
                stats.rejects_similarity += 1;
            }
            Err(err) => {
                stats.validation_rejects += 1;
                match err {
                    EmbeddingError::PrefixConflict { .. }
                    | EmbeddingError::AlternativeAliased { .. } => stats.rejects_prefix += 1,
                    EmbeddingError::SimilarityZero { .. } => stats.rejects_similarity += 1,
                    _ => stats.rejects_other += 1,
                }
            }
        }
        None
    }

    /// One assembly attempt: assign λ and paths type by type. `seed_lambda`
    /// (from the Independent-Set pool) is *advisory*: a seeded image is
    /// tried first for its type, but the search falls back to the other
    /// candidates — greedy assembly has no cross-type backtracking, so a
    /// hard-pinned seed could never be repaired when it is infeasible.
    fn attempt(
        &self,
        rng: &mut StdRng,
        attempt: usize,
        seed_lambda: Option<&[Option<TypeId>]>,
        stats: &mut DiscoveryStats,
    ) -> Option<(TypeMapping, PathMapping)> {
        let n = self.source.type_count();
        let mut lambda: Vec<Option<TypeId>> = vec![None; n];
        lambda[self.source.root().index()] = Some(self.target.root());
        let mut paths = PathMapping::new_with_graph(self.source, self.src_graph);

        for a in self.bfs_order() {
            // Early-cancel: a sibling worker has already validated a
            // success at a lower index, so this attempt cannot win.
            if attempt > self.bound.load(Ordering::Relaxed) {
                return None;
            }
            let la = lambda[a.index()].expect("BFS order guarantees assignment");
            if !self.solve_type(
                rng,
                attempt,
                a,
                la,
                seed_lambda,
                &mut lambda,
                &mut paths,
                stats,
            ) {
                return None;
            }
        }
        let map: Vec<TypeId> = lambda.into_iter().map(Option::unwrap).collect();
        Some((TypeMapping { map }, paths))
    }

    /// Choose λ for `a`'s unmapped children and prefix-free paths for its
    /// edges.
    #[allow(clippy::too_many_arguments)]
    fn solve_type(
        &self,
        rng: &mut StdRng,
        attempt: usize,
        a: TypeId,
        la: TypeId,
        seed_lambda: Option<&[Option<TypeId>]>,
        lambda: &mut [Option<TypeId>],
        paths: &mut PathMapping,
        stats: &mut DiscoveryStats,
    ) -> bool {
        let children: Vec<TypeId> = match self.source.production(a) {
            Production::Str => {
                // Single text requirement, no λ choice involved.
                stats.local_solves += 1;
                let reqs = [PathReq {
                    endpoint: la, // ignored
                    kind: ReqKind::Text,
                }];
                let solved = pfp::solve(
                    self.target,
                    self.tgt_graph,
                    self.idx,
                    la,
                    &reqs,
                    &self.cfg.pfp,
                    Some(rng),
                );
                return match solved {
                    Some(mut ps) => {
                        paths.set(a, 0, ps.pop().unwrap());
                        true
                    }
                    None => false,
                };
            }
            Production::Empty => return true,
            p => p.children().to_vec(),
        };

        // Distinct children needing a λ choice.
        let mut unmapped: Vec<TypeId> = Vec::new();
        for &c in &children {
            if lambda[c.index()].is_none() && !unmapped.contains(&c) {
                unmapped.push(c);
            }
        }
        // Candidate lists per unmapped child, strategy-ordered.
        let mut cand_lists: Vec<Vec<TypeId>> = Vec::with_capacity(unmapped.len());
        for &c in &unmapped {
            let mut cands: Vec<(TypeId, f64)> = self.att.candidates(c);
            // Greedy assembly has no cross-type backtracking; restarts must
            // therefore explore *different* orders. The first attempt of the
            // deterministic strategies is pure; later restarts perturb the
            // order with a quality-biased shuffle (the paper: "new random
            // orderings can be used in an attempt to find additional local
            // mappings").
            let pure = matches!(
                self.cfg.strategy,
                Strategy::QualityOrdered | Strategy::IndependentSet
            ) && attempt == 0;
            if !pure {
                let bias = match self.cfg.strategy {
                    Strategy::Random => 0.25,
                    _ => 1.0, // stay strongly quality-biased on restarts
                };
                let mut keyed: Vec<(f64, TypeId)> = cands
                    .iter()
                    .map(|&(t, w)| (rng.random::<f64>() * bias + w, t))
                    .collect();
                // total_cmp: a NaN weight (possible only through a buggy
                // upstream matrix) must never panic the search.
                keyed.sort_by(|x, y| y.0.total_cmp(&x.0));
                cands = keyed.into_iter().map(|(w, t)| (t, w)).collect();
            }
            if cands.is_empty() {
                return false;
            }
            let mut list: Vec<TypeId> = cands.into_iter().map(|(t, _)| t).collect();
            // Promote the Independent-Set suggestion (when present) to the
            // front of the candidate list: tried first, repaired by search.
            if let Some(want) = seed_lambda.and_then(|s| s[c.index()]) {
                if let Some(p) = list.iter().position(|&t| t == want) {
                    list.remove(p);
                    list.insert(0, want);
                }
            }
            cand_lists.push(list);
        }

        // Iterate combinations in mixed-radix order up to the budget.
        let mut combo = vec![0usize; unmapped.len()];
        for _ in 0..self.cfg.max_combos.max(1) {
            // Tentatively assign.
            for (i, &c) in unmapped.iter().enumerate() {
                lambda[c.index()] = Some(cand_lists[i][combo[i]]);
            }
            stats.local_solves += 1;
            if let Some(solved) = self.try_paths(rng, a, la, lambda) {
                for (slot, p) in solved.into_iter().enumerate() {
                    paths.set(a, slot, p);
                }
                return true;
            }
            // Next combination (or give up when exhausted).
            let mut i = 0;
            loop {
                if i == combo.len() {
                    // Exhausted all combinations.
                    for &c in &unmapped {
                        lambda[c.index()] = None;
                    }
                    return false;
                }
                combo[i] += 1;
                if combo[i] < cand_lists[i].len() {
                    break;
                }
                combo[i] = 0;
                i += 1;
            }
        }
        for &c in &unmapped {
            lambda[c.index()] = None;
        }
        false
    }

    /// Prefix-free path search for all edges of `a` under the current λ.
    fn try_paths(
        &self,
        rng: &mut StdRng,
        a: TypeId,
        la: TypeId,
        lambda: &[Option<TypeId>],
    ) -> Option<Vec<xse_rxpath::XrPath>> {
        let mut reqs: Vec<PathReq> = Vec::new();
        match self.source.production(a) {
            Production::Concat(cs) => {
                for &c in cs {
                    reqs.push(PathReq {
                        endpoint: lambda[c.index()]?,
                        kind: ReqKind::And,
                    });
                }
            }
            Production::Disjunction { alts, .. } => {
                for &c in alts {
                    reqs.push(PathReq {
                        endpoint: lambda[c.index()]?,
                        kind: ReqKind::Or,
                    });
                }
            }
            Production::Star(b) => {
                reqs.push(PathReq {
                    endpoint: lambda[b.index()]?,
                    kind: ReqKind::Star,
                });
            }
            Production::Str | Production::Empty => unreachable!("handled by solve_type"),
        }
        pfp::solve(
            self.target,
            self.tgt_graph,
            self.idx,
            la,
            &reqs,
            &self.cfg.pfp,
            Some(rng),
        )
    }

    /// Independent-Set seeding: a pool of (type, λ-choice) vertices weighted
    /// by `att`, conflicts between different choices for the same type;
    /// the heavy independent set fixes initial λ assignments.
    fn wis_lambda_seed(&self, rng: &mut StdRng) -> Option<Vec<Option<TypeId>>> {
        let n = self.source.type_count();
        let mut vertices: Vec<(TypeId, TypeId, f64)> = Vec::new();
        for a in self.source.types() {
            let mut cands = self.att.candidates(a);
            cands.truncate(self.cfg.pool_per_type.max(1));
            // Light shuffle so equal-weight pools vary across seeds.
            cands.shuffle(rng);
            for (b, w) in cands {
                // Cheap feasibility filter: a candidate image must be able
                // to host the production's edge kinds at all.
                if self.plausible(a, b) {
                    vertices.push((a, b, w));
                }
            }
        }
        let mut g = ConflictGraph::new(vertices.iter().map(|v| v.2).collect());
        for i in 0..vertices.len() {
            for j in (i + 1)..vertices.len() {
                let (a1, b1, _) = vertices[i];
                let (a2, b2, _) = vertices[j];
                // Same source type, different image: conflict.
                if a1 == a2 && b1 != b2 {
                    g.add_conflict(i, j);
                }
            }
        }
        let set = g.heavy_independent_set();
        let mut lambda = vec![None; n];
        for v in set {
            let (a, b, _) = vertices[v];
            lambda[a.index()] = Some(b);
        }
        lambda[self.source.root().index()] = Some(self.target.root());
        Some(lambda)
    }

    /// Quick structural plausibility of mapping `a` onto `b`: the image
    /// must offer the right kind of outgoing structure.
    fn plausible(&self, a: TypeId, b: TypeId) -> bool {
        match self.source.production(a) {
            Production::Str => self.idx.str_solid[b.index()],
            Production::Empty => true,
            Production::Star(_) => self.target.types().any(|t| self.idx.solid_star.get(b, t)),
            Production::Concat(_) => self.target.types().any(|t| self.idx.solid.get(b, t)),
            Production::Disjunction { .. } => {
                self.target.types().any(|t| self.idx.with_or.get(b, t))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xse_core::preserve;
    use xse_dtd::{GenConfig, InstanceGenerator};

    fn wrap_pair() -> (Dtd, Dtd) {
        let s1 = Dtd::builder("r")
            .concat("r", &["a", "b"])
            .str_type("a")
            .star("b", "c")
            .str_type("c")
            .build()
            .unwrap();
        let s2 = Dtd::builder("r")
            .concat("r", &["x", "y"])
            .concat("x", &["a", "pad"])
            .str_type("a")
            .str_type("pad")
            .concat("y", &["w"])
            .star("w", "c2")
            .concat("c2", &["c"])
            .str_type("c")
            .build()
            .unwrap();
        (s1, s2)
    }

    #[test]
    fn finds_wrap_embedding_with_every_strategy() {
        let (s1, s2) = wrap_pair();
        let att = SimilarityMatrix::permissive(&s1, &s2);
        for strategy in [
            Strategy::Random,
            Strategy::QualityOrdered,
            Strategy::IndependentSet,
        ] {
            let cfg = DiscoveryConfig {
                strategy,
                ..DiscoveryConfig::default()
            };
            let e = find_embedding(&s1, &s2, &att, &cfg)
                .unwrap_or_else(|| panic!("{strategy:?} failed"));
            // Discovered embeddings must preserve information end to end.
            let gen = InstanceGenerator::new(&s1, GenConfig::default());
            for seed in 0..5 {
                let t1 = gen.generate(seed);
                preserve::check_roundtrip(&e, &t1)
                    .unwrap_or_else(|err| panic!("{strategy:?}: {err}"));
            }
        }
    }

    #[test]
    fn identity_embedding_of_a_schema_into_itself() {
        let (s1, _) = wrap_pair();
        let att = SimilarityMatrix::by_name(&s1, &s1, 0.0);
        let e = find_embedding(&s1, &s1, &att, &DiscoveryConfig::default()).unwrap();
        for a in s1.types() {
            assert_eq!(e.lambda(a), a, "identity λ expected under exact-name att");
        }
    }

    #[test]
    fn figure_1_school_embedding_is_discovered() {
        let s0 = Dtd::builder("db")
            .star("db", "class")
            .concat("class", &["cno", "title", "type"])
            .str_type("cno")
            .str_type("title")
            .disjunction("type", &["regular", "project"])
            .concat("regular", &["prereq"])
            .star("prereq", "class")
            .str_type("project")
            .build()
            .unwrap();
        let s = Dtd::builder("school")
            .concat("school", &["courses"])
            .concat("courses", &["history", "current"])
            .star("history", "course")
            .star("current", "course")
            .concat("course", &["basic", "category"])
            .concat("basic", &["cno", "credit", "class2"])
            .str_type("cno")
            .str_type("credit")
            .star("class2", "semester")
            .concat("semester", &["title", "year"])
            .str_type("title")
            .str_type("year")
            .disjunction("category", &["mandatory", "advanced"])
            .disjunction("mandatory", &["regular", "lab"])
            .concat("advanced", &["project"])
            .str_type("project")
            .concat("regular", &["required"])
            .star("required", "prereq")
            .star("prereq", "course")
            .str_type("lab")
            .build()
            .unwrap();
        // Name-based matrix with the paper's cross-name pairs allowed.
        let mut att = SimilarityMatrix::by_name(&s0, &s, 0.0);
        att.set(s0.type_id("db").unwrap(), s.root(), 1.0);
        att.set(
            s0.type_id("class").unwrap(),
            s.type_id("course").unwrap(),
            1.0,
        );
        att.set(
            s0.type_id("type").unwrap(),
            s.type_id("category").unwrap(),
            1.0,
        );
        let cfg = DiscoveryConfig {
            restarts: 60,
            ..DiscoveryConfig::default()
        };
        let (found, stats) = find_embedding_with_stats(&s0, &s, &att, &cfg);
        let e = found.expect("the paper's Example 4.2 embedding exists");
        assert!(stats.attempts >= 1);
        // Verify it is information preserving on a sample.
        let gen = InstanceGenerator::new(
            &s0,
            GenConfig {
                max_nodes: 300,
                ..GenConfig::default()
            },
        );
        for seed in 0..3 {
            let t1 = gen.generate(seed);
            preserve::check_roundtrip(&e, &t1).unwrap();
        }
    }

    #[test]
    fn unembeddable_pairs_return_none() {
        // Source needs two prefix-free AND paths; target offers a single
        // unary chain of disjunctions.
        let s1 = Dtd::builder("r")
            .concat("r", &["a", "b"])
            .empty("a")
            .empty("b")
            .build()
            .unwrap();
        let s2 = Dtd::builder("r")
            .disjunction_opt("r", &["x"])
            .disjunction_opt("x", &["r2"])
            .empty("r2")
            .build()
            .unwrap();
        let att = SimilarityMatrix::permissive(&s1, &s2);
        assert!(find_embedding(&s1, &s2, &att, &DiscoveryConfig::default()).is_none());
    }

    #[test]
    fn zero_similarity_blocks_discovery() {
        let (s1, s2) = wrap_pair();
        let mut att = SimilarityMatrix::permissive(&s1, &s2);
        for b in s2.types() {
            att.set(s1.type_id("c").unwrap(), b, 0.0);
        }
        assert!(find_embedding(&s1, &s2, &att, &DiscoveryConfig::default()).is_none());
    }

    #[test]
    fn deterministic_per_seed() {
        let (s1, s2) = wrap_pair();
        let att = SimilarityMatrix::permissive(&s1, &s2);
        let cfg = DiscoveryConfig::default();
        let a = find_embedding(&s1, &s2, &att, &cfg).unwrap().describe();
        let b = find_embedding(&s1, &s2, &att, &cfg).unwrap().describe();
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_the_winner() {
        let (s1, s2) = wrap_pair();
        let att = SimilarityMatrix::permissive(&s1, &s2);
        for strategy in [
            Strategy::Random,
            Strategy::QualityOrdered,
            Strategy::IndependentSet,
        ] {
            let sequential = DiscoveryConfig {
                strategy,
                threads: 1,
                ..DiscoveryConfig::default()
            };
            let parallel = DiscoveryConfig {
                threads: 8,
                ..sequential.clone()
            };
            let a = find_embedding(&s1, &s2, &att, &sequential)
                .unwrap_or_else(|| panic!("{strategy:?} sequential failed"))
                .describe();
            let b = find_embedding(&s1, &s2, &att, &parallel)
                .unwrap_or_else(|| panic!("{strategy:?} parallel failed"))
                .describe();
            assert_eq!(a, b, "{strategy:?}: threads=1 vs threads=8 diverged");
        }
    }

    #[test]
    fn nan_similarity_entry_is_ignored_not_fatal() {
        let (s1, s2) = wrap_pair();
        let mut att = SimilarityMatrix::permissive(&s1, &s2);
        let c = s1.type_id("c").unwrap();
        let c_tgt = s2.type_id("c").unwrap();
        att.set(c, c_tgt, f64::NAN);
        // The NaN entry is stored as 0 — the pair is disabled, nothing
        // panics, and discovery routes `c` to another str-typed image.
        assert_eq!(att.get(c, c_tgt), 0.0);
        for strategy in [
            Strategy::Random,
            Strategy::QualityOrdered,
            Strategy::IndependentSet,
        ] {
            let cfg = DiscoveryConfig {
                strategy,
                ..DiscoveryConfig::default()
            };
            if let Some(e) = find_embedding(&s1, &s2, &att, &cfg) {
                assert!(att.get(c, e.lambda(c)) > 0.0, "{strategy:?} used NaN pair");
            }
        }
    }

    #[test]
    fn wis_seed_is_rederived_every_restart() {
        // An unembeddable pair exhausts every restart; under the
        // Independent-Set strategy each attempt must derive its own
        // freshly shuffled WIS seed (seeding only attempt 0 silently
        // degrades every later restart to Random).
        let s1 = Dtd::builder("r")
            .concat("r", &["a", "b"])
            .empty("a")
            .empty("b")
            .build()
            .unwrap();
        let s2 = Dtd::builder("r")
            .disjunction_opt("r", &["x"])
            .disjunction_opt("x", &["r2"])
            .empty("r2")
            .build()
            .unwrap();
        let att = SimilarityMatrix::permissive(&s1, &s2);
        let cfg = DiscoveryConfig {
            strategy: Strategy::IndependentSet,
            threads: 1,
            ..DiscoveryConfig::default()
        };
        let (found, stats) = find_embedding_with_stats(&s1, &s2, &att, &cfg);
        assert!(found.is_none());
        assert_eq!(stats.attempts, cfg.restarts);
        assert_eq!(stats.wis_seeds, cfg.restarts, "one WIS seed per attempt");
    }

    #[test]
    fn parallel_exhaustion_counts_every_attempt() {
        let s1 = Dtd::builder("r")
            .concat("r", &["a", "b"])
            .empty("a")
            .empty("b")
            .build()
            .unwrap();
        let s2 = Dtd::builder("r")
            .disjunction_opt("r", &["x"])
            .disjunction_opt("x", &["r2"])
            .empty("r2")
            .build()
            .unwrap();
        let att = SimilarityMatrix::permissive(&s1, &s2);
        let cfg = DiscoveryConfig {
            threads: 8,
            ..DiscoveryConfig::default()
        };
        let (found, stats) = find_embedding_with_stats(&s1, &s2, &att, &cfg);
        assert!(found.is_none());
        assert_eq!(stats.attempts, cfg.restarts, "no attempt skipped or lost");
        assert_eq!(
            stats.validation_rejects,
            stats.rejects_prefix + stats.rejects_similarity + stats.rejects_other,
            "reject kinds must sum to the total"
        );
    }
}
