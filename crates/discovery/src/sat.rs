//! The NP-hardness reduction of Theorem 5.1: 3SAT ⤳ Schema-Embedding.
//!
//! Given a 3SAT formula `φ = C1 ∧ … ∧ Cn` over variables `x1 … xm`, the
//! reduction builds two nonrecursive, concatenation-only DTDs such that φ is
//! satisfiable iff a valid embedding `S1 → S2` exists:
//!
//! * `S1`: `r → C1,…,Cn, Y1,…,Ym`; clause type `Ci → Z^(n+i)`; variable
//!   type `Ys → W^(2n+s)`; `W, Z → ε`.
//! * `S2`: `r → X1,…,Xm`; `Xi → Ti, Fi`; `Ti` holds the clause types
//!   satisfied by `xi = true` plus `W^(2n+i)`; `Fi` the clauses satisfied
//!   by `xi = false` plus its own `W`s; `Ci → Z^(n+i)`.
//!
//! The `W`-counts force each `Ys` onto `Ts` or `Fs`; prefix-freeness then
//! blocks every clause path through that node, encoding the *negation* of a
//! truth assignment exactly as the paper's proof describes.

use xse_dtd::{Dtd, DtdBuilder};

/// A literal: variable index (0-based) and polarity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Lit {
    /// Variable index `0 ≤ var < m`.
    pub var: usize,
    /// `true` for a positive literal.
    pub positive: bool,
}

/// A 3SAT instance (clauses need not have exactly three literals; the
/// reduction is insensitive to clause width).
#[derive(Clone, Debug)]
pub struct Sat {
    /// Number of variables `m`.
    pub vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
}

impl Sat {
    /// Brute-force satisfiability (for the small instances the tests and
    /// experiments use).
    pub fn satisfiable(&self) -> bool {
        assert!(self.vars <= 24, "brute force cap");
        (0u32..(1 << self.vars)).any(|assignment| {
            self.clauses.iter().all(|clause| {
                clause.iter().any(|lit| {
                    let v = assignment & (1 << lit.var) != 0;
                    v == lit.positive
                })
            })
        })
    }
}

fn repeat_children(mut b: DtdBuilder, name: &str, child: &str, count: usize) -> DtdBuilder {
    let children: Vec<&str> = std::iter::repeat_n(child, count).collect();
    b = b.concat(name, &children);
    b
}

/// Build the source DTD `S1` of the reduction.
pub fn source_dtd(sat: &Sat) -> Dtd {
    let n = sat.clauses.len();
    let m = sat.vars;
    let mut root_children: Vec<String> = (1..=n).map(|i| format!("C{i}")).collect();
    root_children.extend((1..=m).map(|s| format!("Y{s}")));
    let refs: Vec<&str> = root_children.iter().map(String::as_str).collect();
    let mut b = Dtd::builder("r").concat("r", &refs);
    for i in 1..=n {
        b = repeat_children(b, &format!("C{i}"), "Z", n + i);
    }
    for s in 1..=m {
        b = repeat_children(b, &format!("Y{s}"), "W", 2 * n + s);
    }
    b = b.empty("Z").empty("W");
    b.build().expect("reduction source is well-formed")
}

/// Build the target DTD `S2` of the reduction.
pub fn target_dtd(sat: &Sat) -> Dtd {
    let n = sat.clauses.len();
    let m = sat.vars;
    let root_children: Vec<String> = (1..=m).map(|i| format!("X{i}")).collect();
    let refs: Vec<&str> = root_children.iter().map(String::as_str).collect();
    let mut b = Dtd::builder("r").concat("r", &refs);
    for i in 1..=m {
        b = b.concat(&format!("X{i}"), &[&format!("T{i}"), &format!("F{i}")]);
        // Ti: clauses where xi appears positively; Fi: negatively.
        for (ty_name, polarity) in [(format!("T{i}"), true), (format!("F{i}"), false)] {
            let mut children: Vec<String> = Vec::new();
            for (ci, clause) in sat.clauses.iter().enumerate() {
                if clause
                    .iter()
                    .any(|l| l.var == i - 1 && l.positive == polarity)
                {
                    children.push(format!("C{}", ci + 1));
                }
            }
            children.extend(std::iter::repeat_n("W".to_string(), 2 * n + i));
            let refs: Vec<&str> = children.iter().map(String::as_str).collect();
            b = b.concat(&ty_name, &refs);
        }
    }
    for i in 1..=n {
        b = repeat_children(b, &format!("C{i}"), "Z", n + i);
    }
    b = b.empty("Z").empty("W");
    b.build().expect("reduction target is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{find_embedding, DiscoveryConfig, Strategy};
    use xse_core::SimilarityMatrix;

    fn lit(var: usize, positive: bool) -> Lit {
        Lit { var, positive }
    }

    /// (x1 ∨ x2) ∧ (¬x1 ∨ x2) — satisfiable (x2 = true).
    fn sat_instance() -> Sat {
        Sat {
            vars: 2,
            clauses: vec![
                vec![lit(0, true), lit(1, true)],
                vec![lit(0, false), lit(1, true)],
            ],
        }
    }

    /// x1 ∧ ¬x1 — unsatisfiable.
    fn unsat_instance() -> Sat {
        Sat {
            vars: 1,
            clauses: vec![vec![lit(0, true)], vec![lit(0, false)]],
        }
    }

    #[test]
    fn brute_force_oracle() {
        assert!(sat_instance().satisfiable());
        assert!(!unsat_instance().satisfiable());
    }

    #[test]
    fn reduction_dtds_are_wellformed_and_nonrecursive() {
        let sat = sat_instance();
        let s1 = source_dtd(&sat);
        let s2 = target_dtd(&sat);
        assert!(!s1.is_recursive());
        assert!(!s2.is_recursive());
        assert!(s1.is_consistent());
        assert!(s2.is_consistent());
        // Concatenation-only, as Theorem 5.1 claims.
        for d in [&s1, &s2] {
            for t in d.types() {
                assert!(matches!(
                    d.production(t),
                    xse_dtd::Production::Concat(_) | xse_dtd::Production::Empty
                ));
            }
        }
    }

    #[test]
    fn satisfiable_formula_yields_embedding() {
        let sat = sat_instance();
        let s1 = source_dtd(&sat);
        let s2 = target_dtd(&sat);
        let att = SimilarityMatrix::permissive(&s1, &s2);
        let cfg = DiscoveryConfig {
            strategy: Strategy::Random,
            restarts: 200,
            max_combos: 128,
            ..DiscoveryConfig::default()
        };
        let e = find_embedding(&s1, &s2, &att, &cfg)
            .expect("satisfiable φ must admit an embedding (Theorem 5.1)");
        // The embedding's Y-images decode a truth assignment's negation:
        // λ(Ys) ∈ {Ts, Fs} (or deeper, but the W-counts pin them here).
        let y1 = s1.type_id("Y1").unwrap();
        let img = s2.name(e.lambda(y1));
        assert!(
            img.starts_with('T') || img.starts_with('F'),
            "λ(Y1) = {img}"
        );
    }

    #[test]
    fn unsatisfiable_formula_finds_no_embedding() {
        let sat = unsat_instance();
        let s1 = source_dtd(&sat);
        let s2 = target_dtd(&sat);
        let att = SimilarityMatrix::permissive(&s1, &s2);
        let cfg = DiscoveryConfig {
            restarts: 100,
            max_combos: 256,
            ..DiscoveryConfig::default()
        };
        // Heuristic failure is only evidence, but for this tiny instance the
        // candidate space is explored exhaustively enough that a hit would
        // indicate a soundness bug (any returned embedding is validated).
        assert!(find_embedding(&s1, &s2, &att, &cfg).is_none());
    }
}
