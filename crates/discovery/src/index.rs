//! Reachability indexes over the target schema graph.
//!
//! The path search needs to answer, per candidate extension, "can this node
//! still reach the required endpoint through a path of the required kind?"
//! — four closures over the (node × flag) product graphs, each computed by
//! one BFS per node, `O(|E2|·(|E2|+edges))` overall.

use xse_dtd::{Dtd, EdgeKind, EdgeTarget, Production, SchemaGraph, TypeId};

/// Dense boolean matrix over target types.
pub struct ReachMatrix {
    n: usize,
    bits: Vec<u64>,
}

impl ReachMatrix {
    fn new(n: usize) -> Self {
        ReachMatrix {
            n,
            bits: vec![0; n * n.div_ceil(64)],
        }
    }

    fn row_words(&self) -> usize {
        self.n.div_ceil(64)
    }

    fn set(&mut self, from: usize, to: usize) {
        let w = self.row_words();
        self.bits[from * w + to / 64] |= 1 << (to % 64);
    }

    /// Is `to` reachable from `from` under this matrix's path kind?
    pub fn get(&self, from: TypeId, to: TypeId) -> bool {
        let w = self.row_words();
        self.bits[from.index() * w + to.index() / 64] & (1 << (to.index() % 64)) != 0
    }
}

/// The four per-kind closures plus the `str`-reach vector.
pub struct ReachIndex {
    /// Reachable via nonempty solid-only (AND/STAR) paths.
    pub solid: ReachMatrix,
    /// Reachable via nonempty solid-only paths containing ≥ 1 STAR edge.
    pub solid_star: ReachMatrix,
    /// Reachable via any nonempty path.
    pub any: ReachMatrix,
    /// Reachable via nonempty paths containing ≥ 1 OR (dashed) edge.
    pub with_or: ReachMatrix,
    /// Node can reach (or is) a type with a `str` production through a
    /// solid-only (possibly empty) path — feasibility of `path(A, str)`.
    pub str_solid: Vec<bool>,
}

impl ReachIndex {
    /// Build all indexes for `target`.
    pub fn new(target: &Dtd, graph: &SchemaGraph) -> Self {
        let n = target.type_count();
        let mut solid = ReachMatrix::new(n);
        let mut solid_star = ReachMatrix::new(n);
        let mut any = ReachMatrix::new(n);
        let mut with_or = ReachMatrix::new(n);

        // BFS over the (node, flag) product per start node. flag = "the
        // distinguished edge kind was seen".
        let mut seen = vec![false; 2 * n];
        let mut stack: Vec<(usize, bool)> = Vec::new();
        let mut run = |start: usize,
                       allow_or: bool,
                       flag_on: &dyn Fn(EdgeKind) -> bool,
                       plain: &mut ReachMatrix,
                       flagged: &mut ReachMatrix| {
            seen.iter_mut().for_each(|b| *b = false);
            stack.clear();
            stack.push((start, false));
            seen[start] = true;
            while let Some((x, flag)) = stack.pop() {
                for e in graph.edges_from(TypeId::from_index(x)) {
                    let EdgeTarget::Type(c) = e.target else {
                        continue;
                    };
                    if !allow_or && e.kind.is_or() {
                        continue;
                    }
                    let nf = flag || flag_on(e.kind);
                    let idx = c.index() + usize::from(nf) * n;
                    // Record reachability of c (with/without flag).
                    if nf {
                        flagged.set(start, c.index());
                    }
                    plain.set(start, c.index());
                    if !seen[idx] {
                        seen[idx] = true;
                        stack.push((c.index(), nf));
                    }
                }
            }
        };

        for s in 0..n {
            // Solid-only walk; flag = star edge seen.
            run(s, false, &|k| k.is_star(), &mut solid, &mut solid_star);
        }
        for s in 0..n {
            // Any-edge walk; flag = or edge seen.
            run(s, true, &|k| k.is_or(), &mut any, &mut with_or);
        }

        // str reach: solid closure to a Str-production node (or self).
        let mut str_solid = vec![false; n];
        for t in target.types() {
            let is_str = |x: TypeId| matches!(target.production(x), Production::Str);
            str_solid[t.index()] =
                is_str(t) || target.types().any(|u| is_str(u) && solid.get(t, u));
        }

        ReachIndex {
            solid,
            solid_star,
            any,
            with_or,
            str_solid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xse_dtd::Dtd;

    fn school() -> (Dtd, SchemaGraph) {
        let d = Dtd::builder("school")
            .concat("school", &["courses"])
            .concat("courses", &["current"])
            .star("current", "course")
            .concat("course", &["cno", "category"])
            .str_type("cno")
            .disjunction("category", &["regular", "project"])
            .empty("regular")
            .empty("project")
            .build()
            .unwrap();
        let g = SchemaGraph::new(&d);
        (d, g)
    }

    #[test]
    fn solid_reach_excludes_or_edges() {
        let (d, g) = school();
        let idx = ReachIndex::new(&d, &g);
        let root = d.root();
        let course = d.type_id("course").unwrap();
        let regular = d.type_id("regular").unwrap();
        assert!(idx.solid.get(root, course));
        assert!(!idx.solid.get(root, regular), "regular needs an OR edge");
        assert!(idx.any.get(root, regular));
        assert!(idx.with_or.get(root, regular));
    }

    #[test]
    fn star_reach_requires_a_star_edge() {
        let (d, g) = school();
        let idx = ReachIndex::new(&d, &g);
        let root = d.root();
        let courses = d.type_id("courses").unwrap();
        let course = d.type_id("course").unwrap();
        let cno = d.type_id("cno").unwrap();
        assert!(idx.solid_star.get(root, course));
        assert!(idx.solid_star.get(root, cno));
        assert!(!idx.solid_star.get(root, courses), "no star before courses");
        assert!(!idx.solid_star.get(course, cno), "course→cno is star-free");
    }

    #[test]
    fn with_or_needs_a_dashed_edge() {
        let (d, g) = school();
        let idx = ReachIndex::new(&d, &g);
        let root = d.root();
        let course = d.type_id("course").unwrap();
        assert!(!idx.with_or.get(root, course));
        let project = d.type_id("project").unwrap();
        assert!(idx.with_or.get(root, project));
    }

    #[test]
    fn str_reach_via_solid_paths() {
        let (d, g) = school();
        let idx = ReachIndex::new(&d, &g);
        let cno = d.type_id("cno").unwrap();
        let course = d.type_id("course").unwrap();
        let category = d.type_id("category").unwrap();
        assert!(idx.str_solid[cno.index()], "a str node reaches itself");
        assert!(idx.str_solid[course.index()]);
        assert!(
            !idx.str_solid[category.index()],
            "category's only str descendants sit behind or-edges"
        );
        assert!(idx.str_solid[d.root().index()]);
    }

    #[test]
    fn reach_is_nonreflexive_without_cycles() {
        let (d, g) = school();
        let idx = ReachIndex::new(&d, &g);
        assert!(!idx.solid.get(d.root(), d.root()));
        assert!(!idx.any.get(d.root(), d.root()));
    }

    #[test]
    fn cycles_make_self_reachable() {
        let d = Dtd::builder("a")
            .concat("a", &["b"])
            .disjunction_opt("b", &["a"])
            .build()
            .unwrap();
        let g = SchemaGraph::new(&d);
        let idx = ReachIndex::new(&d, &g);
        assert!(idx.any.get(d.root(), d.root()));
        assert!(idx.with_or.get(d.root(), d.root()));
        assert!(
            !idx.solid.get(d.root(), d.root()),
            "cycle crosses an OR edge"
        );
    }
}
