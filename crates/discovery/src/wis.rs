//! Weighted independent set heuristic.
//!
//! The third assembly strategy reduces `Assemble-Embedding` to maximum
//! weighted independent set over a conflict graph of candidate local
//! mappings. The paper plugs in the quadratic-over-a-sphere heuristic of
//! Busygin et al. (2002); we substitute greedy selection by
//! weight/(degree+1) followed by 1-swap local search — the standard WIS
//! workhorse — which serves the same role as a black-box WIS oracle.

/// An undirected conflict graph with vertex weights.
pub struct ConflictGraph {
    weights: Vec<f64>,
    adj: Vec<Vec<u32>>,
}

impl ConflictGraph {
    /// Create a graph with the given vertex weights and no edges.
    pub fn new(weights: Vec<f64>) -> Self {
        let n = weights.len();
        ConflictGraph {
            weights,
            adj: vec![Vec::new(); n],
        }
    }

    /// Add a conflict edge.
    pub fn add_conflict(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        if !self.adj[a].contains(&(b as u32)) {
            self.adj[a].push(b as u32);
            self.adj[b].push(a as u32);
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Greedy + 1-swap local search for a heavy independent set. Returns
    /// the selected vertex indices (sorted).
    pub fn heavy_independent_set(&self) -> Vec<usize> {
        let n = self.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            // NaN keys map to -inf (f64::max ignores a NaN operand) so a
            // garbage weight sorts last in the descending order instead of
            // panicking — or, worse, winning: +NaN outranks +inf in
            // total_cmp's total order.
            let ka = (self.weights[a] / (self.adj[a].len() as f64 + 1.0)).max(f64::NEG_INFINITY);
            let kb = (self.weights[b] / (self.adj[b].len() as f64 + 1.0)).max(f64::NEG_INFINITY);
            kb.total_cmp(&ka).then(a.cmp(&b))
        });
        let mut selected = vec![false; n];
        let mut blocked = vec![0u32; n];
        for &v in &order {
            if blocked[v] == 0 {
                selected[v] = true;
                for &u in &self.adj[v] {
                    blocked[u as usize] += 1;
                }
            }
        }
        // 1-swap improvement: replace a selected vertex by a non-selected
        // neighbor whose weight exceeds the weight it blocks.
        let mut improved = true;
        while improved {
            improved = false;
            for v in 0..n {
                if selected[v] || blocked[v] != 1 {
                    continue;
                }
                // v is blocked by exactly one selected neighbor u.
                let u = self.adj[v]
                    .iter()
                    .copied()
                    .find(|&u| selected[u as usize])
                    .unwrap() as usize;
                if self.weights[v] > self.weights[u] {
                    selected[u] = false;
                    for &w in &self.adj[u] {
                        blocked[w as usize] -= 1;
                    }
                    selected[v] = true;
                    for &w in &self.adj[v] {
                        blocked[w as usize] += 1;
                    }
                    improved = true;
                }
            }
        }
        (0..n).filter(|&v| selected[v]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_selects_everything() {
        let g = ConflictGraph::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(g.heavy_independent_set(), vec![0, 1, 2]);
        assert!(!g.is_empty());
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn triangle_selects_heaviest() {
        let mut g = ConflictGraph::new(vec![1.0, 5.0, 2.0]);
        g.add_conflict(0, 1);
        g.add_conflict(1, 2);
        g.add_conflict(0, 2);
        assert_eq!(g.heavy_independent_set(), vec![1]);
    }

    #[test]
    fn path_graph_prefers_endpoints() {
        // 0 - 1 - 2 with weights 1, 1.5, 1: {0, 2} (total 2) beats {1}.
        let mut g = ConflictGraph::new(vec![1.0, 1.5, 1.0]);
        g.add_conflict(0, 1);
        g.add_conflict(1, 2);
        assert_eq!(g.heavy_independent_set(), vec![0, 2]);
    }

    #[test]
    fn one_swap_improves_greedy() {
        // Star: center weight 2 with three leaves of weight 1 each. Greedy
        // by weight/(deg+1): center key 0.5, leaves 0.5 — order tie-breaks
        // by index; leaves win if center is index 0? Center first → picks
        // center (2) blocking leaves (total 2 < 3). Local search cannot fix
        // a 1-swap of 3 leaves; verify at least no crash and independence.
        let mut g = ConflictGraph::new(vec![2.0, 1.0, 1.0, 1.0]);
        g.add_conflict(0, 1);
        g.add_conflict(0, 2);
        g.add_conflict(0, 3);
        let s = g.heavy_independent_set();
        for &a in &s {
            for &b in &s {
                assert!(a == b || !g.adj[a].contains(&(b as u32)));
            }
        }
        let total: f64 = s.iter().map(|&v| g.weights[v]).sum();
        assert!(total >= 2.0);
    }

    #[test]
    fn nan_weight_loses_to_any_real_weight() {
        // A NaN weight must sort last in the greedy order (not first, as
        // +NaN would under a bare descending total_cmp) and must never
        // displace a real-weighted neighbor.
        let mut g = ConflictGraph::new(vec![f64::NAN, 1.0]);
        g.add_conflict(0, 1);
        assert_eq!(g.heavy_independent_set(), vec![1]);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = ConflictGraph::new(vec![1.0, 1.0]);
        g.add_conflict(0, 1);
        g.add_conflict(0, 1);
        g.add_conflict(0, 0);
        assert_eq!(g.adj[0].len(), 1);
    }
}
