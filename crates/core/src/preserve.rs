//! Executable checkers for the paper's guarantees — the assertions behind
//! the property-test suites and the TAB-3 experiment.
//!
//! * **type safety** (Theorem 4.1): `σd(T) ∈ I(S2)`;
//! * **injectivity** (Theorem 4.1): `idM` is a bijection between mapped
//!   nodes (enforced structurally by [`IdMap`]) covering all of `dom(T)`;
//! * **invertibility** (Theorem 4.3a): `σd⁻¹(σd(T)) = T`;
//! * **query preservation** (Theorem 4.3b): `Q(T) = idM(Tr(Q)(σd(T)))`.
//!
//! [`IdMap`]: xse_xmltree::IdMap

use xse_rxpath::XrQuery;
use xse_xmltree::XmlTree;

use crate::CompiledEmbedding;

/// Outcome of one preservation check; `Err` carries a human-readable
/// explanation of the first violation.
pub type Check = Result<(), String>;

/// Theorem 4.1 (type safety): map `t1` and validate the output against the
/// target DTD.
pub fn check_type_safety(e: &CompiledEmbedding, t1: &XmlTree) -> Check {
    let out = e.apply(t1).map_err(|x| x.to_string())?;
    e.target()
        .validate(&out.tree)
        .map_err(|x| format!("σd(T) does not conform to S2: {x}"))
}

/// Theorem 4.1 (injectivity): every source node has exactly one image.
pub fn check_injectivity(e: &CompiledEmbedding, t1: &XmlTree) -> Check {
    let out = e.apply(t1).map_err(|x| x.to_string())?;
    // IdMap::insert already panics on duplicates; here we check totality.
    if out.idmap.len() != t1.len() {
        return Err(format!(
            "idM covers {} of {} source nodes",
            out.idmap.len(),
            t1.len()
        ));
    }
    for id in t1.preorder() {
        if out.idmap.target_of(id).is_none() {
            return Err(format!("source node {id} has no image"));
        }
    }
    Ok(())
}

/// Theorem 4.3(a) (invertibility): `σd⁻¹(σd(T)) = T`.
pub fn check_roundtrip(e: &CompiledEmbedding, t1: &XmlTree) -> Check {
    let out = e.apply(t1).map_err(|x| x.to_string())?;
    let back = e.invert(&out.tree).map_err(|x| x.to_string())?;
    match back.first_difference(t1) {
        None => Ok(()),
        Some(d) => Err(format!("σd⁻¹(σd(T)) ≠ T: {d}")),
    }
}

/// Theorem 4.3(b) (query preservation): `Q(T) = idM(Tr(Q)(σd(T)))`, with the
/// additional strictness that translated queries must never match padding
/// nodes (nodes outside `idM`'s domain).
pub fn check_query_preservation(e: &CompiledEmbedding, t1: &XmlTree, q: &XrQuery) -> Check {
    let out = e.apply(t1).map_err(|x| x.to_string())?;
    let tr = e.translate(q).map_err(|x| x.to_string())?;
    let got = tr.eval(&out.tree);
    let mut mapped: Vec<_> = out.idmap.map_result(got.iter().copied()).collect();
    if mapped.len() != got.len() {
        return Err(format!(
            "Tr({q}) matched {} padding node(s)",
            got.len() - mapped.len()
        ));
    }
    mapped.sort();
    let mut want = q.eval(t1);
    want.sort();
    if mapped != want {
        return Err(format!(
            "Tr({q}): idM(results) = {mapped:?} but Q(T) = {want:?}"
        ));
    }
    Ok(())
}

/// Theorem 4.3(b) size bound: `|Tr(Q)| ≤ |Q| · |σ| · |S1|` (up to the
/// constant hidden by O(·); we check against the literal product, which the
/// construction in fact respects).
pub fn check_translation_bound(e: &CompiledEmbedding, q: &XrQuery) -> Check {
    let tr = e.translate(q).map_err(|x| x.to_string())?;
    let bound = q.size() * e.size().max(1) * e.source().type_count().max(1);
    if tr.size() > bound {
        return Err(format!(
            "|Tr(Q)| = {} exceeds |Q|·|σ|·|S1| = {bound}",
            tr.size()
        ));
    }
    Ok(())
}

/// Run every checker on one instance and a batch of queries.
pub fn check_all(e: &CompiledEmbedding, t1: &XmlTree, queries: &[XrQuery]) -> Check {
    check_type_safety(e, t1)?;
    check_injectivity(e, t1)?;
    check_roundtrip(e, t1)?;
    for q in queries {
        check_query_preservation(e, t1, q)?;
        check_translation_bound(e, q)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::tests::{wrap, wrap_compiled};
    use xse_dtd::{GenConfig, InstanceGenerator};
    use xse_rxpath::parse_query;
    use xse_xmltree::parse_xml;

    #[test]
    fn all_guarantees_hold_on_generated_instances() {
        let (s1, s2) = wrap();
        let e = wrap_compiled(&s1, &s2);
        let queries: Vec<_> = [
            "a",
            "b/c",
            "b/c/text()",
            "b/c[position() = 2]",
            "a/text()",
            "a | b/c",
        ]
        .iter()
        .map(|s| parse_query(s).unwrap())
        .collect();
        let gen = InstanceGenerator::new(&s1, GenConfig::default());
        for seed in 0..25 {
            let t1 = gen.generate(seed);
            check_all(&e, &t1, &queries).unwrap_or_else(|err| panic!("seed {seed}: {err}"));
        }
    }

    #[test]
    fn checkers_report_failures_readably() {
        let (s1, s2) = wrap();
        let e = wrap_compiled(&s1, &s2);
        let bad = parse_xml("<r><b/><a>x</a></r>").unwrap();
        let err = check_type_safety(&e, &bad).unwrap_err();
        assert!(err.contains("source"), "{err}");
    }
}
