//! Embedding multiple sources into one target (§4.5, Example 4.9).
//!
//! Given sources `S1, …, Sn` with disjoint type names, define the combined
//! DTD `S′` whose fresh root concatenates the source roots; an embedding
//! `S′ → S` then decomposes into simultaneous embeddings `σi : Si → S`, and
//! a combined instance maps to a single target document that *integrates*
//! all sources (the paper's school document holding both the class and the
//! student data). Helpers here build `S′`, combine and split instances, and
//! rename-prefix a DTD when names collide.

use std::collections::HashSet;

use xse_dtd::{Dtd, DtdError, Production};
use xse_xmltree::XmlTree;

/// Build the combined source `S′ = (E1 ∪ … ∪ En ∪ {r′}, r′ → r1, …, rn)`.
///
/// # Errors
/// The sources must have pairwise disjoint type names, none equal to
/// `combined_root` (rename with [`prefix_types`] first).
pub fn combine_sources(combined_root: &str, sources: &[&Dtd]) -> Result<Dtd, DtdError> {
    let mut seen: HashSet<&str> = HashSet::new();
    seen.insert(combined_root);
    for s in sources {
        for t in s.types() {
            if !seen.insert(s.name(t)) {
                return Err(DtdError::DuplicateType(s.name(t).to_string()));
            }
        }
    }
    let mut b = Dtd::builder(combined_root);
    let root_children: Vec<String> = sources
        .iter()
        .map(|s| s.name(s.root()).to_string())
        .collect();
    let refs: Vec<&str> = root_children.iter().map(String::as_str).collect();
    b = b.concat(combined_root, &refs);
    for s in sources {
        for t in s.types() {
            let name = s.name(t);
            b = match s.production(t) {
                Production::Str => b.str_type(name),
                Production::Empty => b.empty(name),
                Production::Concat(cs) => {
                    let children: Vec<&str> = cs.iter().map(|c| s.name(*c)).collect();
                    b.concat(name, &children)
                }
                Production::Disjunction { alts, allows_empty } => {
                    let children: Vec<&str> = alts.iter().map(|c| s.name(*c)).collect();
                    if *allows_empty {
                        b.disjunction_opt(name, &children)
                    } else {
                        b.disjunction(name, &children)
                    }
                }
                Production::Star(c) => b.star(name, s.name(*c)),
            };
        }
    }
    b.build()
}

/// Rename every type of `dtd` with a prefix, producing a structurally
/// identical DTD with disjoint names (`prefix_types(s, "s1_")` turns `db`
/// into `s1_db`).
pub fn prefix_types(dtd: &Dtd, prefix: &str) -> Dtd {
    let mut b = Dtd::builder(format!("{prefix}{}", dtd.name(dtd.root())));
    for t in dtd.types() {
        let name = format!("{prefix}{}", dtd.name(t));
        b = match dtd.production(t) {
            Production::Str => b.str_type(&name),
            Production::Empty => b.empty(&name),
            Production::Concat(cs) => {
                let children: Vec<String> = cs
                    .iter()
                    .map(|c| format!("{prefix}{}", dtd.name(*c)))
                    .collect();
                let refs: Vec<&str> = children.iter().map(String::as_str).collect();
                b.concat(&name, &refs)
            }
            Production::Disjunction { alts, allows_empty } => {
                let children: Vec<String> = alts
                    .iter()
                    .map(|c| format!("{prefix}{}", dtd.name(*c)))
                    .collect();
                let refs: Vec<&str> = children.iter().map(String::as_str).collect();
                if *allows_empty {
                    b.disjunction_opt(&name, &refs)
                } else {
                    b.disjunction(&name, &refs)
                }
            }
            Production::Star(c) => b.star(&name, &format!("{prefix}{}", dtd.name(*c))),
        };
    }
    b.build().expect("renaming preserves well-formedness")
}

/// Relabel every element of `tree` with a prefix (companion to
/// [`prefix_types`]).
pub fn prefix_instance(tree: &XmlTree, prefix: &str) -> XmlTree {
    let mut out = XmlTree::new(format!(
        "{prefix}{}",
        tree.tag(tree.root()).unwrap_or("root")
    ));
    let root = out.root();
    copy_children(tree, tree.root(), &mut out, root, Some(prefix));
    out
}

/// Combine one instance per source into an instance of the combined DTD.
pub fn combine_instances(combined_root: &str, instances: &[&XmlTree]) -> XmlTree {
    let mut out = XmlTree::new(combined_root);
    let root = out.root();
    for t in instances {
        let sub = out.add_element(root, t.tag(t.root()).unwrap_or("root"));
        copy_children(t, t.root(), &mut out, sub, None);
    }
    out
}

/// Split a combined instance back into per-source documents (inverse of
/// [`combine_instances`]).
pub fn split_instance(combined: &XmlTree) -> Vec<XmlTree> {
    combined
        .children(combined.root())
        .iter()
        .map(|&c| {
            let mut out = XmlTree::new(combined.tag(c).unwrap_or("root"));
            let root = out.root();
            copy_children(combined, c, &mut out, root, None);
            out
        })
        .collect()
}

fn copy_children(
    src: &XmlTree,
    from: xse_xmltree::NodeId,
    dst: &mut XmlTree,
    to: xse_xmltree::NodeId,
    prefix: Option<&str>,
) {
    for &c in src.children(from) {
        match src.tag(c) {
            Some(tag) => {
                let tag = match prefix {
                    Some(p) => format!("{p}{tag}"),
                    None => tag.to_string(),
                };
                let n = dst.add_element(to, tag);
                copy_children(src, c, dst, n, prefix);
            }
            None => {
                dst.add_text(to, src.text_value(c).unwrap_or_default());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xse_xmltree::parse_xml;

    fn classes() -> Dtd {
        Dtd::builder("classdb")
            .star("classdb", "class")
            .str_type("class")
            .build()
            .unwrap()
    }

    fn students() -> Dtd {
        Dtd::builder("studentdb")
            .star("studentdb", "student")
            .str_type("student")
            .build()
            .unwrap()
    }

    #[test]
    fn combine_disjoint_sources() {
        let (a, b) = (classes(), students());
        let c = combine_sources("sources", &[&a, &b]).unwrap();
        assert_eq!(c.type_count(), 1 + 2 + 2);
        assert_eq!(c.name(c.root()), "sources");
        assert!(c.is_consistent());
        let root_prod = c.production(c.root());
        assert_eq!(root_prod.children().len(), 2);
    }

    #[test]
    fn name_collisions_are_rejected_then_fixed_by_prefixing() {
        let a = classes();
        let e = combine_sources("sources", &[&a, &a]).unwrap_err();
        assert!(matches!(e, DtdError::DuplicateType(_)));
        let a1 = prefix_types(&a, "s1_");
        let a2 = prefix_types(&a, "s2_");
        let c = combine_sources("sources", &[&a1, &a2]).unwrap();
        assert!(c.type_id("s1_class").is_some());
        assert!(c.type_id("s2_class").is_some());
    }

    #[test]
    fn combine_and_split_instances_roundtrip() {
        let t1 = parse_xml("<classdb><class>x</class></classdb>").unwrap();
        let t2 =
            parse_xml("<studentdb><student>y</student><student>z</student></studentdb>").unwrap();
        let c = combine_instances("sources", &[&t1, &t2]);
        let (a, b) = (classes(), students());
        let combined_dtd = combine_sources("sources", &[&a, &b]).unwrap();
        combined_dtd.validate(&c).unwrap();
        let parts = split_instance(&c);
        assert_eq!(parts.len(), 2);
        assert!(parts[0].equals(&t1));
        assert!(parts[1].equals(&t2));
    }

    #[test]
    fn prefix_instance_matches_prefix_types() {
        let d = classes();
        let pd = prefix_types(&d, "p_");
        let t = parse_xml("<classdb><class>x</class></classdb>").unwrap();
        let pt = prefix_instance(&t, "p_");
        pd.validate(&pt).unwrap();
        assert_eq!(pt.to_xml(), "<p_classdb><p_class>x</p_class></p_classdb>");
    }
}
