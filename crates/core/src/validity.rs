//! The §4.1 validity conditions and position canonicalization.
//!
//! For each source type `A` with production `P1(A)`:
//!
//! * `P1(A) = B1,…,Bl` — every `path(A, Bi)` is an **AND path** ending at
//!   `λ(Bi)`, and no sibling path is a prefix of another;
//! * `P1(A) = B1+…+Bl` — every `path(A, Bi)` is an **OR path**, prefix-free
//!   (footnote 1: an `ε` alternative needs no path);
//! * `P1(A) = B*` — `path(A, B)` is a **STAR path** whose first STAR step is
//!   left unpinned (that is where the repetition materializes);
//! * `P1(A) = str` — `path(A, str)` is an AND path ending with `text()`.
//!
//! Canonicalization (DESIGN.md §3 item 2): STAR steps crossed by AND/OR/str
//! edges default to `position() = 1`; on a star edge the steps *after* the
//! multiplicity point default to 1 as well.

use xse_dtd::{Dtd, Edge, EdgeTarget, Production, TypeId};
use xse_rxpath::XrPath;

use crate::embedding::TypeMapping;
use crate::resolve::ResolvedPath;
use crate::EmbeddingError;

/// Normalize positions in `rp` and check the path-type condition for the
/// single source edge `edge` (with original syntax `p` for error messages).
pub(crate) fn normalize_and_check_edge(
    source: &Dtd,
    target: &Dtd,
    lambda: &TypeMapping,
    edge: &Edge,
    p: &XrPath,
    rp: &mut ResolvedPath,
) -> Result<(), EmbeddingError> {
    let from = source.name(edge.parent).to_string();
    if rp.is_empty() {
        return Err(EmbeddingError::PathUnresolvable {
            from,
            path: p.to_string(),
            reason: "an edge must map to a nonempty path (k ≥ 1)".into(),
        });
    }
    let is_star_edge = edge.kind.is_star();
    let is_str_edge = matches!(edge.target, EdgeTarget::Str);

    // Position canonicalization.
    if is_star_edge {
        let Some(mult) = rp.first_star_step() else {
            return Err(EmbeddingError::PathKind {
                from,
                path: p.to_string(),
                expected: "a STAR path",
                found: rp.classify().to_string_like(),
            });
        };
        if rp.steps[mult].pos.is_some() {
            return Err(EmbeddingError::StarPositionPinned {
                from,
                path: p.to_string(),
            });
        }
        for s in rp.steps.iter_mut().skip(mult + 1) {
            if s.kind.is_star() && s.pos.is_none() {
                s.pos = Some(1);
            }
        }
    } else {
        for s in rp.steps.iter_mut() {
            if s.kind.is_star() && s.pos.is_none() {
                s.pos = Some(1);
            }
        }
    }

    // Path type condition.
    let class = rp.classify();
    let expected: &'static str = match edge.kind {
        _ if is_str_edge => {
            if !rp.text_tail {
                return Err(EmbeddingError::PathKind {
                    from,
                    path: p.to_string(),
                    expected: "an AND path ending with text()",
                    found: "a path without a text() tail".into(),
                });
            }
            if !class.is_and() {
                return Err(EmbeddingError::PathKind {
                    from,
                    path: p.to_string(),
                    expected: "an AND path ending with text()",
                    found: class.to_string_like(),
                });
            }
            ""
        }
        xse_dtd::EdgeKind::And { .. } => {
            if rp.text_tail {
                return Err(EmbeddingError::PathKind {
                    from,
                    path: p.to_string(),
                    expected: "an AND path to an element type",
                    found: "a path with a text() tail".into(),
                });
            }
            if !class.is_and() {
                return Err(EmbeddingError::PathKind {
                    from,
                    path: p.to_string(),
                    expected: "an AND path",
                    found: class.to_string_like(),
                });
            }
            ""
        }
        xse_dtd::EdgeKind::Or => {
            if rp.text_tail {
                return Err(EmbeddingError::PathKind {
                    from,
                    path: p.to_string(),
                    expected: "an OR path to an element type",
                    found: "a path with a text() tail".into(),
                });
            }
            if !class.is_or() {
                return Err(EmbeddingError::PathKind {
                    from,
                    path: p.to_string(),
                    expected: "an OR path",
                    found: class.to_string_like(),
                });
            }
            ""
        }
        xse_dtd::EdgeKind::Star => {
            if rp.text_tail {
                return Err(EmbeddingError::PathKind {
                    from,
                    path: p.to_string(),
                    expected: "a STAR path to an element type",
                    found: "a path with a text() tail".into(),
                });
            }
            if !class.is_star() {
                return Err(EmbeddingError::PathKind {
                    from,
                    path: p.to_string(),
                    expected: "a STAR path",
                    found: class.to_string_like(),
                });
            }
            ""
        }
    };
    let _ = expected;

    // Endpoint condition: the path must end at λ(B) for element edges.
    if let EdgeTarget::Type(b) = edge.target {
        let expected_ty = lambda.get(b);
        if rp.endpoint() != expected_ty {
            return Err(EmbeddingError::PathWrongEndpoint {
                from,
                path: p.to_string(),
                expected: target.name(expected_ty).to_string(),
                found: target.name(rp.endpoint()).to_string(),
            });
        }
    }
    Ok(())
}

/// Pairwise prefix-free check over the sibling paths of one source type.
pub(crate) fn check_prefix_free(
    source: &Dtd,
    target: &Dtd,
    a: TypeId,
    paths: &[ResolvedPath],
) -> Result<(), EmbeddingError> {
    // The condition applies to concatenations and disjunctions — the only
    // productions with sibling edges — but conflicts are impossible
    // elsewhere (single edge), so checking unconditionally is free.
    let _ = source.production(a);
    for i in 0..paths.len() {
        for j in (i + 1)..paths.len() {
            if paths[i].conflicts_with(&paths[j]) {
                return Err(EmbeddingError::PrefixConflict {
                    ty: source.name(a).to_string(),
                    path_a: paths[i].display(target),
                    path_b: paths[j].display(target),
                });
            }
        }
    }
    Ok(())
}

impl crate::resolve::PathClass {
    pub(crate) fn to_string_like(self) -> String {
        self.to_string()
    }
}

/// Distinguishability of disjunction alternatives (DESIGN.md §3): for each
/// alternative `j` (and for the `ε` choice), build the *static* fragment it
/// produces — its chain plus minimum-default completion, with the hot leaf
/// opaque — and verify no *other* alternative's path navigates inside it.
/// Without this, default padding could alias a choice and `σd⁻¹` / `Tr`
/// would mis-resolve disjunctions (the paper's conditions leave this corner
/// open; rejecting such embeddings is conservative).
pub(crate) fn check_disjunction_distinguishability(
    source: &Dtd,
    target: &Dtd,
    a: TypeId,
    paths: &[crate::resolve::ResolvedPath],
    plans: &[xse_dtd::MindefPlan],
) -> Result<(), EmbeddingError> {
    use crate::pfrag::{materialize, Emitter, Fragment, Terminal};
    let Production::Disjunction { alts, allows_empty } = source.production(a) else {
        return Ok(());
    };
    if paths.is_empty() {
        return Ok(());
    }
    let origin = paths[0].origin;
    let mut scenarios: Vec<Option<usize>> = (0..alts.len()).map(Some).collect();
    if *allows_empty {
        scenarios.push(None);
    }
    for &scn in &scenarios {
        let mut frag = Fragment::new(origin);
        if let Some(j) = scn {
            frag.add_chain(&paths[j], Terminal::Opaque);
        }
        let mut tree = xse_xmltree::XmlTree::new(target.name(origin));
        let tags: Vec<xse_xmltree::TagId> = target
            .types()
            .map(|ty| tree.intern_tag(target.name(ty)))
            .collect();
        let em = Emitter {
            target,
            plans,
            tags: &tags,
            // Static fragments carry no instance values.
            src: None,
        };
        let root = tree.root();
        let (mut hot, mut texts) = (Vec::new(), Vec::new());
        materialize(frag, &em, &mut tree, root, &mut hot, &mut texts);
        for (i, p) in paths.iter().enumerate() {
            if scn == Some(i) {
                continue;
            }
            if crate::inverse::navigate(target, &tree, root, &p.steps).is_some() {
                return Err(EmbeddingError::AlternativeAliased {
                    ty: source.name(a).to_string(),
                    probe: p.display(target),
                    scenario: match scn {
                        Some(j) => source.name(alts[j]).to_string(),
                        None => "ε".into(),
                    },
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::embedding::{CompiledEmbedding, EmbeddingBuilder, TypeMapping};
    use crate::EmbeddingError;
    use xse_dtd::Dtd;

    fn builder(
        s1: &Dtd,
        s2: &Dtd,
        lambda: TypeMapping,
        edges: &[(&str, &str, &str)],
    ) -> EmbeddingBuilder {
        let mut b = EmbeddingBuilder::new(s1.clone(), s2.clone()).with_lambda(lambda);
        for (a, c, p) in edges {
            b = b.edge(a, c, p);
        }
        b
    }

    /// Figure 3 of the paper: five mini scenarios for the validity
    /// conditions. Types in the source map to same-named primed types —
    /// here we just reuse identical names.
    fn try_embed(
        s1: &Dtd,
        s2: &Dtd,
        lambda: TypeMapping,
        edges: &[(&str, &str, &str)],
    ) -> Result<usize, EmbeddingError> {
        builder(s1, s2, lambda, edges).build().map(|e| e.size())
    }

    fn compile(
        s1: &Dtd,
        s2: &Dtd,
        lambda: TypeMapping,
        edges: &[(&str, &str, &str)],
    ) -> Result<CompiledEmbedding, EmbeddingError> {
        builder(s1, s2, lambda, edges).build()
    }

    #[test]
    fn fig3a_and_edges_cannot_map_to_or_paths() {
        // Source: A → B, C. Target: A' → B' + C'.
        let s1 = Dtd::builder("A")
            .concat("A", &["B", "C"])
            .empty("B")
            .empty("C")
            .build()
            .unwrap();
        let s2 = Dtd::builder("A")
            .disjunction("A", &["B", "C"])
            .empty("B")
            .empty("C")
            .build()
            .unwrap();
        let lambda = TypeMapping::by_same_name(&s1, &s2).unwrap();
        let e = try_embed(&s1, &s2, lambda, &[("A", "B", "B"), ("A", "C", "C")]).unwrap_err();
        assert!(
            matches!(
                e,
                EmbeddingError::PathKind {
                    expected: "an AND path",
                    ..
                }
            ),
            "{e}"
        );
    }

    #[test]
    fn fig3b_star_edge_needs_star_path() {
        // Source: A → B*. Target: A' → B'.
        let s1 = Dtd::builder("A").star("A", "B").empty("B").build().unwrap();
        let s2 = Dtd::builder("A")
            .concat("A", &["B"])
            .empty("B")
            .build()
            .unwrap();
        let lambda = TypeMapping::by_same_name(&s1, &s2).unwrap();
        let e = try_embed(&s1, &s2, lambda, &[("A", "B", "B")]).unwrap_err();
        assert!(
            matches!(
                e,
                EmbeddingError::PathKind {
                    expected: "a STAR path",
                    ..
                }
            ),
            "{e}"
        );
    }

    #[test]
    fn fig3c_positions_disambiguate_repeated_children() {
        // Source: A → B, C (both mapped to B'). Target: A' → B', B'.
        let s1 = Dtd::builder("A")
            .concat("A", &["B", "C"])
            .empty("B")
            .empty("C")
            .build()
            .unwrap();
        let s2 = Dtd::builder("A")
            .concat("A", &["B", "B"])
            .empty("B")
            .build()
            .unwrap();
        let b2 = s2.type_id("B").unwrap();
        let lambda = TypeMapping::from_fn(&s1, |t| if t == s1.root() { s2.root() } else { b2 });
        let n = try_embed(
            &s1,
            &s2,
            lambda,
            &[
                ("A", "B", "B[position() = 1]"),
                ("A", "C", "B[position() = 2]"),
            ],
        )
        .unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn fig3d_prefix_violation_rejected() {
        // Source: A → B, C. Target: A' → B', B' → C'. path(A,B)=B,
        // path(A,C)=B/C violates prefix-freeness.
        let s1 = Dtd::builder("A")
            .concat("A", &["B", "C"])
            .empty("B")
            .empty("C")
            .build()
            .unwrap();
        let s2 = Dtd::builder("A")
            .concat("A", &["B"])
            .concat("B", &["C"])
            .empty("C")
            .build()
            .unwrap();
        let lambda = TypeMapping::by_same_name(&s1, &s2).unwrap();
        let e = try_embed(&s1, &s2, lambda, &[("A", "B", "B"), ("A", "C", "B/C")]).unwrap_err();
        assert!(matches!(e, EmbeddingError::PrefixConflict { .. }), "{e}");
    }

    #[test]
    fn fig3e_cycle_unfolding_is_valid() {
        // Source: A → B, C. Target: A' → B', B' → A' + C'.
        // path(A,B) = B'/A' (unfolding the cycle once), path(A,C) = B'/C'.
        // Note both paths cross OR edges... in Figure 3(e) the target's
        // B' → (A'|C') is a disjunction, so the source's AND edges cannot
        // map through it; the paper's scenario (e) uses concatenation-typed
        // cycles. Model it that way:
        let s1 = Dtd::builder("A")
            .concat("A", &["B", "C"])
            .empty("B")
            .empty("C")
            .build()
            .unwrap();
        let s2 = Dtd::builder("A")
            .concat("A", &["B"])
            .concat("B", &["A2", "C"])
            .concat("A2", &["B2"])
            .empty("B2")
            .empty("C")
            .build()
            .unwrap();
        let lambda =
            TypeMapping::by_name_pairs(&s1, &s2, &[("A", "A"), ("B", "A2"), ("C", "C")]).unwrap();
        let n = try_embed(&s1, &s2, lambda, &[("A", "B", "B/A2"), ("A", "C", "B/C")]).unwrap();
        assert_eq!(n, 4);
    }

    #[test]
    fn or_edge_requires_or_path() {
        // Source: A → B + C. Target has only AND structure.
        let s1 = Dtd::builder("A")
            .disjunction("A", &["B", "C"])
            .empty("B")
            .empty("C")
            .build()
            .unwrap();
        let s2 = Dtd::builder("A")
            .concat("A", &["B", "C"])
            .empty("B")
            .empty("C")
            .build()
            .unwrap();
        let lambda = TypeMapping::by_same_name(&s1, &s2).unwrap();
        let e = try_embed(&s1, &s2, lambda, &[("A", "B", "B"), ("A", "C", "C")]).unwrap_err();
        assert!(
            matches!(
                e,
                EmbeddingError::PathKind {
                    expected: "an OR path",
                    ..
                }
            ),
            "{e}"
        );
    }

    #[test]
    fn str_edge_requires_text_tail() {
        let s1 = Dtd::builder("A").str_type("A").build().unwrap();
        let s2 = Dtd::builder("A")
            .concat("A", &["B"])
            .str_type("B")
            .build()
            .unwrap();
        let lambda = TypeMapping::from_fn(&s1, |_| s2.root());
        let e = try_embed(&s1, &s2, lambda.clone(), &[("A", "str", "B")]).unwrap_err();
        assert!(matches!(e, EmbeddingError::PathKind { .. }), "{e}");
        let n = try_embed(&s1, &s2, lambda, &[("A", "str", "B/text()")]).unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn star_multiplicity_step_must_stay_unpinned() {
        let s1 = Dtd::builder("A").star("A", "B").empty("B").build().unwrap();
        let s2 = Dtd::builder("A").star("A", "B").empty("B").build().unwrap();
        let lambda = TypeMapping::by_same_name(&s1, &s2).unwrap();
        let e = try_embed(&s1, &s2, lambda, &[("A", "B", "B[position() = 1]")]).unwrap_err();
        assert!(
            matches!(e, EmbeddingError::StarPositionPinned { .. }),
            "{e}"
        );
    }

    #[test]
    fn star_crossing_and_edge_canonicalizes_to_position_one() {
        // Source AND edge routed through a target star: gets [position()=1].
        let s1 = Dtd::builder("A")
            .concat("A", &["B"])
            .empty("B")
            .build()
            .unwrap();
        let s2 = Dtd::builder("A")
            .star("A", "W")
            .concat("W", &["B"])
            .empty("B")
            .build()
            .unwrap();
        let lambda = TypeMapping::by_same_name(&s1, &s2).unwrap();
        let e = compile(&s1, &s2, lambda, &[("A", "B", "W/B")]).unwrap();
        let rp = e.path(s1.root(), 0);
        assert_eq!(rp.steps[0].pos, Some(1), "star step canonicalized");
        assert!(e.describe().contains("W[position() = 1]/B[position() = 1]"));
    }

    #[test]
    fn star_source_later_star_steps_canonicalize() {
        // Source: A → B*. Target: A → M*, M → N*, N → B... path A/B = M/N/B:
        // first star step M is the multiplicity point (stays unpinned),
        // second star step N defaults to position 1.
        let s1 = Dtd::builder("A").star("A", "B").empty("B").build().unwrap();
        let s2 = Dtd::builder("A")
            .star("A", "M")
            .star("M", "N")
            .concat("N", &["B"])
            .empty("B")
            .build()
            .unwrap();
        let lambda = TypeMapping::by_same_name(&s1, &s2).unwrap();
        let e = compile(&s1, &s2, lambda, &[("A", "B", "M/N/B")]).unwrap();
        let rp = e.path(s1.root(), 0);
        assert_eq!(rp.steps[0].pos, None);
        assert_eq!(rp.steps[1].pos, Some(1));
    }

    #[test]
    fn endpoint_must_be_lambda_image() {
        let s1 = Dtd::builder("A")
            .concat("A", &["B"])
            .empty("B")
            .build()
            .unwrap();
        let s2 = Dtd::builder("A")
            .concat("A", &["X", "B"])
            .empty("X")
            .empty("B")
            .build()
            .unwrap();
        let lambda = TypeMapping::by_same_name(&s1, &s2).unwrap();
        let e = try_embed(&s1, &s2, lambda, &[("A", "B", "X")]).unwrap_err();
        assert!(matches!(e, EmbeddingError::PathWrongEndpoint { .. }), "{e}");
    }
}
