use std::fmt;

use xse_dtd::ValidationError;

/// Everything that can go wrong constructing or using a schema embedding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchemaEmbeddingError {
    /// `λ` must map the source root to the target root.
    RootNotMappedToRoot,
    /// `λ` or the path function is missing/extra entries for a type.
    ArityMismatch {
        ty: String,
        expected: usize,
        got: usize,
    },
    /// The type mapping violates the similarity matrix (`att(A, λ(A)) = 0`).
    SimilarityZero { source: String, target: String },
    /// `path(A, B)` does not denote a label path of the target schema
    /// starting at `λ(A)`.
    PathUnresolvable {
        from: String,
        path: String,
        reason: String,
    },
    /// `path(A, B)` does not end at `λ(B)`.
    PathWrongEndpoint {
        from: String,
        path: String,
        expected: String,
        found: String,
    },
    /// The path type condition is violated (e.g. an AND edge mapped to an
    /// OR path).
    PathKind {
        from: String,
        path: String,
        expected: &'static str,
        found: String,
    },
    /// Two sibling edges' paths violate the prefix-free condition.
    PrefixConflict {
        ty: String,
        path_a: String,
        path_b: String,
    },
    /// A star edge's path pins the multiplicity step to a fixed position,
    /// leaving nowhere for repeated children to go.
    StarPositionPinned { from: String, path: String },
    /// A document fed to `σd` does not conform to the source DTD.
    SourceInvalid(ValidationError),
    /// A document fed to `σd⁻¹` does not conform to the target DTD.
    TargetInvalid(ValidationError),
    /// `σd⁻¹` met a target document it cannot have produced.
    InverseMismatch { at: String, reason: String },
    /// A disjunction alternative's path is navigable inside the static
    /// fragment produced by a *different* alternative (minimum-default
    /// padding would alias the choice and break invertibility) — a
    /// conservative strengthening of the paper's conditions, see DESIGN.md.
    AlternativeAliased {
        ty: String,
        probe: String,
        scenario: String,
    },
    /// The paper assumes consistent DTDs (§2.1); reduce() first.
    InconsistentDtd { which: &'static str },
}

impl fmt::Display for SchemaEmbeddingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use SchemaEmbeddingError::*;
        match self {
            RootNotMappedToRoot => write!(f, "λ must map the source root to the target root"),
            ArityMismatch { ty, expected, got } => write!(
                f,
                "type {ty:?}: expected {expected} edge paths, got {got}"
            ),
            SimilarityZero { source, target } => write!(
                f,
                "att({source:?}, {target:?}) = 0: type mapping invalid w.r.t. the similarity matrix"
            ),
            PathUnresolvable { from, path, reason } => write!(
                f,
                "path {path:?} from {from:?} does not resolve in the target schema: {reason}"
            ),
            PathWrongEndpoint { from, path, expected, found } => write!(
                f,
                "path {path:?} from {from:?} ends at {found:?}, expected λ-image {expected:?}"
            ),
            PathKind { from, path, expected, found } => write!(
                f,
                "path {path:?} from {from:?} must be {expected}, but is {found}"
            ),
            PrefixConflict { ty, path_a, path_b } => write!(
                f,
                "prefix-free violation at {ty:?}: {path_a:?} overlaps {path_b:?}"
            ),
            StarPositionPinned { from, path } => write!(
                f,
                "star edge of {from:?}: path {path:?} fixes a position at its multiplicity step"
            ),
            SourceInvalid(e) => write!(f, "input does not conform to the source DTD: {e}"),
            TargetInvalid(e) => write!(f, "input does not conform to the target DTD: {e}"),
            InverseMismatch { at, reason } => {
                write!(f, "inverse mapping failed at {at}: {reason}")
            }
            AlternativeAliased { ty, probe, scenario } => write!(
                f,
                "disjunction {ty:?}: path {probe:?} is navigable in the fragment of alternative {scenario:?} (default padding would alias the choice)"
            ),
            InconsistentDtd { which } => write!(
                f,
                "the {which} DTD has useless element types; reduce() it first (§2.1 assumes consistent DTDs)"
            ),
        }
    }
}

impl std::error::Error for SchemaEmbeddingError {}

impl From<ValidationError> for SchemaEmbeddingError {
    fn from(e: ValidationError) -> Self {
        SchemaEmbeddingError::SourceInvalid(e)
    }
}
