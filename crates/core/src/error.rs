use std::fmt;

use xse_dtd::ValidationError;

/// Everything that can go wrong constructing, validating, applying or
/// translating through a schema embedding — one enum for the whole engine.
///
/// The variants fall into three groups:
///
/// * **builder errors** ([`EmbeddingError::UnknownType`],
///   [`EmbeddingError::UnknownChild`], [`EmbeddingError::PathSyntax`],
///   [`EmbeddingError::Build`]) — produced by [`EmbeddingBuilder`] and the
///   [`TypeMapping`] constructors while *assembling* `(λ, path)`;
/// * **validity errors** (the §4.1 conditions) — produced when *compiling*
///   the assembled mapping into a [`CompiledEmbedding`];
/// * **runtime errors** — produced by `apply` / `invert` / `translate` on a
///   compiled embedding (nonconforming inputs, non-image documents,
///   unsupported `position()` placements).
///
/// The enum is `#[non_exhaustive]`: match with a wildcard arm so future
/// PRs can refine diagnostics without a breaking change.
///
/// [`EmbeddingBuilder`]: crate::EmbeddingBuilder
/// [`TypeMapping`]: crate::TypeMapping
/// [`CompiledEmbedding`]: crate::CompiledEmbedding
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EmbeddingError {
    /// A named element type does not exist in the schema it was looked up
    /// in (`which` is "source" or "target").
    UnknownType { which: &'static str, name: String },
    /// `parent` has no production edge to a child named `child`.
    UnknownChild { parent: String, child: String },
    /// An edge slot index is out of range for the type's production (also
    /// reported when a `with_paths` mapping is sized for a different
    /// schema).
    SlotOutOfRange {
        ty: String,
        slot: usize,
        edges: usize,
    },
    /// An `XR` path literal failed to parse.
    PathSyntax { path: String, reason: String },
    /// Several builder calls failed; every individual failure is listed.
    Build(Vec<EmbeddingError>),
    /// `λ` must map the source root to the target root.
    RootNotMappedToRoot,
    /// `λ` or the path function is missing/extra entries for a type.
    ArityMismatch {
        ty: String,
        expected: usize,
        got: usize,
    },
    /// The type mapping violates the similarity matrix (`att(A, λ(A)) = 0`).
    SimilarityZero { source: String, target: String },
    /// `path(A, B)` does not denote a label path of the target schema
    /// starting at `λ(A)`.
    PathUnresolvable {
        from: String,
        path: String,
        reason: String,
    },
    /// `path(A, B)` does not end at `λ(B)`.
    PathWrongEndpoint {
        from: String,
        path: String,
        expected: String,
        found: String,
    },
    /// The path type condition is violated (e.g. an AND edge mapped to an
    /// OR path).
    PathKind {
        from: String,
        path: String,
        expected: &'static str,
        found: String,
    },
    /// Two sibling edges' paths violate the prefix-free condition.
    PrefixConflict {
        ty: String,
        path_a: String,
        path_b: String,
    },
    /// A star edge's path pins the multiplicity step to a fixed position,
    /// leaving nowhere for repeated children to go.
    StarPositionPinned { from: String, path: String },
    /// A document fed to `σd` does not conform to the source DTD.
    SourceInvalid(ValidationError),
    /// A document fed to `σd⁻¹` does not conform to the target DTD.
    TargetInvalid(ValidationError),
    /// `σd⁻¹` met a target document it cannot have produced.
    InverseMismatch { at: String, reason: String },
    /// A disjunction alternative's path is navigable inside the static
    /// fragment produced by a *different* alternative (minimum-default
    /// padding would alias the choice and break invertibility) — a
    /// conservative strengthening of the paper's conditions, see DESIGN.md.
    AlternativeAliased {
        ty: String,
        probe: String,
        scenario: String,
    },
    /// The paper assumes consistent DTDs (§2.1); reduce() first.
    InconsistentDtd { which: &'static str },
    /// A `position()` qualifier sits on a non-step path or inside a Boolean
    /// context where occurrence selection is not expressible (`Tr`'s
    /// supported fragment covers every construction the paper relies on).
    UnsupportedPosition(String),
}

/// Legacy name of [`EmbeddingError`], kept for one PR while downstreams
/// migrate to the unified enum.
#[deprecated(since = "0.2.0", note = "use `EmbeddingError`")]
pub type SchemaEmbeddingError = EmbeddingError;

/// Legacy name of [`EmbeddingError`] for translation failures; the old
/// `TranslateError::UnsupportedPosition` pattern still matches.
#[deprecated(since = "0.2.0", note = "use `EmbeddingError`")]
pub type TranslateError = EmbeddingError;

impl fmt::Display for EmbeddingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use EmbeddingError::*;
        match self {
            UnknownType { which, name } => {
                write!(f, "the {which} schema has no element type {name:?}")
            }
            UnknownChild { parent, child } => {
                write!(f, "type {parent:?} has no child {child:?}")
            }
            SlotOutOfRange { ty, slot, edges } => {
                write!(f, "type {ty:?}: edge slot {slot} out of range ({edges} edge(s))")
            }
            PathSyntax { path, reason } => {
                write!(f, "path {path:?} does not parse: {reason}")
            }
            Build(errors) => {
                write!(f, "{} builder error(s):", errors.len())?;
                for e in errors {
                    write!(f, "\n  - {e}")?;
                }
                Ok(())
            }
            RootNotMappedToRoot => write!(f, "λ must map the source root to the target root"),
            ArityMismatch { ty, expected, got } => write!(
                f,
                "type {ty:?}: expected {expected} edge paths, got {got}"
            ),
            SimilarityZero { source, target } => write!(
                f,
                "att({source:?}, {target:?}) = 0: type mapping invalid w.r.t. the similarity matrix"
            ),
            PathUnresolvable { from, path, reason } => write!(
                f,
                "path {path:?} from {from:?} does not resolve in the target schema: {reason}"
            ),
            PathWrongEndpoint { from, path, expected, found } => write!(
                f,
                "path {path:?} from {from:?} ends at {found:?}, expected λ-image {expected:?}"
            ),
            PathKind { from, path, expected, found } => write!(
                f,
                "path {path:?} from {from:?} must be {expected}, but is {found}"
            ),
            PrefixConflict { ty, path_a, path_b } => write!(
                f,
                "prefix-free violation at {ty:?}: {path_a:?} overlaps {path_b:?}"
            ),
            StarPositionPinned { from, path } => write!(
                f,
                "star edge of {from:?}: path {path:?} fixes a position at its multiplicity step"
            ),
            SourceInvalid(e) => write!(f, "input does not conform to the source DTD: {e}"),
            TargetInvalid(e) => write!(f, "input does not conform to the target DTD: {e}"),
            InverseMismatch { at, reason } => {
                write!(f, "inverse mapping failed at {at}: {reason}")
            }
            AlternativeAliased { ty, probe, scenario } => write!(
                f,
                "disjunction {ty:?}: path {probe:?} is navigable in the fragment of alternative {scenario:?} (default padding would alias the choice)"
            ),
            InconsistentDtd { which } => write!(
                f,
                "the {which} DTD has useless element types; reduce() it first (§2.1 assumes consistent DTDs)"
            ),
            UnsupportedPosition(q) => {
                write!(f, "unsupported position() placement in {q:?}")
            }
        }
    }
}

impl std::error::Error for EmbeddingError {}

impl From<ValidationError> for EmbeddingError {
    fn from(e: ValidationError) -> Self {
        EmbeddingError::SourceInvalid(e)
    }
}
