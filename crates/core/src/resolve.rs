//! Resolving `XR` paths against the target schema graph.
//!
//! A path mapping sends the edge `(A, B)` to a *label path* of `S2` — a
//! sequence of schema-graph edges. [`ResolvedPath`] is that sequence plus
//! canonical position annotations, and is the form every downstream
//! algorithm (validity, `InstMap`, `σd⁻¹`, `Tr`) consumes.
//!
//! Canonical positions (DESIGN.md §3): a step entering the `k`-th occurrence
//! of a repeated concatenation child carries `Some(k)`; a step into a
//! disjunction child carries `Some(1)` (an OR node has exactly one child);
//! a step crossing a STAR edge carries its explicit position if written,
//! else `None` — `None` on a STAR step means "the whole repetition" and is
//! only legal at the multiplicity point of a star source edge.

use std::fmt;

use xse_dtd::{Dtd, EdgeKind, EdgeTarget, Production, SchemaGraph, TypeId};
use xse_rxpath::{PathStep, XrPath};

use crate::EmbeddingError;

/// The paper's path classification (§4.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PathClass {
    /// Only solid (AND/STAR) edges, no star edge.
    And,
    /// Solid edges with at least one STAR edge, no dashed edge
    /// (every STAR path is also an AND path).
    AndStar,
    /// At least one dashed (OR) edge.
    Or,
}

impl PathClass {
    /// Is this an AND path (no dashed edges)?
    pub fn is_and(self) -> bool {
        matches!(self, PathClass::And | PathClass::AndStar)
    }

    /// Is this a STAR path (dashed-free with ≥ 1 star edge)?
    pub fn is_star(self) -> bool {
        matches!(self, PathClass::AndStar)
    }

    /// Is this an OR path?
    pub fn is_or(self) -> bool {
        matches!(self, PathClass::Or)
    }
}

impl fmt::Display for PathClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathClass::And => write!(f, "an AND path"),
            PathClass::AndStar => write!(f, "a STAR path"),
            PathClass::Or => write!(f, "an OR path"),
        }
    }
}

/// One resolved step of a target label path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolvedStep {
    /// Type of the node the step arrives at.
    pub ty: TypeId,
    /// Kind of the schema edge taken.
    pub kind: EdgeKind,
    /// Edge slot in the parent's production (disambiguates repeated
    /// concatenation children).
    pub slot: usize,
    /// Canonical instance position among same-label siblings; `None` only
    /// on STAR steps ("all repetitions").
    pub pos: Option<usize>,
    /// Whether an automaton compilation of this step must emit a
    /// `position()` check: repeated same-label concatenation children, or an
    /// explicitly positioned STAR step. Unambiguous steps skip the check.
    pub needs_pos_check: bool,
}

/// A resolved target label path with its origin type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolvedPath {
    /// The type the path starts at (`λ(A)`).
    pub origin: TypeId,
    /// The element steps.
    pub steps: Vec<ResolvedStep>,
    /// Whether the path ends with `text()` (requires the last element type
    /// to have a `str` production).
    pub text_tail: bool,
}

impl ResolvedPath {
    /// The type of the node the path ends at (ignoring a text tail);
    /// `origin` when the path has no element steps.
    pub fn endpoint(&self) -> TypeId {
        self.steps.last().map_or(self.origin, |s| s.ty)
    }

    /// Classify per §4.1.
    pub fn classify(&self) -> PathClass {
        let mut star = false;
        for s in &self.steps {
            match s.kind {
                EdgeKind::Or => return PathClass::Or,
                EdgeKind::Star => star = true,
                EdgeKind::And { .. } => {}
            }
        }
        if star {
            PathClass::AndStar
        } else {
            PathClass::And
        }
    }

    /// Index of the first STAR step — the *multiplicity point* where a star
    /// source edge's repetition lives (§4.3's `Ck/Ck+1` split).
    pub fn first_star_step(&self) -> Option<usize> {
        self.steps.iter().position(|s| s.kind.is_star())
    }

    /// Number of steps (text tail counts one).
    pub fn len(&self) -> usize {
        self.steps.len() + usize::from(self.text_tail)
    }

    /// `true` when there are no steps and no text tail.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty() && !self.text_tail
    }

    /// Do two sibling paths violate the prefix-free condition?
    ///
    /// `a` conflicts with `b` when every step of the shorter *overlaps* the
    /// corresponding step of the longer (so the shorter path's instance
    /// nodes are ancestors-or-equal of the longer's). Steps overlap when
    /// they take edges to the same type and their position sets intersect —
    /// a `None` STAR position covers every position (DESIGN.md §3 item 1).
    /// Equal-length full overlap also conflicts (two edges mapped onto the
    /// same node would break injectivity).
    pub fn conflicts_with(&self, other: &ResolvedPath) -> bool {
        let (short, long) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        // A text tail can only be the last component; if the shorter path
        // ends in text() and the longer continues with element steps, the
        // components differ there (text vs element) — no conflict — unless
        // the longer also has exactly that shape.
        for (i, s) in short.steps.iter().enumerate() {
            let Some(l) = long.steps.get(i) else {
                return false;
            };
            if !steps_overlap(s, l) {
                return false;
            }
        }
        if short.text_tail {
            // Overlap only if the long path has a text tail right after the
            // shared element steps — i.e. identical length.
            return long.steps.len() == short.steps.len() && long.text_tail;
        }
        true
    }

    /// Render back to the `XR` path syntax, writing every canonical
    /// position explicitly.
    pub fn display(&self, dtd: &Dtd) -> String {
        let mut parts: Vec<String> = Vec::new();
        for s in &self.steps {
            match s.pos {
                Some(k) => parts.push(format!("{}[position() = {k}]", dtd.name(s.ty))),
                None => parts.push(dtd.name(s.ty).to_string()),
            }
        }
        if self.text_tail {
            parts.push("text()".to_string());
        }
        parts.join("/")
    }
}

fn steps_overlap(a: &ResolvedStep, b: &ResolvedStep) -> bool {
    if a.ty != b.ty || a.slot != b.slot {
        return false;
    }
    match (a.pos, b.pos) {
        (Some(x), Some(y)) => x == y,
        // None occurs only on STAR steps and covers all positions.
        _ => true,
    }
}

/// Resolve a syntactic [`XrPath`] starting at `origin` in `target`,
/// producing canonical positions. `source_desc` and `path` feed error
/// messages only.
pub fn resolve_path(
    target: &Dtd,
    graph: &SchemaGraph,
    origin: TypeId,
    path: &XrPath,
) -> Result<ResolvedPath, EmbeddingError> {
    let err = |reason: String| EmbeddingError::PathUnresolvable {
        from: target.name(origin).to_string(),
        path: path.to_string(),
        reason,
    };
    let mut steps: Vec<ResolvedStep> = Vec::with_capacity(path.steps.len());
    let mut cur = origin;
    for (i, step) in path.steps.iter().enumerate() {
        let resolved = resolve_step(target, graph, cur, step)
            .map_err(|reason| err(format!("step {} ({}): {reason}", i + 1, step.label)))?;
        cur = resolved.ty;
        steps.push(resolved);
    }
    if path.text_tail && !matches!(target.production(cur), Production::Str) {
        return Err(err(format!(
            "text() requires {:?} to have a str production",
            target.name(cur)
        )));
    }
    Ok(ResolvedPath {
        origin,
        steps,
        text_tail: path.text_tail,
    })
}

fn resolve_step(
    target: &Dtd,
    graph: &SchemaGraph,
    cur: TypeId,
    step: &PathStep,
) -> Result<ResolvedStep, String> {
    // Find outgoing edges whose child type carries the step label.
    let matching: Vec<_> = graph
        .edges_from(cur)
        .iter()
        .filter(|e| match e.target {
            EdgeTarget::Type(t) => target.name(t) == step.label.as_ref(),
            EdgeTarget::Str => false,
        })
        .collect();
    if matching.is_empty() {
        return Err(format!(
            "{:?} has no child labeled {:?}",
            target.name(cur),
            step.label.as_ref()
        ));
    }
    match target.production(cur) {
        Production::Concat(_) => {
            // Repeated labels resolved by occurrence position.
            let occ = step.pos.unwrap_or(1);
            let edge = matching
                .iter()
                .find(|e| matches!(e.kind, EdgeKind::And { occurrence } if occurrence as usize == occ))
                .ok_or_else(|| {
                    format!(
                        "no occurrence {occ} of {:?} under {:?}",
                        step.label.as_ref(),
                        target.name(cur)
                    )
                })?;
            if matching.len() > 1 && step.pos.is_none() {
                return Err(format!(
                    "{:?} occurs {} times under {:?}; a position() qualifier is required",
                    step.label.as_ref(),
                    matching.len(),
                    target.name(cur)
                ));
            }
            let EdgeTarget::Type(ty) = edge.target else {
                unreachable!()
            };
            Ok(ResolvedStep {
                ty,
                kind: edge.kind,
                slot: edge.slot,
                pos: Some(occ),
                needs_pos_check: matching.len() > 1,
            })
        }
        Production::Disjunction { .. } => {
            let edge = matching[0];
            if let Some(k) = step.pos {
                if k != 1 {
                    return Err(format!(
                        "a disjunction node has exactly one child; position {k} is unsatisfiable"
                    ));
                }
            }
            let EdgeTarget::Type(ty) = edge.target else {
                unreachable!()
            };
            Ok(ResolvedStep {
                ty,
                kind: EdgeKind::Or,
                slot: edge.slot,
                pos: Some(1),
                needs_pos_check: false,
            })
        }
        Production::Star(_) => {
            let edge = matching[0];
            let EdgeTarget::Type(ty) = edge.target else {
                unreachable!()
            };
            Ok(ResolvedStep {
                ty,
                kind: EdgeKind::Star,
                slot: 0,
                pos: step.pos,
                needs_pos_check: step.pos.is_some(),
            })
        }
        Production::Str | Production::Empty => {
            Err(format!("{:?} has no element children", target.name(cur)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xse_dtd::Dtd;
    use xse_rxpath::XrPath;

    /// Slimmed version of Figure 1(c)'s school DTD.
    fn school() -> (Dtd, SchemaGraph) {
        let d = Dtd::builder("school")
            .concat("school", &["courses"])
            .concat("courses", &["history", "current"])
            .star("history", "course")
            .star("current", "course")
            .concat("course", &["basic", "category"])
            .concat("basic", &["cno", "credit", "class"])
            .str_type("cno")
            .str_type("credit")
            .star("class", "semester")
            .concat("semester", &["title", "year"])
            .str_type("title")
            .str_type("year")
            .disjunction("category", &["mandatory", "advanced"])
            .disjunction("mandatory", &["regular", "lab"])
            .concat("advanced", &["project"])
            .str_type("project")
            .concat("regular", &["required"])
            .star("required", "prereq")
            .star("prereq", "course")
            .str_type("lab")
            .build()
            .unwrap();
        let g = SchemaGraph::new(&d);
        (d, g)
    }

    fn resolve(d: &Dtd, g: &SchemaGraph, from: &str, path: &str) -> ResolvedPath {
        let origin = d.type_id(from).unwrap();
        resolve_path(d, g, origin, &XrPath::parse(path).unwrap()).unwrap()
    }

    #[test]
    fn resolves_and_classifies_and_path() {
        let (d, g) = school();
        let p = resolve(&d, &g, "course", "basic/cno");
        assert_eq!(p.classify(), PathClass::And);
        assert_eq!(d.name(p.endpoint()), "cno");
        assert_eq!(p.steps[0].pos, Some(1));
        assert_eq!(p.steps[1].pos, Some(1));
        assert!(p.first_star_step().is_none());
    }

    #[test]
    fn resolves_star_path_example() {
        // Paper: basic/class/semester is an AND path and a STAR path.
        let (d, g) = school();
        let p = resolve(&d, &g, "course", "basic/class/semester");
        assert_eq!(p.classify(), PathClass::AndStar);
        assert!(p.classify().is_and());
        assert!(p.classify().is_star());
        assert_eq!(p.first_star_step(), Some(2));
        assert_eq!(p.steps[2].pos, None, "unpositioned star step");
        let p = resolve(
            &d,
            &g,
            "course",
            "basic/class/semester[position() = 1]/title",
        );
        assert_eq!(p.steps[2].pos, Some(1));
        assert_eq!(p.classify(), PathClass::AndStar);
    }

    #[test]
    fn resolves_or_path_example() {
        // Paper: mandatory/regular is an OR path.
        let (d, g) = school();
        let p = resolve(&d, &g, "category", "mandatory/regular");
        assert_eq!(p.classify(), PathClass::Or);
        assert!(p.classify().is_or());
        assert_eq!(p.steps[1].pos, Some(1), "OR steps canonicalize to 1");
    }

    #[test]
    fn resolves_text_tail() {
        let (d, g) = school();
        let p = resolve(&d, &g, "cno", "text()");
        assert!(p.text_tail);
        assert!(p.steps.is_empty());
        assert_eq!(p.len(), 1);
        assert_eq!(d.name(p.endpoint()), "cno");
    }

    #[test]
    fn rejects_wrong_labels_and_text_on_non_str() {
        let (d, g) = school();
        let origin = d.type_id("course").unwrap();
        let e = resolve_path(&d, &g, origin, &XrPath::parse("nothere").unwrap()).unwrap_err();
        assert!(matches!(e, EmbeddingError::PathUnresolvable { .. }));
        let e = resolve_path(&d, &g, origin, &XrPath::parse("basic/text()").unwrap()).unwrap_err();
        assert!(e.to_string().contains("str production"), "{e}");
    }

    #[test]
    fn repeated_concat_children_need_positions() {
        let d = Dtd::builder("r")
            .concat("r", &["a", "a"])
            .empty("a")
            .build()
            .unwrap();
        let g = SchemaGraph::new(&d);
        let e = resolve_path(&d, &g, d.root(), &XrPath::parse("a").unwrap()).unwrap_err();
        assert!(
            e.to_string().contains("position() qualifier is required"),
            "{e}"
        );
        let p = resolve_path(
            &d,
            &g,
            d.root(),
            &XrPath::parse("a[position() = 2]").unwrap(),
        )
        .unwrap();
        assert_eq!(p.steps[0].slot, 1);
        assert_eq!(p.steps[0].pos, Some(2));
        let e = resolve_path(
            &d,
            &g,
            d.root(),
            &XrPath::parse("a[position() = 3]").unwrap(),
        );
        assert!(e.is_err());
    }

    #[test]
    fn disjunction_position_must_be_one() {
        let (d, g) = school();
        let origin = d.type_id("category").unwrap();
        let e = resolve_path(
            &d,
            &g,
            origin,
            &XrPath::parse("mandatory[position() = 2]").unwrap(),
        )
        .unwrap_err();
        assert!(e.to_string().contains("unsatisfiable"), "{e}");
    }

    #[test]
    fn conflict_detection_prefixes() {
        let (d, g) = school();
        let a = resolve(&d, &g, "course", "basic");
        let b = resolve(&d, &g, "course", "basic/cno");
        assert!(a.conflicts_with(&b), "basic is a prefix of basic/cno");
        assert!(b.conflicts_with(&a));
        let c = resolve(&d, &g, "course", "basic/credit");
        assert!(!b.conflicts_with(&c), "diverging at the last step");
        assert!(b.conflicts_with(&b), "identical paths conflict");
    }

    #[test]
    fn star_none_position_covers_explicit_positions() {
        let (d, g) = school();
        // basic/class/semester (all repetitions) vs …[position()=1]/title.
        let all = resolve(&d, &g, "course", "basic/class/semester");
        let first = resolve(
            &d,
            &g,
            "course",
            "basic/class/semester[position() = 1]/title",
        );
        assert!(
            all.conflicts_with(&first),
            "unpositioned star step must cover position 1 (DESIGN.md §3)"
        );
        let second = resolve(
            &d,
            &g,
            "course",
            "basic/class/semester[position() = 2]/title",
        );
        assert!(!first.conflicts_with(&second), "distinct positions diverge");
    }

    #[test]
    fn text_tail_conflicts_only_with_text_tail() {
        let (d, g) = school();
        let t = resolve(&d, &g, "cno", "text()");
        assert!(t.conflicts_with(&t));
        // A str-typed node has no element children, so there is no longer
        // sibling path to diverge from; construct one on another schema:
        let d2 = Dtd::builder("r")
            .concat("r", &["a"])
            .concat("a", &["b"])
            .str_type("b")
            .build()
            .unwrap();
        let g2 = SchemaGraph::new(&d2);
        let short = resolve(&d2, &g2, "r", "a");
        let long = resolve(&d2, &g2, "r", "a/b/text()");
        assert!(short.conflicts_with(&long));
    }

    #[test]
    fn display_writes_canonical_positions() {
        let (d, g) = school();
        let p = resolve(
            &d,
            &g,
            "course",
            "basic/class/semester[position() = 1]/title",
        );
        assert_eq!(
            p.display(&d),
            "basic[position() = 1]/class[position() = 1]/semester[position() = 1]/title[position() = 1]"
        );
    }
}
