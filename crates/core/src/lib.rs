//! XML schema embeddings — the core contribution of Fan & Bohannon,
//! *Information Preserving XML Schema Embedding* (§4).
//!
//! A **schema embedding** `σ = (λ, path)` from a source DTD `S1` to a target
//! DTD `S2` maps every element type `A` of `S1` to a type `λ(A)` of `S2`
//! (with `λ(r1) = r2`) and every *edge* `(A, B)` of `S1`'s schema graph to an
//! `XR` *path* `path(A, B)` from `λ(A)` to `λ(B)` in `S2`, such that for
//! every type `A`:
//!
//! * **path type condition** — concatenation edges map to AND paths,
//!   disjunction edges to OR paths, star edges to STAR paths, and `str`
//!   edges to AND paths ending in `text()`;
//! * **prefix-free condition** — no sibling edge's path is a prefix of
//!   another's.
//!
//! The crate is built around a *compile once, run many times* shape:
//!
//! * [`EmbeddingBuilder`] assembles `(λ, path)` fluently, accumulating
//!   errors instead of panicking;
//! * [`CompiledEmbedding`] is the validated engine — **owned** (no lifetime
//!   parameter, both DTDs held via `Arc`), **`Send + Sync`**, with the
//!   schema graphs, canonicalized paths, minimum-default plans and `Tr`
//!   translation tables all precomputed at build time;
//! * every failure anywhere in the pipeline is one
//!   [`EmbeddingError`] (`#[non_exhaustive]`).
//!
//! From a compiled embedding this crate derives, per the paper's theorems:
//!
//! * [`CompiledEmbedding::apply`] — the instance mapping `σd` (algorithm
//!   `InstMap`, Fig. 5), **type safe** and **injective** (Theorem 4.1),
//!   linear time — and [`CompiledEmbedding::apply_batch`], which fans a
//!   slice of documents out over scoped threads;
//! * [`CompiledEmbedding::invert`] — `σd⁻¹` recovering the source document
//!   (Theorem 4.3a);
//! * [`CompiledEmbedding::translate`] — the schema-directed query
//!   translation `Tr` into ANFA form with `Q(T) = idM(Tr(Q)(σd(T)))`
//!   (Theorem 4.3b), of size `O(|Q|·|σ|·|S1|)`;
//! * [`preserve`] — executable checkers for all of the above, used by the
//!   test suites and the experiment harness;
//! * [`multi`] — embedding *multiple* sources into one target (§4.5).
//!
//! The lifetime-bound [`Embedding`] type is a deprecated shim over
//! [`CompiledEmbedding`] kept for one release.

mod embedding;
mod error;
mod instmap;
mod inverse;
pub mod multi;
mod pfrag;
pub mod preserve;
mod quality;
mod resolve;
mod sim;
mod translate;
mod validity;

#[allow(deprecated)]
pub use embedding::Embedding;
pub use embedding::{CompiledEmbedding, EmbeddingBuilder, MappingOutput, PathMapping, TypeMapping};
pub use error::EmbeddingError;
#[allow(deprecated)]
pub use error::{SchemaEmbeddingError, TranslateError};
pub use resolve::{PathClass, ResolvedPath, ResolvedStep};
pub use sim::SimilarityMatrix;
pub use translate::{Lab, PlanCacheStats, TranslatePlan};
