//! Algorithm `InstMap` (Figure 5): the instance-level mapping `σd`.
//!
//! `σd(T1)` is built top-down: start from the target root (the image of the
//! source root), repeatedly take a hot node `h` — the image of some source
//! node `v` — and replace it with the production fragment of `v`, whose hot
//! leaves enqueue `v`'s children. Every source node enters the worklist
//! exactly once, so the construction is linear in `|T1| + |T2|`. The node id
//! mapping `idM` is recorded as fragments are materialized (line 6 of the
//! paper's listing), for both element images and copied text nodes.
//!
//! [`CompiledEmbedding::apply_batch`] fans a slice of documents out over
//! scoped threads: the engine is `Send + Sync`, each document is mapped
//! independently, and results come back in input order — bit-identical to
//! running [`CompiledEmbedding::apply`] sequentially.

use xse_dtd::Production;
use xse_xmltree::{NodeId, TagId, XmlTree};

use crate::pfrag::{materialize, Emitter, Fragment, HotLeaf, Terminal};
use crate::{CompiledEmbedding, EmbeddingError, MappingOutput};

/// Per-thread chunking floor for [`CompiledEmbedding::apply_batch`]: with
/// fewer total source nodes than this per thread, spawn overhead dominates
/// and the batch falls back to fewer threads (or a plain sequential loop).
const MIN_NODES_PER_THREAD: usize = 8192;

impl CompiledEmbedding {
    /// Apply `σd` to a source document. The input is validated against the
    /// source DTD first; the output is guaranteed to conform to the target
    /// DTD (Theorem 4.1 — and `debug_assert`ed in tests via
    /// [`crate::preserve`]).
    pub fn apply(&self, t1: &XmlTree) -> Result<MappingOutput, EmbeddingError> {
        self.source
            .validate(t1)
            .map_err(EmbeddingError::SourceInvalid)?;

        // The output grows linearly with the source (fragments are
        // schema-bounded); reserve 2× nodes up front so the arena rarely
        // reallocates, and intern the whole target tag alphabet once so the
        // emit loop never hashes a string.
        let mut t2 = XmlTree::with_capacity(
            self.target.name(self.target.root()),
            t1.len() * 2,
            t1.text_bytes() + 16,
        );
        let tags: Vec<TagId> = self
            .target
            .types()
            .map(|ty| t2.intern_tag(self.target.name(ty)))
            .collect();
        let em = Emitter {
            target: &self.target,
            plans: &self.plans,
            tags: &tags,
            src: Some(t1),
        };
        let mut idmap = xse_xmltree::IdMap::with_capacity(t1.len() * 2, t1.len());
        idmap.insert(t2.root(), t1.root());

        // Worklist of hot nodes: (source node, its target image, source type).
        let mut work: Vec<HotLeaf> = vec![HotLeaf {
            target: t2.root(),
            src: t1.root(),
            src_type: self.source.root(),
        }];
        let mut hot_buf: Vec<HotLeaf> = Vec::new();
        let mut text_buf: Vec<crate::pfrag::TextCopy> = Vec::new();

        while let Some(h) = work.pop() {
            let fragment = self.fragment_of(t1, h.src, h.src_type);
            materialize(
                fragment,
                &em,
                &mut t2,
                h.target,
                &mut hot_buf,
                &mut text_buf,
            );
            for leaf in hot_buf.drain(..) {
                idmap.insert(leaf.target, leaf.src);
                work.push(leaf);
            }
            for tc in text_buf.drain(..) {
                idmap.insert(tc.target, tc.src);
            }
        }
        // Compact the sibling links into CSR spans now, so consumers start
        // with slice-backed children() immediately.
        t2.freeze();
        Ok(MappingOutput { tree: t2, idmap })
    }

    /// Apply `σd` to every document of a batch, fanning the work out over
    /// as many scoped threads as the machine offers. Results come back in
    /// input order and are identical to mapping each document with
    /// [`CompiledEmbedding::apply`] — the engine is immutable and shared by
    /// reference, so parallelism cannot change outputs.
    pub fn apply_batch(&self, docs: &[XmlTree]) -> Vec<Result<MappingOutput, EmbeddingError>> {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        self.apply_batch_with(docs, threads)
    }

    /// [`CompiledEmbedding::apply_batch`] with an explicit thread count.
    ///
    /// The effective parallelism is clamped to `1..=docs.len()` *and* by the
    /// total work: tiny batches (fewer than `MIN_NODES_PER_THREAD` source
    /// nodes per thread) use fewer threads, down to a plain sequential loop,
    /// so the batch path is never slower than sequential on small inputs.
    /// Chunks are contiguous and balanced by node counts, not document
    /// counts, so one huge document does not serialize the batch.
    pub fn apply_batch_with(
        &self,
        docs: &[XmlTree],
        threads: usize,
    ) -> Vec<Result<MappingOutput, EmbeddingError>> {
        let sizes: Vec<usize> = docs.iter().map(|t1| t1.len()).collect();
        let total: usize = sizes.iter().sum();
        let threads = threads
            .clamp(1, docs.len().max(1))
            .min((total / MIN_NODES_PER_THREAD).max(1));
        if threads <= 1 {
            return docs.iter().map(|t1| self.apply(t1)).collect();
        }
        let ends = chunk_ends(&sizes, threads);
        let mut results: Vec<Option<Result<MappingOutput, EmbeddingError>>> =
            (0..docs.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut docs_rest = docs;
            let mut out_rest = &mut results[..];
            let mut prev = 0;
            for &end in &ends {
                let (in_chunk, dr) = docs_rest.split_at(end - prev);
                let (out_chunk, or) = out_rest.split_at_mut(end - prev);
                (docs_rest, out_rest, prev) = (dr, or, end);
                scope.spawn(move || {
                    for (t1, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                        *slot = Some(self.apply(t1));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("chunking covers every input document"))
            .collect()
    }

    /// Assemble the (uncompleted) fragment of source node `v` of type `a`.
    fn fragment_of(&self, t1: &XmlTree, v: NodeId, a: xse_dtd::TypeId) -> Fragment {
        let mut frag = Fragment::new(self.lambda.get(a));
        let paths = self.paths_of(a);
        match self.source.production(a) {
            Production::Empty => {}
            Production::Str => {
                // The value is copied from the source at materialization
                // time — the fragment only references the text node.
                let text_node = t1.children(v)[0];
                frag.add_chain(&paths[0], Terminal::Text { src: text_node });
            }
            Production::Concat(cs) => {
                for (slot, (&child, &cty)) in t1.children(v).iter().zip(cs.iter()).enumerate() {
                    frag.add_chain(
                        &paths[slot],
                        Terminal::Hot {
                            src: child,
                            src_type: cty,
                        },
                    );
                }
            }
            Production::Disjunction { alts, .. } => {
                if let Some(&child) = t1.children(v).first() {
                    let tag = t1.tag(child).expect("validated: element child");
                    let slot = alts
                        .iter()
                        .position(|&alt| self.source.name(alt) == tag)
                        .expect("validated: child is an alternative");
                    frag.add_chain(
                        &paths[slot],
                        Terminal::Hot {
                            src: child,
                            src_type: alts[slot],
                        },
                    );
                }
            }
            Production::Star(b) => {
                let terminals: Vec<Terminal> = t1
                    .children(v)
                    .iter()
                    .map(|&c| Terminal::Hot {
                        src: c,
                        src_type: *b,
                    })
                    .collect();
                frag.add_star_chains(&paths[0], terminals);
            }
        }
        frag
    }
}

/// Cut `sizes` into at most `parts` contiguous chunks of roughly equal
/// weight, returning the exclusive end index of each chunk. Every item is
/// covered; chunks are nonempty.
fn chunk_ends(sizes: &[usize], parts: usize) -> Vec<usize> {
    let total: usize = sizes.iter().sum();
    let target = total.div_ceil(parts.max(1)).max(1);
    let mut ends = Vec::with_capacity(parts);
    let mut acc = 0;
    for (i, &s) in sizes.iter().enumerate() {
        acc += s;
        if acc >= target {
            ends.push(i + 1);
            acc = 0;
        }
    }
    if ends.last() != Some(&sizes.len()) && !sizes.is_empty() {
        ends.push(sizes.len());
    }
    ends
}

#[cfg(test)]
mod chunk_tests {
    use super::chunk_ends;

    #[test]
    fn covers_all_items_without_empty_chunks() {
        for (sizes, parts) in [
            (vec![1usize; 10], 3),
            (vec![100, 1, 1, 1, 1, 1], 4),
            (vec![5], 8),
            (vec![0, 0, 7, 0], 2),
        ] {
            let ends = chunk_ends(&sizes, parts);
            assert!(ends.len() <= parts.max(1), "{sizes:?} → {ends:?}");
            assert_eq!(*ends.last().unwrap(), sizes.len());
            let mut prev = 0;
            for &e in &ends {
                assert!(e > prev, "empty chunk in {ends:?}");
                prev = e;
            }
        }
    }

    #[test]
    fn balances_by_weight_not_count() {
        // One huge document followed by many small ones: the huge one gets
        // its own chunk instead of dragging half the batch with it.
        let sizes = [1000, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10];
        let ends = chunk_ends(&sizes, 2);
        assert_eq!(ends[0], 1, "heavy head is isolated: {ends:?}");
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use crate::embedding::tests::{wrap, wrap_compiled};
    use crate::{CompiledEmbedding, EmbeddingBuilder};
    use xse_dtd::Dtd;
    use xse_xmltree::parse_xml;

    #[test]
    fn wrap_mapping_builds_expected_tree() {
        let (s1, s2) = wrap();
        let e = wrap_compiled(&s1, &s2);
        let t1 = parse_xml("<r><a>hi</a><b><c>1</c><c>2</c></b></r>").unwrap();
        let out = e.apply(&t1).unwrap();
        s2.validate(&out.tree).unwrap();
        assert_eq!(
            out.tree.to_xml(),
            "<r><x><a>hi</a><pad>#s</pad></x><y><w><c2><c>1</c></c2><c2><c>2</c></c2></w></y></r>"
        );
        // idM covers every source node: r, a, b, two c's, three text nodes.
        assert_eq!(out.idmap.len(), t1.len());
    }

    #[test]
    fn wrap_mapping_with_empty_star() {
        let (s1, s2) = wrap();
        let e = wrap_compiled(&s1, &s2);
        let t1 = parse_xml("<r><a>z</a><b/></r>").unwrap();
        let out = e.apply(&t1).unwrap();
        s2.validate(&out.tree).unwrap();
        assert_eq!(
            out.tree.to_xml(),
            "<r><x><a>z</a><pad>#s</pad></x><y><w/></y></r>"
        );
    }

    #[test]
    fn rejects_nonconforming_input() {
        let (s1, s2) = wrap();
        let e = wrap_compiled(&s1, &s2);
        let bad = parse_xml("<r><b/><a>z</a></r>").unwrap();
        assert!(matches!(
            e.apply(&bad),
            Err(crate::EmbeddingError::SourceInvalid(_))
        ));
    }

    #[test]
    fn batch_equals_sequential_and_keeps_order() {
        let (s1, s2) = wrap();
        let e = wrap_compiled(&s1, &s2);
        let docs: Vec<_> = (0..9)
            .map(|i| {
                let body: String = (0..i).map(|j| format!("<c>{j}</c>")).collect();
                parse_xml(&format!("<r><a>d{i}</a><b>{body}</b></r>")).unwrap()
            })
            .collect();
        let sequential: Vec<_> = docs.iter().map(|d| e.apply(d).unwrap()).collect();
        for threads in [1, 2, 4, 32] {
            let batch = e.apply_batch_with(&docs, threads);
            assert_eq!(batch.len(), docs.len());
            for (got, want) in batch.into_iter().zip(sequential.iter()) {
                let got = got.unwrap();
                assert_eq!(got.tree.to_xml(), want.tree.to_xml());
                assert_eq!(got.idmap.len(), want.idmap.len());
            }
        }
    }

    #[test]
    fn batch_reports_per_document_errors_in_place() {
        let (s1, s2) = wrap();
        let e = wrap_compiled(&s1, &s2);
        let good = parse_xml("<r><a>x</a><b/></r>").unwrap();
        let bad = parse_xml("<r><b/><a>x</a></r>").unwrap();
        let docs = vec![good.clone(), bad, good];
        let out = e.apply_batch_with(&docs, 3);
        assert!(out[0].is_ok());
        assert!(matches!(
            out[1],
            Err(crate::EmbeddingError::SourceInvalid(_))
        ));
        assert!(out[2].is_ok());
    }

    /// Example 4.2 / 4.4: the class DTD S0 into the school DTD S.
    pub(crate) fn fig1() -> (Dtd, Dtd) {
        let s0 = Dtd::builder("db")
            .star("db", "class")
            .concat("class", &["cno", "title", "type"])
            .str_type("cno")
            .str_type("title")
            .disjunction("type", &["regular", "project"])
            .concat("regular", &["prereq"])
            .star("prereq", "class")
            .str_type("project")
            .build()
            .unwrap();
        let s = Dtd::builder("school")
            .concat("school", &["courses", "students"])
            .concat("courses", &["history", "current"])
            .star("history", "course")
            .star("current", "course")
            .concat("course", &["basic", "category"])
            .concat("basic", &["cno", "credit", "class"])
            .str_type("cno")
            .str_type("credit")
            .star("class", "semester")
            .concat("semester", &["title", "year", "term", "instructor"])
            .str_type("title")
            .str_type("year")
            .str_type("term")
            .str_type("instructor")
            .disjunction("category", &["mandatory", "advanced"])
            .disjunction("mandatory", &["regular", "lab"])
            .concat("advanced", &["project"])
            .str_type("project")
            .concat("regular", &["required"])
            .star("required", "prereq")
            .star("prereq", "course")
            .str_type("lab")
            .concat("students", &["student"])
            .concat("student", &["ssn"])
            .str_type("ssn")
            .build()
            .unwrap();
        (s0, s)
    }

    pub(crate) fn fig1_embedding(s0: &Dtd, s: &Dtd) -> CompiledEmbedding {
        EmbeddingBuilder::new(s0.clone(), s.clone())
            .map_type("db", "school")
            .map_type("class", "course")
            .map_type("type", "category")
            .edge("db", "class", "courses/current/course")
            .edge("class", "cno", "basic/cno")
            .edge(
                "class",
                "title",
                "basic/class/semester[position() = 1]/title",
            )
            .edge("class", "type", "category")
            .edge("type", "regular", "mandatory/regular")
            .edge("type", "project", "advanced/project")
            .edge("regular", "prereq", "required/prereq")
            .edge("prereq", "class", "course")
            .text_edge("cno", "text()")
            .text_edge("title", "text()")
            .text_edge("project", "text()")
            .build()
            .unwrap()
    }

    #[test]
    fn example_4_4_school_mapping() {
        let (s0, s) = fig1();
        let e = fig1_embedding(&s0, &s);
        let t1 = parse_xml(
            "<db>\
               <class><cno>CS331</cno><title>DB</title><type><regular><prereq>\
                  <class><cno>CS240</cno><title>Algo</title><type><project>p1</project></type></class>\
               </prereq></regular></type></class>\
             </db>",
        )
        .unwrap();
        let out = e.apply(&t1).unwrap();
        s.validate(&out.tree).unwrap();
        let xml = out.tree.to_xml();
        // Structure from Example 4.4: history gets its minimum default
        // (empty), current carries the course; basic has cno hot, credit
        // default, single semester with title hot and defaults for the rest.
        assert!(xml.starts_with("<school><courses><history/><current><course>"));
        assert!(xml.contains("<basic><cno>CS331</cno><credit>#s</credit><class><semester><title>DB</title><year>#s</year><term>#s</term><instructor>#s</instructor></semester></class></basic>"));
        assert!(xml.contains("<category><mandatory><regular><required><prereq><course>"));
        assert!(xml.contains("<cno>CS240</cno>"));
        assert!(xml.contains("<advanced><project>p1</project></advanced>"));
        // The unmapped students subtree is a minimum default instance.
        assert!(xml.ends_with("<students><student><ssn>#s</ssn></student></students></school>"));
    }

    #[test]
    fn star_with_zero_children_still_emits_prefix() {
        let (s0, s) = fig1();
        let e = fig1_embedding(&s0, &s);
        let t1 = parse_xml("<db/>").unwrap();
        let out = e.apply(&t1).unwrap();
        s.validate(&out.tree).unwrap();
        // courses/current must exist (prefix of the star path) but hold no
        // course children.
        assert!(out
            .tree
            .to_xml()
            .starts_with("<school><courses><history/><current/></courses>"));
    }

    #[test]
    fn star_children_keep_order() {
        let (s0, s) = fig1();
        let e = fig1_embedding(&s0, &s);
        let t1 = parse_xml(
            "<db>\
               <class><cno>A1</cno><title>t</title><type><project>x</project></type></class>\
               <class><cno>B2</cno><title>t</title><type><project>y</project></type></class>\
               <class><cno>C3</cno><title>t</title><type><project>z</project></type></class>\
             </db>",
        )
        .unwrap();
        let out = e.apply(&t1).unwrap();
        let xml = out.tree.to_xml();
        let a = xml.find("A1").unwrap();
        let b = xml.find("B2").unwrap();
        let c = xml.find("C3").unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn injectivity_of_idmap() {
        // idM is a bijection between mapped nodes; IdMap::insert enforces
        // this with panics — surviving apply() is the assertion.
        let (s0, s) = fig1();
        let e = fig1_embedding(&s0, &s);
        let t1 = parse_xml(
            "<db><class><cno>X</cno><title>t</title><type><project>p</project></type></class></db>",
        )
        .unwrap();
        let out = e.apply(&t1).unwrap();
        assert_eq!(out.idmap.len(), t1.len(), "every source node is mapped");
    }
}
