//! Algorithm `InstMap` (Figure 5): the instance-level mapping `σd`.
//!
//! `σd(T1)` is built top-down: start from the target root (the image of the
//! source root), repeatedly take a hot node `h` — the image of some source
//! node `v` — and replace it with the production fragment of `v`, whose hot
//! leaves enqueue `v`'s children. Every source node enters the worklist
//! exactly once, so the construction is linear in `|T1| + |T2|`. The node id
//! mapping `idM` is recorded as fragments are materialized (line 6 of the
//! paper's listing), for both element images and copied text nodes.

use xse_dtd::Production;
use xse_xmltree::{IdMap, NodeId, XmlTree};

use crate::pfrag::{materialize, Fragment, HotLeaf, Terminal};
use crate::{Embedding, MappingOutput, SchemaEmbeddingError};

impl<'a> Embedding<'a> {
    /// Apply `σd` to a source document. The input is validated against the
    /// source DTD first; the output is guaranteed to conform to the target
    /// DTD (Theorem 4.1 — and `debug_assert`ed in tests via
    /// [`crate::preserve`]).
    pub fn apply(&self, t1: &XmlTree) -> Result<MappingOutput, SchemaEmbeddingError> {
        self.source
            .validate(t1)
            .map_err(SchemaEmbeddingError::SourceInvalid)?;
        let plans = self.target.mindef_plans();

        let mut t2 = XmlTree::new(self.target.name(self.target.root()));
        let mut idmap = IdMap::new();
        idmap.insert(t2.root(), t1.root());

        // Worklist of hot nodes: (source node, its target image, source type).
        let mut work: Vec<HotLeaf> = vec![HotLeaf {
            target: t2.root(),
            src: t1.root(),
            src_type: self.source.root(),
        }];
        let mut hot_buf: Vec<HotLeaf> = Vec::new();
        let mut text_buf: Vec<crate::pfrag::TextCopy> = Vec::new();

        while let Some(h) = work.pop() {
            let fragment = self.fragment_of(t1, h.src, h.src_type);
            materialize(
                fragment,
                self.target,
                &plans,
                &mut t2,
                h.target,
                &mut hot_buf,
                &mut text_buf,
            );
            for leaf in hot_buf.drain(..) {
                idmap.insert(leaf.target, leaf.src);
                work.push(leaf);
            }
            for tc in text_buf.drain(..) {
                if let Some(src) = tc.src {
                    idmap.insert(tc.target, src);
                }
            }
        }
        Ok(MappingOutput { tree: t2, idmap })
    }

    /// Assemble the (uncompleted) fragment of source node `v` of type `a`.
    fn fragment_of(&self, t1: &XmlTree, v: NodeId, a: xse_dtd::TypeId) -> Fragment {
        let mut frag = Fragment::new(self.lambda.get(a));
        let paths = self.paths_of(a);
        match self.source.production(a) {
            Production::Empty => {}
            Production::Str => {
                let text_node = t1.children(v)[0];
                let value = t1.text_value(text_node).unwrap_or_default().to_string();
                frag.add_chain(
                    &paths[0],
                    Terminal::Text {
                        value,
                        src: Some(text_node),
                    },
                );
            }
            Production::Concat(cs) => {
                for (slot, (&child, &cty)) in t1.children(v).iter().zip(cs.iter()).enumerate() {
                    frag.add_chain(
                        &paths[slot],
                        Terminal::Hot {
                            src: child,
                            src_type: cty,
                        },
                    );
                }
            }
            Production::Disjunction { alts, .. } => {
                if let Some(&child) = t1.children(v).first() {
                    let tag = t1.tag(child).expect("validated: element child");
                    let slot = alts
                        .iter()
                        .position(|&alt| self.source.name(alt) == tag)
                        .expect("validated: child is an alternative");
                    frag.add_chain(
                        &paths[slot],
                        Terminal::Hot {
                            src: child,
                            src_type: alts[slot],
                        },
                    );
                }
            }
            Production::Star(b) => {
                let terminals: Vec<Terminal> = t1
                    .children(v)
                    .iter()
                    .map(|&c| Terminal::Hot {
                        src: c,
                        src_type: *b,
                    })
                    .collect();
                frag.add_star_chains(&paths[0], terminals);
            }
        }
        frag
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use crate::embedding::tests::{wrap, wrap_embedding};
    use crate::{Embedding, PathMapping, TypeMapping};
    use xse_dtd::Dtd;
    use xse_xmltree::parse_xml;

    fn wrap_emb<'x>(s1: &'x Dtd, s2: &'x Dtd) -> Embedding<'x> {
        let (lambda, paths) = wrap_embedding(s1, s2);
        Embedding::new(s1, s2, lambda, paths).unwrap()
    }

    #[test]
    fn wrap_mapping_builds_expected_tree() {
        let (s1, s2) = wrap();
        let e = wrap_emb(&s1, &s2);
        let t1 = parse_xml("<r><a>hi</a><b><c>1</c><c>2</c></b></r>").unwrap();
        let out = e.apply(&t1).unwrap();
        s2.validate(&out.tree).unwrap();
        assert_eq!(
            out.tree.to_xml(),
            "<r><x><a>hi</a><pad>#s</pad></x><y><w><c2><c>1</c></c2><c2><c>2</c></c2></w></y></r>"
        );
        // idM covers every source node: r, a, b, two c's, three text nodes.
        assert_eq!(out.idmap.len(), t1.len());
    }

    #[test]
    fn wrap_mapping_with_empty_star() {
        let (s1, s2) = wrap();
        let e = wrap_emb(&s1, &s2);
        let t1 = parse_xml("<r><a>z</a><b/></r>").unwrap();
        let out = e.apply(&t1).unwrap();
        s2.validate(&out.tree).unwrap();
        assert_eq!(
            out.tree.to_xml(),
            "<r><x><a>z</a><pad>#s</pad></x><y><w/></y></r>"
        );
    }

    #[test]
    fn rejects_nonconforming_input() {
        let (s1, s2) = wrap();
        let e = wrap_emb(&s1, &s2);
        let bad = parse_xml("<r><b/><a>z</a></r>").unwrap();
        assert!(matches!(
            e.apply(&bad),
            Err(crate::SchemaEmbeddingError::SourceInvalid(_))
        ));
    }

    /// Example 4.2 / 4.4: the class DTD S0 into the school DTD S.
    pub(crate) fn fig1() -> (Dtd, Dtd) {
        let s0 = Dtd::builder("db")
            .star("db", "class")
            .concat("class", &["cno", "title", "type"])
            .str_type("cno")
            .str_type("title")
            .disjunction("type", &["regular", "project"])
            .concat("regular", &["prereq"])
            .star("prereq", "class")
            .str_type("project")
            .build()
            .unwrap();
        let s = Dtd::builder("school")
            .concat("school", &["courses", "students"])
            .concat("courses", &["history", "current"])
            .star("history", "course")
            .star("current", "course")
            .concat("course", &["basic", "category"])
            .concat("basic", &["cno", "credit", "class"])
            .str_type("cno")
            .str_type("credit")
            .star("class", "semester")
            .concat("semester", &["title", "year", "term", "instructor"])
            .str_type("title")
            .str_type("year")
            .str_type("term")
            .str_type("instructor")
            .disjunction("category", &["mandatory", "advanced"])
            .disjunction("mandatory", &["regular", "lab"])
            .concat("advanced", &["project"])
            .str_type("project")
            .concat("regular", &["required"])
            .star("required", "prereq")
            .star("prereq", "course")
            .str_type("lab")
            .concat("students", &["student"])
            .concat("student", &["ssn"])
            .str_type("ssn")
            .build()
            .unwrap();
        (s0, s)
    }

    pub(crate) fn fig1_embedding<'x>(s0: &'x Dtd, s: &'x Dtd) -> Embedding<'x> {
        let lambda = TypeMapping::by_name_pairs(
            s0,
            s,
            &[("db", "school"), ("class", "course"), ("type", "category")],
        )
        .unwrap();
        let mut paths = PathMapping::new(s0);
        paths
            .edge(s0, "db", "class", "courses/current/course")
            .edge(s0, "class", "cno", "basic/cno")
            .edge(
                s0,
                "class",
                "title",
                "basic/class/semester[position() = 1]/title",
            )
            .edge(s0, "class", "type", "category")
            .edge(s0, "type", "regular", "mandatory/regular")
            .edge(s0, "type", "project", "advanced/project")
            .edge(s0, "regular", "prereq", "required/prereq")
            .edge(s0, "prereq", "class", "course")
            .text_edge(s0, "cno", "text()")
            .text_edge(s0, "title", "text()")
            .text_edge(s0, "project", "text()");
        Embedding::new(s0, s, lambda, paths).unwrap()
    }

    #[test]
    fn example_4_4_school_mapping() {
        let (s0, s) = fig1();
        let e = fig1_embedding(&s0, &s);
        let t1 = parse_xml(
            "<db>\
               <class><cno>CS331</cno><title>DB</title><type><regular><prereq>\
                  <class><cno>CS240</cno><title>Algo</title><type><project>p1</project></type></class>\
               </prereq></regular></type></class>\
             </db>",
        )
        .unwrap();
        let out = e.apply(&t1).unwrap();
        s.validate(&out.tree).unwrap();
        let xml = out.tree.to_xml();
        // Structure from Example 4.4: history gets its minimum default
        // (empty), current carries the course; basic has cno hot, credit
        // default, single semester with title hot and defaults for the rest.
        assert!(xml.starts_with("<school><courses><history/><current><course>"));
        assert!(xml.contains("<basic><cno>CS331</cno><credit>#s</credit><class><semester><title>DB</title><year>#s</year><term>#s</term><instructor>#s</instructor></semester></class></basic>"));
        assert!(xml.contains("<category><mandatory><regular><required><prereq><course>"));
        assert!(xml.contains("<cno>CS240</cno>"));
        assert!(xml.contains("<advanced><project>p1</project></advanced>"));
        // The unmapped students subtree is a minimum default instance.
        assert!(xml.ends_with("<students><student><ssn>#s</ssn></student></students></school>"));
    }

    #[test]
    fn star_with_zero_children_still_emits_prefix() {
        let (s0, s) = fig1();
        let e = fig1_embedding(&s0, &s);
        let t1 = parse_xml("<db/>").unwrap();
        let out = e.apply(&t1).unwrap();
        s.validate(&out.tree).unwrap();
        // courses/current must exist (prefix of the star path) but hold no
        // course children.
        assert!(out
            .tree
            .to_xml()
            .starts_with("<school><courses><history/><current/></courses>"));
    }

    #[test]
    fn star_children_keep_order() {
        let (s0, s) = fig1();
        let e = fig1_embedding(&s0, &s);
        let t1 = parse_xml(
            "<db>\
               <class><cno>A1</cno><title>t</title><type><project>x</project></type></class>\
               <class><cno>B2</cno><title>t</title><type><project>y</project></type></class>\
               <class><cno>C3</cno><title>t</title><type><project>z</project></type></class>\
             </db>",
        )
        .unwrap();
        let out = e.apply(&t1).unwrap();
        let xml = out.tree.to_xml();
        let a = xml.find("A1").unwrap();
        let b = xml.find("B2").unwrap();
        let c = xml.find("C3").unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn injectivity_of_idmap() {
        // idM is a bijection between mapped nodes; IdMap::insert enforces
        // this with panics — surviving apply() is the assertion.
        let (s0, s) = fig1();
        let e = fig1_embedding(&s0, &s);
        let t1 = parse_xml(
            "<db><class><cno>X</cno><title>t</title><type><project>p</project></type></class></db>",
        )
        .unwrap();
        let out = e.apply(&t1).unwrap();
        assert_eq!(out.idmap.len(), t1.len(), "every source node is mapped");
    }
}
