//! Similarity matrices (§4.1).
//!
//! An `|E1| × |E2|` matrix `att` of numbers in `[0, 1]`: `att(A, B)`
//! measures the suitability of mapping source type `A` to target type `B`,
//! produced by domain experts or a schema-matching tool (LSD, Cupid, …). A
//! type mapping `λ` is *valid* w.r.t. `att` when `att(A, λ(A)) > 0` for all
//! `A`; the embedding's quality is `Σ_A att(A, λ(A))`.

use xse_dtd::{Dtd, TypeId};

/// A dense source-type × target-type similarity matrix.
#[derive(Clone, Debug)]
pub struct SimilarityMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl SimilarityMatrix {
    /// All-zero matrix of the given dimensions.
    pub fn zero(source_types: usize, target_types: usize) -> Self {
        SimilarityMatrix {
            rows: source_types,
            cols: target_types,
            data: vec![0.0; source_types * target_types],
        }
    }

    /// The "no semantic restriction" matrix of Example 4.2:
    /// `att(A, B) = 1` everywhere — embeddings are decided purely on
    /// structure.
    pub fn permissive(source: &Dtd, target: &Dtd) -> Self {
        SimilarityMatrix {
            rows: source.type_count(),
            cols: target.type_count(),
            data: vec![1.0; source.type_count() * target.type_count()],
        }
    }

    /// Name-based matrix: `att(A, B) = 1` when the tags are equal, plus a
    /// small `fallback` everywhere else (0 forbids all non-identical pairs).
    pub fn by_name(source: &Dtd, target: &Dtd, fallback: f64) -> Self {
        let mut m = SimilarityMatrix::zero(source.type_count(), target.type_count());
        for a in source.types() {
            for b in target.types() {
                let v = if source.name(a) == target.name(b) {
                    1.0
                } else {
                    fallback
                };
                m.set(a, b, v);
            }
        }
        m
    }

    /// Matrix dimensions `(source types, target types)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `att(A, B)`.
    pub fn get(&self, a: TypeId, b: TypeId) -> f64 {
        self.data[a.index() * self.cols + b.index()]
    }

    /// Set `att(A, B)` (clamped into `[0, 1]`). A `NaN` similarity — which
    /// `clamp` would propagate — is treated as "no information" and stored
    /// as `0`, so a single bad entry from an upstream matcher disables that
    /// pair instead of poisoning every downstream float comparison.
    pub fn set(&mut self, a: TypeId, b: TypeId, v: f64) {
        let v = if v.is_nan() { 0.0 } else { v.clamp(0.0, 1.0) };
        self.data[a.index() * self.cols + b.index()] = v;
    }

    /// Target candidates for source type `a` with `att > 0`, best first.
    /// Ties keep target-declaration order (deterministic).
    pub fn candidates(&self, a: TypeId) -> Vec<(TypeId, f64)> {
        let mut out: Vec<(TypeId, f64)> = (0..self.cols)
            .map(TypeId::from_index)
            .map(|b| (b, self.get(a, b)))
            .filter(|&(_, v)| v > 0.0)
            .collect();
        out.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
        out
    }

    /// Number of positive entries in row `a` — the row's *ambiguity*.
    pub fn ambiguity(&self, a: TypeId) -> usize {
        (0..self.cols)
            .map(TypeId::from_index)
            .filter(|&b| self.get(a, b) > 0.0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xse_dtd::Dtd;

    fn pair() -> (Dtd, Dtd) {
        let s = Dtd::builder("r")
            .concat("r", &["a", "b"])
            .empty("a")
            .empty("b")
            .build()
            .unwrap();
        let t = Dtd::builder("r")
            .concat("r", &["a", "x"])
            .empty("a")
            .empty("x")
            .build()
            .unwrap();
        (s, t)
    }

    #[test]
    fn permissive_is_all_ones() {
        let (s, t) = pair();
        let m = SimilarityMatrix::permissive(&s, &t);
        for a in s.types() {
            for b in t.types() {
                assert_eq!(m.get(a, b), 1.0);
            }
            assert_eq!(m.ambiguity(a), 3);
        }
        assert_eq!(m.dims(), (3, 3));
    }

    #[test]
    fn by_name_matches_tags() {
        let (s, t) = pair();
        let m = SimilarityMatrix::by_name(&s, &t, 0.0);
        let a_s = s.type_id("a").unwrap();
        let a_t = t.type_id("a").unwrap();
        let b_s = s.type_id("b").unwrap();
        assert_eq!(m.get(a_s, a_t), 1.0);
        assert_eq!(m.ambiguity(a_s), 1);
        assert_eq!(m.ambiguity(b_s), 0, "b has no name match");
        let m = SimilarityMatrix::by_name(&s, &t, 0.1);
        assert_eq!(m.ambiguity(b_s), 3);
    }

    #[test]
    fn candidates_sorted_best_first_deterministic() {
        let (s, t) = pair();
        let mut m = SimilarityMatrix::zero(s.type_count(), t.type_count());
        let a = s.type_id("a").unwrap();
        m.set(a, t.type_id("x").unwrap(), 0.5);
        m.set(a, t.type_id("a").unwrap(), 0.9);
        m.set(a, t.root(), 0.9);
        let c = m.candidates(a);
        assert_eq!(c.len(), 3);
        assert_eq!(c[0].0, t.root(), "tie broken by declaration order");
        assert_eq!(c[1].0, t.type_id("a").unwrap());
        assert_eq!(c[2].0, t.type_id("x").unwrap());
    }

    #[test]
    fn set_clamps() {
        let (s, t) = pair();
        let mut m = SimilarityMatrix::zero(s.type_count(), t.type_count());
        m.set(s.root(), t.root(), 7.0);
        assert_eq!(m.get(s.root(), t.root()), 1.0);
        m.set(s.root(), t.root(), -1.0);
        assert_eq!(m.get(s.root(), t.root()), 0.0);
    }
}
