//! The compiled embedding engine: [`EmbeddingBuilder`] assembles a mapping
//! `σ = (λ, path)`, [`CompiledEmbedding`] validates it once and serves every
//! derived operation (`σd`, `σd⁻¹`, `Tr`, stylesheet generation) from
//! precomputed state.

use std::marker::PhantomData;
use std::sync::Arc;

use xse_dtd::{Dtd, EdgeTarget, MindefPlan, SchemaGraph, TypeId};
use xse_rxpath::XrPath;
use xse_xmltree::{IdMap, XmlTree};

use crate::resolve::{resolve_path, ResolvedPath};
use crate::{EmbeddingError, SimilarityMatrix};

/// The type mapping `λ : E1 → E2` (total; `λ(r1) = r2`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeMapping {
    /// `map[a.index()]` is `λ(a)`.
    pub map: Vec<TypeId>,
}

impl TypeMapping {
    /// Build from a function over source types.
    pub fn from_fn(source: &Dtd, f: impl Fn(TypeId) -> TypeId) -> Self {
        TypeMapping {
            map: source.types().map(f).collect(),
        }
    }

    /// Map every source type to the target type with the same tag.
    ///
    /// # Errors
    /// [`EmbeddingError::UnknownType`] naming the first source tag the
    /// target lacks.
    pub fn by_same_name(source: &Dtd, target: &Dtd) -> Result<Self, EmbeddingError> {
        TypeMapping::by_name_pairs(source, target, &[])
    }

    /// Build from `(source tag, target tag)` pairs; tags not listed map by
    /// identical name.
    ///
    /// # Errors
    /// [`EmbeddingError::UnknownType`] naming the first target tag that
    /// does not exist.
    pub fn by_name_pairs(
        source: &Dtd,
        target: &Dtd,
        pairs: &[(&str, &str)],
    ) -> Result<Self, EmbeddingError> {
        let mut map = Vec::with_capacity(source.type_count());
        for a in source.types() {
            let name = source.name(a);
            let tgt_name = pairs
                .iter()
                .find(|(s, _)| *s == name)
                .map(|(_, t)| *t)
                .unwrap_or(name);
            match target.type_id(tgt_name) {
                Some(b) => map.push(b),
                None => {
                    return Err(EmbeddingError::UnknownType {
                        which: "target",
                        name: tgt_name.to_string(),
                    })
                }
            }
        }
        Ok(TypeMapping { map })
    }

    /// `λ(a)`.
    pub fn get(&self, a: TypeId) -> TypeId {
        self.map[a.index()]
    }
}

/// The path function: one `XR` path per source schema-graph edge, indexed by
/// `(source type, edge slot)` in the order of
/// [`SchemaGraph::edges_from`].
///
/// This is the low-level representation used by discovery; applications
/// normally fill paths through [`EmbeddingBuilder::edge`], which resolves
/// `(parent, child)` names to slots and reports failures instead of
/// panicking.
#[derive(Clone, Debug, Default)]
pub struct PathMapping {
    /// `paths[a.index()][slot]`.
    pub paths: Vec<Vec<XrPath>>,
}

impl PathMapping {
    /// Start an empty mapping sized for `source` (every slot must be filled
    /// before compiling an embedding). The schema graph is built by the
    /// caller so it can be shared with other per-edge work.
    pub fn new_with_graph(source: &Dtd, graph: &SchemaGraph) -> Self {
        PathMapping {
            paths: source
                .types()
                .map(|t| vec![XrPath::new(Vec::new()); graph.edges_from(t).len()])
                .collect(),
        }
    }

    /// Start an empty mapping sized for `source`.
    pub fn new(source: &Dtd) -> Self {
        PathMapping::new_with_graph(source, &SchemaGraph::new(source))
    }

    /// Set the path of edge `slot` of type `a`.
    pub fn set(&mut self, a: TypeId, slot: usize, path: XrPath) {
        self.paths[a.index()][slot] = path;
    }

    /// Set the path of the edge from `parent` to its child named `child`.
    ///
    /// # Panics
    /// Panics on unknown names or unparsable paths — the legacy
    /// literal-embedding construction API, kept for one release.
    #[deprecated(
        since = "0.2.0",
        note = "use `EmbeddingBuilder::edge`, which accumulates errors instead of panicking"
    )]
    pub fn edge(&mut self, source: &Dtd, parent: &str, child: &str, path: &str) -> &mut Self {
        let a = source
            .type_id(parent)
            .unwrap_or_else(|| panic!("unknown source type {parent:?}"));
        let graph = SchemaGraph::new(source);
        let slot = graph
            .edges_from(a)
            .iter()
            .position(|e| match e.target {
                EdgeTarget::Type(t) => source.name(t) == child,
                EdgeTarget::Str => child == "str",
            })
            .unwrap_or_else(|| panic!("{parent:?} has no child {child:?}"));
        self.paths[a.index()][slot] = XrPath::parse(path).unwrap_or_else(|e| panic!("{e}"));
        self
    }

    /// Set the `str` edge of a `A → str` type (legacy; see
    /// [`EmbeddingBuilder::text_edge`]).
    #[deprecated(
        since = "0.2.0",
        note = "use `EmbeddingBuilder::text_edge`, which accumulates errors instead of panicking"
    )]
    #[allow(deprecated)]
    pub fn text_edge(&mut self, source: &Dtd, parent: &str, path: &str) -> &mut Self {
        self.edge(source, parent, "str", path)
    }

    /// The path at `(a, slot)`.
    pub fn get(&self, a: TypeId, slot: usize) -> &XrPath {
        &self.paths[a.index()][slot]
    }
}

/// The output of the instance mapping `σd`: the target document and the
/// node id mapping `idM` from target ids back to source ids.
#[derive(Clone, Debug)]
pub struct MappingOutput {
    /// `σd(T)` — conforms to the target DTD (Theorem 4.1).
    pub tree: XmlTree,
    /// `idM : dom(σd(T)) → dom(T)` (partial; injective).
    pub idmap: IdMap,
}

/// Fluent, fallible construction of a [`CompiledEmbedding`].
///
/// The builder owns both DTDs (behind [`Arc`], so sharing them is free),
/// builds the source schema graph **once**, and accumulates every problem —
/// unknown tags, missing children, unparsable paths — instead of panicking;
/// [`EmbeddingBuilder::build`] reports all of them at once.
///
/// ```
/// # use xse_core::{EmbeddingBuilder};
/// # use xse_dtd::Dtd;
/// # let s1 = Dtd::builder("r").concat("r", &["a"]).str_type("a").build().unwrap();
/// # let s2 = Dtd::builder("r").concat("r", &["x"]).concat("x", &["a"])
/// #     .str_type("a").build().unwrap();
/// let embedding = EmbeddingBuilder::new(s1, s2)
///     .edge("r", "a", "x/a")
///     .text_edge("a", "text()")
///     .build()
///     .unwrap();
/// assert_eq!(embedding.size(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct EmbeddingBuilder {
    source: Arc<Dtd>,
    target: Arc<Dtd>,
    /// Built once in [`EmbeddingBuilder::new`]; every `edge` call resolves
    /// its slot against this graph.
    src_graph: SchemaGraph,
    /// `map_type` overrides; unlisted types map by identical tag.
    pairs: Vec<(String, String)>,
    /// An explicit λ (overrides `pairs` when set).
    lambda: Option<TypeMapping>,
    paths: PathMapping,
    errors: Vec<EmbeddingError>,
}

impl EmbeddingBuilder {
    /// Start a builder for an embedding `source → target`.
    pub fn new(source: impl Into<Arc<Dtd>>, target: impl Into<Arc<Dtd>>) -> Self {
        let source = source.into();
        let src_graph = SchemaGraph::new(&source);
        let paths = PathMapping::new_with_graph(&source, &src_graph);
        EmbeddingBuilder {
            source,
            target: target.into(),
            src_graph,
            pairs: Vec::new(),
            lambda: None,
            paths,
            errors: Vec::new(),
        }
    }

    /// Declare `λ(source_tag) = target_tag`; types not listed map to the
    /// target type with the same tag. Re-mapping a tag replaces the earlier
    /// declaration (last wins).
    pub fn map_type(mut self, source_tag: &str, target_tag: &str) -> Self {
        if self.source.type_id(source_tag).is_none() {
            self.errors.push(EmbeddingError::UnknownType {
                which: "source",
                name: source_tag.to_string(),
            });
        }
        if self.target.type_id(target_tag).is_none() {
            self.errors.push(EmbeddingError::UnknownType {
                which: "target",
                name: target_tag.to_string(),
            });
        }
        match self
            .pairs
            .iter_mut()
            .find(|(s, _)| s.as_str() == source_tag)
        {
            Some((_, t)) => *t = target_tag.to_string(),
            None => self
                .pairs
                .push((source_tag.to_string(), target_tag.to_string())),
        }
        self
    }

    /// Provide the complete type mapping explicitly (used by discovery and
    /// tests; overrides any `map_type` calls).
    pub fn with_lambda(mut self, lambda: TypeMapping) -> Self {
        self.lambda = Some(lambda);
        self
    }

    /// Provide a pre-filled path function (used by discovery; `edge` calls
    /// may still override individual slots afterwards).
    pub fn with_paths(mut self, paths: PathMapping) -> Self {
        self.paths = paths;
        self
    }

    /// Set the path of the edge from `parent` to its child named `child`
    /// (first matching slot; use [`EmbeddingBuilder::edge_at`] for repeated
    /// concatenation children). The path is parsed from `XR` syntax; every
    /// failure is recorded and reported by [`EmbeddingBuilder::build`].
    pub fn edge(mut self, parent: &str, child: &str, path: &str) -> Self {
        let Some(a) = self.source.type_id(parent) else {
            self.errors.push(EmbeddingError::UnknownType {
                which: "source",
                name: parent.to_string(),
            });
            return self;
        };
        let slot = self
            .src_graph
            .edges_from(a)
            .iter()
            .position(|e| match e.target {
                EdgeTarget::Type(t) => self.source.name(t) == child,
                EdgeTarget::Str => child == "str",
            });
        let Some(slot) = slot else {
            self.errors.push(EmbeddingError::UnknownChild {
                parent: parent.to_string(),
                child: child.to_string(),
            });
            return self;
        };
        self.set_parsed(a, slot, path);
        self
    }

    /// Set the path of edge `slot` of `parent` directly (repeated
    /// concatenation children have one slot per occurrence).
    pub fn edge_at(mut self, parent: &str, slot: usize, path: &str) -> Self {
        let Some(a) = self.source.type_id(parent) else {
            self.errors.push(EmbeddingError::UnknownType {
                which: "source",
                name: parent.to_string(),
            });
            return self;
        };
        if slot >= self.src_graph.edges_from(a).len() {
            self.errors.push(EmbeddingError::SlotOutOfRange {
                ty: parent.to_string(),
                slot,
                edges: self.src_graph.edges_from(a).len(),
            });
            return self;
        }
        self.set_parsed(a, slot, path);
        self
    }

    /// Set the `str` edge of a `A → str` type.
    pub fn text_edge(self, parent: &str, path: &str) -> Self {
        self.edge(parent, "str", path)
    }

    fn set_parsed(&mut self, a: TypeId, slot: usize, path: &str) {
        let p = match XrPath::parse(path) {
            Ok(p) => p,
            Err(e) => {
                self.errors.push(EmbeddingError::PathSyntax {
                    path: path.to_string(),
                    reason: e.to_string(),
                });
                return;
            }
        };
        // A `with_paths` mapping sized for a different schema must surface
        // as an error, not an index panic — the builder never panics.
        match self
            .paths
            .paths
            .get_mut(a.index())
            .and_then(|row| row.get_mut(slot))
        {
            Some(cell) => *cell = p,
            None => {
                let got = self.paths.paths.get(a.index()).map_or(0, |row| row.len());
                self.errors.push(EmbeddingError::ArityMismatch {
                    ty: self.source.name(a).to_string(),
                    expected: self.src_graph.edges_from(a).len(),
                    got,
                });
            }
        }
    }

    /// Compute λ, run the §4.1 validity checks, and compile.
    ///
    /// # Errors
    /// All accumulated builder errors at once (one directly, several inside
    /// [`EmbeddingError::Build`]), or the first violated validity condition.
    pub fn build(self) -> Result<CompiledEmbedding, EmbeddingError> {
        let EmbeddingBuilder {
            source,
            target,
            src_graph,
            pairs,
            lambda,
            paths,
            mut errors,
        } = self;
        let lambda = match lambda {
            Some(l) => Some(l),
            None => {
                // by_name_pairs semantics, but collecting *every* miss so a
                // schema full of unmapped tags is reported in one pass
                // (unknown `map_type` tags were already recorded; dedup).
                let mut map = Vec::with_capacity(source.type_count());
                let mut complete = true;
                for a in source.types() {
                    let name = source.name(a);
                    let tgt_name = pairs
                        .iter()
                        .find(|(s, _)| s.as_str() == name)
                        .map(|(_, t)| t.as_str())
                        .unwrap_or(name);
                    match target.type_id(tgt_name) {
                        Some(b) => map.push(b),
                        None => {
                            complete = false;
                            let e = EmbeddingError::UnknownType {
                                which: "target",
                                name: tgt_name.to_string(),
                            };
                            if !errors.contains(&e) {
                                errors.push(e);
                            }
                        }
                    }
                }
                complete.then_some(TypeMapping { map })
            }
        };
        match errors.len() {
            0 => {}
            1 => return Err(errors.pop().expect("len checked")),
            _ => return Err(EmbeddingError::Build(errors)),
        }
        CompiledEmbedding::with_graph(
            source,
            target,
            src_graph,
            lambda.expect("no errors implies λ computed"),
            paths,
        )
    }
}

/// A validated, owned schema embedding `σ : S1 → S2` — the engine every
/// derived operation runs on.
///
/// Construction ([`EmbeddingBuilder::build`] or [`CompiledEmbedding::new`])
/// checks the §4.1 validity conditions, canonicalizes positions
/// (DESIGN.md §3), and precomputes everything the per-document operations
/// need: both schema graphs, the resolved paths, the target's minimum
/// default plans, and the per-edge translation automata used by `Tr`.
/// The result has no lifetime parameter and is `Send + Sync`: store it,
/// share it behind an [`Arc`], and map documents from many threads — or let
/// [`CompiledEmbedding::apply_batch`](Self::apply_batch) fan a batch out
/// for you.
pub struct CompiledEmbedding {
    pub(crate) source: Arc<Dtd>,
    pub(crate) target: Arc<Dtd>,
    pub(crate) src_graph: SchemaGraph,
    #[allow(dead_code)] // kept: handy for future extensions and debugging
    pub(crate) tgt_graph: SchemaGraph,
    pub(crate) lambda: TypeMapping,
    /// Resolved, normalized paths per `(source type, edge slot)`.
    pub(crate) resolved: Vec<Vec<ResolvedPath>>,
    /// The target's minimum-default plans (one `mindef_plans()` call ever).
    pub(crate) plans: Vec<MindefPlan>,
    /// Per `(source type, edge slot)`: the path compiled to a linear ANFA
    /// chain — the translation table `Tr` copies from instead of
    /// recompiling paths per query.
    pub(crate) chains: Vec<Vec<xse_anfa::Anfa>>,
    /// Bounded cache of compiled [`TranslatePlan`](crate::TranslatePlan)s,
    /// keyed by canonical query shape.
    pub(crate) plan_cache: crate::translate::PlanCache,
}

// The engine is shared across threads by `apply_batch` and by servers; keep
// that a compile-time fact rather than an accident of field types.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledEmbedding>();
};

impl std::fmt::Debug for CompiledEmbedding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CompiledEmbedding({} -> {}, |σ| = {})",
            self.source.name(self.source.root()),
            self.target.name(self.target.root()),
            self.size()
        )
    }
}

impl CompiledEmbedding {
    /// Validate `(λ, path)` and compile the embedding. Both DTDs are taken
    /// by value (or by [`Arc`] — an `Arc<Dtd>` is accepted as-is, so clones
    /// of a shared schema are free).
    pub fn new(
        source: impl Into<Arc<Dtd>>,
        target: impl Into<Arc<Dtd>>,
        lambda: TypeMapping,
        paths: PathMapping,
    ) -> Result<Self, EmbeddingError> {
        let source = source.into();
        let src_graph = SchemaGraph::new(&source);
        CompiledEmbedding::with_graph(source, target.into(), src_graph, lambda, paths)
    }

    fn with_graph(
        source: Arc<Dtd>,
        target: Arc<Dtd>,
        src_graph: SchemaGraph,
        lambda: TypeMapping,
        paths: PathMapping,
    ) -> Result<Self, EmbeddingError> {
        if lambda.map.len() != source.type_count() {
            return Err(EmbeddingError::ArityMismatch {
                ty: "λ".into(),
                expected: source.type_count(),
                got: lambda.map.len(),
            });
        }
        if lambda.get(source.root()) != target.root() {
            return Err(EmbeddingError::RootNotMappedToRoot);
        }
        if !source.is_consistent() {
            return Err(EmbeddingError::InconsistentDtd { which: "source" });
        }
        if !target.is_consistent() {
            return Err(EmbeddingError::InconsistentDtd { which: "target" });
        }
        let tgt_graph = SchemaGraph::new(&target);
        let mut resolved: Vec<Vec<ResolvedPath>> = Vec::with_capacity(source.type_count());
        for a in source.types() {
            let edges = src_graph.edges_from(a);
            let given = paths.paths.get(a.index()).map(Vec::as_slice).unwrap_or(&[]);
            if given.len() != edges.len() {
                return Err(EmbeddingError::ArityMismatch {
                    ty: source.name(a).to_string(),
                    expected: edges.len(),
                    got: given.len(),
                });
            }
            let origin = lambda.get(a);
            let mut per_type = Vec::with_capacity(edges.len());
            for (edge, p) in edges.iter().zip(given.iter()) {
                let mut rp = resolve_path(&target, &tgt_graph, origin, p)?;
                crate::validity::normalize_and_check_edge(
                    &source, &target, &lambda, edge, p, &mut rp,
                )?;
                per_type.push(rp);
            }
            crate::validity::check_prefix_free(&source, &target, a, &per_type)?;
            resolved.push(per_type);
        }
        // Disjunction distinguishability (needs all paths resolved).
        let plans = target.mindef_plans();
        for a in source.types() {
            crate::validity::check_disjunction_distinguishability(
                &source,
                &target,
                a,
                &resolved[a.index()],
                &plans,
            )?;
        }
        let chains = crate::translate::chain_tables(&target, &resolved);
        Ok(CompiledEmbedding {
            source,
            target,
            src_graph,
            tgt_graph,
            lambda,
            resolved,
            plans,
            chains,
            plan_cache: crate::translate::PlanCache::default(),
        })
    }

    /// Validate against a similarity matrix: `att(A, λ(A)) > 0` for all `A`
    /// (λ-validity, §4.1).
    pub fn check_similarity(&self, att: &SimilarityMatrix) -> Result<(), EmbeddingError> {
        for a in self.source.types() {
            if att.get(a, self.lambda.get(a)) <= 0.0 {
                return Err(EmbeddingError::SimilarityZero {
                    source: self.source.name(a).to_string(),
                    target: self.target.name(self.lambda.get(a)).to_string(),
                });
            }
        }
        Ok(())
    }

    /// The source DTD `S1`.
    pub fn source(&self) -> &Dtd {
        &self.source
    }

    /// The target DTD `S2`.
    pub fn target(&self) -> &Dtd {
        &self.target
    }

    /// A shareable handle to the source DTD.
    pub fn source_arc(&self) -> Arc<Dtd> {
        Arc::clone(&self.source)
    }

    /// A shareable handle to the target DTD.
    pub fn target_arc(&self) -> Arc<Dtd> {
        Arc::clone(&self.target)
    }

    /// The target's precomputed minimum-default plans (§4.2), one per
    /// target type.
    pub fn mindef_plans(&self) -> &[MindefPlan] {
        &self.plans
    }

    /// `λ(a)`.
    pub fn lambda(&self, a: TypeId) -> TypeId {
        self.lambda.get(a)
    }

    /// The resolved path of edge `slot` of source type `a`.
    pub fn path(&self, a: TypeId, slot: usize) -> &ResolvedPath {
        &self.resolved[a.index()][slot]
    }

    /// All resolved paths of source type `a`, in edge-slot order.
    pub fn paths_of(&self, a: TypeId) -> &[ResolvedPath] {
        &self.resolved[a.index()]
    }

    /// `|σ|`: total number of path steps across all edges — the measure in
    /// Theorem 4.3's bounds.
    pub fn size(&self) -> usize {
        self.resolved
            .iter()
            .flat_map(|v| v.iter())
            .map(ResolvedPath::len)
            .sum()
    }

    /// Pretty-print the embedding in the paper's `λ(..) / path(..)` notation.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for a in self.source.types() {
            let _ = writeln!(
                out,
                "λ({}) = {}",
                self.source.name(a),
                self.target.name(self.lambda.get(a))
            );
        }
        for a in self.source.types() {
            for (edge, rp) in self
                .src_graph
                .edges_from(a)
                .iter()
                .zip(self.resolved[a.index()].iter())
            {
                let child = match edge.target {
                    EdgeTarget::Type(t) => self.source.name(t).to_string(),
                    EdgeTarget::Str => "str".to_string(),
                };
                let _ = writeln!(
                    out,
                    "path({}, {}) = {}",
                    self.source.name(a),
                    child,
                    rp.display(&self.target)
                );
            }
        }
        out
    }
}

/// Legacy borrowing front for [`CompiledEmbedding`], kept for one PR so
/// downstream diffs stay reviewable. It compiles the same engine (cloning
/// the borrowed DTDs once) and derefs to it, so every method is available;
/// new code should use [`EmbeddingBuilder`] or [`CompiledEmbedding::new`].
#[deprecated(
    since = "0.2.0",
    note = "use `CompiledEmbedding`: the compiled engine is owned and `Send + Sync`"
)]
pub struct Embedding<'a> {
    inner: CompiledEmbedding,
    _dtds: PhantomData<&'a Dtd>,
}

#[allow(deprecated)]
impl<'a> Embedding<'a> {
    /// Validate `(λ, path)` and build the embedding.
    #[deprecated(
        since = "0.2.0",
        note = "use `EmbeddingBuilder` or `CompiledEmbedding::new`: the compiled engine is owned and `Send + Sync`"
    )]
    pub fn new(
        source: &'a Dtd,
        target: &'a Dtd,
        lambda: TypeMapping,
        paths: PathMapping,
    ) -> Result<Self, EmbeddingError> {
        Ok(Embedding {
            inner: CompiledEmbedding::new(source.clone(), target.clone(), lambda, paths)?,
            _dtds: PhantomData,
        })
    }

    /// Unwrap into the owned engine (drops the spurious lifetime).
    pub fn into_compiled(self) -> CompiledEmbedding {
        self.inner
    }
}

#[allow(deprecated)]
impl std::ops::Deref for Embedding<'_> {
    type Target = CompiledEmbedding;

    fn deref(&self) -> &CompiledEmbedding {
        &self.inner
    }
}

#[allow(deprecated)]
impl std::fmt::Debug for Embedding<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use xse_dtd::Dtd;

    /// A compact valid embedding used across the crate's tests: the target
    /// wraps each source region one or two levels deeper and adds a padding
    /// leaf, so the fixture exercises chain prefixes, a star crossing with
    /// a suffix, mindef completion and text edges.
    ///
    /// S1: r → a, b;  a → str;  b → c*;  c → str
    /// S2: r → x, y;  x → a, pad;  a → str;  pad → str;
    ///     y → w;  w → c2*;  c2 → c;  c → str
    pub(crate) fn wrap() -> (Dtd, Dtd) {
        let s1 = Dtd::builder("r")
            .concat("r", &["a", "b"])
            .str_type("a")
            .star("b", "c")
            .str_type("c")
            .build()
            .unwrap();
        let s2 = Dtd::builder("r")
            .concat("r", &["x", "y"])
            .concat("x", &["a", "pad"])
            .str_type("a")
            .str_type("pad")
            .concat("y", &["w"])
            .star("w", "c2")
            .concat("c2", &["c"])
            .str_type("c")
            .build()
            .unwrap();
        (s1, s2)
    }

    /// The wrap embedding as a builder with λ overrides and all edges set
    /// (callers add `.build()` or swap λ/paths first).
    pub(crate) fn wrap_builder(s1: &Dtd, s2: &Dtd) -> EmbeddingBuilder {
        EmbeddingBuilder::new(s1.clone(), s2.clone())
            .map_type("b", "w")
            .edge("r", "a", "x/a")
            .edge("r", "b", "y/w")
            .edge("b", "c", "c2/c")
            .text_edge("a", "text()")
            .text_edge("c", "text()")
    }

    pub(crate) fn wrap_compiled(s1: &Dtd, s2: &Dtd) -> CompiledEmbedding {
        wrap_builder(s1, s2).build().unwrap()
    }

    #[test]
    fn wrap_embedding_is_valid() {
        let (s1, s2) = wrap();
        let e = wrap_compiled(&s1, &s2);
        assert_eq!(e.size(), 2 + 2 + 2 + 1 + 1);
        let desc = e.describe();
        assert!(desc.contains("λ(b) = w"), "{desc}");
        assert!(
            desc.contains("path(r, a) = x[position() = 1]/a[position() = 1]"),
            "{desc}"
        );
        assert!(desc.contains("path(b, c) = c2/c[position() = 1]"), "{desc}");
    }

    #[test]
    fn compiled_embedding_is_send_sync_and_static() {
        fn assert_bounds<T: Send + Sync + 'static>(_: &T) {}
        let (s1, s2) = wrap();
        let e = wrap_compiled(&s1, &s2);
        assert_bounds(&e);
    }

    #[test]
    fn root_must_map_to_root() {
        let (s1, s2) = wrap();
        let w2 = s2.type_id("w").unwrap();
        let lambda = TypeMapping::from_fn(&s1, |_| w2);
        let e = wrap_builder(&s1, &s2)
            .with_lambda(lambda)
            .build()
            .unwrap_err();
        assert_eq!(e, EmbeddingError::RootNotMappedToRoot);
    }

    #[test]
    fn missing_paths_are_an_arity_error() {
        let (s1, s2) = wrap();
        let lambda = TypeMapping::by_name_pairs(&s1, &s2, &[("b", "w")]).unwrap();
        let e = CompiledEmbedding::new(s1, s2, lambda, PathMapping::default()).unwrap_err();
        assert!(matches!(e, EmbeddingError::ArityMismatch { .. }));
    }

    #[test]
    fn builder_accumulates_errors_instead_of_panicking() {
        let (s1, s2) = wrap();
        let e = EmbeddingBuilder::new(s1.clone(), s2.clone())
            .map_type("b", "nosuch")
            .edge("ghost", "a", "x/a")
            .edge("r", "ghost", "x/a")
            .edge("r", "a", "x[/a")
            .build()
            .unwrap_err();
        let EmbeddingError::Build(errors) = e else {
            panic!("expected accumulated Build errors, got {e}");
        };
        assert_eq!(errors.len(), 4, "{errors:?}");
        assert!(errors.iter().any(|e| matches!(
            e,
            EmbeddingError::UnknownType {
                which: "target",
                ..
            }
        )));
        assert!(errors.iter().any(|e| matches!(
            e,
            EmbeddingError::UnknownType {
                which: "source",
                ..
            }
        )));
        assert!(errors
            .iter()
            .any(|e| matches!(e, EmbeddingError::UnknownChild { .. })));
        assert!(errors
            .iter()
            .any(|e| matches!(e, EmbeddingError::PathSyntax { .. })));
    }

    #[test]
    fn builder_with_undersized_paths_errors_instead_of_panicking() {
        let (s1, s2) = wrap();
        let e = EmbeddingBuilder::new(s1.clone(), s2.clone())
            .with_paths(PathMapping::default())
            .edge("r", "a", "x/a")
            .build()
            .unwrap_err();
        // Both the edge() call and build()'s arity check report the
        // mis-sized mapping; nothing indexes out of bounds.
        let first = match e {
            EmbeddingError::Build(errors) => errors[0].clone(),
            other => other,
        };
        assert!(
            matches!(first, EmbeddingError::ArityMismatch { .. }),
            "{first}"
        );
        let e = wrap_builder(&s1, &s2)
            .edge_at("r", 99, "x/a")
            .build()
            .unwrap_err();
        assert!(
            matches!(
                e,
                EmbeddingError::SlotOutOfRange {
                    slot: 99,
                    edges: 2,
                    ..
                }
            ),
            "{e}"
        );
    }

    #[test]
    fn map_type_last_declaration_wins() {
        let (s1, s2) = wrap();
        // First map b → x (wrong: x hosts no star), then override to w.
        let e = wrap_builder(&s1, &s2).map_type("b", "x").map_type("b", "w");
        let compiled = e.build().unwrap();
        assert_eq!(
            compiled.lambda(s1.type_id("b").unwrap()),
            s2.type_id("w").unwrap()
        );
    }

    #[test]
    fn builder_single_error_is_returned_directly() {
        let (s1, s2) = wrap();
        let e = wrap_builder(&s1, &s2)
            .edge("r", "nope", "x/a")
            .build()
            .unwrap_err();
        assert!(matches!(e, EmbeddingError::UnknownChild { .. }), "{e}");
    }

    #[test]
    fn similarity_validation() {
        let (s1, s2) = wrap();
        let e = wrap_compiled(&s1, &s2);
        let att = SimilarityMatrix::permissive(&s1, &s2);
        e.check_similarity(&att).unwrap();
        let mut att = SimilarityMatrix::permissive(&s1, &s2);
        att.set(s1.type_id("b").unwrap(), s2.type_id("w").unwrap(), 0.0);
        assert!(matches!(
            e.check_similarity(&att),
            Err(EmbeddingError::SimilarityZero { .. })
        ));
    }

    #[test]
    fn by_same_name_and_pairs() {
        let (s1, _) = wrap();
        let t = Dtd::builder("r")
            .concat("r", &["a", "b", "c", "X"])
            .empty("a")
            .empty("b")
            .empty("c")
            .empty("X")
            .build()
            .unwrap();
        let m = TypeMapping::by_same_name(&s1, &t).unwrap();
        assert_eq!(m.get(s1.type_id("b").unwrap()), t.type_id("b").unwrap());
        let m = TypeMapping::by_name_pairs(&s1, &t, &[("b", "X")]).unwrap();
        assert_eq!(m.get(s1.type_id("b").unwrap()), t.type_id("X").unwrap());
        assert_eq!(
            TypeMapping::by_name_pairs(&s1, &t, &[("b", "nope")]).unwrap_err(),
            EmbeddingError::UnknownType {
                which: "target",
                name: "nope".into()
            }
        );
    }

    #[test]
    fn deprecated_shim_still_compiles_the_same_engine() {
        #![allow(deprecated)]
        let (s1, s2) = wrap();
        let lambda = TypeMapping::by_name_pairs(&s1, &s2, &[("b", "w")]).unwrap();
        let owned = wrap_compiled(&s1, &s2);
        let paths = {
            // Rebuild the same PathMapping the builder produced.
            let b = wrap_builder(&s1, &s2);
            b.paths.clone()
        };
        let shim = Embedding::new(&s1, &s2, lambda, paths).unwrap();
        assert_eq!(shim.describe(), owned.describe());
        let compiled: CompiledEmbedding = shim.into_compiled();
        assert_eq!(compiled.size(), owned.size());
    }

    #[test]
    fn paper_example_2_1_is_not_an_embedding() {
        // The Figure 2 mapping of §2/§3 (path(A,B)=A, path(A,C)=A/A) is a
        // handcrafted invertible mapping, *not* a §4.1 schema embedding: it
        // violates the prefix-free condition. Validation must reject it.
        let s1 = Dtd::builder("r")
            .concat("r", &["A"])
            .concat("A", &["B", "C"])
            .disjunction_opt("B", &["A"])
            .empty("C")
            .build()
            .unwrap();
        let s2 = Dtd::builder("r")
            .concat("r", &["A"])
            .disjunction_opt("A", &["A"])
            .build()
            .unwrap();
        let a2 = s2.type_id("A").unwrap();
        let lambda = TypeMapping::from_fn(&s1, |t| if t == s1.root() { s2.root() } else { a2 });
        let e = EmbeddingBuilder::new(s1, s2)
            .with_lambda(lambda)
            .edge("r", "A", "A")
            .edge("A", "B", "A")
            .edge("A", "C", "A/A")
            .edge("B", "A", "A/A")
            .build()
            .unwrap_err();
        // Rejected on the first violated condition: the AND edge (A, B)
        // maps onto an OR path (the target A-chain is all dashed edges);
        // had kinds matched, the prefix-free check would fire instead.
        assert!(
            matches!(
                e,
                EmbeddingError::PathKind { .. } | EmbeddingError::PrefixConflict { .. }
            ),
            "{e}"
        );
    }
}
