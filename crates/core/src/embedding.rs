//! The [`Embedding`] type: a validated schema embedding `σ = (λ, path)`.

use xse_dtd::{Dtd, EdgeTarget, SchemaGraph, TypeId};
use xse_rxpath::XrPath;
use xse_xmltree::{IdMap, XmlTree};

use crate::resolve::{resolve_path, ResolvedPath};
use crate::{SchemaEmbeddingError, SimilarityMatrix};

/// The type mapping `λ : E1 → E2` (total; `λ(r1) = r2`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeMapping {
    /// `map[a.index()]` is `λ(a)`.
    pub map: Vec<TypeId>,
}

impl TypeMapping {
    /// Build from a function over source types.
    pub fn from_fn(source: &Dtd, f: impl Fn(TypeId) -> TypeId) -> Self {
        TypeMapping {
            map: source.types().map(f).collect(),
        }
    }

    /// Map every source type to the target type with the same tag.
    ///
    /// # Errors
    /// Returns the offending source tag when the target lacks it.
    pub fn by_same_name(source: &Dtd, target: &Dtd) -> Result<Self, String> {
        let mut map = Vec::with_capacity(source.type_count());
        for a in source.types() {
            match target.type_id(source.name(a)) {
                Some(b) => map.push(b),
                None => return Err(source.name(a).to_string()),
            }
        }
        Ok(TypeMapping { map })
    }

    /// Build from `(source tag, target tag)` pairs; tags not listed map by
    /// identical name.
    pub fn by_name_pairs(
        source: &Dtd,
        target: &Dtd,
        pairs: &[(&str, &str)],
    ) -> Result<Self, String> {
        let mut map = Vec::with_capacity(source.type_count());
        for a in source.types() {
            let name = source.name(a);
            let tgt_name = pairs
                .iter()
                .find(|(s, _)| *s == name)
                .map(|(_, t)| *t)
                .unwrap_or(name);
            match target.type_id(tgt_name) {
                Some(b) => map.push(b),
                None => return Err(tgt_name.to_string()),
            }
        }
        Ok(TypeMapping { map })
    }

    /// `λ(a)`.
    pub fn get(&self, a: TypeId) -> TypeId {
        self.map[a.index()]
    }
}

/// The path function: one `XR` path per source schema-graph edge, indexed by
/// `(source type, edge slot)` in the order of
/// [`SchemaGraph::edges_from`].
#[derive(Clone, Debug, Default)]
pub struct PathMapping {
    /// `paths[a.index()][slot]`.
    pub paths: Vec<Vec<XrPath>>,
}

impl PathMapping {
    /// Start an empty mapping sized for `source` (every slot must be filled
    /// before building an [`Embedding`]).
    pub fn new(source: &Dtd) -> Self {
        let graph = SchemaGraph::new(source);
        PathMapping {
            paths: source
                .types()
                .map(|t| vec![XrPath::new(Vec::new()); graph.edges_from(t).len()])
                .collect(),
        }
    }

    /// Set the path of edge `slot` of type `a`.
    pub fn set(&mut self, a: TypeId, slot: usize, path: XrPath) {
        self.paths[a.index()][slot] = path;
    }

    /// Set the path of the edge from `parent` to its child named `child`
    /// (first matching slot; use [`PathMapping::set`] for repeated
    /// concatenation children). The path is parsed from `XR` syntax.
    ///
    /// # Panics
    /// Panics on unknown names or unparsable paths — this is the
    /// literal-embedding construction API used by examples and tests.
    pub fn edge(&mut self, source: &Dtd, parent: &str, child: &str, path: &str) -> &mut Self {
        let a = source
            .type_id(parent)
            .unwrap_or_else(|| panic!("unknown source type {parent:?}"));
        let graph = SchemaGraph::new(source);
        let slot = graph
            .edges_from(a)
            .iter()
            .position(|e| match e.target {
                EdgeTarget::Type(t) => source.name(t) == child,
                EdgeTarget::Str => child == "str",
            })
            .unwrap_or_else(|| panic!("{parent:?} has no child {child:?}"));
        self.paths[a.index()][slot] = XrPath::parse(path).unwrap_or_else(|e| panic!("{e}"));
        self
    }

    /// Set the `str` edge of a `A → str` type.
    pub fn text_edge(&mut self, source: &Dtd, parent: &str, path: &str) -> &mut Self {
        self.edge(source, parent, "str", path)
    }

    /// The path at `(a, slot)`.
    pub fn get(&self, a: TypeId, slot: usize) -> &XrPath {
        &self.paths[a.index()][slot]
    }
}

/// The output of the instance mapping `σd`: the target document and the
/// node id mapping `idM` from target ids back to source ids.
#[derive(Clone, Debug)]
pub struct MappingOutput {
    /// `σd(T)` — conforms to the target DTD (Theorem 4.1).
    pub tree: XmlTree,
    /// `idM : dom(σd(T)) → dom(T)` (partial; injective).
    pub idmap: IdMap,
}

/// A validated schema embedding `σ : S1 → S2`.
///
///
/// Construction ([`Embedding::new`]) checks the §4.1 validity conditions and
/// canonicalizes positions (DESIGN.md §3); every later operation can then
/// assume a well-formed mapping.
pub struct Embedding<'a> {
    pub(crate) source: &'a Dtd,
    pub(crate) target: &'a Dtd,
    pub(crate) src_graph: SchemaGraph,
    #[allow(dead_code)] // kept: handy for future extensions and debugging
    pub(crate) tgt_graph: SchemaGraph,
    pub(crate) lambda: TypeMapping,
    /// Resolved, normalized paths per `(source type, edge slot)`.
    pub(crate) resolved: Vec<Vec<ResolvedPath>>,
}

impl<'a> std::fmt::Debug for Embedding<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Embedding({} -> {}, |σ| = {})",
            self.source.name(self.source.root()),
            self.target.name(self.target.root()),
            self.size()
        )
    }
}

impl<'a> Embedding<'a> {
    /// Validate `(λ, path)` and build the embedding.
    pub fn new(
        source: &'a Dtd,
        target: &'a Dtd,
        lambda: TypeMapping,
        paths: PathMapping,
    ) -> Result<Self, SchemaEmbeddingError> {
        if lambda.map.len() != source.type_count() {
            return Err(SchemaEmbeddingError::ArityMismatch {
                ty: "λ".into(),
                expected: source.type_count(),
                got: lambda.map.len(),
            });
        }
        if lambda.get(source.root()) != target.root() {
            return Err(SchemaEmbeddingError::RootNotMappedToRoot);
        }
        if !source.is_consistent() {
            return Err(SchemaEmbeddingError::InconsistentDtd { which: "source" });
        }
        if !target.is_consistent() {
            return Err(SchemaEmbeddingError::InconsistentDtd { which: "target" });
        }
        let src_graph = SchemaGraph::new(source);
        let tgt_graph = SchemaGraph::new(target);
        let mut resolved: Vec<Vec<ResolvedPath>> = Vec::with_capacity(source.type_count());
        for a in source.types() {
            let edges = src_graph.edges_from(a);
            let given = paths.paths.get(a.index()).map(Vec::as_slice).unwrap_or(&[]);
            if given.len() != edges.len() {
                return Err(SchemaEmbeddingError::ArityMismatch {
                    ty: source.name(a).to_string(),
                    expected: edges.len(),
                    got: given.len(),
                });
            }
            let origin = lambda.get(a);
            let mut per_type = Vec::with_capacity(edges.len());
            for (edge, p) in edges.iter().zip(given.iter()) {
                let mut rp = resolve_path(target, &tgt_graph, origin, p)?;
                crate::validity::normalize_and_check_edge(
                    source, target, &lambda, edge, p, &mut rp,
                )?;
                per_type.push(rp);
            }
            crate::validity::check_prefix_free(source, target, a, &per_type)?;
            resolved.push(per_type);
        }
        // Disjunction distinguishability (needs all paths resolved).
        let plans = target.mindef_plans();
        for a in source.types() {
            crate::validity::check_disjunction_distinguishability(
                source,
                target,
                a,
                &resolved[a.index()],
                &plans,
            )?;
        }
        Ok(Embedding {
            source,
            target,
            src_graph,
            tgt_graph,
            lambda,
            resolved,
        })
    }

    /// Validate against a similarity matrix: `att(A, λ(A)) > 0` for all `A`
    /// (λ-validity, §4.1).
    pub fn check_similarity(&self, att: &SimilarityMatrix) -> Result<(), SchemaEmbeddingError> {
        for a in self.source.types() {
            if att.get(a, self.lambda.get(a)) <= 0.0 {
                return Err(SchemaEmbeddingError::SimilarityZero {
                    source: self.source.name(a).to_string(),
                    target: self.target.name(self.lambda.get(a)).to_string(),
                });
            }
        }
        Ok(())
    }

    /// The source DTD `S1`.
    pub fn source(&self) -> &Dtd {
        self.source
    }

    /// The target DTD `S2`.
    pub fn target(&self) -> &Dtd {
        self.target
    }

    /// `λ(a)`.
    pub fn lambda(&self, a: TypeId) -> TypeId {
        self.lambda.get(a)
    }

    /// The resolved path of edge `slot` of source type `a`.
    pub fn path(&self, a: TypeId, slot: usize) -> &ResolvedPath {
        &self.resolved[a.index()][slot]
    }

    /// All resolved paths of source type `a`, in edge-slot order.
    pub fn paths_of(&self, a: TypeId) -> &[ResolvedPath] {
        &self.resolved[a.index()]
    }

    /// `|σ|`: total number of path steps across all edges — the measure in
    /// Theorem 4.3's bounds.
    pub fn size(&self) -> usize {
        self.resolved
            .iter()
            .flat_map(|v| v.iter())
            .map(ResolvedPath::len)
            .sum()
    }

    /// Pretty-print the embedding in the paper's `λ(..) / path(..)` notation.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for a in self.source.types() {
            let _ = writeln!(
                out,
                "λ({}) = {}",
                self.source.name(a),
                self.target.name(self.lambda.get(a))
            );
        }
        for a in self.source.types() {
            for (edge, rp) in self
                .src_graph
                .edges_from(a)
                .iter()
                .zip(self.resolved[a.index()].iter())
            {
                let child = match edge.target {
                    EdgeTarget::Type(t) => self.source.name(t).to_string(),
                    EdgeTarget::Str => "str".to_string(),
                };
                let _ = writeln!(
                    out,
                    "path({}, {}) = {}",
                    self.source.name(a),
                    child,
                    rp.display(self.target)
                );
            }
        }
        out
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use xse_dtd::Dtd;

    /// A compact valid embedding used across the crate's tests: the target
    /// wraps each source region one or two levels deeper and adds a padding
    /// leaf, so the fixture exercises chain prefixes, a star crossing with
    /// a suffix, mindef completion and text edges.
    ///
    /// S1: r → a, b;  a → str;  b → c*;  c → str
    /// S2: r → x, y;  x → a, pad;  a → str;  pad → str;
    ///     y → w;  w → c2*;  c2 → c;  c → str
    pub(crate) fn wrap() -> (Dtd, Dtd) {
        let s1 = Dtd::builder("r")
            .concat("r", &["a", "b"])
            .str_type("a")
            .star("b", "c")
            .str_type("c")
            .build()
            .unwrap();
        let s2 = Dtd::builder("r")
            .concat("r", &["x", "y"])
            .concat("x", &["a", "pad"])
            .str_type("a")
            .str_type("pad")
            .concat("y", &["w"])
            .star("w", "c2")
            .concat("c2", &["c"])
            .str_type("c")
            .build()
            .unwrap();
        (s1, s2)
    }

    pub(crate) fn wrap_embedding(s1: &Dtd, s2: &Dtd) -> (TypeMapping, PathMapping) {
        let lambda = TypeMapping::by_name_pairs(s1, s2, &[("b", "w")]).unwrap();
        let mut paths = PathMapping::new(s1);
        paths
            .edge(s1, "r", "a", "x/a")
            .edge(s1, "r", "b", "y/w")
            .edge(s1, "b", "c", "c2/c")
            .text_edge(s1, "a", "text()")
            .text_edge(s1, "c", "text()");
        (lambda, paths)
    }

    #[test]
    fn wrap_embedding_is_valid() {
        let (s1, s2) = wrap();
        let (lambda, paths) = wrap_embedding(&s1, &s2);
        let e = Embedding::new(&s1, &s2, lambda, paths).unwrap();
        assert_eq!(e.size(), 2 + 2 + 2 + 1 + 1);
        let desc = e.describe();
        assert!(desc.contains("λ(b) = w"), "{desc}");
        assert!(
            desc.contains("path(r, a) = x[position() = 1]/a[position() = 1]"),
            "{desc}"
        );
        assert!(desc.contains("path(b, c) = c2/c[position() = 1]"), "{desc}");
    }

    #[test]
    fn root_must_map_to_root() {
        let (s1, s2) = wrap();
        let w2 = s2.type_id("w").unwrap();
        let lambda = TypeMapping::from_fn(&s1, |_| w2);
        let (_, paths) = wrap_embedding(&s1, &s2);
        let e = Embedding::new(&s1, &s2, lambda, paths).unwrap_err();
        assert_eq!(e, SchemaEmbeddingError::RootNotMappedToRoot);
    }

    #[test]
    fn missing_paths_are_an_arity_error() {
        let (s1, s2) = wrap();
        let (lambda, _) = wrap_embedding(&s1, &s2);
        let e = Embedding::new(&s1, &s2, lambda, PathMapping::default()).unwrap_err();
        assert!(matches!(e, SchemaEmbeddingError::ArityMismatch { .. }));
    }

    #[test]
    fn similarity_validation() {
        let (s1, s2) = wrap();
        let (lambda, paths) = wrap_embedding(&s1, &s2);
        let e = Embedding::new(&s1, &s2, lambda, paths).unwrap();
        let att = SimilarityMatrix::permissive(&s1, &s2);
        e.check_similarity(&att).unwrap();
        let mut att = SimilarityMatrix::permissive(&s1, &s2);
        att.set(s1.type_id("b").unwrap(), s2.type_id("w").unwrap(), 0.0);
        assert!(matches!(
            e.check_similarity(&att),
            Err(SchemaEmbeddingError::SimilarityZero { .. })
        ));
    }

    #[test]
    fn by_same_name_and_pairs() {
        let (s1, _) = wrap();
        let t = Dtd::builder("r")
            .concat("r", &["a", "b", "c", "X"])
            .empty("a")
            .empty("b")
            .empty("c")
            .empty("X")
            .build()
            .unwrap();
        let m = TypeMapping::by_same_name(&s1, &t).unwrap();
        assert_eq!(m.get(s1.type_id("b").unwrap()), t.type_id("b").unwrap());
        let m = TypeMapping::by_name_pairs(&s1, &t, &[("b", "X")]).unwrap();
        assert_eq!(m.get(s1.type_id("b").unwrap()), t.type_id("X").unwrap());
        assert!(TypeMapping::by_name_pairs(&s1, &t, &[("b", "nope")]).is_err());
    }

    #[test]
    fn paper_example_2_1_is_not_an_embedding() {
        // The Figure 2 mapping of §2/§3 (path(A,B)=A, path(A,C)=A/A) is a
        // handcrafted invertible mapping, *not* a §4.1 schema embedding: it
        // violates the prefix-free condition. Validation must reject it.
        let s1 = Dtd::builder("r")
            .concat("r", &["A"])
            .concat("A", &["B", "C"])
            .disjunction_opt("B", &["A"])
            .empty("C")
            .build()
            .unwrap();
        let s2 = Dtd::builder("r")
            .concat("r", &["A"])
            .disjunction_opt("A", &["A"])
            .build()
            .unwrap();
        let a2 = s2.type_id("A").unwrap();
        let lambda = TypeMapping::from_fn(&s1, |t| if t == s1.root() { s2.root() } else { a2 });
        let mut paths = PathMapping::new(&s1);
        paths
            .edge(&s1, "r", "A", "A")
            .edge(&s1, "A", "B", "A")
            .edge(&s1, "A", "C", "A/A")
            .edge(&s1, "B", "A", "A/A");
        let e = Embedding::new(&s1, &s2, lambda, paths).unwrap_err();
        // Rejected on the first violated condition: the AND edge (A, B)
        // maps onto an OR path (the target A-chain is all dashed edges);
        // had kinds matched, the prefix-free check would fire instead.
        assert!(
            matches!(
                e,
                SchemaEmbeddingError::PathKind { .. } | SchemaEmbeddingError::PrefixConflict { .. }
            ),
            "{e}"
        );
    }
}
