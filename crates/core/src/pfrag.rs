//! Production fragments (§4.2).
//!
//! The production fragment `pfrag_A(v)` is the target-side subtree a single
//! source node `v` of type `A` expands to: the chains of its edge paths,
//! merged on their longest common prefixes, completed with minimum default
//! instances for required-but-unmapped target structure, and ordered by the
//! canonical positions. Its "hot" leaves are where `v`'s children continue
//! the expansion (Figure 4 shows the fragment of a `class` node).
//!
//! The same machinery builds *static* fragments — the fragment shape a
//! disjunction alternative produces regardless of the instance — used by
//! the distinguishability validity check (DESIGN.md §3): a disjunction
//! alternative must not be navigable inside the fragment some *other*
//! alternative (or the empty alternative) produces, otherwise minimum
//! default padding could alias a choice and break invertibility.

use xse_dtd::{Dtd, MindefPlan, Production, TypeId};
use xse_xmltree::{NodeId, TagId, XmlTree};

use crate::resolve::{ResolvedPath, ResolvedStep};

/// What sits at the end of a chain.
#[derive(Clone, Debug)]
pub(crate) enum Terminal {
    /// A hot leaf: the image of source node `src` (of source type
    /// `src_type`), to be expanded by the next `InstMap` round.
    Hot { src: NodeId, src_type: TypeId },
    /// The end of a `str` edge chain: a reference to the source text node
    /// whose value is copied at materialization time (never constructed for
    /// static fragments, which carry no instance values).
    Text { src: NodeId },
    /// An opaque placeholder standing for "arbitrary instance content"
    /// in static fragments.
    Opaque,
}

/// One node of a fragment under construction.
#[derive(Debug)]
pub(crate) struct FragNode {
    pub(crate) ty: TypeId,
    /// Edge slot in the parent's target production.
    pub(crate) slot: usize,
    /// Canonical position among same-label siblings.
    pub(crate) pos: usize,
    pub(crate) children: Vec<FragNode>,
    pub(crate) terminal: Option<Terminal>,
}

/// The fragment of one source node: a root (the already-materialized target
/// image of the source node) plus merged chains.
#[derive(Debug)]
pub(crate) struct Fragment {
    pub(crate) root_ty: TypeId,
    pub(crate) children: Vec<FragNode>,
    /// Terminal of a `text()`-only `str` path (the value lives directly
    /// under the fragment root).
    pub(crate) root_text: Option<Terminal>,
}

impl Fragment {
    pub(crate) fn new(root_ty: TypeId) -> Self {
        Fragment {
            root_ty,
            children: Vec::new(),
            root_text: None,
        }
    }

    /// Add a single chain (concat / disjunction / str edges), merging on the
    /// longest existing prefix.
    pub(crate) fn add_chain(&mut self, path: &ResolvedPath, terminal: Terminal) {
        if path.steps.is_empty() {
            debug_assert!(path.text_tail, "validated paths are nonempty");
            debug_assert!(self.root_text.is_none());
            self.root_text = Some(terminal);
            return;
        }
        add_chain_at(&mut self.children, &path.steps, terminal);
    }

    /// Add a star edge's chains: the shared prefix up to the multiplicity
    /// step, then one chain per repetition (positions `1..=n`).
    pub(crate) fn add_star_chains(&mut self, path: &ResolvedPath, terminals: Vec<Terminal>) {
        let mult = path
            .first_star_step()
            .expect("validated star path has a star step");
        // Merge the shared prefix (also when there are zero repetitions —
        // the §4.3 prefix template emits it unconditionally).
        let mut level = &mut self.children;
        for step in &path.steps[..mult] {
            level = step_into(level, step);
        }
        let mult_step = &path.steps[mult];
        let suffix = &path.steps[mult + 1..];
        for (i, term) in terminals.into_iter().enumerate() {
            let mut node = FragNode {
                ty: mult_step.ty,
                slot: mult_step.slot,
                pos: i + 1,
                children: Vec::new(),
                terminal: None,
            };
            if suffix.is_empty() {
                node.terminal = Some(term);
            } else {
                add_chain_at(&mut node.children, suffix, term);
            }
            level.push(node);
        }
    }
}

/// Descend into (or create) the child for `step`, returning its child list.
fn step_into<'f>(level: &'f mut Vec<FragNode>, step: &ResolvedStep) -> &'f mut Vec<FragNode> {
    let pos = step
        .pos
        .expect("normalized non-multiplicity steps carry positions");
    let idx = match level
        .iter()
        .position(|n| n.slot == step.slot && n.pos == pos && n.ty == step.ty)
    {
        Some(i) => i,
        None => {
            level.push(FragNode {
                ty: step.ty,
                slot: step.slot,
                pos,
                children: Vec::new(),
                terminal: None,
            });
            level.len() - 1
        }
    };
    &mut level[idx].children
}

fn add_chain_at(level: &mut Vec<FragNode>, steps: &[ResolvedStep], terminal: Terminal) {
    debug_assert!(!steps.is_empty());
    let mut level = level;
    for (i, step) in steps.iter().enumerate() {
        if i + 1 == steps.len() {
            let pos = step.pos.expect("normalized steps carry positions");
            level.push(FragNode {
                ty: step.ty,
                slot: step.slot,
                pos,
                children: Vec::new(),
                terminal: Some(terminal),
            });
            return;
        }
        level = step_into(level, step);
    }
}

/// Hot leaves produced while materializing a fragment.
pub(crate) struct HotLeaf {
    pub(crate) target: NodeId,
    pub(crate) src: NodeId,
    pub(crate) src_type: TypeId,
}

/// Text copies produced while materializing (target text node ↦ source text
/// node), recorded into `idM` so `text()` query results map back.
pub(crate) struct TextCopy {
    pub(crate) target: NodeId,
    pub(crate) src: NodeId,
}

/// The per-apply materialization context: the immutable engine state plus
/// the output tree's pre-interned tag table (`tags[ty.index()]` is the tag
/// of target type `ty` in the output's symbol table) and the source tree
/// for copying text values (`None` for static fragments).
pub(crate) struct Emitter<'a> {
    pub(crate) target: &'a Dtd,
    pub(crate) plans: &'a [MindefPlan],
    pub(crate) tags: &'a [TagId],
    pub(crate) src: Option<&'a XmlTree>,
}

impl Emitter<'_> {
    fn copy_text(&self, tree: &mut XmlTree, at: NodeId, src: NodeId, texts: &mut Vec<TextCopy>) {
        let value = self
            .src
            .expect("text terminals require a source tree")
            .text_value(src)
            .unwrap_or_default();
        let t = tree.add_text(at, value);
        texts.push(TextCopy { target: t, src });
    }
}

/// Materialize `fragment` under the existing node `at` of `tree`:
/// mindef-complete every non-hot node, order children canonically, emit hot
/// leaves and text copies.
pub(crate) fn materialize(
    fragment: Fragment,
    em: &Emitter<'_>,
    tree: &mut XmlTree,
    at: NodeId,
    hot: &mut Vec<HotLeaf>,
    texts: &mut Vec<TextCopy>,
) {
    if matches!(em.target.production(fragment.root_ty), Production::Str) {
        debug_assert!(fragment.children.is_empty());
        match fragment.root_text {
            Some(Terminal::Text { src }) => em.copy_text(tree, at, src, texts),
            Some(other) => unreachable!("str root with terminal {other:?}"),
            None => {
                // λ(A) needs text but A has no str edge: default value.
                tree.add_text(at, xse_dtd::DEFAULT_STRING);
            }
        }
        return;
    }
    debug_assert!(fragment.root_text.is_none());
    materialize_children(
        fragment.children,
        fragment.root_ty,
        em,
        tree,
        at,
        hot,
        texts,
    );
}

/// Complete-and-emit the children of a non-hot fragment node of type `ty`
/// at tree node `at`.
fn materialize_children(
    mut frag_children: Vec<FragNode>,
    ty: TypeId,
    em: &Emitter<'_>,
    tree: &mut XmlTree,
    at: NodeId,
    hot: &mut Vec<HotLeaf>,
    texts: &mut Vec<TextCopy>,
) {
    match em.target.production(ty) {
        Production::Str => {
            // Only reachable for nodes with no chains through them (chains
            // cannot traverse a str-typed node); required text gets the
            // default value.
            debug_assert!(frag_children.is_empty());
            tree.add_text(at, xse_dtd::DEFAULT_STRING);
        }
        Production::Empty => {
            debug_assert!(frag_children.is_empty());
        }
        Production::Concat(cs) => {
            // One child per slot; missing slots filled with mindef.
            frag_children.sort_by_key(|c| c.slot);
            let mut iter = frag_children.into_iter().peekable();
            for (slot, &cty) in cs.iter().enumerate() {
                if iter.peek().is_some_and(|c| c.slot == slot) {
                    let child = iter.next().unwrap();
                    emit(child, em, tree, at, hot, texts);
                } else {
                    em.target
                        .mindef_into_tagged(em.plans, em.tags, cty, tree, at);
                }
            }
            debug_assert!(iter.next().is_none(), "chain slot outside production");
        }
        Production::Disjunction { allows_empty, .. } => match frag_children.len() {
            0 => {
                if !allows_empty {
                    match &em.plans[ty.index()] {
                        MindefPlan::OneChild(c) => {
                            em.target
                                .mindef_into_tagged(em.plans, em.tags, *c, tree, at);
                        }
                        other => unreachable!("disjunction plan {other:?}"),
                    }
                }
            }
            1 => {
                let child = frag_children.into_iter().next().unwrap();
                emit(child, em, tree, at, hot, texts);
            }
            n => unreachable!("{n} chains under one OR node — validation is broken"),
        },
        Production::Star(b) => {
            // Children carry positions; fill gaps below the max with mindef.
            frag_children.sort_by_key(|c| c.pos);
            let mut next_pos = 1;
            for child in frag_children {
                debug_assert!(child.pos >= next_pos, "duplicate star positions");
                while next_pos < child.pos {
                    em.target
                        .mindef_into_tagged(em.plans, em.tags, *b, tree, at);
                    next_pos += 1;
                }
                emit(child, em, tree, at, hot, texts);
                next_pos += 1;
            }
        }
    }
}

fn emit(
    node: FragNode,
    em: &Emitter<'_>,
    tree: &mut XmlTree,
    at: NodeId,
    hot: &mut Vec<HotLeaf>,
    texts: &mut Vec<TextCopy>,
) {
    let id = tree.add_element_tag(at, em.tags[node.ty.index()]);
    match node.terminal {
        Some(Terminal::Hot { src, src_type }) => {
            debug_assert!(node.children.is_empty(), "hot leaves have no chains");
            hot.push(HotLeaf {
                target: id,
                src,
                src_type,
            });
        }
        Some(Terminal::Opaque) => {
            // Unknown instance content: left empty. Used only by the static
            // distinguishability check, where navigation can never descend
            // into it (prefix-freeness).
        }
        Some(Terminal::Text { src }) => {
            debug_assert!(matches!(em.target.production(node.ty), Production::Str));
            em.copy_text(tree, id, src, texts);
        }
        None => {
            materialize_children(node.children, node.ty, em, tree, id, hot, texts);
        }
    }
}
