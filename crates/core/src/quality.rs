//! Embedding quality (§4.1): `qual(σ, att) = Σ_A att(A, λ(A))`.

use crate::{CompiledEmbedding, SimilarityMatrix};

impl CompiledEmbedding {
    /// The paper's quality metric: the sum of `att(A, λ(A))` over all source
    /// types. Higher is better; the maximum is `|E1|` (every type mapped to
    /// a perfect match).
    pub fn quality(&self, att: &SimilarityMatrix) -> f64 {
        self.source
            .types()
            .map(|a| att.get(a, self.lambda.get(a)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::embedding::tests::{wrap, wrap_compiled};
    use crate::SimilarityMatrix;

    #[test]
    fn quality_sums_lambda_similarities() {
        let (s1, s2) = wrap();
        let e = wrap_compiled(&s1, &s2);
        let att = SimilarityMatrix::permissive(&s1, &s2);
        assert_eq!(e.quality(&att), 4.0, "four source types, all at 1.0");
        let mut att = SimilarityMatrix::permissive(&s1, &s2);
        att.set(s1.type_id("b").unwrap(), s2.type_id("w").unwrap(), 0.25);
        assert!((e.quality(&att) - 3.25).abs() < 1e-12);
    }
}
