//! The inverse mapping `σd⁻¹` (Theorem 4.3a).
//!
//! The source document is rebuilt top-down, exactly as the §4.3 inverse
//! XSLT templates would: at the image of a source node of type `A`, each
//! production edge's path is *navigated* in the target document — canonical
//! positions make every step deterministic — and the nodes found become the
//! recovered children. Disjunctions probe each alternative's path; the
//! distinguishability validity check guarantees at most one can succeed.
//! Stars walk the children of the multiplicity node in document order.

use xse_dtd::{Dtd, Production, TypeId};
use xse_xmltree::{NodeId, TagId, XmlTree};

use crate::resolve::ResolvedStep;
use crate::{CompiledEmbedding, EmbeddingError};

/// Follow `steps` downward from `from`, one child per step; `None` when some
/// step has no matching child. Steps must carry canonical positions (true
/// after embedding normalization for every navigation the inverse performs).
pub(crate) fn navigate(
    target: &Dtd,
    tree: &XmlTree,
    from: NodeId,
    steps: &[ResolvedStep],
) -> Option<NodeId> {
    let mut cur = from;
    for step in steps {
        let k = step
            .pos
            .expect("navigation requires canonical positions on every step");
        cur = tree
            .children_with_tag(cur, target.name(step.ty))
            .nth(k - 1)?;
    }
    Some(cur)
}

/// [`navigate`] with the document's tag ids pre-resolved per target type:
/// `tags[ty.index()]` is `ty`'s tag in `tree`'s symbol table (`None` when
/// the tag never occurs in the document — then no step of that type can
/// match). Label checks become integer compares, and each canonical-position
/// step resolves through the tree's label-offset index
/// ([`XmlTree::nth_child_with_tag_id`]) instead of scanning siblings.
fn navigate_tagged(
    tree: &XmlTree,
    tags: &[Option<TagId>],
    from: NodeId,
    steps: &[ResolvedStep],
) -> Option<NodeId> {
    let mut cur = from;
    for step in steps {
        let k = step
            .pos
            .expect("navigation requires canonical positions on every step");
        let want = tags[step.ty.index()]?;
        cur = tree.nth_child_with_tag_id(cur, want, k - 1)?;
    }
    Some(cur)
}

/// Navigation alphabet of one invert run: the target types' tags resolved
/// against the input document's symbol table.
struct Nav {
    target_tags: Vec<Option<TagId>>,
}

impl CompiledEmbedding {
    /// Recover the source document from `σd(T)`. Runs in `O(|σd(T)|·|σ|)`
    /// (within the paper's quadratic bound).
    ///
    /// # Errors
    /// [`EmbeddingError::TargetInvalid`] when the input does not
    /// conform to the target DTD, [`EmbeddingError::InverseMismatch`]
    /// when it conforms but cannot be an image of `σd` (e.g. a hand-edited
    /// document).
    pub fn invert(&self, t2: &XmlTree) -> Result<XmlTree, EmbeddingError> {
        self.target
            .validate(t2)
            .map_err(EmbeddingError::TargetInvalid)?;
        // Resolve the navigation alphabet against the document once (target
        // tags → the document's TagIds) and intern the source alphabet into
        // the output once, so the rebuild loop never hashes a string.
        let nav = Nav {
            target_tags: self
                .target
                .types()
                .map(|ty| t2.tag_id(self.target.name(ty)))
                .collect(),
        };
        let mut t1 = XmlTree::with_capacity(
            self.source.name(self.source.root()),
            t2.len() / 2 + 1,
            t2.text_bytes(),
        );
        let source_tags: Vec<TagId> = self
            .source
            .types()
            .map(|ty| t1.intern_tag(self.source.name(ty)))
            .collect();
        let t1_root = t1.root();
        // (target image, source type, recovered source node)
        let mut work: Vec<(NodeId, TypeId, NodeId)> =
            vec![(t2.root(), self.source.root(), t1_root)];
        while let Some((tv, a, out)) = work.pop() {
            self.invert_node(t2, &nav, &source_tags, tv, a, &mut t1, out, &mut work)?;
        }
        t1.freeze();
        Ok(t1)
    }

    #[allow(clippy::too_many_arguments)]
    fn invert_node(
        &self,
        t2: &XmlTree,
        nav: &Nav,
        source_tags: &[TagId],
        tv: NodeId,
        a: TypeId,
        t1: &mut XmlTree,
        out: NodeId,
        work: &mut Vec<(NodeId, TypeId, NodeId)>,
    ) -> Result<(), EmbeddingError> {
        let mismatch = |reason: String| EmbeddingError::InverseMismatch {
            at: format!(
                "source type {} at target node {}",
                self.source.name(a),
                t2.label_path(tv).join("/")
            ),
            reason,
        };
        let paths = self.paths_of(a);
        match self.source.production(a) {
            Production::Empty => {}
            Production::Str => {
                let rp = &paths[0];
                let end = navigate_tagged(t2, &nav.target_tags, tv, &rp.steps)
                    .ok_or_else(|| mismatch("str path not present".into()))?;
                let text = t2
                    .children(end)
                    .first()
                    .and_then(|&c| t2.text_value(c))
                    .ok_or_else(|| mismatch("str path endpoint has no text".into()))?;
                t1.add_text(out, text);
            }
            Production::Concat(cs) => {
                for (slot, &cty) in cs.iter().enumerate() {
                    let node = navigate_tagged(t2, &nav.target_tags, tv, &paths[slot].steps)
                        .ok_or_else(|| {
                            mismatch(format!(
                                "child path {} not present",
                                paths[slot].display(&self.target)
                            ))
                        })?;
                    let child = t1.add_element_tag(out, source_tags[cty.index()]);
                    work.push((node, cty, child));
                }
            }
            Production::Disjunction { alts, allows_empty } => {
                let mut found: Option<(usize, NodeId)> = None;
                for (slot, &alt) in alts.iter().enumerate() {
                    if let Some(node) =
                        navigate_tagged(t2, &nav.target_tags, tv, &paths[slot].steps)
                    {
                        if let Some((other, _)) = found {
                            return Err(mismatch(format!(
                                "both alternatives {} and {} are navigable",
                                self.source.name(alts[other]),
                                self.source.name(alt)
                            )));
                        }
                        found = Some((slot, node));
                    }
                }
                match found {
                    Some((slot, node)) => {
                        let cty = alts[slot];
                        let child = t1.add_element_tag(out, source_tags[cty.index()]);
                        work.push((node, cty, child));
                    }
                    None if *allows_empty => {}
                    None => return Err(mismatch("no disjunction alternative navigable".into())),
                }
            }
            Production::Star(b) => {
                let rp = &paths[0];
                let mult = rp.first_star_step().expect("validated star path");
                let Some(parent) = navigate_tagged(t2, &nav.target_tags, tv, &rp.steps[..mult])
                else {
                    return Err(mismatch("star path prefix not present".into()));
                };
                let suffix = &rp.steps[mult + 1..];
                // Children are reversed before pushing so the stack pops
                // them in document order... order of t1 children is fixed
                // by insertion; expansion order does not matter.
                for &rep in t2.children(parent) {
                    let node = if suffix.is_empty() {
                        rep
                    } else {
                        navigate_tagged(t2, &nav.target_tags, rep, suffix).ok_or_else(|| {
                            mismatch("star path suffix not present in a repetition".into())
                        })?
                    };
                    let child = t1.add_element_tag(out, source_tags[b.index()]);
                    work.push((node, *b, child));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::embedding::tests::{wrap, wrap_compiled};
    use crate::instmap::tests::{fig1, fig1_embedding};
    use xse_xmltree::parse_xml;

    #[test]
    fn wrap_roundtrip() {
        let (s1, s2) = wrap();
        let e = wrap_compiled(&s1, &s2);
        for xml in [
            "<r><a>hi</a><b><c>1</c><c>2</c></b></r>",
            "<r><a>z</a><b/></r>",
            "<r><a></a><b><c>only</c></b></r>",
        ] {
            // Note: <a></a> parses to an element with no text child and is
            // invalid; skip unparsable/invalid fixtures gracefully.
            let Ok(t1) = parse_xml(xml) else { continue };
            if s1.validate(&t1).is_err() {
                continue;
            }
            let out = e.apply(&t1).unwrap();
            let back = e.invert(&out.tree).unwrap();
            assert!(back.equals(&t1), "{xml}: {:?}", back.first_difference(&t1));
        }
    }

    #[test]
    fn school_roundtrip() {
        let (s0, s) = fig1();
        let e = fig1_embedding(&s0, &s);
        let t1 = parse_xml(
            "<db>\
               <class><cno>CS331</cno><title>DB</title><type><regular><prereq>\
                  <class><cno>CS240</cno><title>Algo</title><type><project>p1</project></type></class>\
                  <class><cno>CS101</cno><title>Intro</title><type><project>p2</project></type></class>\
               </prereq></regular></type></class>\
               <class><cno>CS499</cno><title>Thesis</title><type><project>p3</project></type></class>\
             </db>",
        )
        .unwrap();
        let out = e.apply(&t1).unwrap();
        let back = e.invert(&out.tree).unwrap();
        assert!(back.equals(&t1), "{:?}", back.first_difference(&t1));
    }

    #[test]
    fn inverse_rejects_nonconforming_target() {
        let (s1, s2) = wrap();
        let e = wrap_compiled(&s1, &s2);
        let bad = parse_xml("<r><x/></r>").unwrap();
        assert!(matches!(
            e.invert(&bad),
            Err(crate::EmbeddingError::TargetInvalid(_))
        ));
    }

    #[test]
    fn inverse_detects_non_image_documents() {
        // Valid w.r.t. S2 but with a text value where σd would have put a
        // mapped child — here: conforming but cannot arise, because σd
        // always materializes y/w. Remove w's children and break the str
        // chain instead: replace x/a's text... Simplest non-image: a
        // conforming doc whose `w` has a c2 missing its c text (impossible
        // per DTD). So use the school example: an advanced/project where
        // the source type requires text under project — still conforming.
        // Cheapest honest check: inverting a *conforming* random target
        // document usually fails with InverseMismatch or succeeds with a
        // re-mappable document; here we assert the error path exists using
        // a hand-built case.
        let (s0, s) = fig1();
        let e = fig1_embedding(&s0, &s);
        // A school doc whose current course list is fine but whose
        // semester list under class is empty — σd always creates
        // semester[1] for the title chain, so inversion must fail.
        let t2 = parse_xml(
            "<school><courses><history/><current><course>\
               <basic><cno>X</cno><credit>c</credit><class/></basic>\
               <category><advanced><project>p</project></advanced></category>\
             </course></current></courses>\
             <students><student><ssn>s</ssn></student></students></school>",
        )
        .unwrap();
        s.validate(&t2).unwrap();
        let err = e.invert(&t2).unwrap_err();
        assert!(matches!(err, crate::EmbeddingError::InverseMismatch { .. }));
    }
}
